"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so PEP 517
editable installs (which need ``bdist_wheel``) fail.  Keeping a ``setup.py``
and omitting ``[build-system]`` from pyproject.toml lets
``pip install -e . --no-build-isolation`` take the legacy develop path.
"""

from setuptools import setup

setup()
