"""Differential fuzzing: random kernels, four systems, one answer.

Hypothesis generates random (but well-formed) loop kernels; each runs on
the scalar core, under both static vectorizers, and under the DSA.  All
four executions must produce bit-identical memory — the strongest check we
have that the vectorizers and the DSA only ever transform *timing*.

The generated kernels deliberately stay inside ranges where element-width
arithmetic matches 32-bit scalar arithmetic (as real vectorized code must),
while still exercising: multiple streams, read-modify-write, constants and
invariant scalars, conditionals, dynamic ranges, and leftovers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import DType
from repro.compiler import (
    ArrayParam,
    AutoVectorizer,
    Binary,
    BinOp,
    CmpOp,
    Compare,
    Const,
    For,
    HandVectorizer,
    If,
    Kernel,
    Let,
    Load,
    ScalarParam,
    Store,
    Var,
    lower,
)
from repro.dsa import DSAConfig, DynamicSIMDAssembler
from repro.systems.runner import execute_kernel

# ---------------------------------------------------------------------------
# expression strategies (i32 lanes; values bounded so nothing overflows i32)
# ---------------------------------------------------------------------------
SAFE_OPS = [BinOp.ADD, BinOp.SUB, BinOp.AND, BinOp.OR, BinOp.XOR, BinOp.MIN, BinOp.MAX]

leaf = st.one_of(
    st.builds(Load, st.sampled_from(["a", "b"]), st.just(Var("i"))),
    st.builds(Const, st.integers(-50, 50)),
    st.just(Var("s")),  # loop-invariant scalar parameter
)


def exprs(depth: int):
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(Binary, st.sampled_from(SAFE_OPS), sub, sub),
        st.builds(lambda e, amt: Binary(BinOp.SHR, e, Const(amt)), sub, st.integers(1, 4)),
        st.builds(
            lambda e: Binary(BinOp.MUL, e, Const(3)), sub
        ),  # bounded multiply keeps i32 exact
    )


@st.composite
def elementwise_kernels(draw):
    n = draw(st.integers(9, 80))
    body_exprs = draw(st.lists(exprs(2), min_size=1, max_size=2))
    stmts = []
    for j, e in enumerate(body_exprs):
        target = "out" if j == len(body_exprs) - 1 else "out2"
        stmts.append(Store(target, Var("i"), e))
    dynamic = draw(st.booleans())
    end = Var("n") if dynamic else Const(n)
    kernel = Kernel(
        "fuzz",
        [
            ArrayParam("a", DType.I32),
            ArrayParam("b", DType.I32),
            ArrayParam("out", DType.I32),
            ArrayParam("out2", DType.I32),
            ScalarParam("s"),
            ScalarParam("n"),
        ],
        [For("i", Const(0), end, stmts)],
    )
    return kernel, n


@st.composite
def conditional_kernels(draw):
    n = draw(st.integers(12, 64))
    then_e = draw(exprs(1))
    else_e = draw(exprs(1))
    threshold = draw(st.integers(-30, 30))
    kernel = Kernel(
        "fuzz_cond",
        [
            ArrayParam("a", DType.I32),
            ArrayParam("b", DType.I32),
            ArrayParam("out", DType.I32),
            ArrayParam("out2", DType.I32),
            ScalarParam("s"),
            ScalarParam("n"),
        ],
        [
            For(
                "i", Const(0), Const(n),
                [
                    If(
                        Compare(Load("a", Var("i")), CmpOp.GT, Const(threshold)),
                        [Store("out", Var("i"), then_e)],
                        [Store("out", Var("i"), else_e)],
                    )
                ],
            )
        ],
    )
    return kernel, n


def _args(n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "a": rng.integers(-100, 100, n).astype(np.int32),
        "b": rng.integers(-100, 100, n).astype(np.int32),
        "out": np.zeros(n, np.int32),
        "out2": np.zeros(n, np.int32),
        "s": int(rng.integers(-20, 20)),
        "n": n,
    }


def _run_everywhere(kernel, n: int, seed: int) -> None:
    reference = None
    lowered_variants = {
        "scalar": lower(kernel),
        "autovec": lower(kernel, vectorizer=AutoVectorizer()),
        "handvec": lower(kernel, vectorizer=HandVectorizer()),
    }
    for label, lowered in lowered_variants.items():
        run = execute_kernel(lowered, _args(n, seed))
        outs = (run.array("out"), run.array("out2"))
        if reference is None:
            reference = outs
        else:
            np.testing.assert_array_equal(outs[0], reference[0], err_msg=label)
            np.testing.assert_array_equal(outs[1], reference[1], err_msg=label)
    # the DSA run: verify_functional raises on any burst/scalar mismatch
    dsa = DynamicSIMDAssembler(DSAConfig())
    run = execute_kernel(lowered_variants["scalar"], _args(n, seed), attach=dsa.attach)
    np.testing.assert_array_equal(run.array("out"), reference[0], err_msg="dsa")
    np.testing.assert_array_equal(run.array("out2"), reference[1], err_msg="dsa")


class TestDifferentialElementwise:
    @given(elementwise_kernels(), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_all_systems_agree(self, kernel_n, seed):
        kernel, n = kernel_n
        _run_everywhere(kernel, n, seed)


class TestDifferentialConditional:
    @given(conditional_kernels(), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_all_systems_agree(self, kernel_n, seed):
        kernel, n = kernel_n
        _run_everywhere(kernel, n, seed)


class TestDifferentialLetChains:
    """Kernels with Let-defined intermediates (exercises register recycling
    in the vector emitter and dataflow reconstruction in the DSA)."""

    @given(
        st.integers(10, 60),
        st.lists(st.sampled_from(SAFE_OPS), min_size=2, max_size=4),
        st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_let_chain(self, n, ops, seed):
        stmts = [Let("t0", Load("a", Var("i")))]
        for j, op in enumerate(ops):
            prev = Var(f"t{j}")
            stmts.append(Let(f"t{j+1}", Binary(op, prev, Load("b", Var("i")))))
        stmts.append(Store("out", Var("i"), Var(f"t{len(ops)}")))
        kernel = Kernel(
            "fuzz_lets",
            [
                ArrayParam("a", DType.I32),
                ArrayParam("b", DType.I32),
                ArrayParam("out", DType.I32),
                ArrayParam("out2", DType.I32),
                ScalarParam("s"),
                ScalarParam("n"),
            ],
            [For("i", Const(0), Const(n), stmts)],
        )
        _run_everywhere(kernel, n, seed)
