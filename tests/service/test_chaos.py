"""Chaos scenarios against the real service: nothing lost, nothing altered.

The acceptance bar from the issue: under worker crashes, cache
corruption, journal damage, and a SIGKILL of the server itself, every
submitted job reaches a terminal state exactly once and every completed
result is byte-identical to a clean serial campaign.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.systems.campaign import CampaignRunner, RunSpec
from repro.systems.service import ServiceClient, SupervisorConfig

from .conftest import SPECS

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _clean_results(specs: list[dict], tmp_path) -> dict[str, str]:
    """label → canonical result JSON from a fault-free serial campaign."""
    runner = CampaignRunner(jobs=1, cache_dir=tmp_path / "clean-cache")
    outcome = runner.run([RunSpec.from_dict(s) for s in specs])
    return {
        spec.label: json.dumps(outcome.result_for(spec).to_dict(), sort_keys=True)
        for spec in (RunSpec.from_dict(s) for s in specs)
    }


def _terminal_transitions(journal: Path) -> dict[str, list[str]]:
    states: dict[str, list[str]] = {}
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn line; replay skips it the same way
        if record.get("op") == "state" and record["state"] in ("done", "failed", "given_up"):
            states.setdefault(record["job"], []).append(record["state"])
    return states


class TestCacheCorruptionThroughTheService:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, harness, tmp_path):
        clean = _clean_results(SPECS[:1], tmp_path)
        client = harness.client()
        first = client.submit(SPECS[:1], client="t")
        records = client.wait_jobs(first["jobs"], timeout=120)
        (record,) = records.values()
        assert record["source"] == "computed"

        # flip bits in every committed entry, the way silent bit-rot would
        cache_root = harness.cache_dir
        entries = [
            p for p in cache_root.rglob("*.json") if "corrupt" not in p.parts
        ]
        assert entries
        for path in entries:
            payload = json.loads(path.read_text())
            payload["result"]["cycles"] = 10**9
            path.write_text(json.dumps(payload))

        again = client.submit(SPECS[:1], client="t")
        records = client.wait_jobs(again["jobs"], timeout=120)
        (record,) = records.values()
        # the poison was refused: recomputed, not served from cache
        assert record["source"] == "computed"
        assert json.dumps(record["result"], sort_keys=True) == clean[
            RunSpec.from_dict(SPECS[0]).label
        ]
        health = client.healthz()
        assert health["degradation"]["cache_corrupt_quarantined"] >= 1
        assert list((cache_root / "corrupt").iterdir())


class TestJournalDamageAcrossRestart:
    def test_torn_tail_recovers_without_losing_earlier_jobs(
        self, harness_factory, tmp_path
    ):
        clean = _clean_results(SPECS[:2], tmp_path)
        first = harness_factory(journal_name="shared.jsonl")
        client = first.client()
        accepted = client.submit(SPECS[:2], client="t")
        client.wait_jobs(accepted["jobs"], timeout=120)
        first.stop()

        # crash damage: the final done line is torn mid-write
        journal = first.journal_path
        journal.write_bytes(journal.read_bytes()[:-20])

        second = harness_factory(journal_name="shared.jsonl")
        # exactly the job whose done line was torn is re-queued; the other
        # job's terminal state survived intact
        assert len(second.recovered) == 1
        assert second.recovered[0].job_id in accepted["jobs"]
        client = second.client()
        health = client.healthz()
        assert health["degradation"]["journal_torn_lines"] == 1
        assert health["degradation"]["jobs_recovered"] == 1
        # ... and the torn job reaches done again, byte-identical (served
        # straight from the disk cache the first run already populated)
        records = client.wait_jobs(accepted["jobs"], timeout=120)
        for spec, job_id in zip(SPECS[:2], accepted["jobs"]):
            assert records[job_id]["state"] == "done"
            assert json.dumps(records[job_id]["result"], sort_keys=True) == clean[
                RunSpec.from_dict(spec).label
            ]
        finals = _terminal_transitions(journal)
        assert all(len(v) <= 2 for v in finals.values())  # pre-tear + recomputed


class TestFaultsAcrossRestart:
    def test_recovered_job_resumes_its_attempt_budget(self, harness_factory):
        # attempt 1 hangs; the service is stopped while it is mid-flight,
        # so the journal ends with the job 'running'.  The restart must
        # resume counting at attempt 2 — where the times=1 fault no longer
        # fires — instead of restarting from attempt 1 and hanging forever.
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_hang", match="micro:count/*", times=1, seconds=300.0),
        ])
        config = SupervisorConfig(
            jobs=2, timeout=3.0, retries=1, backoff=0.05, jitter=0.0,
            drain_grace=0.2,
        )
        first = harness_factory(
            journal_name="shared.jsonl", fault_plan=plan, config=config,
        )
        client = first.client()
        accepted = client.submit(SPECS[:1], client="t")
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(accepted["jobs"][0])["state"] == "running":
                break
            time.sleep(0.05)
        assert client.job(accepted["jobs"][0])["state"] == "running"
        first.stop()  # drain gives up after 0.2s; the job stays 'running'

        second = harness_factory(
            journal_name="shared.jsonl", fault_plan=plan, config=config,
        )
        assert [j.job_id for j in second.recovered] == accepted["jobs"]
        records = second.client().wait_jobs(accepted["jobs"], timeout=120)
        (record,) = records.values()
        assert record["state"] == "done"
        assert record["recovered"] == 1
        # attempts journaled across both lives, never restarting from 1
        assert record["attempts"] == 2


@pytest.mark.slow
class TestServerSigkill:
    """The headline scenario: kill -9 the server mid-campaign, restart,
    and the batch completes from the journal with byte-identical results."""

    def _serve(self, port, journal, cache, plan_path=None, log=None):
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--journal", str(journal), "--cache-dir", str(cache),
            "--jobs", "1", "--timeout", "60",
        ]
        if plan_path is not None:
            argv += ["--inject", str(plan_path)]
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(argv, env=env, stderr=log, stdout=log)

    def test_kill9_mid_batch_then_restart_completes_the_batch(self, tmp_path):
        clean = _clean_results(SPECS, tmp_path)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        journal = tmp_path / "journal.jsonl"
        cache = tmp_path / "service-cache"
        # pin the first job in a long hang so the SIGKILL provably lands
        # mid-flight (the fault only fires on attempt 1: the re-run after
        # recovery computes normally)
        plan_path = tmp_path / "plan.json"
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_hang", match="micro:count/*", times=1, seconds=300.0),
        ])
        plan_path.write_text(json.dumps(plan.to_dict()))
        log = open(tmp_path / "serve.log", "w")

        server = self._serve(port, journal, cache, plan_path=plan_path, log=log)
        client = ServiceClient("127.0.0.1", port, timeout=10)
        try:
            client.wait_ready(timeout=30)
            accepted = client.submit(SPECS, client="chaos")
            job_ids = accepted["jobs"]
            # wait until the hanging job is journaled as running, then SIGKILL
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.job(job_ids[0])["state"] == "running":
                    break
                time.sleep(0.05)
            assert client.job(job_ids[0])["state"] == "running"
        finally:
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)

        states = _terminal_transitions(journal)
        assert states.get(job_ids[0], []) == []  # died with the job in flight

        restarted = self._serve(port, journal, cache, log=log)
        try:
            client.wait_ready(timeout=30)
            records = client.wait_jobs(job_ids, timeout=180)
            for spec, job_id in zip(SPECS, job_ids):
                record = records[job_id]
                assert record["state"] == "done", record
                assert json.dumps(record["result"], sort_keys=True) == clean[
                    RunSpec.from_dict(spec).label
                ], f"result drift after recovery for {job_id}"
            assert client.job(job_ids[0])["recovered"] == 1
            assert client.healthz()["degradation"]["jobs_recovered"] == 1
        finally:
            # SIGTERM must drain gracefully and exit 0
            restarted.send_signal(signal.SIGTERM)
            assert restarted.wait(timeout=30) == 0
            log.close()

        # the ledger: every job exactly one terminal state, none lost
        states = _terminal_transitions(journal)
        assert sorted(states) == sorted(job_ids)
        assert all(v == ["done"] for v in states.values())
