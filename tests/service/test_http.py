"""The HTTP surface: admission control, validation errors, observability.

Backpressure is a feature with a contract — a client must always learn
*why* it was refused and when to come back — so every rejection path is
pinned here, along with the read-only endpoints operators script against.
"""

import json
import urllib.request

import pytest

from repro.systems.service import AdmissionConfig, ServiceError

from .conftest import SPECS


def _reject(client, body):
    status, headers, payload = client.submit_raw(body)
    return status, {k.lower(): v for k, v in headers.items()}, payload


class TestValidation:
    def test_invalid_json_is_a_structured_400(self, harness):
        url = f"http://{harness.host}:{harness.port}/jobs"
        request = urllib.request.Request(
            url, data=b"{not json", headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        payload = json.loads(err.value.read())
        assert payload["error"] == "body is not valid JSON"

    def test_every_bad_spec_is_named_by_index(self, harness):
        status, _, payload = _reject(harness.client(), {"specs": [
            SPECS[0],                                     # fine
            {"workload": "no:such:workload", "system": "neon_dsa"},
            "not an object",
            {"workload": "micro:count", "system": "warp_drive"},
        ]})
        assert status == 400
        indexes = [d["index"] for d in payload["details"]]
        assert indexes == [1, 2, 3]
        assert all(d["error"] for d in payload["details"])

    def test_empty_specs_rejected(self, harness):
        status, _, payload = _reject(harness.client(), {"specs": []})
        assert status == 400
        assert "non-empty" in payload["details"][0]["error"]

    def test_nothing_invalid_reaches_the_journal(self, harness):
        _reject(harness.client(), {"specs": [{"workload": "bogus", "system": "x"}]})
        assert not harness.journal_path.exists() or not harness.journal_path.read_text()


class TestBackpressure:
    def test_full_queue_gets_429_with_retry_after(self, harness_factory):
        harness = harness_factory(admission=AdmissionConfig(max_queue=1, retry_after_s=7))
        status, headers, payload = _reject(
            harness.client(), {"specs": SPECS[:2], "client": "t"},
        )
        assert status == 429
        assert headers["retry-after"] == "7"
        assert payload["error"] == "queue full"
        assert payload["max_queue"] == 1

    def test_client_over_its_cap_gets_429(self, harness_factory):
        harness = harness_factory(admission=AdmissionConfig(per_client_limit=1))
        status, headers, payload = _reject(
            harness.client(), {"specs": SPECS[:2], "client": "greedy"},
        )
        assert status == 429
        assert "retry-after" in headers
        assert "greedy" in payload["error"]
        # a different client is not punished for it
        accepted = harness.client().submit(SPECS[:1], client="modest")
        assert len(accepted["jobs"]) == 1

    def test_draining_service_answers_503(self, harness):
        client = harness.client()
        harness.supervisor._draining = True
        try:
            status, headers, payload = _reject(client, {"specs": SPECS[:1]})
        finally:
            harness.supervisor._draining = False
        assert status == 503
        assert "retry-after" in headers
        assert payload["error"] == "service is draining"

    def test_rejections_are_visible_on_the_event_bus(self, harness_factory):
        harness = harness_factory(admission=AdmissionConfig(max_queue=0))
        client = harness.client()
        _reject(client, {"specs": SPECS[:1]})
        events = client.events()["events"]
        assert any(
            e["kind"] == "job_rejected" and e["args"]["reason"] == "queue_full"
            for e in events
        )


class TestInspection:
    def test_unknown_job_is_404(self, harness):
        with pytest.raises(ServiceError) as err:
            harness.client().job("j999999-deadbeef")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, harness):
        with pytest.raises(ServiceError) as err:
            harness.client()._checked("GET", "/teapot")
        assert err.value.status == 404

    def test_healthz_shape(self, harness):
        health = harness.client().healthz()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"queued", "running", "done", "failed", "given_up"}
        assert set(health["degradation"]) == {
            "quarantined_cells", "cache_corrupt_quarantined", "cache_evicted",
            "cache_stale_dropped", "jobs_recovered", "journal_torn_lines",
        }

    def test_jobs_listing_and_metrics_track_a_batch(self, harness):
        client = harness.client()
        accepted = client.submit(SPECS[:2], client="t")
        client.wait_jobs(accepted["jobs"], timeout=120)
        listing = client.jobs()
        assert [j["job"] for j in listing] == accepted["jobs"]
        assert all(j["state"] == "done" for j in listing)

        metrics = client.metrics()
        assert 'repro_service_jobs{state="done"} 2' in metrics
        assert 'repro_service_degradation_total{kind="jobs_recovered"} 0' in metrics

    def test_events_tail_with_since(self, harness):
        client = harness.client()
        accepted = client.submit(SPECS[:1], client="t")
        client.wait_jobs(accepted["jobs"], timeout=120)
        first = client.events()
        assert any(e["kind"] == "job_admitted" for e in first["events"])
        assert any(e["kind"] == "job_done" for e in first["events"])
        tail = client.events(since=first["next"])
        assert tail["events"] == []
