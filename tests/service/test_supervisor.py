"""Supervised execution: retries, circuit breaker, byte-identical recovery.

Every scenario drives a real service (thread-hosted event loop, real
worker processes) through the blocking client, with faults injected by
the same :mod:`repro.faults` plans the campaign layer uses.
"""

import json

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.systems.campaign import CampaignRunner, RunSpec
from repro.systems.service import JobState, SupervisorConfig

from .conftest import FAST, SPECS


@pytest.fixture(scope="module")
def clean_serial(tmp_path_factory):
    """The fault-free reference results every recovery must byte-match."""
    cache = tmp_path_factory.mktemp("clean-cache")
    return CampaignRunner(jobs=1, cache_dir=cache).run(
        [RunSpec.from_dict(s) for s in SPECS]
    )


def _expect(clean_serial, spec: dict) -> str:
    result = clean_serial.result_for(RunSpec.from_dict(spec))
    return json.dumps(result.to_dict(), sort_keys=True)


def _got(record: dict) -> str:
    return json.dumps(record["result"], sort_keys=True)


class TestHappyPath:
    def test_batch_completes_and_matches_serial(self, harness, clean_serial):
        client = harness.client()
        accepted = client.submit(SPECS, client="t")
        records = client.wait_jobs(accepted["jobs"], timeout=120)
        for spec, job_id in zip(SPECS, accepted["jobs"]):
            record = records[job_id]
            assert record["state"] == "done"
            assert record["source"] == "computed"
            assert _got(record) == _expect(clean_serial, spec)

    def test_resubmission_dedups_from_the_cache(self, harness, clean_serial):
        client = harness.client()
        first = client.submit(SPECS[:2], client="t")
        client.wait_jobs(first["jobs"], timeout=120)
        again = client.submit(SPECS[:2], client="t")
        records = client.wait_jobs(again["jobs"], timeout=60)
        for spec, job_id in zip(SPECS[:2], again["jobs"]):
            assert records[job_id]["source"] == "cache"
            assert _got(records[job_id]) == _expect(clean_serial, spec)


class TestWorkerFaults:
    def test_crash_is_retried_to_a_byte_identical_result(
        self, harness_factory, clean_serial
    ):
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_crash", match="micro:count/*", times=1),
        ])
        harness = harness_factory(fault_plan=plan)
        client = harness.client()
        accepted = client.submit(SPECS, client="t")
        records = client.wait_jobs(accepted["jobs"], timeout=120)
        for spec, job_id in zip(SPECS, accepted["jobs"]):
            assert records[job_id]["state"] == "done"
            assert _got(records[job_id]) == _expect(clean_serial, spec)

    def test_hang_is_killed_at_deadline_and_retried(
        self, harness_factory, clean_serial
    ):
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_hang", match="micro:sentinel/*", times=1, seconds=300.0),
        ])
        config = SupervisorConfig(**{**FAST, "timeout": 3.0})
        harness = harness_factory(fault_plan=plan, config=config)
        client = harness.client()
        accepted = client.submit([SPECS[1]], client="t")
        records = client.wait_jobs(accepted["jobs"], timeout=120)
        (record,) = records.values()
        assert record["state"] == "done"
        assert record["attempts"] == 2
        assert _got(record) == _expect(clean_serial, SPECS[1])

    def test_exhausted_retries_fail_with_the_worker_diagnosis(self, harness_factory):
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_crash", match="micro:count/*", times=0),
        ])
        harness = harness_factory(fault_plan=plan)
        client = harness.client()
        accepted = client.submit([SPECS[0], SPECS[1]], client="t")
        records = client.wait_jobs(accepted["jobs"], timeout=120)
        failed = records[accepted["jobs"][0]]
        assert failed["state"] == "failed"
        assert failed["error"]["attempts"] == 2  # 1 + retries
        # the child's traceback rode back through the isolation pipe
        assert "InjectedFaultError" in failed["error"]["cause"]
        assert "[traceback:" in failed["error"]["cause"]
        # the healthy cell in the same batch is untouched
        assert records[accepted["jobs"][1]]["state"] == "done"


class TestCircuitBreaker:
    def test_chronic_cell_is_quarantined_and_reported(self, harness_factory):
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_exit", match="micro:count/*", times=0, exit_code=9),
        ])
        config = SupervisorConfig(
            **{**FAST, "retries": 5, "quarantine_threshold": 2},
        )
        harness = harness_factory(fault_plan=plan, config=config)
        client = harness.client()
        accepted = client.submit([SPECS[0]], client="t")
        records = client.wait_jobs(accepted["jobs"], timeout=120)
        (record,) = records.values()
        # the breaker tripped before the 6 configured attempts burned out
        assert record["state"] == "given_up"
        assert "quarantined" in record["error"]["cause"]
        health = client.healthz()
        assert health["quarantined"] == {"micro:count/neon_dsa": 2}
        assert health["degradation"]["quarantined_cells"] == 1

        # jobs for the quarantined cell are refused instantly, without
        # spawning a worker; other cells keep computing
        followup = client.submit([SPECS[0], SPECS[1]], client="t")
        records = client.wait_jobs(followup["jobs"], timeout=120)
        assert records[followup["jobs"][0]]["state"] == "given_up"
        assert records[followup["jobs"][0]]["attempts"] == 0
        assert records[followup["jobs"][1]]["state"] == "done"

    def test_a_success_resets_the_death_streak(self, harness_factory):
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_crash", match="micro:count/*", times=1),
        ])
        config = SupervisorConfig(**{**FAST, "quarantine_threshold": 2})
        harness = harness_factory(fault_plan=plan, config=config)
        client = harness.client()
        accepted = client.submit([SPECS[0]], client="t")
        records = client.wait_jobs(accepted["jobs"], timeout=120)
        (record,) = records.values()
        assert record["state"] == "done"
        assert harness.client().healthz()["quarantined"] == {}


class TestJournalConsistency:
    def test_every_transition_is_journaled_exactly_once(self, harness):
        client = harness.client()
        accepted = client.submit(SPECS, client="t")
        client.wait_jobs(accepted["jobs"], timeout=120)
        states: dict[str, list[str]] = {}
        with open(harness.journal_path, encoding="utf-8") as fh:
            for line in fh:
                record = json.loads(line)
                if record["op"] == "state":
                    states.setdefault(record["job"], []).append(record["state"])
        terminal = {JobState.DONE.value, JobState.FAILED.value, JobState.GIVEN_UP.value}
        for job_id in accepted["jobs"]:
            finals = [s for s in states[job_id] if s in terminal]
            assert finals == ["done"], (job_id, states[job_id])
