"""Write-ahead journal semantics: durable, torn-tolerant, replayable.

The journal is the service's only crash-safety mechanism, so these tests
pin its contract directly: every acknowledged transition survives replay,
damage never cascades past the damaged line, terminal states are forever,
and a job caught mid-run is re-queued exactly once.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.systems.service import JobJournal, JobState, JobStore

SPEC = {"workload": "micro:count", "system": "neon_dsa",
        "dsa_stage": "full", "scale": "test", "seed": None}


def _journal(tmp_path) -> JobJournal:
    return JobJournal(tmp_path / "journal.jsonl")


def _submit_one(tmp_path):
    journal = _journal(tmp_path)
    store = JobStore(journal)
    store.recover()
    (job,) = store.submit([SPEC], client="t")
    return journal, store, job


class TestRoundTrip:
    def test_submit_and_transitions_survive_replay(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        store.mark_running(job, attempt=1)
        store.mark_done(job, {"cycles": 42}, source="computed")
        journal.close()

        summary = _journal(tmp_path).replay()
        replayed = summary.jobs[job.job_id]
        assert replayed.state is JobState.DONE
        assert replayed.result == {"cycles": 42}
        assert replayed.source == "computed"
        assert replayed.attempts == 1
        assert summary.order == [job.job_id]
        assert summary.torn_lines == 0
        assert summary.recovered == []

    def test_empty_or_missing_journal_is_a_clean_start(self, tmp_path):
        summary = _journal(tmp_path).replay()
        assert summary.jobs == {} and summary.torn_lines == 0

    def test_submission_requires_specs(self, tmp_path):
        journal, store, _ = _submit_one(tmp_path)
        with pytest.raises(ConfigError):
            store.submit([], client="t")


class TestRecovery:
    def test_running_job_is_requeued_and_counted(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        store.mark_running(job, attempt=1)
        journal.close()  # SIGKILL: the done line never happened

        summary = _journal(tmp_path).replay()
        replayed = summary.jobs[job.job_id]
        assert replayed.state is JobState.QUEUED
        assert replayed.recovered == 1
        assert replayed.attempts == 1  # the interrupted attempt still counts
        assert summary.recovered == [job.job_id]

    def test_store_recover_journals_the_requeue_durably(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        store.mark_running(job, attempt=1)
        journal.close()

        second = JobStore(_journal(tmp_path))
        recovered = second.recover()
        assert [j.job_id for j in recovered] == [job.job_id]
        assert second.counters["jobs_recovered"] == 1
        # a crash *right after* recovery must not double-count: the explicit
        # queued line wins over the stale running line on the next replay
        third = JobStore(_journal(tmp_path))
        assert third.recover() == []
        assert third.jobs[job.job_id].state is JobState.QUEUED

    def test_ids_after_recovery_do_not_collide(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        journal.close()
        second = JobStore(_journal(tmp_path))
        second.recover()
        (fresh,) = second.submit([SPEC], client="t")
        assert fresh.job_id != job.job_id


class TestDamage:
    def test_torn_trailing_line_is_skipped_not_fatal(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        store.mark_running(job, attempt=1)
        store.mark_done(job, {"cycles": 1}, source="computed")
        journal.close()
        path = tmp_path / "journal.jsonl"
        # tear the final (done) line mid-write, the way a crash would
        path.write_bytes(path.read_bytes()[:-15])

        summary = _journal(tmp_path).replay()
        assert summary.torn_lines == 1
        replayed = summary.jobs[job.job_id]
        # the done never durably happened → the job goes back to the queue
        assert replayed.state is JobState.QUEUED
        assert replayed.recovered == 1

    def test_damage_does_not_cascade_to_earlier_records(self, tmp_path):
        journal = _journal(tmp_path)
        store = JobStore(journal)
        store.recover()
        first, second = store.submit([SPEC, SPEC], client="t")
        store.mark_running(first, attempt=1)
        store.mark_done(first, {"cycles": 7}, source="computed")
        journal.close()
        path = tmp_path / "journal.jsonl"
        with open(path, "ab") as fh:
            fh.write(b'{"op": "state", "job"')  # torn, no newline

        summary = _journal(tmp_path).replay()
        assert summary.torn_lines == 1
        assert summary.jobs[first.job_id].state is JobState.DONE
        assert summary.jobs[first.job_id].result == {"cycles": 7}
        assert summary.jobs[second.job_id].state is JobState.QUEUED

    def test_append_after_a_torn_tail_starts_a_fresh_line(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        journal.close()
        path = tmp_path / "journal.jsonl"
        with open(path, "ab") as fh:
            fh.write(b'{"op": "state"')  # torn final line, no newline
        # the next writer must not weld its record onto the damage
        second = JobStore(_journal(tmp_path))
        second.recover()
        second.submit([SPEC], client="t")
        summary = _journal(tmp_path).replay()
        assert len(summary.order) == 2
        assert summary.torn_lines == 1

    def test_done_without_result_payload_is_requeued(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        journal.log_state(job.job_id, JobState.DONE)  # payload lost
        journal.close()
        summary = _journal(tmp_path).replay()
        assert summary.jobs[job.job_id].state is JobState.QUEUED
        assert summary.torn_lines == 1

    def test_orphan_state_line_and_junk_are_counted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        lines = [
            json.dumps({"op": "state", "job": "j-ghost", "state": "done"}),
            "not json at all",
            json.dumps(["not", "a", "dict"]),
            json.dumps({"op": "wat", "job": "j-ghost"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        summary = JobJournal(path).replay()
        assert summary.jobs == {}
        assert summary.torn_lines == 4


class TestTerminalForever:
    def test_late_lines_cannot_resurrect_a_done_job(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        store.mark_running(job, attempt=1)
        store.mark_done(job, {"cycles": 9}, source="computed")
        # a buggy writer (or replayed duplicate) appends a stale transition
        journal.log_state(job.job_id, JobState.RUNNING, attempt=2)
        journal.log_state(job.job_id, JobState.FAILED, error={"kind": "x", "cause": "y"})
        journal.close()

        summary = _journal(tmp_path).replay()
        replayed = summary.jobs[job.job_id]
        assert replayed.state is JobState.DONE
        assert replayed.result == {"cycles": 9}
        assert replayed.error is None

    def test_duplicate_submits_are_idempotent(self, tmp_path):
        journal, store, job = _submit_one(tmp_path)
        journal.log_submit(job)  # replayed duplicate
        journal.close()
        summary = _journal(tmp_path).replay()
        assert summary.order == [job.job_id]
