"""Result-cache integrity: checksums, quarantine, LRU budget, warm index.

The disk cache sits on the service's hot path, so damage must always read
as a miss (recompute), never as a wrong answer — and the evidence of the
damage must survive for inspection instead of being silently deleted.
"""

import json

from repro.systems.result_cache import (
    CACHE_VERSION,
    INTEGRITY_FIELD,
    ResultDiskCache,
    payload_checksum,
)

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62


def _cache(tmp_path, **kwargs) -> ResultDiskCache:
    return ResultDiskCache(tmp_path / "cache", **kwargs)


class TestChecksum:
    def test_round_trip_embeds_version_and_checksum(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 5}})
        loaded = cache.load(KEY_A)
        assert loaded["result"] == {"cycles": 5}
        assert loaded["cache_version"] == CACHE_VERSION
        assert loaded[INTEGRITY_FIELD] == payload_checksum(loaded)
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_bitflip_is_quarantined_not_served(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 5}})
        path = cache.path_for(KEY_A)
        payload = json.loads(path.read_text())
        payload["result"]["cycles"] = 999_999  # silent bit-rot, valid JSON
        path.write_text(json.dumps(payload))

        assert cache.load(KEY_A) is None
        assert cache.stats.corrupt_quarantined == 1
        assert not path.exists()
        assert list(cache.corrupt_dir.iterdir())  # the evidence is kept

    def test_truncated_entry_is_quarantined(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 5}})
        path = cache.path_for(KEY_A)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.load(KEY_A) is None
        assert cache.stats.corrupt_quarantined == 1
        assert len(list(cache.corrupt_dir.iterdir())) == 1

    def test_repeated_quarantine_keeps_every_specimen(self, tmp_path):
        cache = _cache(tmp_path)
        for _ in range(2):
            cache.store(KEY_A, {"result": {"cycles": 5}})
            cache.path_for(KEY_A).write_text("garbage")
            assert cache.load(KEY_A) is None
        assert cache.stats.corrupt_quarantined == 2
        assert len(list(cache.corrupt_dir.iterdir())) == 2  # suffixed, not clobbered

    def test_version_mismatch_is_dropped_as_stale_not_quarantined(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 5}})
        path = cache.path_for(KEY_A)
        payload = json.loads(path.read_text())
        payload["cache_version"] = CACHE_VERSION - 1
        path.write_text(json.dumps(payload))

        assert cache.load(KEY_A) is None
        assert cache.stats.stale_dropped == 1
        assert cache.stats.corrupt_quarantined == 0
        assert not path.exists()
        assert not cache.corrupt_dir.exists()

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = _cache(tmp_path, enabled=False)
        cache.store(KEY_A, {"result": {}})
        assert cache.load(KEY_A) is None
        assert not (tmp_path / "cache").exists()


class TestWarmIndex:
    def test_index_counts_entries_and_bytes(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 1}})
        cache.store(KEY_B, {"result": {"cycles": 2}})
        fresh = _cache(tmp_path)
        assert fresh.warm_index() == 2
        assert fresh.total_bytes() == sum(
            p.stat().st_size for p in (fresh.path_for(KEY_A), fresh.path_for(KEY_B))
        )

    def test_index_ignores_the_quarantine_area(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 1}})
        cache.path_for(KEY_A).write_text("garbage")
        cache.load(KEY_A)  # quarantines
        fresh = _cache(tmp_path)
        assert fresh.warm_index() == 0


class TestLRUBudget:
    def test_oldest_entry_is_evicted_over_budget(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 1}})
        entry_size = cache.path_for(KEY_A).stat().st_size
        cache.max_bytes = entry_size * 2  # room for two entries, not three
        cache.warm_index()

        cache.store(KEY_B, {"result": {"cycles": 2}})
        cache.store(KEY_C, {"result": {"cycles": 3}})
        assert cache.stats.evicted == 1
        assert cache.load(KEY_A) is None          # the LRU victim
        assert cache.load(KEY_B) is not None
        assert cache.load(KEY_C) is not None
        assert cache.total_bytes() <= cache.max_bytes

    def test_recently_loaded_entry_is_protected(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 1}})
        entry_size = cache.path_for(KEY_A).stat().st_size
        cache.max_bytes = entry_size * 2
        cache.warm_index()
        cache.store(KEY_B, {"result": {"cycles": 2}})

        assert cache.load(KEY_A) is not None  # touch: A is now the MRU entry
        cache.store(KEY_C, {"result": {"cycles": 3}})
        assert cache.load(KEY_A) is not None
        assert cache.load(KEY_B) is None      # B became the LRU victim
        assert cache.stats.evicted == 1

    def test_just_stored_entry_is_never_its_own_victim(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 1}})
        cache.max_bytes = 1  # nothing fits, but the newest entry must survive
        cache.warm_index()
        cache.store(KEY_B, {"result": {"cycles": 2}})
        assert cache.load(KEY_B) is not None
        assert cache.load(KEY_A) is None


class TestCrashHygiene:
    def test_prune_tmp_removes_orphans_and_spares_entries(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 1}})
        orphan = cache.path_for(KEY_A).parent / "deadbeef.tmp"
        orphan.write_text("half-written")
        assert cache.prune_tmp() == 1
        assert not orphan.exists()
        assert cache.load(KEY_A) is not None

    def test_clear_sweeps_entries_and_quarantine(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store(KEY_A, {"result": {"cycles": 1}})
        cache.store(KEY_B, {"result": {"cycles": 2}})
        cache.path_for(KEY_A).write_text("garbage")
        cache.load(KEY_A)  # → corrupt/
        assert cache.clear() == 2  # the survivor + the quarantined specimen
        assert cache.load(KEY_B) is None
