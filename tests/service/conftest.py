"""Shared fixtures for the campaign-service chaos suite.

:class:`ServiceHarness` boots the whole service stack — journal, job
store, supervisor, HTTP server — inside a background thread running its
own event loop, so synchronous tests can drive it through the blocking
:class:`~repro.systems.service.ServiceClient` exactly the way ``repro
submit`` does.  Harnesses are cheap to stop and reboot on the same
journal, which is how the in-process crash/recovery scenarios simulate a
service restart.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from pathlib import Path

import pytest

from repro.observe import Observer
from repro.systems.service import (
    AdmissionConfig,
    CampaignService,
    JobJournal,
    JobStore,
    ServiceClient,
    Supervisor,
    SupervisorConfig,
)

#: a cheap four-cell matrix (microkernels simulate in milliseconds)
SPECS = [
    {"workload": "micro:count", "system": "neon_dsa"},
    {"workload": "micro:sentinel", "system": "arm_original"},
    {"workload": "micro:conditional", "system": "neon_dsa"},
    {"workload": "micro:partial", "system": "neon_autovec"},
]

#: supervisor policy tuned for test speed, not production patience
FAST = dict(jobs=2, timeout=30.0, retries=1, backoff=0.05, jitter=0.0)


class ServiceHarness:
    """One bootable service instance over a journal + cache directory."""

    def __init__(
        self,
        root: Path,
        config: SupervisorConfig | None = None,
        admission: AdmissionConfig | None = None,
        fault_plan=None,
        journal_name: str = "journal.jsonl",
        cache_name: str = "cache",
        cache_max_bytes: int | None = None,
        use_cache: bool = True,
    ):
        self.root = Path(root)
        self.config = config or SupervisorConfig(**FAST)
        self.admission = admission
        self.fault_plan = fault_plan
        self.journal_path = self.root / journal_name
        self.cache_dir = self.root / cache_name
        self.cache_max_bytes = cache_max_bytes
        self.use_cache = use_cache
        self.host = ""
        self.port = 0
        self.recovered = []
        self.store: JobStore | None = None
        self.supervisor: Supervisor | None = None
        self.observer: Observer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "ServiceHarness":
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service harness did not come up")
        if self._error is not None:
            raise RuntimeError(f"service harness failed to boot: {self._error!r}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        journal = JobJournal(self.journal_path)
        store = JobStore(journal)
        self.recovered = store.recover()
        observer = Observer()
        supervisor = Supervisor(
            store,
            self.config,
            cache_dir=self.cache_dir,
            use_cache=self.use_cache,
            cache_max_bytes=self.cache_max_bytes,
            fault_plan=self.fault_plan,
            observer=observer,
        )
        service = CampaignService(
            store, supervisor, admission=self.admission, observer=observer,
        )
        self.store, self.supervisor, self.observer = store, supervisor, observer
        self.host, self.port = await service.start()
        run_task = asyncio.create_task(supervisor.run())
        self._ready.set()
        await self._stop_event.wait()
        await supervisor.drain()
        await service.stop()
        run_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await run_task
        journal.close()

    # ------------------------------------------------------------------
    def client(self, timeout: float = 15.0) -> ServiceClient:
        return ServiceClient(self.host, self.port, timeout=timeout)


@pytest.fixture
def harness_factory(tmp_path):
    """Build (and reliably tear down) ServiceHarness instances."""
    started: list[ServiceHarness] = []

    def make(**kwargs) -> ServiceHarness:
        harness = ServiceHarness(tmp_path, **kwargs).start()
        started.append(harness)
        return harness

    yield make
    for harness in started:
        harness.stop()


@pytest.fixture
def harness(harness_factory):
    """One default-policy service over a fresh journal."""
    return harness_factory()
