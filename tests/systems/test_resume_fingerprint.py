"""Campaign resume across a simulator code change.

``--resume`` reuses disk-cached results — but every cache key embeds
``code_fingerprint()``, so results computed by an *older* simulator must
never satisfy a resumed campaign after the code changed: the stale
entries miss cleanly and the specs recompute.
"""

import json

from repro.faults import FaultPlan, FaultSpec
from repro.systems.campaign import CampaignRunner, RunSpec

SPECS = [
    RunSpec("micro:count", "neon_dsa", "full", "test"),
    RunSpec("micro:sentinel", "arm_original", "full", "test"),
]


def _encode(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def test_resume_with_unchanged_code_reuses_the_cache(tmp_path):
    cache = tmp_path / "cache"
    first = CampaignRunner(jobs=1, cache_dir=cache, resume=True).run(SPECS)
    assert all(m.source == "computed" for m in first.metrics)
    second = CampaignRunner(jobs=1, cache_dir=cache, resume=True).run(SPECS)
    assert all(m.source == "disk-cache" for m in second.metrics)


def test_resume_across_a_code_change_recomputes_stale_entries(tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    first = CampaignRunner(jobs=1, cache_dir=cache, resume=True).run(SPECS)

    # "edit the simulator": every key the first campaign stored under is
    # now unreachable (cache_key reads the fingerprint by name from the
    # campaign module, so patching there covers every key computation)
    monkeypatch.setattr(
        "repro.systems.campaign.code_fingerprint", lambda: "f" * 16,
    )
    resumed = CampaignRunner(jobs=1, cache_dir=cache, resume=True).run(SPECS)
    assert all(m.source == "computed" for m in resumed.metrics), [
        (m.spec["workload"], m.source) for m in resumed.metrics
    ]
    # nothing about the run itself changed, so the recomputed results are
    # byte-identical — only their cache identity moved
    for spec in SPECS:
        assert _encode(resumed.result_for(spec)) == _encode(first.result_for(spec))
    # and the old entries were left alone, not misattributed or deleted
    assert (
        CampaignRunner(jobs=1, cache_dir=cache, resume=True)
        .run(SPECS)
        .metrics[0]
        .source
        == "disk-cache"
    )


def test_resume_under_a_fault_plan_prefers_cache_until_code_changes(
    tmp_path, monkeypatch
):
    """--resume means 'trust completed work': plan-targeted specs are
    served from cache instead of re-faulted — unless the code changed,
    in which case they recompute (and the still-active plan fires)."""
    cache = tmp_path / "cache"
    CampaignRunner(jobs=1, cache_dir=cache).run(SPECS)
    plan = FaultPlan(faults=[
        FaultSpec(kind="worker_crash", match="micro:count/*", times=1),
    ])
    resumed = CampaignRunner(
        jobs=1, cache_dir=cache, fault_plan=plan, resume=True,
        retries=1, backoff=0.05,
    ).run(SPECS)
    assert all(m.source == "disk-cache" for m in resumed.metrics)

    monkeypatch.setattr(
        "repro.systems.campaign.code_fingerprint", lambda: "e" * 16,
    )
    recomputed = CampaignRunner(
        jobs=1, cache_dir=cache, fault_plan=plan, resume=True,
        retries=1, backoff=0.05,
    ).run(SPECS)
    assert recomputed.ok, [f.to_dict() for f in recomputed.failures]
    assert all(m.source == "computed" for m in recomputed.metrics)
