"""Tests for the comparison reports and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.systems import run_all_systems, run_system
from repro.systems.report import ComparisonReport, DSACoverageReport
from repro.workloads import load
from repro.workloads.synthetic import vecsum


@pytest.fixture(scope="module")
def results():
    return run_all_systems(vecsum(n=128))


class TestComparisonReport:
    def test_improvement_relative_to_baseline(self, results):
        report = ComparisonReport("vecsum", results)
        assert report.improvement("arm_original") == 0.0
        assert report.improvement("neon_autovec") > 0

    def test_table_contains_all_systems(self, results):
        text = ComparisonReport("vecsum", results).table()
        for name in results:
            assert name in text

    def test_missing_baseline_raises(self, results):
        partial = {k: v for k, v in results.items() if k != "arm_original"}
        with pytest.raises(KeyError):
            ComparisonReport("vecsum", partial)

    def test_dsa_coverage_report(self, results):
        text = DSACoverageReport(results["neon_dsa"]).table()
        assert "vectorized invocations" in text
        assert "functional verifications" in text

    def test_coverage_report_without_dsa(self, results):
        text = DSACoverageReport(results["arm_original"]).table()
        assert "no DSA" in text


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "rgb_gray", "--system", "neon_dsa"])
        assert args.workload == "rgb_gray"

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "dijkstra" in out

    def test_area_command(self, capsys):
        assert main(["area"]) == 0
        assert "2.18%" in capsys.readouterr().out

    def test_run_command(self, capsys):
        assert main(["run", "rgb_gray", "--system", "neon_dsa", "-v"]) == 0
        out = capsys.readouterr().out
        assert "neon_dsa" in out and "DSA coverage" in out

    def test_asm_command(self, capsys):
        assert main(["asm", "rgb_gray", "--system", "neon_autovec"]) == 0
        out = capsys.readouterr().out
        assert "vld1" in out  # the vectorized loop is in the listing

    def test_experiments_single(self, capsys):
        assert main(["experiments", "--only", "art1_table3", "--paper"]) == 0
        out = capsys.readouterr().out
        assert "10.37%" in out and "paper reference" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "--only", "nope"]) == 2


class TestCLIErrorPaths:
    """Configuration mistakes exit 2 with a one-line error, not a traceback."""

    def test_run_unknown_workload(self, capsys):
        assert main(["run", "not_a_workload"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "valid choices" in err
        assert "Traceback" not in err

    def test_asm_unknown_workload(self, capsys):
        assert main(["asm", "not_a_workload"]) == 2
        err = capsys.readouterr().err
        assert "not_a_workload" in err and "rgb_gray" in err

    def test_campaign_unknown_workload(self, capsys):
        assert main(["campaign", "--workloads", "not_a_workload"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestCampaignCommand:
    def test_campaign_table(self, capsys):
        code = main(["campaign", "--workloads", "rgb_gray", "--systems", "arm_original"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rgb_gray" in out and "arm_original" in out

    def test_campaign_json_schema(self, capsys):
        import json as _json

        code = main(
            ["campaign", "--workloads", "rgb_gray", "--systems", "arm_original", "--json"]
        )
        assert code == 0
        payload = _json.loads(capsys.readouterr().out)
        assert set(payload) == {"campaign", "runs", "results", "failures"}
        (run,) = payload["runs"]
        assert {"spec", "source", "cache_hit", "wall_time_s", "cycles",
                "instructions", "stall_breakdown", "dsa_counters", "fallbacks"} <= set(run)
        assert payload["failures"] == []

    def test_campaign_second_invocation_hits_cache(self, capsys):
        argv = ["campaign", "--workloads", "rgb_gray", "--systems", "arm_original", "--json"]
        import json as _json

        main(argv)
        first = _json.loads(capsys.readouterr().out)
        main(argv)
        second = _json.loads(capsys.readouterr().out)
        assert first["runs"][0]["cache_hit"] is False
        assert second["runs"][0]["cache_hit"] is True
        assert second["results"] == first["results"]


class TestRunSystemContract:
    def test_unknown_system_raises(self):
        from repro.errors import ConfigError
        from repro.systems.setups import lower_for

        with pytest.raises(ConfigError):
            lower_for("hyperthreaded_abacus", vecsum())

    def test_golden_check_catches_corruption(self):
        """A workload whose golden disagrees must fail loudly."""
        import numpy as np

        wl = vecsum(n=32)
        wl.golden = lambda args: {"out": np.zeros(32, np.int32)}  # wrong on purpose
        with pytest.raises(AssertionError):
            run_system("arm_original", wl)

    def test_dsa_stage_selection(self):
        wl = load("bitcount", "test")
        original = run_system("neon_dsa", wl, dsa_stage="original")
        full = run_system("neon_dsa", wl, dsa_stage="full")
        assert original.dsa_stats.iterations_covered == 0
        assert full.dsa_stats.iterations_covered > 0
