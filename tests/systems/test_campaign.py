"""Campaign layer: cache identity, parallel determinism, corruption recovery."""

import json

import pytest

from repro.cpu.config import CPUConfig
from repro.errors import ConfigError
from repro.experiments.common import ResultCache
from repro.systems.campaign import (
    CampaignRunner,
    RunSpec,
    default_matrix,
    execute_spec,
    experiment_matrix,
)
from repro.systems.metrics import RunResult
from repro.systems.result_cache import CACHE_DIR_ENV, ResultDiskCache, default_cache_dir

FAST = RunSpec("rgb_gray", "arm_original")
FAST_DSA = RunSpec("micro:count", "neon_dsa", "full")


def dumps(result: RunResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestRunSpec:
    def test_stage_normalized_away_without_dsa(self):
        spec = RunSpec("matmul", "arm_original", dsa_stage="original")
        assert spec.dsa_stage == "-"
        assert spec == RunSpec("matmul", "arm_original", dsa_stage="full")

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigError, match="unknown system"):
            RunSpec("matmul", "hyperthreaded_abacus")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigError, match="unknown DSA stage"):
            RunSpec("matmul", "neon_dsa", dsa_stage="imaginary")

    def test_dict_round_trip(self):
        spec = RunSpec("bitcount", "neon_dsa", "extended", "bench", seed=42)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_workload_fails_at_execution(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            execute_spec(RunSpec("not_a_benchmark", "arm_original"))

    def test_unknown_microkernel_rejected(self):
        with pytest.raises(ConfigError, match="unknown microkernel"):
            execute_spec(RunSpec("micro:bogus", "neon_dsa"))


class TestRunResultSerialization:
    def test_round_trip_identity(self):
        result = execute_spec(FAST_DSA)
        clone = RunResult.from_dict(json.loads(dumps(result)))
        assert clone == result
        assert dumps(clone) == dumps(result)

    def test_dsa_counters_survive_round_trip(self):
        result = execute_spec(FAST_DSA)
        clone = RunResult.from_dict(json.loads(dumps(result)))
        assert clone.dsa_stats is not None
        assert dict(clone.dsa_stats.vectorized_invocations) == dict(
            result.dsa_stats.vectorized_invocations
        )
        assert clone.dsa_stats.stage_activations["loop_detection"] >= 1


class TestDiskCache:
    def test_miss_then_hit(self, tmp_path):
        first = CampaignRunner(cache_dir=tmp_path).run([FAST])
        assert [m.source for m in first.metrics] == ["computed"]
        second = CampaignRunner(cache_dir=tmp_path).run([FAST])
        assert [m.source for m in second.metrics] == ["disk-cache"]
        assert dumps(second.result_for(FAST)) == dumps(first.result_for(FAST))

    def test_repeated_spec_served_from_memory(self, tmp_path):
        runner = CampaignRunner(cache_dir=tmp_path)
        runner.run([FAST])
        again = runner.run([FAST])
        assert [m.source for m in again.metrics] == ["memory"]

    def test_cpu_config_change_misses(self, tmp_path):
        CampaignRunner(cache_dir=tmp_path).run([FAST])
        narrow = CampaignRunner(cache_dir=tmp_path, cpu_config=CPUConfig(issue_width=1))
        result = narrow.run([FAST])
        assert [m.source for m in result.metrics] == ["computed"]

    def test_seed_change_misses(self, tmp_path):
        CampaignRunner(cache_dir=tmp_path).run([FAST])
        reseeded = CampaignRunner(cache_dir=tmp_path).run(
            [RunSpec("rgb_gray", "arm_original", seed=99)]
        )
        assert [m.source for m in reseeded.metrics] == ["computed"]

    def test_no_cache_never_touches_disk(self, tmp_path):
        runner = CampaignRunner(cache_dir=tmp_path, use_cache=False)
        runner.run([FAST])
        assert not list(tmp_path.rglob("*.json"))

    def test_corrupted_entry_recovers_by_rerunning(self, tmp_path):
        runner = CampaignRunner(cache_dir=tmp_path)
        first = runner.run([FAST])
        key = runner.cache_key(FAST)
        path = runner.disk.path_for(key)
        assert path.exists()
        path.write_text("{ not json at all")
        rerun = CampaignRunner(cache_dir=tmp_path).run([FAST])
        assert [m.source for m in rerun.metrics] == ["computed"]
        assert dumps(rerun.result_for(FAST)) == dumps(first.result_for(FAST))
        # the damaged entry was replaced with a good one
        hits = CampaignRunner(cache_dir=tmp_path).run([FAST])
        assert [m.source for m in hits.metrics] == ["disk-cache"]

    def test_wrong_schema_entry_recovers(self, tmp_path):
        runner = CampaignRunner(cache_dir=tmp_path)
        runner.run([FAST])
        path = runner.disk.path_for(runner.cache_key(FAST))
        path.write_text(json.dumps({"cache_version": 1, "result": {"nonsense": True}}))
        rerun = CampaignRunner(cache_dir=tmp_path).run([FAST])
        assert [m.source for m in rerun.metrics] == ["computed"]

    def test_clear(self, tmp_path):
        CampaignRunner(cache_dir=tmp_path).run([FAST])
        assert ResultDiskCache(tmp_path).clear() == 1
        assert not list(tmp_path.rglob("*.json"))

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestParallelDeterminism:
    def test_parallel_equals_serial_byte_identical(self, tmp_path):
        specs = default_matrix(
            "test", workloads=["rgb_gray", "matmul"], dsa_stages=("original", "full")
        )
        serial = CampaignRunner(jobs=1, cache_dir=tmp_path / "serial").run(specs)
        parallel = CampaignRunner(jobs=2, cache_dir=tmp_path / "parallel").run(specs)
        assert serial.computed == parallel.computed == len(specs)
        for spec in specs:
            assert dumps(serial.result_for(spec)) == dumps(parallel.result_for(spec))

    def test_duplicate_specs_computed_once(self, tmp_path):
        result = CampaignRunner(cache_dir=tmp_path).run([FAST, FAST, FAST])
        assert len(result.metrics) == 1
        assert result.computed == 1


class TestCampaignMetrics:
    def test_metrics_record_shape(self, tmp_path):
        result = CampaignRunner(cache_dir=tmp_path).run([FAST_DSA])
        (m,) = result.metrics
        d = m.to_dict()
        assert d["spec"]["workload"] == "micro:count"
        assert d["cache_hit"] is False and d["source"] == "computed"
        assert d["cycles"] > 0 and d["instructions"] > 0
        assert "memory_stall_cycles" in d["stall_breakdown"]
        assert d["dsa_counters"]["loop_detection"] >= 1

    def test_json_schema(self, tmp_path):
        result = CampaignRunner(cache_dir=tmp_path).run([FAST])
        payload = result.to_json()
        json.dumps(payload)  # must be JSON-clean
        assert payload["campaign"]["total_runs"] == 1
        assert payload["runs"][0]["spec"]["system"] == "arm_original"
        assert payload["results"][0]["cycles"] == result.result_for(FAST).cycles

    def test_progress_hook_called(self, tmp_path):
        calls = []
        runner = CampaignRunner(
            cache_dir=tmp_path, progress=lambda done, total, m: calls.append((done, total))
        )
        runner.run([FAST, FAST_DSA])
        assert calls == [(1, 2), (2, 2)]


class TestExperimentsIntegration:
    def test_result_cache_goes_through_campaign(self, tmp_path):
        cache = ResultCache("test", runner=CampaignRunner(cache_dir=tmp_path))
        result = cache.run("rgb_gray", "neon_dsa", "full")
        assert isinstance(result, RunResult)
        assert cache.improvement("rgb_gray", "neon_dsa") > 0

    def test_experiment_matrix_covers_micro_kernels(self):
        specs = experiment_matrix("test")
        workloads = {s.workload for s in specs}
        assert "micro:count" in workloads and "matmul" in workloads
        # the seven paper workloads on all four systems, DSA in all stages
        assert len([s for s in specs if not s.workload.startswith("micro:")]) == 7 * 6
