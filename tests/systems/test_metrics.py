"""RunMetrics serialization: the JSON record of one observed campaign run."""

import json

import pytest

from repro.observe import Observer
from repro.systems.campaign import CampaignRunner, RunSpec, execute_spec
from repro.systems.metrics import RunMetrics

DSA_SPEC = RunSpec("micro:count", "neon_dsa")
SCALAR_SPEC = RunSpec("micro:count", "arm_original")


def metrics_for(spec: RunSpec, source: str = "computed", profile=None) -> RunMetrics:
    result = execute_spec(spec)
    return RunMetrics.for_run(spec.to_dict(), result, source, 0.25, profile=profile)


class TestForRun:
    def test_dsa_run_carries_counters_and_causes(self):
        m = metrics_for(DSA_SPEC)
        assert m.dsa_counters is not None
        assert m.fallback_causes == {}  # a clean run: the dict exists, empty
        assert m.fallbacks == 0

    def test_scalar_run_has_no_dsa_fields(self):
        m = metrics_for(SCALAR_SPEC)
        assert m.dsa_counters is None
        assert m.fallback_causes is None

    def test_guarded_fallback_causes_recorded(self):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(faults=[FaultSpec(kind="lane", match="micro:count/*")])
        result = execute_spec(DSA_SPEC, guard=True, plan=plan)
        m = RunMetrics.for_run(DSA_SPEC.to_dict(), result, "computed", 0.1)
        assert m.fallbacks >= 1
        assert sum(m.fallback_causes.values()) == m.fallbacks

    def test_cache_hit_derived_from_source(self):
        assert metrics_for(DSA_SPEC, source="computed").cache_hit is False
        assert metrics_for(DSA_SPEC, source="disk-cache").cache_hit is True
        assert metrics_for(DSA_SPEC, source="memory").cache_hit is True


class TestJsonRoundTrip:
    @pytest.mark.parametrize("spec", [DSA_SPEC, SCALAR_SPEC])
    def test_round_trip_identity(self, spec):
        m = metrics_for(spec)
        wire = json.loads(json.dumps(m.to_dict(), sort_keys=True))
        restored = RunMetrics.from_dict(wire)
        assert restored.to_dict() == m.to_dict()
        assert restored.cache_hit == m.cache_hit

    def test_round_trip_with_profile(self):
        obs = Observer()
        result = execute_spec(DSA_SPEC, observer=obs)
        m = RunMetrics.for_run(
            DSA_SPEC.to_dict(), result, "computed", 0.5,
            profile=obs.profile().to_dict(),
        )
        wire = json.loads(json.dumps(m.to_dict(), sort_keys=True))
        restored = RunMetrics.from_dict(wire)
        assert restored.profile == m.profile
        assert restored.profile["events"]["spec_commit"] >= 1
        assert "cpu/core.run" in restored.profile["spans"]

    def test_to_dict_is_json_safe(self):
        json.dumps(metrics_for(DSA_SPEC).to_dict())


class TestCampaignProfiles:
    def test_observed_campaign_attaches_profiles_to_computed_runs_only(self):
        runner = CampaignRunner(observe=True)
        first = runner.run([DSA_SPEC])
        assert first.metrics[0].source == "computed"
        assert first.metrics[0].profile is not None
        assert first.metrics[0].profile["events"]["loop_detected"] >= 1
        second = runner.run([DSA_SPEC])  # memory hit: no simulation happened
        assert second.metrics[0].cache_hit
        assert second.metrics[0].profile is None

    def test_observed_campaign_json_record_round_trips(self):
        runner = CampaignRunner(observe=True, jobs=2, use_cache=False)
        outcome = runner.run([DSA_SPEC, SCALAR_SPEC])
        payload = json.loads(json.dumps(outcome.to_json(), sort_keys=True))
        for run in payload["runs"]:
            restored = RunMetrics.from_dict(run)
            assert restored.to_dict() == run
            if run["spec"]["system"] == "neon_dsa":
                assert restored.profile["events"]["spec_commit"] >= 1

    def test_observation_does_not_change_results(self):
        plain = CampaignRunner(use_cache=False).run_one(DSA_SPEC)
        observed = CampaignRunner(use_cache=False, observe=True).run_one(DSA_SPEC)
        assert plain.to_dict() == observed.to_dict()
