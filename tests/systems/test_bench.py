"""The simulator-throughput harness: repro bench + baseline checking."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.systems.bench import (
    BenchReport,
    BenchRun,
    check_baseline,
    load_baseline,
    run_bench,
)


def tiny_report() -> BenchReport:
    return run_bench(
        workloads=["rgb_gray"], systems=["arm_original"], repeats=1
    )


class TestRunBench:
    def test_measures_throughput(self):
        report = tiny_report()
        assert len(report.runs) == 1
        run = report.runs[0]
        assert run.label == "rgb_gray/arm_original"
        assert run.instructions > 0
        assert run.cycles > 0
        assert run.host_seconds > 0
        assert run.guest_mips > 0
        assert report.aggregate_mips > 0

    def test_json_schema(self):
        payload = tiny_report().to_json()
        assert payload["bench_version"] == 1
        assert set(payload) >= {
            "bench_version", "code_fingerprint", "python", "scale",
            "repeats", "aggregate", "runs",
        }
        agg = payload["aggregate"]
        assert agg["instructions"] > 0 and agg["guest_mips"] > 0
        run = payload["runs"][0]
        assert set(run) >= {
            "label", "workload", "system", "instructions", "cycles",
            "host_seconds", "guest_mips",
        }
        json.dumps(payload)  # must be serializable as-is

    def test_compare_legacy_reports_speedup(self):
        report = run_bench(
            workloads=["rgb_gray"], systems=["arm_original"],
            repeats=1, compare_legacy=True,
        )
        run = report.runs[0]
        assert run.legacy_host_seconds is not None
        assert run.speedup is not None and run.speedup > 0
        assert "speedup" in report.table()

    def test_table_renders(self):
        text = tiny_report().table()
        assert "rgb_gray" in text and "aggregate:" in text

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            run_bench(repeats=0)
        with pytest.raises(ConfigError):
            run_bench(workloads=["rgb_gray"], systems=["no_such_system"])


class TestCheckBaseline:
    def fake_report(self, mips: float) -> BenchReport:
        report = BenchReport(scale="test", repeats=1)
        report.runs.append(BenchRun(
            label="w/s", workload="w", system="s",
            instructions=1_000_000, cycles=10,
            host_seconds=1.0 / mips, guest_mips=mips,
        ))
        return report

    def baseline(self, mips: float) -> dict:
        return self.fake_report(mips).to_json()

    def test_within_tolerance_passes(self):
        assert check_baseline(self.fake_report(0.9), self.baseline(1.0)) == []

    def test_faster_is_never_a_regression(self):
        assert check_baseline(self.fake_report(5.0), self.baseline(1.0)) == []

    def test_aggregate_regression_detected(self):
        problems = check_baseline(self.fake_report(0.5), self.baseline(1.0))
        assert problems and "aggregate" in problems[0]

    def test_per_run_regression_listed(self):
        problems = check_baseline(
            self.fake_report(0.4), self.baseline(1.0), tolerance=0.25
        )
        assert any("w/s" in p for p in problems)

    def test_unknown_labels_ignored(self):
        base = self.baseline(1.0)
        base["runs"][0]["label"] = "other/spec"
        report = self.fake_report(0.9)
        assert check_baseline(report, base) == []

    def test_tolerance_validated(self):
        with pytest.raises(ConfigError):
            check_baseline(self.fake_report(1.0), self.baseline(1.0), tolerance=0.0)
        with pytest.raises(ConfigError):
            check_baseline(self.fake_report(1.0), self.baseline(1.0), tolerance=1.5)


class TestLoadBaseline:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_baseline(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_baseline(str(path))

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ConfigError, match="not a bench report"):
            load_baseline(str(path))


class TestBenchCLI:
    ARGS = ["bench", "--workloads", "rgb_gray", "--systems", "arm_original",
            "--repeats", "1"]

    def test_writes_report_and_passes_own_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(self.ARGS + ["-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["bench_version"] == 1
        # a fresh measurement on the same machine passes its own baseline
        assert main(self.ARGS + ["--check-baseline", str(out)]) == 0

    def test_regression_exits_4(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(self.ARGS + ["-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        payload["aggregate"]["guest_mips"] = payload["aggregate"]["guest_mips"] * 1000
        baseline = tmp_path / "inflated.json"
        baseline.write_text(json.dumps(payload))
        assert main(self.ARGS + ["--check-baseline", str(baseline)]) == 4
        assert "regression" in capsys.readouterr().err

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["workload"] == "rgb_gray"

    def test_missing_baseline_is_config_error(self, capsys):
        assert main(self.ARGS + ["--check-baseline", "/no/such/file.json"]) == 2


class TestReportCLI:
    def test_renders_bench_record(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(TestBenchCLI.ARGS + ["-o", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "rgb_gray" in text and "mips" in text

    def test_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"something": "else"}))
        assert main(["report", str(path)]) == 2

    def test_missing_file(self):
        assert main(["report", "/no/such/record.json"]) == 2
