"""Argument-binding validation in :func:`execute_kernel`.

Bad calls must fail before anything is copied into simulated memory or any
register is set — the validation runs ahead of the binding loop.
"""

import numpy as np
import pytest

from repro.compiler.lowering import lower
from repro.errors import ConfigError
from repro.systems.runner import execute_kernel
from repro.workloads.synthetic import vecsum


@pytest.fixture(scope="module")
def lowered():
    return lower(vecsum(n=16).kernel)


def good_args(n=16):
    return {
        "a": np.arange(n, dtype=np.int32),
        "b": np.arange(n, dtype=np.int32),
        "out": np.zeros(n, np.int32),
    }


class TestArgumentValidation:
    def test_valid_call_runs(self, lowered):
        run = execute_kernel(lowered, good_args())
        assert run.result.halted
        np.testing.assert_array_equal(run.array("out"), np.arange(16) * 2)

    def test_missing_argument_rejected(self, lowered):
        args = good_args()
        del args["b"]
        with pytest.raises(ConfigError, match="missing arguments.*'b'"):
            execute_kernel(lowered, args)

    def test_unknown_argument_rejected(self, lowered):
        args = good_args()
        args["bogus"] = np.zeros(4, np.int32)
        with pytest.raises(ConfigError, match="unknown kernel arguments.*'bogus'"):
            execute_kernel(lowered, args)

    def test_unknown_and_missing_reported_before_binding(self, lowered):
        # both defects at once: the call dies on validation, not mid-binding
        args = good_args()
        del args["out"]
        args["typo_out"] = np.zeros(16, np.int32)
        with pytest.raises(ConfigError):
            execute_kernel(lowered, args)

    def test_scalar_passed_for_array_rejected(self, lowered):
        args = good_args()
        args["a"] = 7
        with pytest.raises(ConfigError, match="expects a numpy array"):
            execute_kernel(lowered, args)

    def test_array_passed_for_scalar_rejected(self):
        from repro.workloads import load

        wl = load("dijkstra", "test")
        lowered = lower(wl.kernel)
        args = wl.fresh_args()
        args["n"] = np.zeros(3, np.int32)
        with pytest.raises(ConfigError, match="expects an int"):
            execute_kernel(lowered, args)

    def test_validation_precedes_state_mutation(self, lowered, monkeypatch):
        """No allocator is even constructed when the argument set is bad."""
        import repro.systems.runner as runner_mod

        def boom(*a, **k):
            raise AssertionError("Allocator constructed before validation")

        monkeypatch.setattr(runner_mod, "Allocator", boom)
        args = good_args()
        args["bogus"] = 1
        with pytest.raises(ConfigError):
            execute_kernel(lowered, args)
