"""Unit and property tests for the LRU cache and the two-level hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memory import Cache, CacheConfig, HierarchyConfig, MemoryHierarchy


def small_cache(assoc=2, sets=4, line=16):
    return Cache(CacheConfig("test", line * assoc * sets, line_bytes=line, associativity=assoc))


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig("L1", 64 * 1024, line_bytes=64, associativity=4)
        assert cfg.num_sets == 256

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, line_bytes=64, associativity=4)
        with pytest.raises(ConfigError):
            CacheConfig("bad", 0)
        with pytest.raises(ConfigError):
            CacheConfig("bad", 96 * 2 * 4, line_bytes=96, associativity=4)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0x100, False)
        assert c.access(0x100, False)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_same_line_hits(self):
        c = small_cache(line=16)
        c.access(0x100, False)
        assert c.access(0x10F, False)  # same 16-byte line
        assert not c.access(0x110, False)  # next line

    def test_lru_eviction_order(self):
        c = small_cache(assoc=2, sets=1, line=16)
        c.access(0x00, False)   # A
        c.access(0x10, False)   # B  (set full)
        c.access(0x00, False)   # touch A -> B is now LRU
        c.access(0x20, False)   # C evicts B
        assert c.access(0x00, False)       # A still resident
        assert not c.access(0x10, False)   # B was evicted

    def test_dirty_eviction_counts_writeback(self):
        c = small_cache(assoc=1, sets=1, line=16)
        c.access(0x00, True)    # dirty line
        c.access(0x10, False)   # evicts dirty -> writeback
        assert c.stats.writebacks == 1
        c.access(0x20, False)   # evicts clean -> no writeback
        assert c.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        c = small_cache(assoc=1, sets=1, line=16)
        c.access(0x00, False)
        c.access(0x00, True)   # write hit dirties the line
        c.access(0x10, False)
        assert c.stats.writebacks == 1

    def test_flush(self):
        c = small_cache()
        c.access(0x0, False)
        c.flush()
        assert c.occupancy == 0
        assert not c.access(0x0, False)

    def test_lookup_does_not_disturb(self):
        c = small_cache()
        c.access(0x0, False)
        before = c.stats.accesses
        assert c.lookup(0x0)
        assert not c.lookup(0x4000)
        assert c.stats.accesses == before

    @given(st.lists(st.integers(0, 0x3FF), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_occupancy_bounded_by_capacity(self, addrs):
        c = small_cache(assoc=2, sets=4, line=16)
        for a in addrs:
            c.access(a, False)
        assert c.occupancy <= 8
        assert c.stats.hits + c.stats.misses == c.stats.accesses

    @given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_immediate_revisit_always_hits(self, addrs):
        c = small_cache(assoc=4, sets=8, line=32)
        for a in addrs:
            c.access(a, False)
            assert c.access(a, False)


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = MemoryHierarchy()
        first = h.access(0x1000)
        second = h.access(0x1000)
        assert first > second
        assert second == h.config.l1.hit_latency

    def test_l2_hit_after_l1_eviction(self):
        cfg = HierarchyConfig(
            l1=CacheConfig("L1", 2 * 16, line_bytes=16, associativity=1, hit_latency=2),
            l2=CacheConfig("L2", 64 * 16, line_bytes=16, associativity=4, hit_latency=12),
            dram_latency=80,
        )
        h = MemoryHierarchy(cfg)
        h.access(0x000)
        h.access(0x020)  # maps to the same L1 set (2 sets of 16B), evicts 0x000
        lat = h.access(0x000)
        assert lat == cfg.l1.hit_latency + cfg.l2.hit_latency

    def test_dram_latency_on_cold_miss(self):
        h = MemoryHierarchy()
        lat = h.access(0x8000)
        cfg = h.config
        assert lat == cfg.l1.hit_latency + cfg.l2.hit_latency + cfg.dram_latency
        assert h.dram_accesses == 1

    def test_wide_access_spans_lines(self):
        h = MemoryHierarchy()
        # a 16-byte NEON access crossing a 64B line boundary touches 2 lines
        lat_aligned = h.access(0x0, nbytes=16)
        h2 = MemoryHierarchy()
        lat_crossing = h2.access(0x38, nbytes=16)
        assert h2.l1.stats.accesses == 2
        assert lat_crossing > lat_aligned or h.l1.stats.accesses == 1

    def test_stats_dict_and_reset(self):
        h = MemoryHierarchy()
        h.access(0x0)
        d = h.stats_dict()
        assert d["l1_accesses"] == 1
        h.reset_stats()
        assert h.stats_dict()["l1_accesses"] == 0

    def test_default_matches_paper_table4(self):
        h = MemoryHierarchy()
        assert h.config.l1.size_bytes == 64 * 1024
        assert h.config.l2.size_bytes == 512 * 1024
