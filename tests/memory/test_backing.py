"""Unit tests for the flat backing store and the bump allocator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.isa.dtypes import DType
from repro.memory import Allocator, MainMemory


class TestMainMemory:
    def test_starts_zeroed(self):
        mem = MainMemory(1024)
        assert mem.read(0, 1024) == bytes(1024)

    def test_read_write_roundtrip(self):
        mem = MainMemory(1024)
        mem.write(100, b"\x01\x02\x03")
        assert mem.read(100, 3) == b"\x01\x02\x03"
        assert mem.read(99, 1) == b"\x00"

    def test_out_of_range(self):
        mem = MainMemory(64)
        with pytest.raises(MemoryError_):
            mem.read(60, 8)
        with pytest.raises(MemoryError_):
            mem.write(-1, b"x")

    def test_bad_size(self):
        with pytest.raises(MemoryError_):
            MainMemory(0)

    @pytest.mark.parametrize("dtype", [DType.U8, DType.I8, DType.I16, DType.I32, DType.F32])
    def test_typed_roundtrip(self, dtype):
        mem = MainMemory(256)
        value = 3.5 if dtype.is_float else -5 if dtype.is_signed else 200
        mem.write_value(32, value, dtype)
        assert mem.read_value(32, dtype) == dtype.wrap(value)

    def test_numpy_roundtrip(self):
        mem = MainMemory(1024)
        data = np.arange(10, dtype=np.int32)
        mem.write_array(64, data)
        out = mem.read_array(64, DType.I32, 10)
        np.testing.assert_array_equal(out, data)

    def test_little_endian_layout(self):
        mem = MainMemory(64)
        mem.write_value(0, 0x11223344, DType.I32)
        assert mem.read(0, 4) == b"\x44\x33\x22\x11"

    def test_snapshot_and_clone_are_independent(self):
        mem = MainMemory(64)
        mem.write(0, b"abc")
        snap = mem.snapshot()
        clone = mem.clone()
        mem.write(0, b"xyz")
        assert snap[:3] == b"abc"
        assert clone.read(0, 3) == b"abc"

    @given(st.integers(0, 200), st.binary(min_size=1, max_size=32))
    def test_property_write_read(self, addr, blob):
        mem = MainMemory(256)
        if addr + len(blob) > 256:
            with pytest.raises(MemoryError_):
                mem.write(addr, blob)
        else:
            mem.write(addr, blob)
            assert mem.read(addr, len(blob)) == blob


class TestAllocator:
    def test_alignment(self):
        mem = MainMemory(1 << 20)
        alloc = Allocator(mem, start=0x100, alignment=16)
        a = alloc.alloc(5)
        b = alloc.alloc(5)
        assert a % 16 == 0 and b % 16 == 0
        assert b >= a + 5

    def test_alloc_array_contents(self):
        mem = MainMemory(1 << 20)
        alloc = Allocator(mem)
        data = np.array([1, 2, 3, 4], dtype=np.int16)
        addr = alloc.alloc_array(data)
        np.testing.assert_array_equal(mem.read_array(addr, DType.I16, 4), data)

    def test_alloc_zeros(self):
        mem = MainMemory(1 << 20)
        alloc = Allocator(mem)
        addr = alloc.alloc_zeros(DType.I32, 8)
        assert mem.read(addr, 32) == bytes(32)

    def test_exhaustion(self):
        mem = MainMemory(1024)
        alloc = Allocator(mem, start=0)
        with pytest.raises(MemoryError_):
            alloc.alloc(2048)

    def test_no_overlap_property(self):
        mem = MainMemory(1 << 16)
        alloc = Allocator(mem, start=0)
        spans = []
        for n in [3, 17, 64, 1, 100]:
            base = alloc.alloc(n)
            spans.append((base, base + n))
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
