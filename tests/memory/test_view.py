"""Zero-copy ``MainMemory.view`` semantics (the NEON load hot path)."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.isa.dtypes import DType
from repro.memory.backing import MainMemory


class TestView:
    def test_reflects_contents(self):
        mem = MainMemory(1024)
        mem.write(0x40, bytes(range(16)))
        view = mem.view(0x40, 16)
        assert view.dtype == np.uint8
        assert list(view) == list(range(16))

    def test_is_zero_copy_alias(self):
        mem = MainMemory(1024)
        view = mem.view(0x10, 4)
        assert view[0] == 0
        mem.write(0x10, b"\xaa\xbb\xcc\xdd")
        # a view aliases live memory: later writes show through
        assert list(view) == [0xAA, 0xBB, 0xCC, 0xDD]

    def test_copy_detaches(self):
        mem = MainMemory(1024)
        mem.write(0x10, b"\x01\x02\x03\x04")
        frozen = mem.view(0x10, 4).copy()
        mem.write(0x10, b"\xff\xff\xff\xff")
        assert list(frozen) == [1, 2, 3, 4]

    def test_read_only(self):
        mem = MainMemory(1024)
        view = mem.view(0, 8)
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 1

    def test_bounds_checked(self):
        mem = MainMemory(64)
        with pytest.raises(MemoryError_):
            mem.view(60, 8)
        with pytest.raises(MemoryError_):
            mem.view(-4, 4)
        # a view of the final bytes is fine
        assert mem.view(56, 8).size == 8

    def test_matches_read(self):
        mem = MainMemory(256)
        mem.write(0, bytes(i & 0xFF for i in range(256)))
        assert mem.view(17, 100).tobytes() == mem.read(17, 100)


class TestReadValueFastPath:
    """read_value now unpacks straight from the backing buffer; it must
    keep the exact wrap/sign semantics of DType.unpack."""

    @pytest.mark.parametrize("dtype", list(DType))
    def test_round_trip_matches_unpack(self, dtype):
        mem = MainMemory(256)
        pattern = bytes((0x80, 0xFF, 0x01, 0x7F, 0x00, 0xC3, 0x55, 0xAA))
        mem.write(32, pattern)
        raw = mem.read(32, dtype.size)
        assert mem.read_value(32, dtype) == dtype.unpack(raw)

    def test_signed_negative(self):
        mem = MainMemory(64)
        mem.write(0, b"\xff")
        assert mem.read_value(0, DType.I8) == -1
        assert mem.read_value(0, DType.U8) == 255

    def test_float(self):
        mem = MainMemory(64)
        mem.write_value(8, 1.5, DType.F32)
        assert mem.read_value(8, DType.F32) == 1.5
