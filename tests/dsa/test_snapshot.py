"""Unit tests for the region snapshot used by functional verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.isa import DType
from repro.memory import MainMemory
from repro.dsa import RegionSnapshot


def make_memory() -> MainMemory:
    mem = MainMemory(1 << 16)
    mem.write_array(0x100, np.arange(64, dtype=np.int32))
    return mem


class TestCapture:
    def test_captured_region_reads_back(self):
        mem = make_memory()
        snap = RegionSnapshot()
        snap.capture(mem, 0x100, 256)
        assert snap.read_value(0x100, DType.I32) == 0
        assert snap.read_value(0x100 + 4 * 10, DType.I32) == 10

    def test_snapshot_is_isolated_from_live_memory(self):
        mem = make_memory()
        snap = RegionSnapshot()
        snap.capture(mem, 0x100, 64)
        mem.write_value(0x100, 999, DType.I32)
        assert snap.read_value(0x100, DType.I32) == 0

    def test_writes_stay_in_snapshot(self):
        mem = make_memory()
        snap = RegionSnapshot()
        snap.capture(mem, 0x100, 64)
        snap.write_value(0x104, -5, DType.I32)
        assert snap.read_value(0x104, DType.I32) == -5
        assert mem.read_value(0x104, DType.I32) == 1

    def test_uncovered_read_raises(self):
        snap = RegionSnapshot()
        snap.capture(make_memory(), 0x100, 16)
        with pytest.raises(MemoryError_):
            snap.read_value(0x200, DType.I32)

    def test_capture_clamps_to_memory_bounds(self):
        mem = MainMemory(128)
        snap = RegionSnapshot()
        snap.capture(mem, 100, 1000)  # clipped at 128
        assert snap.covers(120, 8)
        assert not snap.covers(128, 1)

    def test_negative_start_clamped(self):
        mem = make_memory()
        snap = RegionSnapshot()
        snap.capture(mem, -16, 64)
        assert snap.covers(0, 16)

    def test_empty_capture_noop(self):
        snap = RegionSnapshot()
        snap.capture(make_memory(), 0x100, 0)
        assert not snap.covers(0x100, 1)


class TestBlockReads:
    def test_read_block_matches_elementwise(self):
        mem = make_memory()
        snap = RegionSnapshot()
        snap.capture(mem, 0x100, 256)
        block = snap.read_block(0x100, 16, DType.I32)
        np.testing.assert_array_equal(block, np.arange(16))

    def test_read_block_out_of_region(self):
        snap = RegionSnapshot()
        snap.capture(make_memory(), 0x100, 16)
        with pytest.raises(MemoryError_):
            snap.read_block(0x100, 100, DType.I32)

    @given(st.integers(0, 48), st.integers(1, 16))
    @settings(max_examples=50)
    def test_property_block_equals_scalar_reads(self, offset, count):
        mem = make_memory()
        snap = RegionSnapshot()
        snap.capture(mem, 0x100, 256)
        addr = 0x100 + 4 * offset
        block = snap.read_block(addr, count, DType.I32)
        for k in range(count):
            assert block[k] == snap.read_value(addr + 4 * k, DType.I32)


class TestMultipleRegions:
    def test_disjoint_regions(self):
        mem = make_memory()
        mem.write_array(0x1000, np.full(8, 7, np.int16))
        snap = RegionSnapshot()
        snap.capture(mem, 0x100, 32)
        snap.capture(mem, 0x1000, 16)
        assert snap.read_value(0x100, DType.I32) == 0
        assert snap.read_value(0x1000, DType.I16) == 7

    def test_overlapping_regions_consistent(self):
        mem = make_memory()
        snap = RegionSnapshot()
        snap.capture(mem, 0x100, 64)
        snap.capture(mem, 0x120, 64)  # overlaps the first
        # both copies hold the same pre-state, reads are well-defined
        assert snap.read_value(0x120, DType.I32) == 8
