"""Unit tests for template construction, burst emission, and numpy eval.

The windows are produced by running small assembly loops on the core and
capturing the retire records — the same inputs the DSA sees.
"""

import numpy as np
import pytest

from repro.isa import DType, assemble
from repro.memory import Allocator, MainMemory
from repro.cpu import Core, TraceBuffer
from repro.dsa import MemStream, TemplateReject, build_template
from repro.dsa.snapshot import RegionSnapshot


def window_and_streams(source, setup, iterations=(2, 3)):
    """Run a loop and return (iteration-2 window, streams built from both)."""
    program = assemble(source)
    memory = MainMemory(1 << 20)
    alloc = Allocator(memory)
    regs = setup(memory, alloc)
    core = Core(program, memory)
    for idx, val in regs.items():
        core.set_reg(idx, val)
    buf = TraceBuffer()
    core.retire_hooks.append(buf)
    core.run()

    # split records into iterations at the backward branch
    loop_pc = program.addr_of("loop")
    iters: list[list] = [[]]
    for rec in buf.records:
        if rec.pc < loop_pc:
            continue
        iters[-1].append(rec)
        if rec.is_backward_branch:
            iters.append([])
    streams: dict[int, MemStream] = {}
    for it_no in iterations:
        for rec in iters[it_no - 1]:
            if rec.accesses:
                access = rec.accesses[0]
                s = streams.setdefault(
                    rec.pc,
                    MemStream(pc=rec.pc, is_write=access.is_write, dtype=rec.instr.dtype),
                )
                s.add_sample(it_no, access.addr)
    return iters[iterations[0] - 1], streams, memory, core


VECSUM = """
    mov r3, #0
loop:
    ldr r4, [r0, r3, lsl #2]
    ldr r5, [r1, r3, lsl #2]
    add r4, r4, r5
    str r4, [r2, r3, lsl #2]
    add r3, r3, #1
    cmp r3, #16
    blt loop
    halt
"""


def vecsum_setup(memory, alloc):
    a = alloc.alloc_array(np.arange(16, dtype=np.int32))
    b = alloc.alloc_array(np.arange(16, dtype=np.int32) * 2)
    out = alloc.alloc_zeros(DType.I32, 16)
    return {0: a, 1: b, 2: out}


class TestBuildTemplate:
    def test_vecsum_shape(self):
        window, streams, _, _ = window_and_streams(VECSUM, vecsum_setup)
        t = build_template(window, streams)
        assert t.dtype is DType.I32
        assert len(t.load_pcs) == 2
        assert len(t.stores) == 1
        assert t.op_count == 1  # just the add; index arithmetic dropped

    def test_loop_control_not_in_dataflow(self):
        window, streams, _, _ = window_and_streams(VECSUM, vecsum_setup)
        t = build_template(window, streams)
        # the induction add (add r3, r3, #1) must not appear as a live op
        live_ops = [n for n in t.nodes if n.kind == "op"]
        assert len(live_ops) >= 1
        assert t.op_count == 1

    def test_invariant_scalar_becomes_broadcast(self):
        src = """
            mov r3, #0
        loop:
            ldr r4, [r0, r3, lsl #2]
            mul r4, r4, r6
            str r4, [r2, r3, lsl #2]
            add r3, r3, #1
            cmp r3, #16
            blt loop
            halt
        """

        def setup(memory, alloc):
            a = alloc.alloc_array(np.arange(16, dtype=np.int32))
            out = alloc.alloc_zeros(DType.I32, 16)
            return {0: a, 2: out, 6: 7}

        window, streams, _, _ = window_and_streams(src, setup)
        t = build_template(window, streams)
        assert 6 in t.invariant_regs

    def test_reduction_rejected(self):
        src = """
            mov r3, #0
            mov r5, #0
        loop:
            ldr r4, [r0, r3, lsl #2]
            add r5, r5, r4
            add r3, r3, #1
            cmp r3, #16
            blt loop
            str r5, [r2]
            halt
        """

        def setup(memory, alloc):
            a = alloc.alloc_array(np.arange(16, dtype=np.int32))
            out = alloc.alloc_zeros(DType.I32, 1)
            return {0: a, 2: out}

        window, streams, _, _ = window_and_streams(src, setup)
        with pytest.raises(TemplateReject, match="no store"):
            build_template(window, streams)

    def test_carried_scalar_feeding_store_rejected(self):
        src = """
            mov r3, #0
            mov r5, #0
        loop:
            add r5, r5, #1
            str r5, [r2, r3, lsl #2]
            add r3, r3, #1
            cmp r3, #16
            blt loop
            halt
        """

        def setup(memory, alloc):
            out = alloc.alloc_zeros(DType.I32, 16)
            return {2: out}

        window, streams, _, _ = window_and_streams(src, setup)
        with pytest.raises(TemplateReject, match="carry-around"):
            build_template(window, streams)

    def test_division_rejected(self):
        src = """
            mov r3, #0
        loop:
            ldr r4, [r0, r3, lsl #2]
            sdiv r4, r4, r6
            str r4, [r2, r3, lsl #2]
            add r3, r3, #1
            cmp r3, #16
            blt loop
            halt
        """

        def setup(memory, alloc):
            a = alloc.alloc_array(np.arange(16, dtype=np.int32))
            out = alloc.alloc_zeros(DType.I32, 16)
            return {0: a, 2: out, 6: 2}

        window, streams, _, _ = window_and_streams(src, setup)
        with pytest.raises(TemplateReject, match="unvectorizable"):
            build_template(window, streams)

    def test_strided_access_rejected(self):
        src = """
            mov r3, #0
        loop:
            ldr r4, [r0, r3, lsl #2]
            str r4, [r2, r3, lsl #2]
            add r3, r3, #2
            cmp r3, #32
            blt loop
            halt
        """

        def setup(memory, alloc):
            a = alloc.alloc_array(np.arange(32, dtype=np.int32))
            out = alloc.alloc_zeros(DType.I32, 32)
            return {0: a, 2: out}

        window, streams, _, _ = window_and_streams(src, setup)
        with pytest.raises(TemplateReject, match="contiguous"):
            build_template(window, streams)

    def test_mixed_widths_rejected(self):
        src = """
            mov r3, #0
        loop:
            ldr r4, [r0, r3, lsl #2]
            strh r4, [r2, r3]
            add r3, r3, #1
            cmp r3, #16
            blt loop
            halt
        """

        def setup(memory, alloc):
            a = alloc.alloc_array(np.arange(16, dtype=np.int32))
            out = alloc.alloc_zeros(DType.I16, 16)
            return {0: a, 2: out}

        window, streams, _, _ = window_and_streams(src, setup)
        # note: strh walks 2-byte elements while ldr walks 4-byte ones; the
        # store stride (2) mismatches its element size check first or the
        # width check fires — either way the template is rejected
        with pytest.raises(TemplateReject):
            build_template(window, streams)


class TestBurstEmission:
    def test_burst_covers_quads(self):
        window, streams, _, _ = window_and_streams(VECSUM, vecsum_setup)
        t = build_template(window, streams)
        start = {pc: s.first_addr for pc, s in t.streams.items()}
        burst = t.emit_burst(start, quads=3)
        loads = [b for b in burst if b[0].is_load]
        stores = [b for b in burst if b[0].is_store]
        assert len(loads) == 6 and len(stores) == 3
        # addresses advance 16 bytes per quad
        assert loads[2][1] == loads[0][1] + 16

    def test_burst_instructions_execute_on_engine(self):
        """The emitted burst is real NEON code: executing it against a
        memory snapshot reproduces the scalar results."""
        from repro.neon import NeonEngine

        window, streams, memory, core = window_and_streams(VECSUM, vecsum_setup)
        t = build_template(window, streams)
        # rebuild pre-loop memory: the source arrays are untouched, out was
        # zeroed, so a fresh memory with the same inputs works
        engine = NeonEngine()
        snapshot = memory.clone()
        # zero the out region (it currently holds the scalar results)
        out_stream = t.streams[t.stores[0].stream_pc]
        for it, addr in out_stream.samples:
            pass
        start = {pc: s.addr_at(2) for pc, s in t.streams.items()}
        for addr in [start[t.stores[0].stream_pc] + i * 4 for i in range(15)]:
            snapshot.write_value(addr, 0, DType.I32)
        burst = t.emit_burst(start, quads=3)
        regs = [0] * 16
        for instr, addr in burst:
            if addr is not None:
                regs[0] = addr
            engine.execute(instr, regs, snapshot)
        got = snapshot.read_array(start[t.stores[0].stream_pc], DType.I32, 12)
        expect = memory.read_array(start[t.stores[0].stream_pc], DType.I32, 12)
        np.testing.assert_array_equal(got, expect)


class TestNumpyEvaluation:
    def test_matches_scalar_execution(self):
        window, streams, memory, core = window_and_streams(VECSUM, vecsum_setup)
        t = build_template(window, streams)
        snap = RegionSnapshot()
        for pc, s in t.streams.items():
            snap.capture(memory, s.first_addr - 16, 16 * 18)
        iters = np.arange(2, 17)
        results = t.evaluate(snap, iters, dict(enumerate(core.regs)))
        store_pc = t.stores[0].stream_pc
        out_stream = t.streams[store_pc]
        for k, it in enumerate(iters):
            addr = out_stream.addr_at(int(it))
            assert memory.read_value(addr, DType.I32) == results[store_pc][k]

    def test_result_registers_counts_stores(self):
        window, streams, _, _ = window_and_streams(VECSUM, vecsum_setup)
        t = build_template(window, streams)
        assert t.result_registers == 1
