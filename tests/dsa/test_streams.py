"""Unit + property tests for memory streams and the CIDP equations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import DType
from repro.dsa import CIDVerdict, MemStream, predict_cid, safe_chunk


def stream(pc, write, samples, dtype=DType.I32):
    s = MemStream(pc=pc, is_write=write, dtype=dtype)
    for it, addr in samples:
        s.add_sample(it, addr)
    return s


class TestMemStream:
    def test_gap_from_two_samples(self):
        s = stream(0x10, False, [(2, 0x100), (3, 0x104)])
        assert s.gap() == 4
        assert s.contiguous()

    def test_gap_normalized_over_iteration_distance(self):
        # samples from iterations 2 and 5 (conditional path): gap is per-iter
        s = stream(0x10, False, [(2, 0x100), (5, 0x10C)])
        assert s.gap() == 4

    def test_irregular_gap_is_none(self):
        s = stream(0x10, False, [(2, 0x100), (3, 0x104), (4, 0x10C)])
        assert s.gap() is None

    def test_non_dividing_gap_is_none(self):
        s = stream(0x10, False, [(2, 0x100), (4, 0x105)])
        assert s.gap() is None

    def test_zero_gap_invariant(self):
        s = stream(0x10, False, [(2, 0x200), (3, 0x200)])
        assert s.invariant() and s.gap() == 0

    def test_addr_at_extrapolates(self):
        s = stream(0x10, False, [(2, 0x100), (3, 0x104)])
        # eq. 4.4: MRead[last] = MRead[2] + MGap * (last - 2)
        assert s.addr_at(10) == 0x100 + 4 * 8

    def test_same_iteration_twice_is_irregular(self):
        s = stream(0x10, False, [(2, 0x100), (2, 0x104)])
        assert s.gap() is None

    def test_byte_stream_contiguous(self):
        s = stream(0x10, False, [(2, 0x50), (3, 0x51)], dtype=DType.U8)
        assert s.contiguous()


class TestCIDP:
    def test_paper_example_figure13(self):
        """The dissertation's Fig. 13: MRead2=0x100, MGap=4, MWrite2=0x108,
        10 iterations -> CID (0x108 inside [0x104, 0x120])."""
        r = stream(0x10, False, [(2, 0x100), (3, 0x104)])
        w = stream(0x20, True, [(2, 0x108), (3, 0x10C)])
        verdict = predict_cid([r, w], last_iteration=10)
        assert verdict.dependent
        assert verdict.culprit == (0x20, 0x10)
        assert verdict.distance == 2  # the write lands 2 iterations ahead

    def test_disjoint_arrays_independent(self):
        r = stream(0x10, False, [(2, 0x100), (3, 0x104)])
        w = stream(0x20, True, [(2, 0x1000), (3, 0x1004)])
        assert not predict_cid([r, w], 100).dependent

    def test_same_index_rmw_is_independent(self):
        # out[i] read and written at the same address each iteration
        r = stream(0x10, False, [(2, 0x100), (3, 0x104)])
        w = stream(0x20, True, [(2, 0x100), (3, 0x104)])
        assert not predict_cid([r, w], 100).dependent

    def test_write_behind_read_is_independent(self):
        # out[i] = out[i+1]: the write trails the reads
        r = stream(0x10, False, [(2, 0x104), (3, 0x108)])
        w = stream(0x20, True, [(2, 0x100), (3, 0x104)])
        assert not predict_cid([r, w], 100).dependent

    def test_write_ahead_is_dependency_with_distance(self):
        # out[i+8] written while out[i] read -> distance 8
        r = stream(0x10, False, [(2, 0x100), (3, 0x104)])
        w = stream(0x20, True, [(2, 0x120), (3, 0x124)])
        verdict = predict_cid([r, w], 1000)
        assert verdict.dependent and verdict.distance == 8

    def test_dependency_beyond_range_ignored(self):
        # the write would only collide far past the loop's last iteration
        r = stream(0x10, False, [(2, 0x100), (3, 0x104)])
        w = stream(0x20, True, [(2, 0x120), (3, 0x124)])
        assert not predict_cid([r, w], last_iteration=5).dependent

    def test_irregular_stream_is_dependent(self):
        r = stream(0x10, False, [(2, 0x100), (3, 0x104), (4, 0x110)])
        w = stream(0x20, True, [(2, 0x200), (3, 0x204)])
        verdict = predict_cid([r, w], 100)
        assert verdict.dependent and verdict.distance == 0

    def test_pinned_read_hit_by_walking_write(self):
        r = stream(0x10, False, [(2, 0x110), (3, 0x110)])  # reads one address
        w = stream(0x20, True, [(2, 0x100), (3, 0x104)])   # walks towards it
        assert predict_cid([r, w], 100).dependent

    def test_pinned_read_never_hit(self):
        r = stream(0x10, False, [(2, 0x7), (3, 0x7)])
        w = stream(0x20, True, [(2, 0x100), (3, 0x104)])
        assert not predict_cid([r, w], 100).dependent

    def test_no_writes_no_dependency(self):
        r = stream(0x10, False, [(2, 0x100), (3, 0x104)])
        assert not predict_cid([r], 100).dependent

    @given(
        st.integers(0, 64),      # write offset in elements
        st.integers(4, 64),      # loop length
    )
    @settings(max_examples=60)
    def test_property_dependency_iff_write_in_future_read_range(self, offset, last):
        r = stream(0x10, False, [(2, 0x1000), (3, 0x1004)])
        w_addr = 0x1000 + 4 * offset
        w = stream(0x20, True, [(2, w_addr), (3, w_addr + 4)])
        verdict = predict_cid([r, w], last)
        # eq. 4.1/4.2: dependency iff the write address falls on a read of
        # iterations 3..last
        expected = 1 <= offset <= (last - 2)
        assert verdict.dependent == expected


class TestSafeChunk:
    def test_independent_loop_needs_no_chunking(self):
        assert safe_chunk(CIDVerdict(False), 4) is None

    def test_distance_below_lanes_not_worth_it(self):
        assert safe_chunk(CIDVerdict(True, distance=3), 4) is None
        assert safe_chunk(CIDVerdict(True, distance=4), 4) is None

    def test_chunk_rounded_to_whole_vectors(self):
        assert safe_chunk(CIDVerdict(True, distance=11), 4) == 8
        assert safe_chunk(CIDVerdict(True, distance=16), 4) == 16

    def test_unknown_distance(self):
        assert safe_chunk(CIDVerdict(True, distance=None), 4) is None
