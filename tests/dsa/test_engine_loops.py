"""DSA integration tests: one scenario per loop type the paper covers.

Every test runs the same scalar binary twice — plain, and with the DSA
attached — and checks that (a) the architectural results are identical,
(b) the DSA classified the loop as the paper's taxonomy says, and (c) the
replaced timing moves in the right direction.  ``verify_functional`` stays
on, so every vectorized region is additionally replayed through the
template evaluator and compared bit-for-bit.
"""

import numpy as np
import pytest

from repro.isa import DType
from repro.compiler import (
    ArrayParam,
    Binary,
    BinOp,
    Call,
    CmpOp,
    Compare,
    Const,
    For,
    Function,
    If,
    Kernel,
    Let,
    Load,
    Return,
    ScalarParam,
    Store,
    Var,
    While,
    lower,
)
from repro.compiler.ir import add, c, mul, shr, sub, v
from repro.dsa import (
    DSAConfig,
    DSAFeatures,
    DynamicSIMDAssembler,
    LoopKind,
)
from repro.systems.runner import execute_kernel


def run_pair(kernel, args_factory, config=None):
    """Run scalar-only and scalar+DSA; return (plain, dsa_run, dsa)."""
    low = lower(kernel)
    plain = execute_kernel(low, args_factory())
    dsa = DynamicSIMDAssembler(config or DSAConfig())
    dsa_run = execute_kernel(low, args_factory(), attach=dsa.attach)
    return plain, dsa_run, dsa


def assert_same_arrays(plain, dsa_run, names):
    for name in names:
        np.testing.assert_array_equal(plain.array(name), dsa_run.array(name), err_msg=name)


# ---------------------------------------------------------------------------
# count loops (paper Section 4.6.1)
# ---------------------------------------------------------------------------
class TestCountLoops:
    def kernel(self, n=120):
        return Kernel(
            "count",
            [ArrayParam("a", DType.I32), ArrayParam("b", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(0), c(n),
                    [Store("out", v("i"), mul(add(Load("a", v("i")), Load("b", v("i"))), c(3)))],
                )
            ],
        )

    def args(self, n=120):
        def factory():
            rng = np.random.default_rng(1)
            return {
                "a": rng.integers(-1000, 1000, n).astype(np.int32),
                "b": rng.integers(-1000, 1000, n).astype(np.int32),
                "out": np.zeros(n, np.int32),
            }

        return factory

    def test_results_identical_and_faster(self):
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args())
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["count"] == 1
        assert dsa_run.cycles < plain.cycles

    def test_covered_iterations_exclude_analysis(self):
        _, _, dsa = run_pair(self.kernel(120), self.args(120))
        # 3 iterations are burned on detection/collection/analysis
        assert dsa.stats.iterations_covered == 117

    @pytest.mark.parametrize("n", [8, 17, 33, 64])
    def test_various_trip_counts(self, n):
        plain, dsa_run, dsa = run_pair(self.kernel(n), self.args(n))
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.verifications >= 1

    def test_too_short_loop_stays_scalar(self):
        plain, dsa_run, dsa = run_pair(self.kernel(5), self.args(5))
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.iterations_covered == 0

    def test_feature_gate_disables_count(self):
        cfg = DSAConfig(features=DSAFeatures(count=False))
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args(), cfg)
        assert dsa.stats.iterations_covered == 0
        assert_same_arrays(plain, dsa_run, ["out"])

    def test_second_invocation_uses_cache(self):
        # the same loop body runs twice (outer repetition through two loops)
        n = 64
        k = Kernel(
            "twice",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For("i", c(0), c(n), [Store("out", v("i"), add(Load("a", v("i")), c(1)))]),
                For("j", c(0), c(n), [Store("out", v("j"), add(Load("out", v("j")), c(1)))]),
            ],
        )

        def factory():
            return {"a": np.arange(n, dtype=np.int32), "out": np.zeros(n, np.int32)}

        plain, dsa_run, dsa = run_pair(k, factory)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["count"] == 2


# ---------------------------------------------------------------------------
# dynamic range loops, type A (paper Section 4.6.6)
# ---------------------------------------------------------------------------
class TestDynamicRangeLoops:
    def kernel(self):
        return Kernel(
            "drla",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32), ScalarParam("n")],
            [For("i", c(0), v("n"), [Store("out", v("i"), sub(Load("a", v("i")), c(7)))])],
        )

    def args(self, n):
        def factory():
            return {"a": np.arange(200, dtype=np.int32), "out": np.zeros(200, np.int32), "n": n}

        return factory

    def test_vectorized_at_runtime(self):
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args(150))
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["dynamic_range"] == 1
        assert dsa_run.cycles < plain.cycles

    def test_feature_gate(self):
        cfg = DSAConfig(features=DSAFeatures.original())
        _, _, dsa = run_pair(self.kernel(), self.args(150), cfg)
        assert dsa.stats.vectorized_invocations["dynamic_range"] == 0

    def test_small_runtime_range_stays_scalar(self):
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args(6))
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.iterations_covered == 0


# ---------------------------------------------------------------------------
# function loops (paper Section 4.6.2)
# ---------------------------------------------------------------------------
class TestFunctionLoops:
    def kernel(self, n=96):
        f = Function("scale_bias", ["x"], [Return(add(mul(v("x"), c(5)), c(3)))])
        return Kernel(
            "funcloop",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [For("i", c(0), c(n), [Store("out", v("i"), Call("scale_bias", (Load("a", v("i")),)))])],
            functions=[f],
        )

    def args(self, n=96):
        def factory():
            return {"a": np.arange(n, dtype=np.int32) - 40, "out": np.zeros(n, np.int32)}

        return factory

    def test_function_loop_vectorized(self):
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args())
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["function"] == 1
        assert dsa_run.cycles < plain.cycles

    def test_feature_gate(self):
        cfg = DSAConfig(features=DSAFeatures(function=False))
        _, _, dsa = run_pair(self.kernel(), self.args(), cfg)
        assert dsa.stats.vectorized_invocations["function"] == 0


# ---------------------------------------------------------------------------
# inner/outer loops (paper Section 4.6.3)
# ---------------------------------------------------------------------------
class TestNestedLoops:
    def kernel(self, rows=6, cols=40):
        return Kernel(
            "nested",
            [ArrayParam("m", DType.I32), ArrayParam("out", DType.I32), ScalarParam("w")],
            [
                For(
                    "y", c(0), c(rows),
                    [
                        For(
                            "x", c(0), c(cols),
                            [
                                Store(
                                    "out",
                                    add(mul(v("y"), v("w")), v("x")),
                                    add(Load("m", add(mul(v("y"), v("w")), v("x"))), v("y")),
                                )
                            ],
                        )
                    ],
                )
            ],
        )

    def args(self, rows=6, cols=40):
        def factory():
            return {
                "m": np.arange(rows * cols, dtype=np.int32),
                "out": np.zeros(rows * cols, np.int32),
                "w": cols,
            }

        return factory

    def test_inner_loop_vectorized_every_outer_iteration(self):
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args())
        assert_same_arrays(plain, dsa_run, ["out"])
        # the inner loop vectorizes on each of the 6 outer iterations
        assert dsa.stats.vectorized_invocations["count"] == 6
        assert dsa_run.cycles < plain.cycles

    def test_outer_loop_marked_nested(self):
        _, _, dsa = run_pair(self.kernel(), self.args())
        assert dsa.stats.verdicts["nested_outer"] == 1


# ---------------------------------------------------------------------------
# conditional loops (paper Section 4.6.4)
# ---------------------------------------------------------------------------
class TestConditionalLoops:
    def kernel(self, n=120, with_else=True):
        else_body = [Store("out", v("i"), sub(Load("a", v("i")), Load("b", v("i"))))] if with_else else []
        return Kernel(
            "cond",
            [ArrayParam("a", DType.I32), ArrayParam("b", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(0), c(n),
                    [
                        If(
                            Compare(Load("a", v("i")), CmpOp.GT, c(0)),
                            [Store("out", v("i"), add(Load("a", v("i")), Load("b", v("i"))))],
                            else_body,
                        )
                    ],
                )
            ],
        )

    def args(self, n=120):
        def factory():
            rng = np.random.default_rng(9)
            return {
                "a": rng.integers(-50, 50, n).astype(np.int32),
                "b": rng.integers(-50, 50, n).astype(np.int32),
                "out": np.zeros(n, np.int32),
            }

        return factory

    def test_if_else_vectorized_with_mapping(self):
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args())
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["conditional"] == 1
        assert dsa.stats.stage_activations["mapping"] >= 1
        assert dsa_run.cycles < plain.cycles

    def test_if_without_else(self):
        plain, dsa_run, dsa = run_pair(self.kernel(with_else=False), self.args())
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["conditional"] == 1

    def test_feature_gate(self):
        cfg = DSAConfig(features=DSAFeatures.original())
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args(), cfg)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["conditional"] == 0

    def test_one_sided_data_never_completes_mapping(self):
        # condition never true: the else path never runs, so its
        # instruction addresses are never covered and mapping cannot finish
        def factory():
            return {
                "a": -np.ones(120, np.int32),
                "b": np.ones(120, np.int32),
                "out": np.zeros(120, np.int32),
            }

        plain, dsa_run, dsa = run_pair(self.kernel(), factory)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["conditional"] == 0

    def test_array_map_pressure_rejects(self):
        cfg = DSAConfig(array_maps=0, spare_neon_regs=1)
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args(), cfg)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["conditional"] == 0


# ---------------------------------------------------------------------------
# sentinel loops (paper Section 4.6.5)
# ---------------------------------------------------------------------------
class TestSentinelLoops:
    def kernel(self):
        # copy until the sentinel (zero) is found
        return Kernel(
            "sentinel",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                Let("i", c(0)),
                While(
                    Compare(Load("a", v("i")), CmpOp.NE, c(0)),
                    [
                        Store("out", v("i"), mul(Load("a", v("i")), c(2))),
                        Let("i", add(v("i"), c(1))),
                    ],
                ),
            ],
        )

    def args(self, valid=40, total=64):
        def factory():
            a = np.arange(1, total + 1, dtype=np.int32)
            a[valid] = 0
            return {"a": a, "out": np.zeros(total, np.int32)}

        return factory

    def test_sentinel_vectorized_speculatively(self):
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args())
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["sentinel"] == 1
        # the first invocation only speculates one vector's worth; coverage
        # (not end-to-end speedup) is the claim here
        assert dsa.stats.iterations_covered > 0

    def test_repeated_sentinel_gets_faster(self):
        """Fig. 23: the speculative range follows the last observed range,
        so repeated executions of the same sentinel loop are covered almost
        entirely and the DSA run wins end to end."""
        k = Kernel(
            "sent_rep",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "r", c(0), c(6),
                    [
                        Let("i", c(0)),
                        While(
                            Compare(Load("a", v("i")), CmpOp.NE, c(0)),
                            [
                                Store("out", v("i"), add(Load("a", v("i")), v("r"))),
                                Let("i", add(v("i"), c(1))),
                            ],
                        ),
                    ],
                )
            ],
        )

        def factory():
            a = np.arange(1, 129, dtype=np.int32)
            a[100] = 0
            return {"a": a, "out": np.zeros(128, np.int32)}

        plain, dsa_run, dsa = run_pair(k, factory)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["sentinel"] >= 2
        assert dsa_run.cycles < plain.cycles

    def test_feature_gate(self):
        from repro.dsa import EXTENDED_DSA_CONFIG

        plain, dsa_run, dsa = run_pair(self.kernel(), self.args(), EXTENDED_DSA_CONFIG)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["sentinel"] == 0

    def test_speculative_range_remembered(self):
        # the same sentinel loop executed twice: the second run speculates
        # with the first run's observed range
        k = Kernel(
            "sent2",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32), ArrayParam("b", DType.I32)],
            [
                Let("i", c(0)),
                While(
                    Compare(Load("a", v("i")), CmpOp.NE, c(0)),
                    [Store("out", v("i"), add(Load("a", v("i")), c(1))), Let("i", add(v("i"), c(1)))],
                ),
                Let("j", c(0)),
                While(
                    Compare(Load("a", v("j")), CmpOp.NE, c(0)),
                    [Store("b", v("j"), add(Load("a", v("j")), c(2))), Let("j", add(v("j"), c(1)))],
                ),
            ],
        )

        def factory():
            a = np.arange(1, 65, dtype=np.int32)
            a[50] = 0
            return {"a": a, "out": np.zeros(64, np.int32), "b": np.zeros(64, np.int32)}

        plain, dsa_run, dsa = run_pair(k, factory)
        assert_same_arrays(plain, dsa_run, ["out", "b"])


# ---------------------------------------------------------------------------
# partial vectorization (paper Section 4.5)
# ---------------------------------------------------------------------------
class TestPartialVectorization:
    def kernel(self, n=96, distance=24):
        # out[i+distance] = a[i] ... reads out[i]: write lands `distance`
        # iterations ahead -> partial chunks of `distance` rounded to lanes
        return Kernel(
            "partial",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(0), c(n),
                    [
                        Store(
                            "out",
                            add(v("i"), c(distance)),
                            add(Load("out", v("i")), Load("a", v("i"))),
                        )
                    ],
                )
            ],
        )

    def args(self, n=96, distance=24):
        def factory():
            return {
                "a": np.arange(n, dtype=np.int32),
                "out": np.arange(n + distance, dtype=np.int32) * 10,
            }

        return factory

    def test_partial_chunks_match_scalar(self):
        plain, dsa_run, dsa = run_pair(self.kernel(), self.args())
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["partial"] == 1

    def test_partial_disabled_stays_scalar(self):
        from repro.dsa import EXTENDED_DSA_CONFIG

        plain, dsa_run, dsa = run_pair(self.kernel(), self.args(), EXTENDED_DSA_CONFIG)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.vectorized_invocations["partial"] == 0
        assert dsa.stats.iterations_covered == 0

    def test_tight_dependency_not_vectorized(self):
        # distance 2 < lanes: no profitable chunk
        plain, dsa_run, dsa = run_pair(self.kernel(distance=2), self.args(distance=2))
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.iterations_covered == 0


# ---------------------------------------------------------------------------
# classic non-vectorizable shapes stay scalar and correct
# ---------------------------------------------------------------------------
class TestNonVectorizable:
    def test_true_recurrence(self):
        # out[i] = out[i-1] + a[i]  (paper Fig. 8b)
        n = 64
        k = Kernel(
            "recur",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(1), c(n),
                    [Store("out", v("i"), add(Load("out", sub(v("i"), c(1))), Load("a", v("i"))))],
                )
            ],
        )

        def factory():
            return {"a": np.ones(n, np.int32), "out": np.zeros(n, np.int32)}

        plain, dsa_run, dsa = run_pair(k, factory)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.iterations_covered == 0

    def test_reduction_not_vectorized(self):
        n = 64
        k = Kernel(
            "dot",
            [ArrayParam("a", DType.I32), ArrayParam("b", DType.I32), ArrayParam("out", DType.I32)],
            [
                Let("s", c(0)),
                For("i", c(0), c(n), [Let("s", add(v("s"), mul(Load("a", v("i")), Load("b", v("i")))))]),
                Store("out", c(0), v("s")),
            ],
        )

        def factory():
            return {
                "a": np.arange(n, dtype=np.int32),
                "b": np.arange(n, dtype=np.int32),
                "out": np.zeros(1, np.int32),
            }

        plain, dsa_run, dsa = run_pair(k, factory)
        assert_same_arrays(plain, dsa_run, ["out"])
        assert dsa.stats.iterations_covered == 0

    def test_no_loop_no_work(self):
        k = Kernel(
            "straight",
            [ArrayParam("out", DType.I32)],
            [Store("out", c(0), c(42))],
        )
        _, _, dsa = run_pair(k, lambda: {"out": np.zeros(1, np.int32)})
        assert dsa.stats.loops_detected == 0
