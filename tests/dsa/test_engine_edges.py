"""DSA edge cases: capacity pressure, mispeculation, cache reuse, stats."""

import numpy as np
import pytest

from repro.isa import DType
from repro.compiler import (
    ArrayParam,
    Binary,
    BinOp,
    CmpOp,
    Compare,
    Const,
    For,
    If,
    Kernel,
    Let,
    Load,
    ScalarParam,
    Store,
    Var,
    lower,
)
from repro.compiler.ir import add, c, mul, v
from repro.dsa import DSAConfig, DSAFeatures, DynamicSIMDAssembler, LoopKind
from repro.systems.runner import execute_kernel


def run_with(kernel, args, config=None):
    dsa = DynamicSIMDAssembler(config or DSAConfig())
    run = execute_kernel(lower(kernel), args, attach=dsa.attach)
    return run, dsa


def vecsum_kernel(n):
    return Kernel(
        "k",
        [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
        [For("i", c(0), c(n), [Store("out", v("i"), add(Load("a", v("i")), c(1)))])],
    )


def vecsum_args(n):
    return {"a": np.arange(n, dtype=np.int32), "out": np.zeros(n, np.int32)}


class TestVerificationCachePressure:
    def test_overflow_rejects_the_loop(self):
        """A body with more static accesses than V-cache entries cannot be
        tracked and must stay scalar (paper: the 1 KB V-cache bounds it)."""
        n = 64
        # 6 distinct access streams per iteration
        body = [
            Store("out", v("i"), add(add(Load("a", v("i")), Load("b", v("i"))),
                                     add(Load("c_", v("i")), Load("d", v("i"))))),
            Store("out2", v("i"), Load("a", v("i"))),
        ]
        kernel = Kernel(
            "wide",
            [
                ArrayParam("a", DType.I32),
                ArrayParam("b", DType.I32),
                ArrayParam("c_", DType.I32),
                ArrayParam("d", DType.I32),
                ArrayParam("out", DType.I32),
                ArrayParam("out2", DType.I32),
            ],
            [For("i", c(0), c(n), body)],
        )
        args = {
            name: np.arange(n, dtype=np.int32)
            for name in ("a", "b", "c_", "d")
        }
        args.update({"out": np.zeros(n, np.int32), "out2": np.zeros(n, np.int32)})

        tiny = DSAConfig(verification_cache_bytes=32, verification_entry_bytes=8)  # 4 pcs
        run, dsa = run_with(kernel, dict(args), tiny)
        assert dsa.stats.iterations_covered == 0
        assert dsa.stats.verdicts["non_vectorizable"] >= 1

        big = DSAConfig()
        run2, dsa2 = run_with(kernel, dict(args), big)
        assert dsa2.stats.iterations_covered > 0


class TestDSACacheEviction:
    def test_tiny_cache_still_correct(self):
        # two loops, one-entry cache: verdicts evict each other
        n = 40
        kernel = Kernel(
            "two",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For("i", c(0), c(n), [Store("out", v("i"), add(Load("a", v("i")), c(1)))]),
                For("j", c(0), c(n), [Store("out", v("j"), mul(Load("out", v("j")), c(2)))]),
            ],
        )
        cfg = DSAConfig(dsa_cache_bytes=64, dsa_cache_entry_bytes=64)
        run, dsa = run_with(kernel, vecsum_args(n), cfg)
        expected = (np.arange(n) + 1) * 2
        np.testing.assert_array_equal(run.array("out"), expected)
        assert dsa.cache.stats.evictions >= 1


class TestMispeculationRecovery:
    def test_address_misprediction_aborts_and_stays_correct(self):
        """A loop whose store address breaks stride mid-run (indirect jump
        in the walk) must be caught by the continuous V-cache check."""
        n = 48
        # out[idx[i]] = a[i]: idx is identity for a while, then jumps —
        # the DSA samples a regular stride, then hits the deviation
        kernel = Kernel(
            "gather",
            [ArrayParam("a", DType.I32), ArrayParam("idx", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(0), c(n),
                    [Let("t", Load("idx", v("i"))), Store("out", Var("t"), Load("a", v("i")))],
                )
            ],
        )
        idx = np.arange(n, dtype=np.int32)
        idx[30:] = idx[30:][::-1]  # stride break far beyond the analysis window
        args = {"a": np.arange(n, dtype=np.int32) * 7, "idx": idx, "out": np.zeros(n, np.int32)}
        run, dsa = run_with(kernel, args)
        expected = np.zeros(n, np.int32)
        expected[idx] = np.arange(n, dtype=np.int32) * 7
        np.testing.assert_array_equal(run.array("out"), expected)
        # either rejected up front (non-affine) or aborted at the deviation —
        # never verified wrong
        assert dsa.stats.verifications == 0 or run is not None


class TestStatsAndConfig:
    def test_verify_off_skips_replay(self):
        cfg = DSAConfig(verify_functional=False)
        run, dsa = run_with(vecsum_kernel(64), vecsum_args(64), cfg)
        assert dsa.stats.verifications == 0
        assert dsa.stats.iterations_covered > 0

    def test_min_vector_iterations_gate(self):
        cfg = DSAConfig(min_vector_iterations=1000)
        run, dsa = run_with(vecsum_kernel(64), vecsum_args(64), cfg)
        assert dsa.stats.iterations_covered == 0

    def test_double_attach_rejected(self):
        from repro.errors import ReproError

        dsa = DynamicSIMDAssembler()
        lowered = lower(vecsum_kernel(16))
        execute_kernel(lowered, vecsum_args(16), attach=dsa.attach)
        with pytest.raises(ReproError):
            execute_kernel(lowered, vecsum_args(16), attach=dsa.attach)

    def test_stage_activation_counters(self):
        _, dsa = run_with(vecsum_kernel(64), vecsum_args(64))
        s = dsa.stats.stage_activations
        assert s["loop_detection"] == 1
        assert s["data_collection"] == 1
        assert s["dependency_analysis"] == 1
        assert s["store_id_execution"] == 1
        assert "mapping" not in s  # count loops skip the conditional stages

    def test_records_observed_counts_everything(self):
        run, dsa = run_with(vecsum_kernel(32), vecsum_args(32))
        assert dsa.stats.records_observed == run.result.instructions


class TestDynamicRangeReverification:
    def test_same_loop_different_ranges(self):
        """A DRL-A re-verifies per invocation: a range that fits one call
        and overflows another must be handled, with correct results both
        times (paper Fig. 24)."""
        kernel = Kernel(
            "drla2",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32), ScalarParam("n1"), ScalarParam("n2")],
            [
                For("i", c(0), v("n1"), [Store("out", v("i"), add(Load("a", v("i")), c(10)))]),
                For("j", c(0), v("n2"), [Store("out", v("j"), add(Load("out", v("j")), c(100)))]),
            ],
        )
        args = {
            "a": np.arange(64, dtype=np.int32),
            "out": np.zeros(64, np.int32),
            "n1": 60,
            "n2": 20,
        }
        run, dsa = run_with(kernel, args)
        expected = np.zeros(64, np.int32)
        expected[:60] = np.arange(60) + 10
        expected[:20] += 100
        np.testing.assert_array_equal(run.array("out"), expected)
        assert dsa.stats.vectorized_invocations["dynamic_range"] == 2


class TestLeftoverPolicy:
    def test_auto_picks_overlap_for_pure_elementwise(self):
        run, dsa = run_with(vecsum_kernel(67), vecsum_args(67))
        assert dsa.stats.leftover_used["overlapping"] == 1

    def test_auto_picks_single_for_rmw(self):
        n = 67
        kernel = Kernel(
            "rmw",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [For("i", c(0), c(n), [Store("out", v("i"), add(Load("out", v("i")), Load("a", v("i"))))])],
        )
        run, dsa = run_with(kernel, vecsum_args(n))
        assert dsa.stats.leftover_used["single_elements"] == 1

    def test_forced_single_elements(self):
        cfg = DSAConfig(leftover_policy="single_elements")
        run, dsa = run_with(vecsum_kernel(67), vecsum_args(67), cfg)
        assert dsa.stats.leftover_used["single_elements"] == 1
        np.testing.assert_array_equal(run.array("out"), np.arange(67) + 1)

    def test_bad_policy_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            DSAConfig(leftover_policy="larger_arrays_for_free")

    def test_policies_agree_functionally(self):
        outs = []
        for policy in ("auto", "single_elements"):
            cfg = DSAConfig(leftover_policy=policy)
            run, _ = run_with(vecsum_kernel(53), vecsum_args(53), cfg)
            outs.append(run.array("out"))
        np.testing.assert_array_equal(outs[0], outs[1])
