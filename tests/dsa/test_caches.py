"""Unit tests for the DSA's private storage structures."""

import pytest

from repro.dsa import DSAConfig, DSACache, VerificationCache
from repro.dsa.caches import ArrayMaps


class TestDSACache:
    def test_capacity_from_config(self):
        cache = DSACache(DSAConfig())
        assert cache.capacity == 8 * 1024 // 64  # Table 4: 8 KB

    def test_hit_miss_accounting(self):
        cache = DSACache(DSAConfig())
        assert cache.lookup(0x100) is None
        cache.insert(0x100, "entry")
        assert cache.lookup(0x100) == "entry"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = DSACache(DSAConfig(dsa_cache_bytes=128, dsa_cache_entry_bytes=64))
        assert cache.capacity == 2
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.lookup(1)          # 2 becomes LRU
        cache.insert(3, "c")     # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache
        assert cache.stats.evictions == 1

    def test_reinsert_updates(self):
        cache = DSACache(DSAConfig())
        cache.insert(1, "a")
        cache.insert(1, "b")
        assert cache.lookup(1) == "b"
        assert len(cache) == 1

    def test_invalidate(self):
        cache = DSACache(DSAConfig())
        cache.insert(1, "a")
        cache.invalidate(1)
        assert 1 not in cache


class TestVerificationCache:
    def test_capacity_from_config(self):
        vc = VerificationCache(DSAConfig())
        assert vc.capacity == 1024 // 8  # Table 4: 1 KB

    def test_records_per_pc(self):
        vc = VerificationCache(DSAConfig())
        assert vc.record(0x10, 0x100)
        assert vc.record(0x10, 0x104)
        assert vc.addresses(0x10) == [0x100, 0x104]
        assert len(vc) == 1

    def test_overflow_on_too_many_static_accesses(self):
        vc = VerificationCache(DSAConfig(verification_cache_bytes=16, verification_entry_bytes=8))
        assert vc.capacity == 2
        assert vc.record(0x10, 1)
        assert vc.record(0x14, 2)
        assert not vc.record(0x18, 3)
        assert vc.overflowed

    def test_reset(self):
        vc = VerificationCache(DSAConfig())
        vc.record(0x10, 1)
        vc.overflowed = True
        vc.reset()
        assert len(vc) == 0 and not vc.overflowed


class TestArrayMaps:
    def test_budget_is_slots_plus_spares(self):
        maps = ArrayMaps(slots=4, spare_neon_regs=2)
        assert maps.can_allocate(6)
        assert not maps.can_allocate(7)

    def test_allocation_tracking(self):
        maps = ArrayMaps(slots=4, spare_neon_regs=0)
        assert maps.allocate(3)
        assert not maps.allocate(2)
        assert maps.allocate(1)
        assert maps.peak == 4
        maps.release_all()
        assert maps.in_use == 0 and maps.peak == 4
