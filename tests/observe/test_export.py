"""Exporters: JSONL round-trip, Chrome trace validity, Prometheus syntax."""

import json

import pytest

from repro.observe import (
    EventKind,
    Observer,
    check_chrome_trace,
    chrome_trace,
    jsonl_records,
    prometheus_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)


@pytest.fixture
def populated():
    obs = Observer()
    obs.emit(EventKind.RUN_BEGIN, path="fast")
    with obs.span("core.run", "cpu", cycle=0):
        obs.emit(
            EventKind.LOOP_DETECTED, cycle=10, loop_id="0x40", end_pc="0x60"
        )
    obs.emit(EventKind.RUN_END, cycles=500, instructions=400, path="fast")
    return obs


class TestJsonl:
    def test_records_interleaved_by_seq(self, populated):
        records = jsonl_records(populated)
        assert [r["type"] for r in records] == ["event", "span", "event", "event"]
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)

    def test_file_round_trip(self, populated, tmp_path):
        path = write_jsonl(populated, tmp_path / "events.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)  # every line is standalone JSON
        assert read_jsonl(path) == jsonl_records(populated)


class TestChromeTrace:
    def test_emits_valid_trace(self, populated):
        payload = chrome_trace(populated)
        assert check_chrome_trace(payload) == []
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_span_slice_carries_cycles(self, populated):
        payload = chrome_trace(populated)
        (slice_,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert slice_["name"] == "core.run"
        assert slice_["args"]["cycle_start"] == 0
        assert slice_["dur"] >= 0

    def test_instants_carry_event_payload(self, populated):
        payload = chrome_trace(populated)
        instants = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "i"}
        assert instants["loop_detected"]["args"]["loop_id"] == "0x40"
        assert instants["loop_detected"]["args"]["cycle"] == 10

    def test_written_file_is_loadable_json(self, populated, tmp_path):
        path = write_chrome_trace(populated, tmp_path / "run.trace.json")
        payload = json.loads(path.read_text())
        assert check_chrome_trace(payload) == []

    def test_checker_flags_malformed_traces(self):
        assert check_chrome_trace({"nope": 1})
        assert check_chrome_trace({"traceEvents": "not a list"})
        assert check_chrome_trace({"traceEvents": [{"ph": "Z", "name": "x"}]})
        # a complete event without dur is invalid
        bad = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "ts": 0.0}]}
        assert any("dur" in p for p in check_chrome_trace(bad))


class TestPrometheus:
    def test_exposition_format(self, populated):
        text = prometheus_text(populated)
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{kind="loop_detected"} 1' in text
        assert 'repro_span_seconds_total{cat="cpu",name="core.run"}' in text
        assert text.endswith("\n")

    def test_labels_merged_and_escaped(self, populated):
        text = prometheus_text(
            populated, labels={"workload": 'we"ird', "system": "neon_dsa"}
        )
        assert 'system="neon_dsa"' in text
        assert 'workload="we\\"ird"' in text

    def test_written_file(self, populated, tmp_path):
        path = write_prometheus(populated, tmp_path / "run.prom")
        assert "repro_events_total" in path.read_text()
