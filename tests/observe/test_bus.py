"""The event bus: emission, schema enforcement, spans, profiles."""

import pytest

from repro.observe import Event, EventKind, EventSchemaError, Observer, Span
from repro.observe.profile import RunProfile


class FakeClock:
    """Deterministic injectable clock (seconds, like time.perf_counter)."""

    def __init__(self):
        self.t = 100.0

    def advance(self, seconds: float) -> None:
        self.t += seconds

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def obs(clock):
    return Observer(clock=clock)


class TestEmit:
    def test_records_event_with_payload(self, obs, clock):
        clock.advance(0.001)
        event = obs.emit(
            EventKind.LOOP_DETECTED, cycle=42, loop_id="0x100", end_pc="0x120"
        )
        assert event.kind is EventKind.LOOP_DETECTED
        assert event.cycle == 42
        assert event.ts_us == pytest.approx(1000.0)
        assert event.args == {"loop_id": "0x100", "end_pc": "0x120"}
        assert obs.events == [event]
        assert obs.count(EventKind.LOOP_DETECTED) == 1

    def test_seq_is_monotonic_across_events_and_spans(self, obs):
        e1 = obs.emit(EventKind.RUN_BEGIN)
        span = obs.begin_span("work", "test")
        e2 = obs.emit(EventKind.RUN_BEGIN)
        closed = obs.end_span(span)
        assert e1.seq < span.seq < e2.seq
        assert closed.seq == span.seq

    def test_missing_required_keys_rejected(self, obs):
        with pytest.raises(EventSchemaError, match="loop_id"):
            obs.emit(EventKind.LOOP_DETECTED, end_pc="0x120")
        assert obs.events == []  # a rejected event is not recorded

    def test_extra_keys_allowed(self, obs):
        obs.emit(
            EventKind.SPEC_COMMIT, loop_id="0x1", covered=7, loop_kind="count"
        )
        assert obs.events[0].args["loop_kind"] == "count"

    def test_every_kind_has_a_schema(self, obs):
        from repro.observe.events import EVENT_FIELDS

        assert set(EVENT_FIELDS) == set(EventKind)

    def test_sink_receives_records(self, obs):
        seen = []
        obs.sinks.append(seen.append)
        obs.emit(EventKind.RUN_BEGIN)
        with obs.span("inner", "test"):
            pass
        assert len(seen) == 2
        assert isinstance(seen[0], Event)
        assert isinstance(seen[1], Span)


class TestSpans:
    def test_span_measures_host_and_cycles(self, obs, clock):
        span = obs.begin_span("run", "cpu", cycle=10)
        clock.advance(0.002)
        closed = obs.end_span(span, cycle=250)
        assert closed.dur_us == pytest.approx(2000.0)
        assert closed.cycles == 240
        assert obs.spans == [closed]
        assert obs.counts["span:cpu/run"] == 1

    def test_context_manager_closes_on_exception(self, obs):
        with pytest.raises(RuntimeError):
            with obs.span("broken", "test"):
                raise RuntimeError("boom")
        assert len(obs.spans) == 1

    def test_cycles_none_when_either_end_unknown(self, obs):
        closed = obs.end_span(obs.begin_span("x", "t"), cycle=5)
        assert closed.cycles is None


class TestRoundTrip:
    def test_event_dict_round_trip(self, obs):
        event = obs.emit(EventKind.CACHE_HIT, cycle=3, cache="disk", key="abc")
        assert Event.from_dict(event.to_dict()) == event

    def test_span_dict_round_trip(self, obs, clock):
        span = obs.begin_span("run", "cpu", cycle=1, depth=2)
        clock.advance(0.5)
        closed = obs.end_span(span, cycle=9)
        restored = Span.from_dict(closed.to_dict())
        assert restored.name == "run" and restored.cat == "cpu"
        assert restored.cycles == closed.cycles
        assert restored.args == closed.args


class TestProfile:
    def test_aggregates_counts_and_spans(self, obs, clock):
        obs.emit(EventKind.RUN_BEGIN)
        obs.emit(EventKind.RUN_BEGIN)
        for _ in range(2):
            span = obs.begin_span("run", "cpu", cycle=0)
            clock.advance(0.001)
            obs.end_span(span, cycle=100)
        profile = obs.profile()
        assert profile.events == {"run_begin": 2}
        assert profile.spans["cpu/run"]["count"] == 2
        assert profile.spans["cpu/run"]["cycles"] == 200
        assert profile.spans["cpu/run"]["host_us"] == pytest.approx(2000.0)
        assert profile.total_events == 2
        assert profile.event_count("run_begin") == 2

    def test_profile_round_trip(self, obs):
        obs.emit(EventKind.RUN_BEGIN)
        d = obs.profile().to_dict()
        assert RunProfile.from_dict(d).to_dict() == d
