"""Observer threading through the execution layers.

The two contracts under test:

1. **Observation never perturbs results** — a run with an observer attached
   produces a byte-identical ``RunResult`` to the same run without one.
2. **Zero overhead when disabled** — with no observer the core still picks
   the record-free fast loop, and no execution-layer object holds anything
   but ``None`` in its observer slot.
"""

import pytest

from repro.observe import EventKind, Observer
from repro.systems.campaign import RunSpec, execute_spec
from repro.systems.isolation import IsolatedExecutor

DSA_SPEC = RunSpec("micro:count", "neon_dsa")
SCALAR_SPEC = RunSpec("micro:count", "arm_original")
NONVEC_SPEC = RunSpec("micro:non_vectorizable", "neon_dsa")


def run_observed(spec):
    obs = Observer()
    result = execute_spec(spec, observer=obs)
    return obs, result


class TestResultIdentity:
    @pytest.mark.parametrize("spec", [DSA_SPEC, SCALAR_SPEC, NONVEC_SPEC])
    def test_observer_never_changes_the_result(self, spec):
        _, observed = run_observed(spec)
        plain = execute_spec(spec)
        assert observed.to_dict() == plain.to_dict()


class TestDsaEvents:
    def test_vectorized_loop_event_chain(self):
        obs, _ = run_observed(DSA_SPEC)
        assert obs.count(EventKind.LOOP_DETECTED) >= 1
        assert obs.count(EventKind.TEMPLATE_BUILT) >= 1
        assert obs.count(EventKind.SPEC_START) >= 1
        assert obs.count(EventKind.SPEC_COMMIT) >= 1
        assert obs.count(EventKind.NEON_DISPATCH) >= 1
        # DSA-internal cache traffic is tagged with its cache name
        miss = obs.events_of(EventKind.CACHE_MISS)[0]
        assert miss.args["cache"] == "dsa_cache"

    def test_events_ordered_and_cycle_stamped(self):
        obs, _ = run_observed(DSA_SPEC)
        detected = obs.events_of(EventKind.LOOP_DETECTED)[0]
        commit = obs.events_of(EventKind.SPEC_COMMIT)[0]
        assert detected.seq < commit.seq
        assert detected.cycle is not None and commit.cycle is not None
        assert detected.cycle <= commit.cycle

    def test_commit_covers_iterations(self):
        obs, result = run_observed(DSA_SPEC)
        covered = sum(e.args["covered"] for e in obs.events_of(EventKind.SPEC_COMMIT))
        assert covered == result.dsa_stats.iterations_covered

    def test_scalar_verdict_emitted_for_non_vectorizable(self):
        obs, _ = run_observed(NONVEC_SPEC)
        verdicts = obs.events_of(EventKind.LOOP_VERDICT)
        assert any(v.args["vectorizable"] is False for v in verdicts)
        assert obs.count(EventKind.SPEC_COMMIT) == 0

    def test_neon_dispatch_sources_distinguished(self):
        obs, _ = run_observed(DSA_SPEC)
        sources = {e.args["source"] for e in obs.events_of(EventKind.NEON_DISPATCH)}
        assert sources == {"dsa_burst"}  # DSA timing burst, not architectural
        obs_hv = Observer()
        execute_spec(RunSpec("micro:count", "neon_handvec"), observer=obs_hv)
        sources_hv = {
            e.args["source"] for e in obs_hv.events_of(EventKind.NEON_DISPATCH)
        }
        assert sources_hv == {"architectural"}


class TestCoreEvents:
    def test_run_span_and_begin_end(self):
        obs, result = run_observed(SCALAR_SPEC)
        assert obs.count(EventKind.RUN_BEGIN) == 1
        end = obs.events_of(EventKind.RUN_END)[0]
        assert end.args["cycles"] == result.cycles
        assert end.args["instructions"] == result.instructions
        (span,) = obs.spans
        assert (span.cat, span.name) == ("cpu", "core.run")
        assert span.cycles == result.cycles

    def test_path_reflects_loop_choice(self):
        obs_fast, _ = run_observed(SCALAR_SPEC)      # no hooks -> fast loop
        obs_traced, _ = run_observed(DSA_SPEC)       # DSA hook -> traced loop
        assert obs_fast.events_of(EventKind.RUN_END)[0].args["path"] == "fast"
        assert obs_traced.events_of(EventKind.RUN_END)[0].args["path"] == "traced"


class TestZeroOverheadDefaults:
    def test_no_observer_by_default_anywhere(self):
        from repro.compiler.lowering import lower
        from repro.cpu.core import Core
        from repro.memory.backing import MainMemory
        from repro.systems.campaign import build_workload

        workload = build_workload(SCALAR_SPEC)
        core = Core(lower(workload.kernel).program, MainMemory(1 << 20))
        assert core.observer is None
        assert core.neon.observer is None


class TestGuardFallback:
    def test_guard_fallback_event(self):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(faults=[FaultSpec(kind="lane", match="micro:count/*")])
        obs = Observer()
        result = execute_spec(DSA_SPEC, guard=True, plan=plan, observer=obs)
        assert result.dsa_stats.fallbacks >= 1
        fallback = obs.events_of(EventKind.GUARD_FALLBACK)[0]
        assert "loop_id" in fallback.args and fallback.args["cause"]


class TestWorkerEvents:
    def test_retry_and_timeout_events(self):
        def flaky(task, attempt):
            if attempt == 1:
                raise RuntimeError("first attempt fails")
            return task * 2

        obs = Observer()
        executor = IsolatedExecutor(flaky, retries=1, backoff=0.0, observer=obs)
        outcomes = executor.run([21])
        assert outcomes[0].ok and outcomes[0].value == 42
        retry = obs.events_of(EventKind.WORKER_RETRY)[0]
        assert retry.args["task"] == 0
        assert retry.args["attempt"] == 1
        assert retry.args["status"] == "error"

    def test_timeout_event(self):
        import time

        def hang(task, attempt):
            time.sleep(30)

        obs = Observer()
        executor = IsolatedExecutor(hang, timeout=0.3, observer=obs)
        outcomes = executor.run([None])
        assert outcomes[0].status == "timeout"
        timeout = obs.events_of(EventKind.WORKER_TIMEOUT)[0]
        assert timeout.args["deadline_s"] == pytest.approx(0.3)
