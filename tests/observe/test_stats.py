"""Loop-type coverage (``repro stats``) and the ``repro trace`` CLI verb."""

import json

import pytest

from repro.cli import main
from repro.observe import (
    PAPER_LOOP_CLASSES,
    LoopCoverageReport,
    check_chrome_trace,
)
from repro.systems.campaign import CampaignRunner, RunSpec
from repro.workloads.synthetic import LOOP_TYPE_MICROKERNELS


@pytest.fixture(scope="module")
def coverage_results():
    """One campaign over the whole loop taxonomy, shared by this module."""
    runner = CampaignRunner(use_cache=False)
    specs = [
        RunSpec(f"micro:{kind}", "neon_dsa", "full") for kind in PAPER_LOOP_CLASSES
    ]
    outcome = runner.run(specs)
    assert outcome.ok
    return {
        spec.workload.removeprefix("micro:"): outcome.result_for(spec)
        for spec in specs
    }


class TestLoopCoverageReport:
    def test_taxonomy_matches_microkernel_registry(self):
        assert set(PAPER_LOOP_CLASSES) == set(LOOP_TYPE_MICROKERNELS)

    def test_every_class_reported(self, coverage_results):
        report = LoopCoverageReport.from_results(coverage_results)
        assert [r.loop_class for r in report.rows] == list(PAPER_LOOP_CLASSES)

    def test_vectorizable_classes_vectorize(self, coverage_results):
        report = LoopCoverageReport.from_results(coverage_results)
        outcomes = {r.loop_class: r.outcome for r in report.rows}
        # the paper's vectorizable classes all go through NEON...
        for loop_class in ("count", "conditional", "sentinel",
                           "dynamic_range", "partial", "function"):
            assert outcomes[loop_class] == "vectorized", loop_class
        # ...and the non-vectorizable control stays scalar but is detected
        assert outcomes["non_vectorizable"] == "scalar"

    def test_counts_come_from_dsa_stats(self, coverage_results):
        report = LoopCoverageReport.from_results(coverage_results)
        by_class = {r.loop_class: r for r in report.rows}
        stats = coverage_results["count"].dsa_stats
        row = by_class["count"]
        assert row.detected == stats.loops_detected
        assert row.vectorized == sum(stats.vectorized_invocations.values())
        assert row.iterations_covered == stats.iterations_covered

    def test_table_and_json_render(self, coverage_results):
        report = LoopCoverageReport.from_results(coverage_results)
        table = report.table()
        for loop_class in PAPER_LOOP_CLASSES:
            assert loop_class in table
        payload = report.to_dict()
        json.dumps(payload)
        assert len(payload["loop_coverage"]) == len(PAPER_LOOP_CLASSES)

    def test_requires_dsa_stats(self, coverage_results):
        runner = CampaignRunner(use_cache=False)
        scalar = runner.run_one(RunSpec("micro:count", "arm_original"))
        with pytest.raises(ValueError, match="dsa_stats"):
            LoopCoverageReport.from_results({"count": scalar})


class TestStatsCLI:
    def test_stats_table(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        for loop_class in PAPER_LOOP_CLASSES:
            assert loop_class in out
        assert "vectorized" in out

    def test_stats_json(self, capsys):
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rows = {r["loop_class"]: r for r in payload["loop_coverage"]}
        assert set(rows) == set(PAPER_LOOP_CLASSES)
        assert rows["count"]["outcome"] == "vectorized"


class TestTraceCLI:
    def test_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        jsonl = tmp_path / "run.jsonl"
        prom = tmp_path / "run.prom"
        assert main([
            "trace", "micro:count", "neon_dsa",
            "-o", str(out), "--jsonl", str(jsonl), "--prom", str(prom),
        ]) == 0
        payload = json.loads(out.read_text())
        assert check_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"loop_detected", "spec_commit", "core.run"} <= names
        assert jsonl.read_text().strip()
        assert "repro_events_total" in prom.read_text()
        assert "spec_commit" in capsys.readouterr().out

    def test_trace_unknown_workload_is_config_error(self, capsys):
        assert main(["trace", "no_such_kernel", "neon_dsa"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_default_output_name(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "micro:count", "arm_original"]) == 0
        assert (tmp_path / "micro_count_arm_original.trace.json").exists()
