"""Regenerate tests/workloads/golden_streaming.json.

Run ONLY after an intentional architectural-model change (latencies, cache
geometry, DSA policy, energy inputs...) — never to paper over an identity
failure you can't explain:

    PYTHONPATH=src python tests/workloads/regen_golden_streaming.py
"""

import hashlib
import json
from pathlib import Path

from repro.systems.campaign import RunSpec, execute_spec
from repro.workloads.streaming import STREAMING_WORKLOADS

OUT = Path(__file__).with_name("golden_streaming.json")


def main() -> None:
    golden = {
        "_note": (
            "Golden RunResult snapshot of every streaming workload on "
            "neon_dsa (seed=3, scale=test). Pins both vector backends at "
            "VL=128. Regenerate ONLY on an intentional architectural-model "
            "change: PYTHONPATH=src python tests/workloads/regen_golden_streaming.py"
        ),
    }
    for name in sorted(STREAMING_WORKLOADS):
        spec = RunSpec(name, "neon_dsa", seed=3)
        d = execute_spec(spec).to_dict()
        golden[name] = {
            "cycles": d["cycles"],
            "instructions": d["instructions"],
            "digest": hashlib.sha256(
                json.dumps(d, sort_keys=True).encode()
            ).hexdigest(),
        }
    OUT.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT} ({len(golden) - 1} entries)")


if __name__ == "__main__":
    main()
