"""Streaming byte-parallel workload family, end to end.

Four fronts, matching the paper kernels' own guarantees:

* goldens — every kernel reproduces its scalar reference on every system
  and DSA stage (the DSA transparency claim);
* the taxonomy edge — the sentinel scan in ``delim_scan`` is vectorized
  by the run-time DSA but untouchable for the static NEON compiler, the
  verdict the whole reproduction exists to show;
* identity — byte-identical RunResults across every execution tier
  (legacy/interp/compiled/bulk/covered), both vector backends at VL=128
  (pinned by the committed golden snapshot), guard mode under an injected
  fault plan, and timing-only deltas at wider VLs;
* the coverage gate — every paper loop class is exercised by >= 2
  registered workloads, the verdict fails demonstrably when a streaming
  workload is removed, and a declared class the kernel does not contain
  is rejected.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.cpu.config import CPUConfig
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.faults.plan import FaultSpec
from repro.systems.campaign import RunSpec, execute_spec
from repro.systems.setups import run_system
from repro.workloads import ALL_WORKLOADS, PAPER_WORKLOADS, load
from repro.workloads.coverage import (
    CoverageGate,
    evaluate_gate,
    gate_registry,
    infer_loop_classes,
    partial_distance,
)
from repro.workloads.streaming import STREAMING_WORKLOADS

STREAMING = sorted(STREAMING_WORKLOADS)
GOLDEN_PATH = Path(__file__).with_name("golden_streaming.json")

#: one config per rung of the execution-tier ladder; all five must
#: produce byte-identical RunResults (the ladder is host-side only)
TIER_CONFIGS = {
    "legacy": CPUConfig(predecode=False),
    "interp": CPUConfig(
        predecode=True, compile_hot=False, compile_traced=False, covered_execution=False
    ),
    "compiled": CPUConfig(predecode=True, compile_numpy=False, covered_execution=False),
    "bulk": CPUConfig(predecode=True, covered_execution=False),
    "covered": CPUConfig(),
}

COVERED = CPUConfig(predecode=True, covered_execution=True)
UNCOVERED = CPUConfig(predecode=True, covered_execution=False)

#: RunResult channels that legitimately move with the vector width
TIMING_KEYS = frozenset(
    {"cycles", "seconds", "energy", "timing_stats", "dsa_stats", "hierarchy_stats"}
)


def canonical(d: dict) -> str:
    return json.dumps(d, sort_keys=True)


def stripped(d: dict) -> dict:
    d = dict(d)
    d.pop("backend", None)
    d.pop("vl", None)
    return d


_memo: dict = {}


def result_dict(name: str, system: str = "neon_dsa",
                backend: str = "neon", vl: int = 128) -> dict:
    key = (name, system, backend, vl)
    if key not in _memo:
        spec = RunSpec(name, system, seed=3, backend=backend, vl=vl)
        _memo[key] = execute_spec(spec).to_dict()
    return _memo[key]


# ---------------------------------------------------------------------------
# goldens on every system
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", STREAMING)
class TestGoldenOnEachSystem:
    def test_arm_original(self, name):
        run_system("arm_original", load(name))  # golden check is built in

    def test_neon_autovec(self, name):
        run_system("neon_autovec", load(name))

    def test_neon_handvec(self, name):
        run_system("neon_handvec", load(name))

    def test_neon_dsa_all_stages(self, name):
        for stage in ("original", "extended", "full"):
            run_system("neon_dsa", load(name), dsa_stage=stage)

    def test_bench_scale_golden(self, name):
        run_system("neon_dsa", load(name, "bench"))


# ---------------------------------------------------------------------------
# the taxonomy edge the family exists to exercise
# ---------------------------------------------------------------------------
class TestStreamingVectorizationProfile:
    def test_delim_scan_sentinel_only_reachable_by_dsa(self):
        """The acceptance criterion: the sentinel scan is a verdict the
        static NEON path cannot reach — the autovectorizer claims nothing
        in delim_scan, the DSA vectorizes all three loop classes."""
        wl = load("delim_scan")
        auto = run_system("neon_autovec", wl)
        assert auto.lowered.vectorized_loops == []
        dsa = run_system("neon_dsa", wl, dsa_stage="full")
        assert dsa.dsa_stats.vectorized_invocations["sentinel"] >= 1
        assert dsa.dsa_stats.vectorized_invocations["conditional"] >= 1
        assert dsa.dsa_stats.vectorized_invocations["dynamic_range"] >= 1
        base = run_system("arm_original", wl)
        assert dsa.cycles < base.cycles

    def test_utf8_carried_state_stays_scalar(self):
        """The carried continuation state serializes the dispatch loop for
        everyone — the honest negative result in the verdict table."""
        wl = load("utf8_validate")
        assert run_system("neon_autovec", wl).lowered.vectorized_loops == []
        dsa = run_system("neon_dsa", wl)
        assert sum(dsa.dsa_stats.vectorized_invocations.values()) == 0

    def test_base64_gathers_defeat_the_template(self):
        """Function-class loop, but its table-lookup gathers have no affine
        address stream: the DSA renders a non-vectorizable verdict."""
        dsa = run_system("neon_dsa", load("base64_decode"))
        assert dsa.dsa_stats.verdicts.get("non_vectorizable", 0) >= 1
        assert sum(dsa.dsa_stats.vectorized_invocations.values()) == 0

    def test_stride_histogram_partial_pass_vectorizes(self):
        """The gather/scatter stage stays scalar; the offset-accumulate
        smoothing pass is the partial class the DSA does claim."""
        dsa = run_system("neon_dsa", load("stride_histogram"))
        assert dsa.dsa_stats.verdicts.get("non_vectorizable", 0) >= 1
        assert dsa.dsa_stats.vectorized_invocations.get("partial", 0) >= 1


# ---------------------------------------------------------------------------
# identity: tiers, backends, faults, goldens
# ---------------------------------------------------------------------------
class TestTierIdentity:
    @pytest.mark.parametrize("name", STREAMING)
    def test_all_tiers_byte_identical(self, name):
        spec = RunSpec(name, "neon_dsa", seed=3)
        records = {
            tier: canonical(execute_spec(spec, cpu_config=config).to_dict())
            for tier, config in TIER_CONFIGS.items()
        }
        baseline = records.pop("legacy")
        for tier, record in records.items():
            assert record == baseline, f"tier {tier} diverged from legacy"

    @pytest.mark.parametrize("name", STREAMING)
    def test_scalar_system_tiers_identical(self, name):
        spec = RunSpec(name, "arm_original", seed=3)
        legacy = canonical(execute_spec(spec, cpu_config=TIER_CONFIGS["legacy"]).to_dict())
        covered = canonical(execute_spec(spec, cpu_config=TIER_CONFIGS["covered"]).to_dict())
        assert covered == legacy


class TestGuardedFaultIdentity:
    @pytest.mark.parametrize("name", STREAMING)
    def test_lane_faults_guarded(self, name):
        plan = FaultPlan(faults=[FaultSpec(kind="lane", match="*")], seed=11)
        spec = RunSpec(name, "neon_dsa", seed=3)
        covered = canonical(
            execute_spec(spec, cpu_config=COVERED, guard=True, plan=plan).to_dict()
        )
        uncovered = canonical(
            execute_spec(spec, cpu_config=UNCOVERED, guard=True, plan=plan).to_dict()
        )
        assert covered == uncovered


class TestBackendParity:
    @pytest.mark.parametrize("name", STREAMING)
    def test_scalable_128_identical_to_neon(self, name):
        neon = result_dict(name)
        scalable = result_dict(name, backend="scalable", vl=128)
        assert scalable["backend"] == "scalable" and scalable["vl"] == 128
        assert canonical(stripped(scalable)) == canonical(neon)

    @pytest.mark.parametrize("vl", [256, 512])
    @pytest.mark.parametrize("name", STREAMING)
    def test_wider_vl_timing_only(self, name, vl):
        neon = result_dict(name)
        wide = result_dict(name, backend="scalable", vl=vl)
        for key in neon:
            if key in TIMING_KEYS:
                continue
            assert wide[key] == neon[key], f"{key} moved at VL={vl}"


class TestGoldenSnapshot:
    """The committed sha256 snapshot pins the streaming results absolutely
    (style of tests/cpu/golden_microkernels.json); both backends at VL=128
    must hit the same digest."""

    @pytest.mark.parametrize("name", STREAMING)
    def test_neon_matches_snapshot(self, name):
        golden = json.loads(GOLDEN_PATH.read_text())[name]
        d = result_dict(name)
        assert d["cycles"] == golden["cycles"]
        assert d["instructions"] == golden["instructions"]
        digest = hashlib.sha256(canonical(d).encode()).hexdigest()
        assert digest == golden["digest"], (
            f"{name} RunResult drifted from the committed golden snapshot; "
            "regenerate ONLY on an intentional architectural-model change: "
            "PYTHONPATH=src python tests/workloads/regen_golden_streaming.py"
        )

    @pytest.mark.parametrize("name", STREAMING)
    def test_scalable_128_matches_snapshot(self, name):
        golden = json.loads(GOLDEN_PATH.read_text())[name]
        d = result_dict(name, backend="scalable", vl=128)
        digest = hashlib.sha256(canonical(stripped(d)).encode()).hexdigest()
        assert digest == golden["digest"]


# ---------------------------------------------------------------------------
# registry + builder validation (satellite: uniform config errors)
# ---------------------------------------------------------------------------
class TestRegistryAndValidation:
    def test_registries_disjoint_and_complete(self):
        assert set(STREAMING_WORKLOADS) == {
            "delim_scan", "utf8_validate", "base64_decode", "stride_histogram"
        }
        assert not set(STREAMING_WORKLOADS) & set(PAPER_WORKLOADS)
        assert set(ALL_WORKLOADS) == set(PAPER_WORKLOADS) | set(STREAMING_WORKLOADS)

    @pytest.mark.parametrize("name", STREAMING)
    def test_bad_scale_raises_config_error(self, name):
        with pytest.raises(ConfigError):
            STREAMING_WORKLOADS[name]("gigantic")

    @pytest.mark.parametrize("name", STREAMING)
    def test_negative_seed_raises_config_error(self, name):
        with pytest.raises(ConfigError):
            STREAMING_WORKLOADS[name]("test", seed=-1)

    def test_paper_builder_negative_seed(self):
        with pytest.raises(ConfigError):
            load("bitcount", seed=-7)

    def test_micro_builder_bad_size(self):
        from repro.workloads.synthetic import vecsum

        with pytest.raises(ConfigError):
            vecsum(0)
        with pytest.raises(ConfigError):
            vecsum(-4)

    def test_runspec_negative_seed(self):
        with pytest.raises(ConfigError):
            RunSpec("delim_scan", "neon_dsa", seed=-1)

    def test_seed_override_changes_inputs(self):
        a = load("delim_scan", seed=101).fresh_args()["src"]
        b = load("delim_scan", seed=102).fresh_args()["src"]
        assert (a != b).any()


# ---------------------------------------------------------------------------
# the coverage gate
# ---------------------------------------------------------------------------
class TestCoverageGate:
    def test_full_registry_passes(self):
        gate = evaluate_gate()
        assert gate.passed
        assert all(row.count >= 2 for row in gate.rows)

    @pytest.mark.parametrize("victim", ["base64_decode", "stride_histogram"])
    def test_removing_a_streaming_workload_fails(self, victim):
        registry = gate_registry()
        del registry[victim]
        gate = CoverageGate.from_workloads(registry)
        assert not gate.passed
        short = [row.loop_class for row in gate.rows if row.deficit]
        expected = {"base64_decode": "function", "stride_histogram": "partial"}
        assert expected[victim] in short

    def test_declared_class_must_exist_in_kernel(self):
        from dataclasses import replace

        liar = replace(load("rgb_gray"), loop_classes=("sentinel",))
        with pytest.raises(ConfigError):
            CoverageGate.from_workloads({"rgb_gray": liar})

    def test_declarations_match_inference_everywhere(self):
        for name, wl in gate_registry().items():
            inferred = infer_loop_classes(wl.kernel)
            assert set(wl.loop_classes) <= set(inferred), name

    def test_partial_distance_refinement(self):
        from repro.compiler.analysis import kernel_loops
        from repro.workloads.synthetic import offset_accumulate

        loops = kernel_loops(load("stride_histogram").kernel)
        assert partial_distance(loops[0], load("stride_histogram").kernel) is None
        assert partial_distance(loops[1], load("stride_histogram").kernel) == 16
        micro = offset_accumulate()
        assert partial_distance(kernel_loops(micro.kernel)[0], micro.kernel) == 24

    def test_to_dict_shape(self):
        d = evaluate_gate().to_dict()
        assert d["gate_passed"] is True
        assert d["required"] == 2
        classes = {row["loop_class"]: row for row in d["classes"]}
        assert set(classes) == {
            "count", "function", "conditional", "sentinel",
            "dynamic_range", "partial", "non_vectorizable",
        }
        assert all(row["deficit"] == 0 for row in classes.values())


class TestGateCLI:
    def test_stats_gate_passes(self, capsys):
        assert cli_main(["stats", "--gate"]) == 0
        assert "coverage gate: PASS" in capsys.readouterr().out

    def test_stats_gate_json(self, capsys):
        assert cli_main(["stats", "--gate", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["gate_passed"] is True

    def test_stats_gate_fails_without_streaming(self, capsys, monkeypatch):
        import repro.workloads as workloads

        monkeypatch.delitem(workloads.ALL_WORKLOADS, "base64_decode")
        assert cli_main(["stats", "--gate"]) == 5
        out = capsys.readouterr().out
        assert "coverage gate: FAIL" in out and "function" in out

    def test_stats_gate_required_can_be_raised(self, capsys):
        # only one workload family covers partial at required=3
        assert cli_main(["stats", "--gate", "--required", "3"]) == 5
        assert "DEFICIT" in capsys.readouterr().out

    def test_run_cli_accepts_streaming(self, capsys):
        assert cli_main(
            ["run", "utf8_validate", "--system", "arm_original", "--no-cache"]
        ) == 0
        assert "utf8_validate" in capsys.readouterr().out
