"""Workload correctness: every benchmark must reproduce its numpy golden
on every system (the DSA's transparency claim, checked end to end)."""

import numpy as np
import pytest

from repro.workloads import PAPER_WORKLOADS, load, load_all
from repro.workloads.synthetic import LOOP_TYPE_MICROKERNELS
from repro.systems import SYSTEM_NAMES, run_system

ALL_NAMES = sorted(PAPER_WORKLOADS)


class TestRegistry:
    def test_seven_paper_benchmarks(self):
        assert len(PAPER_WORKLOADS) == 7
        assert set(PAPER_WORKLOADS) == {
            "matmul",
            "rgb_gray",
            "gaussian",
            "susan_edges",
            "bitcount",
            "dijkstra",
            "qsort",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_bad_scale_raises(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            load("matmul", "gigantic")

    def test_load_all(self):
        wls = load_all("test")
        assert all(w.kernel is not None for w in wls.values())

    def test_fresh_args_are_independent(self):
        wl = load("rgb_gray")
        a1, a2 = wl.fresh_args(), wl.fresh_args()
        a1["r"][0] = 999
        assert a2["r"][0] != 999

    def test_dlp_levels_cover_paper_spectrum(self):
        levels = {w.dlp_level for w in load_all("test").values()}
        assert levels == {"high", "medium", "low"}


@pytest.mark.parametrize("name", ALL_NAMES)
class TestGoldenOnEachSystem:
    def test_arm_original(self, name):
        run_system("arm_original", load(name))  # golden check is built in

    def test_neon_autovec(self, name):
        run_system("neon_autovec", load(name))

    def test_neon_handvec(self, name):
        run_system("neon_handvec", load(name))

    def test_neon_dsa_full(self, name):
        run_system("neon_dsa", load(name), dsa_stage="full")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_dsa_stages_all_correct(name):
    """Original and extended DSA stages also reproduce the goldens."""
    for stage in ("original", "extended"):
        run_system("neon_dsa", load(name), dsa_stage=stage)


class TestExpectedVectorizationProfile:
    """The loop-type coverage story of the paper, per benchmark."""

    def test_bitcount_needs_full_dsa(self):
        wl = load("bitcount")
        full = run_system("neon_dsa", wl, dsa_stage="full")
        assert full.dsa_stats.vectorized_invocations["sentinel"] >= 1
        assert full.dsa_stats.vectorized_invocations["dynamic_range"] >= 1
        original = run_system("neon_dsa", wl, dsa_stage="original")
        assert original.dsa_stats.iterations_covered == 0

    def test_autovec_cannot_touch_bitcount(self):
        wl = load("bitcount")
        r = run_system("neon_autovec", wl)
        assert r.lowered.vectorized_loops == []

    def test_matmul_vectorized_by_everyone(self):
        wl = load("matmul")
        auto = run_system("neon_autovec", wl)
        assert auto.lowered.vectorized_loops  # the inner j loop
        dsa = run_system("neon_dsa", wl)
        assert dsa.dsa_stats.vectorized_invocations["count"] >= 1

    def test_susan_conditional_only_beyond_autovec(self):
        wl = load("susan_edges")
        auto = run_system("neon_autovec", wl)
        assert len(auto.lowered.vectorized_loops) == 1  # smoothing only
        hand = run_system("neon_handvec", wl)
        assert len(hand.lowered.vectorized_loops) == 2  # + if-converted detect
        dsa = run_system("neon_dsa", wl)
        assert dsa.dsa_stats.vectorized_invocations["conditional"] >= 1

    def test_qsort_has_no_dlp_for_anyone(self):
        wl = load("qsort")
        auto = run_system("neon_autovec", wl)
        assert auto.lowered.vectorized_loops == []
        assert auto.lowered.guarded_loops  # the versioned copy loop
        dsa = run_system("neon_dsa", wl)
        # only the input-copy loop is dynamic-range vectorizable
        assert dsa.dsa_stats.vectorized_invocations.get("partial", 0) == 0
        assert dsa.dsa_stats.vectorized_invocations.get("conditional", 0) == 0

    def test_high_dlp_workloads_speed_up_everywhere(self):
        for name in ("rgb_gray", "gaussian"):
            wl = load(name)
            base = run_system("arm_original", wl)
            for system in ("neon_autovec", "neon_handvec", "neon_dsa"):
                r = run_system(system, wl)
                assert r.cycles < base.cycles, (name, system)


@pytest.mark.parametrize("name", sorted(LOOP_TYPE_MICROKERNELS))
def test_microkernels_golden_scalar_and_dsa(name):
    wl = LOOP_TYPE_MICROKERNELS[name]()
    run_system("arm_original", wl)
    run_system("neon_dsa", wl)
