import pytest

from repro.systems.result_cache import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep the on-disk result cache out of the repo and out of other tests."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "result-cache"))
