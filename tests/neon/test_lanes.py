"""Unit and property tests for the 128-bit lane math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.dtypes import DType
from repro.isa.neon import VBinKind, VCmpKind, VUnaryKind
from repro.neon import lanes

INT_DTYPES = [DType.I8, DType.U8, DType.I16, DType.U16, DType.I32, DType.U32]


def lane_values(dtype, **kwargs):
    if dtype.is_float:
        return st.lists(
            st.floats(width=32, allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6),
            min_size=dtype.lanes,
            max_size=dtype.lanes,
        )
    return st.lists(
        st.integers(dtype.min_value(), dtype.max_value()),
        min_size=dtype.lanes,
        max_size=dtype.lanes,
    )


class TestViews:
    def test_from_lanes_roundtrip(self):
        img = lanes.from_lanes([1, 2, 3, 4], DType.I32)
        np.testing.assert_array_equal(lanes.view(img, DType.I32), [1, 2, 3, 4])

    def test_wrong_lane_count(self):
        with pytest.raises(ValueError):
            lanes.from_lanes([1, 2, 3], DType.I32)

    def test_broadcast(self):
        img = lanes.broadcast(-1, DType.I16)
        np.testing.assert_array_equal(lanes.view(img, DType.I16), [-1] * 8)

    def test_zero_register(self):
        assert lanes.zero_register().sum() == 0


class TestBinops:
    @pytest.mark.parametrize("dtype", INT_DTYPES)
    def test_add_wraps(self, dtype):
        a = lanes.broadcast(dtype.max_value(), dtype)
        b = lanes.broadcast(1, dtype)
        out = lanes.view(lanes.binop(VBinKind.VADD, a, b, dtype), dtype)
        assert out[0] == dtype.min_value()

    def test_float_add(self):
        a = lanes.from_lanes([1.5, 2.5, 3.5, 4.5], DType.F32)
        b = lanes.broadcast(0.5, DType.F32)
        out = lanes.view(lanes.binop(VBinKind.VADD, a, b, DType.F32), DType.F32)
        np.testing.assert_array_equal(out, [2.0, 3.0, 4.0, 5.0])

    def test_mul(self):
        a = lanes.from_lanes(range(16), DType.I8)
        out = lanes.view(lanes.binop(VBinKind.VMUL, a, a, DType.I8), DType.I8)
        np.testing.assert_array_equal(out, [DType.I8.wrap(i * i) for i in range(16)])

    def test_min_max(self):
        a = lanes.from_lanes([1, -2, 3, -4], DType.I32)
        b = lanes.from_lanes([0, 0, 0, 0], DType.I32)
        lo = lanes.view(lanes.binop(VBinKind.VMIN, a, b, DType.I32), DType.I32)
        hi = lanes.view(lanes.binop(VBinKind.VMAX, a, b, DType.I32), DType.I32)
        np.testing.assert_array_equal(lo, [0, -2, 0, -4])
        np.testing.assert_array_equal(hi, [1, 0, 3, 0])

    def test_bitwise_ops_ignore_dtype_lanes(self):
        a = lanes.broadcast(0b1100, DType.U8)
        b = lanes.broadcast(0b1010, DType.U8)
        assert lanes.view(lanes.binop(VBinKind.VAND, a, b, DType.U8), DType.U8)[0] == 0b1000
        assert lanes.view(lanes.binop(VBinKind.VORR, a, b, DType.U8), DType.U8)[0] == 0b1110
        assert lanes.view(lanes.binop(VBinKind.VEOR, a, b, DType.U8), DType.U8)[0] == 0b0110

    @given(st.sampled_from(INT_DTYPES), st.data())
    @settings(max_examples=40)
    def test_add_matches_scalar_wrap(self, dtype, data):
        xs = data.draw(lane_values(dtype))
        ys = data.draw(lane_values(dtype))
        out = lanes.view(
            lanes.binop(VBinKind.VADD, lanes.from_lanes(xs, dtype), lanes.from_lanes(ys, dtype), dtype),
            dtype,
        )
        for lane, (x, y) in enumerate(zip(xs, ys)):
            assert out[lane] == dtype.wrap(x + y)


class TestMlaUnaryShift:
    def test_mla(self):
        acc = lanes.broadcast(10, DType.I32)
        a = lanes.from_lanes([1, 2, 3, 4], DType.I32)
        b = lanes.broadcast(3, DType.I32)
        out = lanes.view(lanes.mla(acc, a, b, DType.I32), DType.I32)
        np.testing.assert_array_equal(out, [13, 16, 19, 22])

    def test_abs_neg(self):
        a = lanes.from_lanes([-1, 2, -3, 4], DType.I32)
        np.testing.assert_array_equal(
            lanes.view(lanes.unary(VUnaryKind.VABS, a, DType.I32), DType.I32), [1, 2, 3, 4]
        )
        np.testing.assert_array_equal(
            lanes.view(lanes.unary(VUnaryKind.VNEG, a, DType.I32), DType.I32), [1, -2, 3, -4]
        )

    def test_mvn(self):
        a = lanes.broadcast(0, DType.U32)
        out = lanes.view(lanes.unary(VUnaryKind.VMVN, a, DType.U32), DType.U32)
        assert all(v == 0xFFFFFFFF for v in out)

    def test_shift_right_arithmetic(self):
        a = lanes.from_lanes([-8, 8, -16, 16], DType.I32)
        out = lanes.view(lanes.shift(False, a, 2, DType.I32), DType.I32)
        np.testing.assert_array_equal(out, [-2, 2, -4, 4])

    def test_shift_left(self):
        a = lanes.broadcast(1, DType.U16)
        out = lanes.view(lanes.shift(True, a, 3, DType.U16), DType.U16)
        assert all(v == 8 for v in out)

    def test_float_shift_rejected(self):
        with pytest.raises(ValueError):
            lanes.shift(True, lanes.zero_register(), 1, DType.F32)


class TestCompareSelect:
    def test_compare_masks(self):
        a = lanes.from_lanes([1, 5, 3, 7], DType.I32)
        b = lanes.broadcast(4, DType.I32)
        mask = lanes.compare(VCmpKind.VCGT, a, b, DType.I32)
        np.testing.assert_array_equal(
            lanes.view(mask, DType.U32), [0, 0xFFFFFFFF, 0, 0xFFFFFFFF]
        )

    def test_bsl_selects_per_lane(self):
        a = lanes.from_lanes([1, 5, 3, 7], DType.I32)
        b = lanes.broadcast(4, DType.I32)
        mask = lanes.compare(VCmpKind.VCGT, a, b, DType.I32)
        picked = lanes.bitwise_select(mask, a, b)
        np.testing.assert_array_equal(lanes.view(picked, DType.I32), [4, 5, 4, 7])

    @given(st.data())
    @settings(max_examples=40)
    def test_compare_bsl_equals_numpy_where(self, data):
        dtype = data.draw(st.sampled_from([DType.I8, DType.I16, DType.I32]))
        xs = np.array(data.draw(lane_values(dtype)), dtype=dtype.numpy)
        ys = np.array(data.draw(lane_values(dtype)), dtype=dtype.numpy)
        mask = lanes.compare(VCmpKind.VCGE, lanes.from_lanes(xs, dtype), lanes.from_lanes(ys, dtype), dtype)
        out = lanes.bitwise_select(mask, lanes.from_lanes(xs, dtype), lanes.from_lanes(ys, dtype))
        np.testing.assert_array_equal(lanes.view(out, dtype), np.where(xs >= ys, xs, ys))


class TestLaneAccess:
    def test_get_set_roundtrip(self):
        img = lanes.zero_register()
        img = lanes.lane_set(img, 3, -9, DType.I16)
        assert lanes.lane_get(img, 3, DType.I16) == -9
        assert lanes.lane_get(img, 0, DType.I16) == 0

    def test_set_does_not_mutate_input(self):
        img = lanes.zero_register()
        out = lanes.lane_set(img, 0, 5, DType.I8)
        assert img[0] == 0 and out[0] == 5
