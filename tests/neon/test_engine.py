"""Tests for the functional NEON engine (register file + memory bursts)."""

import numpy as np
import pytest

from repro.isa import DType, QReg, Reg, assemble
from repro.isa.dtypes import float_to_bits
from repro.isa.neon import (
    VBinKind,
    VBinOp,
    VBsl,
    VCmp,
    VCmpKind,
    VDup,
    VDupImm,
    VLoad,
    VLoadLane,
    VMovFromCore,
    VMovQ,
    VMovToCore,
    VStore,
    VStoreLane,
)
from repro.memory import Allocator, MainMemory
from repro.neon import NeonEngine, lanes


@pytest.fixture
def setup():
    memory = MainMemory(1 << 20)
    engine = NeonEngine()
    regs = [0] * 16
    return memory, engine, regs


class TestLoadsStores:
    def test_vld1_reads_16_bytes(self, setup):
        memory, engine, regs = setup
        data = np.arange(4, dtype=np.int32)
        memory.write_array(0x100, data)
        regs[5] = 0x100
        events = engine.execute(VLoad(QReg(0), Reg(5), DType.I32, writeback=True), regs, memory)
        np.testing.assert_array_equal(lanes.view(engine.q[0], DType.I32), data)
        assert regs[5] == 0x110
        assert events[0].addr == 0x100 and events[0].nbytes == 16

    def test_vst1_writes_back(self, setup):
        memory, engine, regs = setup
        engine.write_q(2, lanes.from_lanes([9, 8, 7, 6], DType.I32))
        regs[7] = 0x200
        engine.execute(VStore(QReg(2), Reg(7), DType.I32, writeback=True), regs, memory)
        np.testing.assert_array_equal(memory.read_array(0x200, DType.I32, 4), [9, 8, 7, 6])
        assert regs[7] == 0x210

    def test_lane_load_store(self, setup):
        memory, engine, regs = setup
        memory.write_value(0x300, -5, DType.I16)
        regs[1] = 0x300
        engine.execute(VLoadLane(QReg(0), 2, Reg(1), DType.I16, writeback=True), regs, memory)
        assert lanes.lane_get(engine.q[0], 2, DType.I16) == -5
        assert regs[1] == 0x302
        regs[2] = 0x400
        engine.execute(VStoreLane(QReg(0), 2, Reg(2), DType.I16), regs, memory)
        assert memory.read_value(0x400, DType.I16) == -5
        assert regs[2] == 0x400  # no writeback requested

    def test_stats_track_bytes(self, setup):
        memory, engine, regs = setup
        regs[5] = 0x100
        engine.execute(VLoad(QReg(0), Reg(5), DType.I32), regs, memory)
        engine.execute(VStore(QReg(0), Reg(5), DType.I32), regs, memory)
        assert engine.stats.bytes_loaded == 16
        assert engine.stats.bytes_stored == 16
        assert engine.stats.mem_ops == 2


class TestArithmetic:
    def test_vadd(self, setup):
        memory, engine, regs = setup
        engine.write_q(0, lanes.from_lanes([1, 2, 3, 4], DType.I32))
        engine.write_q(1, lanes.from_lanes([10, 20, 30, 40], DType.I32))
        engine.execute(VBinOp(VBinKind.VADD, QReg(2), QReg(0), QReg(1), DType.I32), regs, memory)
        np.testing.assert_array_equal(lanes.view(engine.q[2], DType.I32), [11, 22, 33, 44])
        assert engine.stats.arith_ops == 1

    def test_vdup_from_core_int(self, setup):
        memory, engine, regs = setup
        regs[3] = 7
        engine.execute(VDup(QReg(1), Reg(3), DType.I16), regs, memory)
        np.testing.assert_array_equal(lanes.view(engine.q[1], DType.I16), [7] * 8)

    def test_vdup_from_core_float(self, setup):
        memory, engine, regs = setup
        regs[3] = float_to_bits(2.5)
        engine.execute(VDup(QReg(1), Reg(3), DType.F32), regs, memory)
        np.testing.assert_array_equal(lanes.view(engine.q[1], DType.F32), [2.5] * 4)

    def test_vdup_imm(self, setup):
        memory, engine, regs = setup
        engine.execute(VDupImm(QReg(0), -1, DType.I8), regs, memory)
        np.testing.assert_array_equal(lanes.view(engine.q[0], DType.I8), [-1] * 16)

    def test_conditional_select_pipeline(self, setup):
        """vcgt + vbsl implements if (a>b) out=a else out=b."""
        memory, engine, regs = setup
        engine.write_q(0, lanes.from_lanes([1, 9, 3, 9], DType.I32))
        engine.write_q(1, lanes.from_lanes([5, 5, 5, 5], DType.I32))
        engine.execute(VCmp(VCmpKind.VCGT, QReg(2), QReg(0), QReg(1), DType.I32), regs, memory)
        engine.execute(VBsl(QReg(2), QReg(0), QReg(1)), regs, memory)
        np.testing.assert_array_equal(lanes.view(engine.q[2], DType.I32), [5, 9, 5, 9])

    def test_vmovq_copies(self, setup):
        memory, engine, regs = setup
        engine.write_q(4, lanes.broadcast(3, DType.I32))
        engine.execute(VMovQ(QReg(5), QReg(4)), regs, memory)
        np.testing.assert_array_equal(engine.q[5], engine.q[4])

    def test_lane_moves_between_files(self, setup):
        memory, engine, regs = setup
        regs[2] = 42
        engine.execute(VMovFromCore(QReg(0), 1, Reg(2), DType.I32), regs, memory)
        engine.execute(VMovToCore(Reg(9), QReg(0), 1, DType.I32), regs, memory)
        assert regs[9] == 42


class TestBurstsAndReset:
    def test_run_burst_from_assembly(self, setup):
        memory, engine, regs = setup
        alloc = Allocator(memory)
        a = np.arange(8, dtype=np.int32)
        pa = alloc.alloc_array(a)
        pout = alloc.alloc_zeros(DType.I32, 8)
        prog = assemble(
            """
            vld1.i32 q0, [r5]!
            vmovi.i32 q1, #100
            vadd.i32 q2, q0, q1
            vst1.i32 q2, [r7]!
            vld1.i32 q0, [r5]!
            vadd.i32 q2, q0, q1
            vst1.i32 q2, [r7]!
            """
        )
        regs[5], regs[7] = pa, pout
        events = engine.run(list(prog.instructions), regs, memory)
        np.testing.assert_array_equal(memory.read_array(pout, DType.I32, 8), a + 100)
        assert sum(1 for e in events if e.is_write) == 2

    def test_reset_clears_everything(self, setup):
        memory, engine, regs = setup
        engine.write_q(0, lanes.broadcast(1, DType.I8))
        engine.stats.arith_ops = 5
        engine.reset()
        assert engine.q[0].sum() == 0
        assert engine.stats.arith_ops == 0

    def test_snapshot_equivalence_pattern(self, setup):
        """The DSA verification pattern: burst on a clone == scalar result."""
        memory, engine, regs = setup
        alloc = Allocator(memory)
        a = np.arange(4, dtype=np.int32)
        pa = alloc.alloc_array(a)
        snapshot = memory.clone()
        # scalar-style update on the live memory
        memory.write_array(pa, a * 2)
        # vector burst on the snapshot
        prog = assemble(
            """
            vld1.i32 q0, [r5]
            vadd.i32 q0, q0, q0
            vst1.i32 q0, [r5]
            """
        )
        engine.run(list(prog.instructions), [0] * 5 + [pa] + [0] * 10, snapshot)
        assert snapshot.read_array(pa, DType.I32, 4).tolist() == memory.read_array(pa, DType.I32, 4).tolist()
