"""Energy and area model tests."""

import numpy as np
import pytest

from repro.isa import DType
from repro.compiler import ArrayParam, Binary, BinOp, Const, For, Kernel, Load, Store, Var, lower
from repro.compiler.ir import add, c, v
from repro.dsa import DynamicSIMDAssembler, DSAConfig
from repro.energy import AreaModel, EnergyModel, EnergyParams, EnergyReport
from repro.systems.runner import execute_kernel


def vecsum_kernel(n=200):
    return Kernel(
        "vecsum",
        [ArrayParam("a", DType.I32), ArrayParam("b", DType.I32), ArrayParam("out", DType.I32)],
        [For("i", c(0), c(n), [Store("out", v("i"), add(Load("a", v("i")), Load("b", v("i"))))])],
    )


def args(n=200):
    return {
        "a": np.arange(n, dtype=np.int32),
        "b": np.arange(n, dtype=np.int32),
        "out": np.zeros(n, np.int32),
    }


class TestEnergyReport:
    def test_total_is_sum_of_parts(self):
        r = EnergyReport(core_dynamic=1, memory_dynamic=2, neon_dynamic=3, dsa_dynamic=4, leakage=5)
        assert r.total == 15

    def test_savings(self):
        base = EnergyReport(core_dynamic=10)
        better = EnergyReport(core_dynamic=6)
        assert better.savings_over(base) == pytest.approx(0.4)
        assert base.savings_over(EnergyReport()) == 0.0

    def test_breakdown_keys(self):
        d = EnergyReport().breakdown()
        assert set(d) == {
            "core_dynamic_mj",
            "memory_dynamic_mj",
            "neon_dynamic_mj",
            "dsa_dynamic_mj",
            "leakage_mj",
            "total_mj",
        }


class TestEnergyModel:
    def test_scalar_run_has_no_neon_or_dsa_energy(self):
        run = execute_kernel(lower(vecsum_kernel()), args())
        report = EnergyModel().report(run.core, run.result)
        assert report.neon_dynamic == 0.0
        assert report.dsa_dynamic == 0.0
        assert report.core_dynamic > 0
        assert report.memory_dynamic > 0
        assert report.leakage > 0

    def test_dsa_run_saves_energy(self):
        """The paper's headline: runtime vectorization cuts total energy."""
        plain = execute_kernel(lower(vecsum_kernel(2000)), args(2000))
        base = EnergyModel().report(plain.core, plain.result)

        dsa = DynamicSIMDAssembler(DSAConfig())
        drun = execute_kernel(lower(vecsum_kernel(2000)), args(2000), attach=dsa.attach)
        dreport = EnergyModel().report(drun.core, drun.result, dsa=dsa)
        assert dreport.neon_dynamic > 0
        assert dreport.dsa_dynamic > 0
        assert dreport.savings_over(base) > 0

    def test_more_instructions_more_energy(self):
        small = execute_kernel(lower(vecsum_kernel(50)), args(50))
        big = execute_kernel(lower(vecsum_kernel(500)), args(500))
        m = EnergyModel()
        assert m.report(big.core, big.result).total > m.report(small.core, small.result).total

    def test_custom_params(self):
        run = execute_kernel(lower(vecsum_kernel(50)), args(50))
        hot = EnergyModel(EnergyParams(alu_pj=800.0))
        cold = EnergyModel(EnergyParams(alu_pj=0.8))
        assert hot.report(run.core, run.result).core_dynamic > cold.report(run.core, run.result).core_dynamic


class TestAreaModel:
    def test_paper_table3_overheads(self):
        model = AreaModel()
        assert model.logic_overhead_pct == pytest.approx(2.18, abs=0.01)
        assert model.total_overhead_pct == pytest.approx(10.37, abs=0.01)

    def test_rows_match_published_totals(self):
        model = AreaModel()
        logic = {r.component: r.total_um2 for r in model.logic_rows()}
        assert logic["ARM Core"] == 610_173
        assert logic["DSA"] == 13_274
        full = {r.component: r.total_um2 for r in model.full_rows()}
        assert full["ARM Core + Caches"] == 792_713
        assert full["DSA + Caches"] == 82_236

    def test_table_renders(self):
        text = AreaModel().table()
        assert "2.18%" in text and "10.37%" in text
