"""IR construction and validation tests."""

import pytest

from repro.errors import CompilerError
from repro.isa import DType
from repro.compiler import (
    ArrayParam,
    Binary,
    BinOp,
    Call,
    CmpOp,
    Compare,
    Const,
    For,
    Function,
    If,
    Kernel,
    Let,
    Load,
    Return,
    ScalarParam,
    Store,
    Var,
    While,
)
from repro.compiler.ir import add, c, mul, shr, sub, v, walk_exprs, walk_stmts


def simple_kernel(body, functions=()):
    return Kernel(
        "k",
        [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32), ScalarParam("n")],
        body,
        functions=list(functions),
    )


class TestValidation:
    def test_duplicate_params_rejected(self):
        with pytest.raises(CompilerError):
            Kernel("k", [ScalarParam("x"), ScalarParam("x")], [])

    def test_unknown_array_load_rejected(self):
        with pytest.raises(CompilerError):
            simple_kernel([Let("t", Load("nope", c(0)))])

    def test_unknown_array_store_rejected(self):
        with pytest.raises(CompilerError):
            simple_kernel([Store("nope", c(0), c(1))])

    def test_unknown_function_rejected(self):
        with pytest.raises(CompilerError):
            simple_kernel([Let("t", Call("f", (c(1),)))])

    def test_return_outside_function_rejected(self):
        with pytest.raises(CompilerError):
            simple_kernel([Return(c(0))])

    def test_zero_step_rejected(self):
        with pytest.raises(CompilerError):
            For("i", c(0), c(10), [], step=0)

    def test_function_with_loop_rejected(self):
        with pytest.raises(CompilerError):
            Function("f", ["x"], [For("i", c(0), c(3), [])])

    def test_function_with_load_rejected(self):
        with pytest.raises(CompilerError):
            Function("f", ["x"], [Return(Load("a", c(0)))])

    def test_function_too_many_params(self):
        with pytest.raises(CompilerError):
            Function("f", ["a", "b", "c"], [Return(c(0))])

    def test_valid_function_kernel(self):
        f = Function("double", ["x"], [Return(add(v("x"), v("x")))])
        k = simple_kernel(
            [For("i", c(0), c(4), [Store("out", v("i"), Call("double", (Load("a", v("i")),)))])],
            functions=[f],
        )
        assert k.function("double") is f


class TestWalkers:
    def test_walk_stmts_depth_first(self):
        inner = Store("out", v("i"), c(1))
        loop = For("i", c(0), c(4), [If(Compare(v("i"), CmpOp.LT, c(2)), [inner], [])])
        k = simple_kernel([loop])
        stmts = list(walk_stmts(k.body))
        assert loop in stmts and inner in stmts

    def test_walk_exprs_finds_nested_loads(self):
        k = simple_kernel(
            [Store("out", v("i"), mul(add(Load("a", v("i")), c(1)), c(2)))]
        )
        loads = [e for e in walk_exprs(k.body) if isinstance(e, Load)]
        assert len(loads) == 1

    def test_while_body_walked(self):
        k = simple_kernel([While(Compare(v("n"), CmpOp.GT, c(0)), [Let("n", sub(v("n"), c(1)))])])
        lets = [s for s in walk_stmts(k.body) if isinstance(s, Let)]
        assert len(lets) == 1


class TestHelpers:
    def test_shorthand_builders(self):
        e = shr(add(v("x"), c(1)), 2)
        assert isinstance(e, Binary) and e.op is BinOp.SHR
        assert str(e) == "((x + 1) >> 2)"

    def test_str_representations(self):
        assert str(Store("o", v("i"), c(3))) == "o[i] = 3"
        assert str(Compare(v("i"), CmpOp.NE, c(0))) == "i != 0"
        assert str(For("i", c(0), v("n"), [])) == "for i in 0..n step 1"
