"""Lowering correctness: every IR construct executes right on the core."""

import numpy as np
import pytest

from repro.errors import CompilerError
from repro.isa import DType
from repro.compiler import (
    ArrayParam,
    Binary,
    BinOp,
    Call,
    CmpOp,
    Compare,
    Const,
    For,
    Function,
    If,
    Kernel,
    Let,
    Load,
    Return,
    ScalarParam,
    Store,
    UnOp,
    Unary,
    Var,
    While,
    lower,
)
from repro.compiler.ir import add, c, mul, shl, shr, sub, v
from repro.systems.runner import execute_kernel


def run(kernel, **args):
    return execute_kernel(lower(kernel), args)


class TestStraightLine:
    def test_store_constant(self):
        k = Kernel("k", [ArrayParam("out", DType.I32)], [Store("out", c(2), c(99))])
        r = run(k, out=np.zeros(4, np.int32))
        assert r.array("out").tolist() == [0, 0, 99, 0]

    def test_let_and_arith(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32), ScalarParam("x")],
            [
                Let("t", add(mul(v("x"), c(3)), c(1))),
                Store("out", c(0), v("t")),
                Store("out", c(1), shr(v("t"), 1)),
                Store("out", c(2), shl(v("t"), 2)),
                Store("out", c(3), Binary(BinOp.AND, v("t"), c(0xF))),
            ],
        )
        r = run(k, out=np.zeros(4, np.int32), x=7)
        assert r.array("out").tolist() == [22, 11, 88, 22 & 0xF]

    def test_unary_ops(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32), ScalarParam("x")],
            [
                Store("out", c(0), Unary(UnOp.NEG, v("x"))),
                Store("out", c(1), Unary(UnOp.ABS, v("x"))),
                Store("out", c(2), Unary(UnOp.NOT, c(0))),
            ],
        )
        r = run(k, out=np.zeros(3, np.int32), x=-5)
        assert r.array("out").tolist() == [5, 5, -1]

    def test_min_max(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32), ScalarParam("x"), ScalarParam("y")],
            [
                Store("out", c(0), Binary(BinOp.MIN, v("x"), v("y"))),
                Store("out", c(1), Binary(BinOp.MAX, v("x"), v("y"))),
            ],
        )
        r = run(k, out=np.zeros(2, np.int32), x=-3, y=10)
        assert r.array("out").tolist() == [-3, 10]


class TestControlFlow:
    def test_if_else(self):
        def make(x):
            k = Kernel(
                "k",
                [ArrayParam("out", DType.I32), ScalarParam("x")],
                [
                    If(
                        Compare(v("x"), CmpOp.GT, c(5)),
                        [Store("out", c(0), c(1))],
                        [Store("out", c(0), c(2))],
                    )
                ],
            )
            return run(k, out=np.zeros(1, np.int32), x=x).array("out")[0]

        assert make(10) == 1
        assert make(3) == 2

    def test_if_without_else(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32), ScalarParam("x")],
            [If(Compare(v("x"), CmpOp.EQ, c(0)), [Store("out", c(0), c(7))], [])],
        )
        assert run(k, out=np.zeros(1, np.int32), x=0).array("out")[0] == 7
        assert run(k, out=np.zeros(1, np.int32), x=1).array("out")[0] == 0

    def test_while_countdown(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32), ScalarParam("n")],
            [
                Let("i", v("n")),
                Let("s", c(0)),
                While(
                    Compare(v("i"), CmpOp.GT, c(0)),
                    [Let("s", add(v("s"), v("i"))), Let("i", sub(v("i"), c(1)))],
                ),
                Store("out", c(0), v("s")),
            ],
        )
        assert run(k, out=np.zeros(1, np.int32), n=10).array("out")[0] == 55

    def test_for_with_dynamic_bound(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32), ScalarParam("n")],
            [For("i", c(0), v("n"), [Store("out", v("i"), mul(v("i"), v("i")))])],
        )
        r = run(k, out=np.zeros(8, np.int32), n=5)
        assert r.array("out").tolist() == [0, 1, 4, 9, 16, 0, 0, 0]

    def test_zero_trip_loop(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32), ScalarParam("n")],
            [For("i", c(0), v("n"), [Store("out", v("i"), c(1))])],
        )
        r = run(k, out=np.zeros(4, np.int32), n=0)
        assert r.array("out").tolist() == [0, 0, 0, 0]

    def test_negative_step(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32)],
            [For("i", c(3), c(-1), [Store("out", v("i"), v("i"))], step=-1)],
        )
        r = run(k, out=np.zeros(4, np.int32))
        assert r.array("out").tolist() == [0, 1, 2, 3]

    def test_nested_loops_matrix_fill(self):
        k = Kernel(
            "k",
            [ArrayParam("out", DType.I32), ScalarParam("w")],
            [
                For(
                    "y",
                    c(0),
                    c(3),
                    [
                        For(
                            "x",
                            c(0),
                            c(4),
                            [Store("out", add(mul(v("y"), v("w")), v("x")), add(v("y"), v("x")))],
                        )
                    ],
                )
            ],
        )
        r = run(k, out=np.zeros(12, np.int32), w=4)
        expected = [[y + x for x in range(4)] for y in range(3)]
        assert r.array("out").tolist() == [e for row in expected for e in row]


class TestDataTypes:
    @pytest.mark.parametrize(
        "dtype,values",
        [
            (DType.U8, [250, 251, 252, 253]),
            (DType.I8, [-4, -3, 2, 3]),
            (DType.U16, [65000, 1, 2, 3]),
            (DType.I16, [-300, 300, -1, 1]),
        ],
    )
    def test_narrow_copy(self, dtype, values):
        k = Kernel(
            "k",
            [ArrayParam("a", dtype), ArrayParam("out", dtype)],
            [For("i", c(0), c(4), [Store("out", v("i"), Load("a", v("i")))])],
        )
        arr = np.array(values, dtype=dtype.numpy)
        r = run(k, a=arr, out=np.zeros(4, dtype.numpy))
        assert r.array("out").tolist() == arr.tolist()

    def test_float_arithmetic(self):
        k = Kernel(
            "k",
            [ArrayParam("a", DType.F32), ArrayParam("b", DType.F32), ArrayParam("out", DType.F32)],
            [
                For(
                    "i", c(0), c(4),
                    [Store("out", v("i"), add(mul(Load("a", v("i")), Load("b", v("i"))), Load("a", v("i"))))],
                )
            ],
        )
        a = np.array([1.0, 2.0, 3.0, 4.0], np.float32)
        b = np.array([0.5, 0.5, 2.0, 2.0], np.float32)
        r = run(k, a=a, b=b, out=np.zeros(4, np.float32))
        np.testing.assert_allclose(r.array("out"), a * b + a)


class TestFunctions:
    def test_function_loop(self):
        f = Function(
            "clamp",
            ["x"],
            [
                If(Compare(v("x"), CmpOp.GT, c(100)), [Return(c(100))], []),
                If(Compare(v("x"), CmpOp.LT, c(0)), [Return(c(0))], []),
                Return(v("x")),
            ],
        )
        k = Kernel(
            "k",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [For("i", c(0), c(5), [Store("out", v("i"), Call("clamp", (Load("a", v("i")),)))])],
            functions=[f],
        )
        a = np.array([-5, 50, 150, 0, 101], np.int32)
        r = run(k, a=a, out=np.zeros(5, np.int32))
        assert r.array("out").tolist() == [0, 50, 100, 0, 100]

    def test_two_argument_function(self):
        f = Function("wsum", ["x", "y"], [Return(add(mul(v("x"), c(3)), v("y")))])
        k = Kernel(
            "k",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(0), c(4),
                    [Store("out", v("i"), Call("wsum", (Load("a", v("i")), v("i"))))],
                )
            ],
            functions=[f],
        )
        a = np.array([1, 2, 3, 4], np.int32)
        r = run(k, a=a, out=np.zeros(4, np.int32))
        assert r.array("out").tolist() == [3 * 1 + 0, 3 * 2 + 1, 3 * 3 + 2, 3 * 4 + 3]


class TestSpilling:
    def test_many_locals_spill_to_frame(self):
        # more locals than registers: forces spill slots
        lets = [Let(f"v{i}", c(i * 10)) for i in range(14)]
        stores = [Store("out", c(i), v(f"v{i}")) for i in range(14)]
        k = Kernel("k", [ArrayParam("out", DType.I32)], lets + stores)
        low = lower(k)
        assert low.frame_size > 0
        r = execute_kernel(low, {"out": np.zeros(14, np.int32)})
        assert r.array("out").tolist() == [i * 10 for i in range(14)]

    def test_missing_argument_raises(self):
        from repro.errors import ConfigError

        k = Kernel("k", [ArrayParam("out", DType.I32), ScalarParam("n")], [])
        with pytest.raises(ConfigError):
            execute_kernel(lower(k), {"out": np.zeros(1, np.int32)})

    def test_unknown_argument_raises(self):
        from repro.errors import ConfigError

        k = Kernel("k", [ArrayParam("out", DType.I32)], [])
        with pytest.raises(ConfigError):
            execute_kernel(lower(k), {"out": np.zeros(1, np.int32), "zzz": 3})
