"""Static loop analysis tests: affine decomposition, deps, classification."""

import pytest

from repro.isa import DType
from repro.compiler import (
    ArrayParam,
    Binary,
    BinOp,
    Call,
    CmpOp,
    Compare,
    Const,
    For,
    Function,
    If,
    Kernel,
    Let,
    Load,
    LoopClass,
    Return,
    ScalarParam,
    Store,
    Var,
    While,
    analyze_loop,
    carried_scalars,
    classify_loop,
    loop_census,
    split_affine,
)
from repro.compiler.ir import add, c, mul, sub, v


def kernel_with(body, functions=(), extra_arrays=()):
    params = [
        ArrayParam("a", DType.I32),
        ArrayParam("b", DType.I32),
        ArrayParam("out", DType.I32),
        ScalarParam("n"),
    ]
    params += [ArrayParam(name, dt) for name, dt in extra_arrays]
    return Kernel("k", params, body, functions=list(functions))


class TestSplitAffine:
    def test_plain_var(self):
        aff = split_affine(v("i"), "i")
        assert aff.coeff == 1 and aff.const == 0 and aff.base_terms == ()

    def test_var_plus_const(self):
        aff = split_affine(add(v("i"), c(3)), "i")
        assert aff.coeff == 1 and aff.const == 3

    def test_var_minus_const(self):
        aff = split_affine(sub(v("i"), c(2)), "i")
        assert aff.const == -2

    def test_invariant_base(self):
        expr = add(mul(v("row"), v("w")), v("i"))
        aff = split_affine(expr, "i")
        assert aff.coeff == 1
        assert len(aff.base_terms) == 1

    def test_nonlinear_rejected(self):
        assert split_affine(mul(v("i"), c(2)), "i") is None
        assert split_affine(mul(v("i"), v("i")), "i") is None

    def test_indirect_rejected(self):
        assert split_affine(Load("a", v("i")), "i") is None

    def test_no_var_gives_zero_coeff(self):
        aff = split_affine(add(v("x"), c(1)), "i")
        assert aff.coeff == 0

    def test_same_base_same_key(self):
        e1 = add(mul(v("r"), v("w")), v("i"))
        e2 = add(mul(v("r"), v("w")), add(v("i"), c(1)))
        a1, a2 = split_affine(e1, "i"), split_affine(e2, "i")
        assert a1.base_key == a2.base_key
        assert a1.const != a2.const


class TestCarriedScalars:
    def test_reduction_detected(self):
        loop = For("i", c(0), c(8), [Let("acc", add(v("acc"), Load("a", v("i"))))])
        assert "acc" in carried_scalars(loop)

    def test_write_before_read_not_carried(self):
        loop = For(
            "i",
            c(0),
            c(8),
            [Let("t", Load("a", v("i"))), Store("out", v("i"), add(v("t"), c(1)))],
        )
        assert carried_scalars(loop) == set()

    def test_loop_var_not_carried(self):
        loop = For("i", c(0), c(8), [Store("out", v("i"), v("i"))])
        assert carried_scalars(loop) == set()

    def test_invariant_param_not_carried(self):
        loop = For("i", c(0), c(8), [Store("out", v("i"), v("n"))])
        assert carried_scalars(loop) == set()


class TestDependencyAnalysis:
    def test_clean_elementwise(self):
        loop = For("i", c(0), c(64), [Store("out", v("i"), Load("a", v("i")))])
        feats = analyze_loop(loop, kernel_with([loop]))
        assert not feats.possible_cross_iteration_dep
        assert feats.static_bounds and feats.trip_count == 64

    def test_same_index_rmw_is_clean(self):
        loop = For("i", c(0), c(64), [Store("out", v("i"), add(Load("out", v("i")), c(1)))])
        feats = analyze_loop(loop, kernel_with([loop]))
        assert not feats.possible_cross_iteration_dep

    def test_offset_read_write_is_dependency(self):
        # out[i] = out[i-1] + a[i]  — the paper's Fig. 8(b)
        loop = For(
            "i", c(1), c(64),
            [Store("out", v("i"), add(Load("out", sub(v("i"), c(1))), Load("a", v("i"))))],
        )
        feats = analyze_loop(loop, kernel_with([loop]))
        assert feats.possible_cross_iteration_dep

    def test_scalar_index_store_is_dependency(self):
        loop = For("i", c(0), c(8), [Store("out", c(0), Load("out", c(0)))])
        feats = analyze_loop(loop, kernel_with([loop]))
        assert feats.possible_cross_iteration_dep

    def test_mixed_widths_flagged(self):
        loop = For("i", c(0), c(8), [Store("w", v("i"), Load("a", v("i")))])
        k = kernel_with([loop], extra_arrays=[("w", DType.I16)])
        feats = analyze_loop(loop, k)
        assert feats.mixed_element_width

    def test_dynamic_bound_flagged(self):
        loop = For("i", c(0), v("n"), [Store("out", v("i"), c(0))])
        feats = analyze_loop(loop, kernel_with([loop]))
        assert not feats.static_bounds and feats.trip_count is None


class TestClassification:
    def test_count_loop(self):
        loop = For("i", c(0), c(8), [Store("out", v("i"), Load("a", v("i")))])
        assert classify_loop(loop, kernel_with([loop])) is LoopClass.COUNT

    def test_dynamic_range_loop(self):
        loop = For("i", c(0), v("n"), [Store("out", v("i"), Load("a", v("i")))])
        assert classify_loop(loop, kernel_with([loop])) is LoopClass.DYNAMIC_RANGE

    def test_conditional_loop(self):
        loop = For(
            "i", c(0), c(8),
            [If(Compare(Load("a", v("i")), CmpOp.GT, c(0)), [Store("out", v("i"), c(1))], [])],
        )
        assert classify_loop(loop, kernel_with([loop])) is LoopClass.CONDITIONAL

    def test_sentinel_loop(self):
        loop = While(Compare(v("x"), CmpOp.NE, c(0)), [Let("x", sub(v("x"), c(1)))])
        assert classify_loop(loop, kernel_with([loop])) is LoopClass.SENTINEL

    def test_function_loop(self):
        f = Function("g", ["x"], [Return(add(v("x"), c(1)))])
        loop = For("i", c(0), c(8), [Store("out", v("i"), Call("g", (Load("a", v("i")),)))])
        k = kernel_with([loop], functions=[f])
        assert classify_loop(loop, k) is LoopClass.FUNCTION

    def test_non_vectorizable_reduction(self):
        loop = For("i", c(0), c(8), [Let("s", add(v("s"), Load("a", v("i"))))])
        assert classify_loop(loop, kernel_with([Let("s", c(0)), loop])) is LoopClass.NON_VECTORIZABLE

    def test_census_counts_all_loops(self):
        inner = For("j", c(0), c(4), [Store("out", v("j"), c(0))])
        outer = For("i", c(0), v("n"), [inner])
        k = kernel_with([outer])
        census = loop_census(k)
        assert census[LoopClass.DYNAMIC_RANGE] == 1
        assert census[LoopClass.COUNT] == 1
