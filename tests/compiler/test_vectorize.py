"""Static vectorizer tests: decisions match the paper's Table 1, and the
vectorized binaries compute exactly what the scalar binaries compute."""

import numpy as np
import pytest

from repro.isa import DType
from repro.compiler import (
    ArrayParam,
    AutoVectorizer,
    Binary,
    BinOp,
    Call,
    CmpOp,
    Compare,
    Const,
    For,
    Function,
    HandVectorizer,
    If,
    Kernel,
    Let,
    Load,
    Return,
    ScalarParam,
    Store,
    Var,
    While,
    lower,
)
from repro.compiler.ir import add, c, mul, shr, sub, v
from repro.systems.runner import execute_kernel


def elementwise_kernel(n=64, end=None):
    """out[i] = (a[i] + b[i]) * 3 for i in 0..n (static or dynamic end)."""
    bound = end if end is not None else c(n)
    return Kernel(
        "ew",
        [
            ArrayParam("a", DType.I32),
            ArrayParam("b", DType.I32),
            ArrayParam("out", DType.I32),
            ScalarParam("n"),
        ],
        [
            For(
                "i", c(0), bound,
                [Store("out", v("i"), mul(add(Load("a", v("i")), Load("b", v("i"))), c(3)))],
            )
        ],
    )


def run_both(kernel, vectorizer, args_factory):
    scalar = execute_kernel(lower(kernel), args_factory())
    vec_lowered = lower(kernel, vectorizer=vectorizer)
    vec = execute_kernel(vec_lowered, args_factory())
    return scalar, vec, vec_lowered


def int_args(n=64, extra=None):
    def factory():
        rng = np.random.default_rng(42)
        args = {
            "a": rng.integers(-100, 100, n).astype(np.int32),
            "b": rng.integers(-100, 100, n).astype(np.int32),
            "out": np.zeros(n, np.int32),
            "n": n,
        }
        args.update(extra or {})
        return args

    return factory


class TestAutoVectorizerDecisions:
    def test_vectorizes_static_count_loop(self):
        av = AutoVectorizer()
        low = lower(elementwise_kernel(64), vectorizer=av)
        assert low.vectorized_loops == ["i"]
        assert av.decisions[0].vectorized

    def test_rejects_dynamic_range_with_guard(self):
        av = AutoVectorizer()
        low = lower(elementwise_kernel(end=v("n")), vectorizer=av)
        assert low.vectorized_loops == []
        assert low.guarded_loops == ["i"]
        assert av.decisions[0].reason == "dynamic trip count"

    def test_rejects_conditional_loop(self):
        k = Kernel(
            "cond",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(0), c(32),
                    [
                        If(
                            Compare(Load("a", v("i")), CmpOp.GT, c(0)),
                            [Store("out", v("i"), c(1))],
                            [Store("out", v("i"), c(0))],
                        )
                    ],
                )
            ],
        )
        av = AutoVectorizer()
        low = lower(k, vectorizer=av)
        assert low.vectorized_loops == []
        assert av.decisions[0].reason == "conditional body"
        assert low.guarded_loops == []  # conditionals are not even attempted

    def test_rejects_function_loop(self):
        f = Function("g", ["x"], [Return(add(v("x"), c(1)))])
        k = Kernel(
            "fn",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [For("i", c(0), c(32), [Store("out", v("i"), Call("g", (Load("a", v("i")),)))])],
            functions=[f],
        )
        av = AutoVectorizer()
        lower(k, vectorizer=av)
        assert av.decisions[0].reason == "function call in body"

    def test_rejects_cross_iteration_dependency(self):
        k = Kernel(
            "dep",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(1), c(32),
                    [Store("out", v("i"), add(Load("out", sub(v("i"), c(1))), Load("a", v("i"))))],
                )
            ],
        )
        av = AutoVectorizer()
        low = lower(k, vectorizer=av)
        assert av.decisions[0].reason == "unprovable dependency"
        assert low.guarded_loops == ["i"]  # versioning attempt

    def test_rejects_reduction(self):
        k = Kernel(
            "red",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                Let("s", c(0)),
                For("i", c(0), c(32), [Let("s", add(v("s"), Load("a", v("i"))))]),
                Store("out", c(0), v("s")),
            ],
        )
        av = AutoVectorizer()
        low = lower(k, vectorizer=av)
        assert av.decisions[0].reason == "carry-around scalar"
        assert low.guarded_loops == []

    def test_rejects_mixed_widths(self):
        k = Kernel(
            "mix",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I16)],
            [For("i", c(0), c(32), [Store("out", v("i"), Load("a", v("i")))])],
        )
        av = AutoVectorizer()
        lower(k, vectorizer=av)
        assert av.decisions[0].reason == "mixed element widths"

    def test_rejects_sub_vector_trip_count(self):
        av = AutoVectorizer()
        low = lower(elementwise_kernel(3), vectorizer=av)
        assert low.vectorized_loops == []


class TestAutoVectorizedExecution:
    @pytest.mark.parametrize("n", [4, 16, 37, 64, 100])
    def test_matches_scalar_with_leftovers(self, n):
        scalar, vec, _ = run_both(elementwise_kernel(n), AutoVectorizer(), int_args(n))
        np.testing.assert_array_equal(scalar.array("out"), vec.array("out"))

    def test_vector_is_faster_at_scale(self):
        n = 512
        scalar, vec, _ = run_both(elementwise_kernel(n), AutoVectorizer(), int_args(n))
        assert vec.cycles < scalar.cycles

    def test_read_modify_write_stream(self):
        n = 32
        k = Kernel(
            "rmw",
            [ArrayParam("out", DType.I32), ArrayParam("a", DType.I32)],
            [For("i", c(0), c(n), [Store("out", v("i"), add(Load("out", v("i")), Load("a", v("i"))))])],
        )

        def args():
            return {"out": np.arange(n, dtype=np.int32), "a": np.ones(n, np.int32)}

        scalar, vec, low = run_both(k, AutoVectorizer(), args)
        assert low.vectorized_loops == ["i"]
        np.testing.assert_array_equal(scalar.array("out"), vec.array("out"))

    def test_stencil_with_offsets(self):
        n = 64
        k = Kernel(
            "stencil",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(1), c(n - 1),
                    [
                        Store(
                            "out", v("i"),
                            add(add(Load("a", sub(v("i"), c(1))), Load("a", v("i"))), Load("a", add(v("i"), c(1)))),
                        )
                    ],
                )
            ],
        )

        def args():
            return {"a": np.arange(n, dtype=np.int32) ** 2 % 97, "out": np.zeros(n, np.int32)}

        scalar, vec, low = run_both(k, AutoVectorizer(), args)
        assert low.vectorized_loops == ["i"]
        np.testing.assert_array_equal(scalar.array("out"), vec.array("out"))

    def test_u8_sixteen_lanes(self):
        n = 50
        k = Kernel(
            "sat",
            [ArrayParam("a", DType.U8), ArrayParam("b", DType.U8), ArrayParam("out", DType.U8)],
            [
                For(
                    "i", c(0), c(n),
                    [Store("out", v("i"), Binary(BinOp.MIN, add(Load("a", v("i")), Load("b", v("i"))), c(200)))],
                )
            ],
        )
        def args():
            rng = np.random.default_rng(7)
            return {
                "a": rng.integers(0, 100, n).astype(np.uint8),
                "b": rng.integers(0, 100, n).astype(np.uint8),
                "out": np.zeros(n, np.uint8),
            }

        scalar, vec, low = run_both(k, AutoVectorizer(), args)
        assert low.vectorized_loops == ["i"]
        np.testing.assert_array_equal(scalar.array("out"), vec.array("out"))

    def test_float_lanes(self):
        n = 40
        k = Kernel(
            "fmadd",
            [ArrayParam("a", DType.F32), ArrayParam("b", DType.F32), ArrayParam("out", DType.F32)],
            [For("i", c(0), c(n), [Store("out", v("i"), add(mul(Load("a", v("i")), Load("b", v("i"))), Load("a", v("i"))))])],
        )
        def args():
            rng = np.random.default_rng(3)
            return {
                "a": rng.random(n).astype(np.float32),
                "b": rng.random(n).astype(np.float32),
                "out": np.zeros(n, np.float32),
            }

        scalar, vec, low = run_both(k, AutoVectorizer(), args)
        assert low.vectorized_loops == ["i"]
        np.testing.assert_array_equal(scalar.array("out"), vec.array("out"))


class TestHandVectorizer:
    def test_static_knowledge_only_no_dynamic_range(self):
        """Hand coding is static (paper, Table 2): runtime trip counts stay
        scalar, exactly like the compiler — only the DSA reaches them."""
        hv = HandVectorizer()
        k = elementwise_kernel(end=v("n"))
        low = lower(k, vectorizer=hv)
        assert low.vectorized_loops == []
        assert hv.decisions[0].reason == "dynamic trip count"
        # no versioning guards either: a human does not emit fallback checks
        assert low.guarded_loops == []
        for n in [5, 39]:
            scalar = execute_kernel(lower(k), int_args(n)())
            vec = execute_kernel(low, int_args(n)())
            np.testing.assert_array_equal(scalar.array("out"), vec.array("out"))

    def test_handles_conditional_two_store(self):
        n = 48
        k = Kernel(
            "cond",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(0), c(n),
                    [
                        If(
                            Compare(Load("a", v("i")), CmpOp.GT, c(0)),
                            [Store("out", v("i"), mul(Load("a", v("i")), c(2)))],
                            [Store("out", v("i"), c(-1))],
                        )
                    ],
                )
            ],
        )
        def args():
            rng = np.random.default_rng(5)
            return {"a": rng.integers(-50, 50, n).astype(np.int32), "out": np.zeros(n, np.int32)}

        scalar, vec, low = run_both(k, HandVectorizer(), args)
        assert low.vectorized_loops == ["i"]
        np.testing.assert_array_equal(scalar.array("out"), vec.array("out"))

    def test_handles_conditional_single_store(self):
        n = 32
        # if a[i] < out[i]: out[i] = a[i]   (relaxation, Dijkstra-style)
        k = Kernel(
            "relax",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                For(
                    "i", c(0), c(n),
                    [
                        If(
                            Compare(Load("a", v("i")), CmpOp.LT, Load("out", v("i"))),
                            [Store("out", v("i"), Load("a", v("i")))],
                            [],
                        )
                    ],
                )
            ],
        )
        def args():
            rng = np.random.default_rng(11)
            return {
                "a": rng.integers(0, 100, n).astype(np.int32),
                "out": rng.integers(0, 100, n).astype(np.int32),
            }

        scalar, vec, low = run_both(k, HandVectorizer(), args)
        assert low.vectorized_loops == ["i"]
        np.testing.assert_array_equal(scalar.array("out"), vec.array("out"))

    def test_does_not_touch_sentinel_loops(self):
        k = Kernel(
            "sent",
            [ArrayParam("a", DType.I32), ArrayParam("out", DType.I32)],
            [
                Let("i", c(0)),
                While(
                    Compare(Load("a", v("i")), CmpOp.NE, c(0)),
                    [Store("out", v("i"), Load("a", v("i"))), Let("i", add(v("i"), c(1)))],
                ),
            ],
        )
        hv = HandVectorizer()
        low = lower(k, vectorizer=hv)
        assert low.vectorized_loops == []

        a = np.array([5, 4, 3, 0, 9], np.int32)
        r = execute_kernel(low, {"a": a, "out": np.zeros(5, np.int32)})
        assert r.array("out").tolist() == [5, 4, 3, 0, 0]

    def test_glue_overhead_emitted(self):
        low = lower(elementwise_kernel(64), vectorizer=HandVectorizer())
        assert low.glue_instructions > 0
        low_auto = lower(elementwise_kernel(64), vectorizer=AutoVectorizer())
        assert low_auto.glue_instructions == 0

    def test_hand_slower_than_autovec_on_static_loops(self):
        """Library glue makes hand code slightly slower where autovec works."""
        n = 64
        _, auto, _ = run_both(elementwise_kernel(n), AutoVectorizer(), int_args(n))
        _, hand, _ = run_both(elementwise_kernel(n), HandVectorizer(), int_args(n))
        assert hand.cycles >= auto.cycles


class TestGuardCost:
    def test_guard_adds_small_overhead(self):
        k = elementwise_kernel(end=v("n"))
        n = 256
        plain = execute_kernel(lower(k), int_args(n)())
        guarded = execute_kernel(lower(k, vectorizer=AutoVectorizer()), int_args(n)())
        assert guarded.cycles > plain.cycles
        # the penalty is small (paper reports 1-3%)
        assert guarded.cycles < plain.cycles * 1.10
