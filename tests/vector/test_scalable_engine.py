"""Unit tests for the scalable engine and the backend factory."""

import numpy as np
import pytest

from repro.cpu import Core
from repro.errors import ConfigError, ExecutionError
from repro.isa import assemble
from repro.isa.dtypes import DType
from repro.isa.neon import QReg, Reg, VBinKind, VBinOp, VDupImm, VLoad, VStore
from repro.memory import MainMemory
from repro.neon import NeonEngine
from repro.vector import (
    BACKEND_NAMES,
    VALID_VECTOR_LENGTHS,
    ScalableEngine,
    VectorBackend,
    get_backend,
)


class TestGetBackend:
    def test_neon(self):
        backend = get_backend("neon")
        assert isinstance(backend, NeonEngine)
        assert (backend.name, backend.vl_bits, backend.width_bytes) == ("neon", 128, 16)

    @pytest.mark.parametrize("vl", VALID_VECTOR_LENGTHS)
    def test_scalable_all_lengths(self, vl):
        backend = get_backend("scalable", vl)
        assert isinstance(backend, ScalableEngine)
        assert (backend.vl_bits, backend.width_bytes) == (vl, vl // 8)

    def test_both_satisfy_the_protocol(self):
        for name in BACKEND_NAMES:
            assert isinstance(get_backend(name), VectorBackend)

    def test_neon_rejects_wide_vl(self):
        with pytest.raises(ConfigError, match="fixed at VL=128"):
            get_backend("neon", 256)

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown vector backend"):
            get_backend("avx512")

    def test_invalid_vector_length(self):
        with pytest.raises(ConfigError, match="vector length"):
            get_backend("scalable", 192)


class TestScalableGeometry:
    def test_lanes_scale_with_vl(self):
        assert get_backend("scalable", 128).lanes_for(DType.I32) == 4
        assert get_backend("scalable", 256).lanes_for(DType.I32) == 8
        assert get_backend("scalable", 512).lanes_for(DType.U8) == 64
        assert get_backend("scalable", 1024).lanes_for(DType.I64) == 16

    def test_register_file_is_sixteen_wide_registers(self):
        engine = get_backend("scalable", 512)
        assert engine.num_regs == 16
        assert all(engine.read_reg(i).nbytes == 64 for i in range(16))

    def test_write_reg_validates_width(self):
        engine = get_backend("scalable", 256)
        engine.write_reg(3, np.arange(32, dtype=np.uint8))
        assert engine.read_reg(3)[31] == 31
        with pytest.raises(ExecutionError, match="32 bytes"):
            engine.write_reg(3, np.zeros(16, dtype=np.uint8))


class TestScalableExecution:
    def setup_method(self):
        self.engine = ScalableEngine(256)
        self.memory = MainMemory(1 << 16)
        self.regs = [0] * 16

    def test_full_width_load_store_roundtrip(self):
        payload = bytes(range(32))
        self.memory.write(0x100, payload)
        self.regs[0], self.regs[1] = 0x100, 0x200
        events = self.engine.execute(
            VLoad(QReg(2), Reg(0), DType.U8), self.regs, self.memory
        )
        assert (events[0].addr, events[0].nbytes, events[0].is_write) == (0x100, 32, False)
        self.engine.execute(VStore(QReg(2), Reg(1), DType.U8), self.regs, self.memory)
        assert bytes(self.memory.view(0x200, 32)) == payload

    def test_writeback_advances_by_full_width(self):
        self.regs[0] = 0x100
        self.engine.execute(
            VLoad(QReg(0), Reg(0), DType.U8, writeback=True), self.regs, self.memory
        )
        assert self.regs[0] == 0x100 + 32

    def test_predicated_load_zeroes_inactive_tail(self):
        self.memory.write(0x100, bytes([0xAB]) * 32)
        self.regs[0] = 0x100
        self.engine.set_predicate(3, DType.I32)  # 12 of 32 bytes active
        events = self.engine.execute(
            VLoad(QReg(1), Reg(0), DType.I32), self.regs, self.memory
        )
        assert events[0].nbytes == 12
        image = self.engine.read_reg(1)
        assert bytes(image[:12]) == bytes([0xAB]) * 12
        assert bytes(image[12:]) == bytes(20)

    def test_predicated_store_writes_only_active_bytes(self):
        sentinel = bytes([0xEE]) * 32
        self.memory.write(0x300, sentinel)
        self.engine.write_reg(4, np.arange(32, dtype=np.uint8))
        self.regs[0] = 0x300
        self.engine.set_predicate(5, DType.U16)  # 10 bytes active
        self.engine.execute(VStore(QReg(4), Reg(0), DType.U16), self.regs, self.memory)
        assert bytes(self.memory.view(0x300, 10)) == bytes(range(10))
        assert bytes(self.memory.view(0x30A, 22)) == sentinel[10:]

    def test_predicate_clears_and_validates(self):
        self.engine.set_predicate(0, DType.I32)
        assert self.engine.pred_bytes == 0
        self.engine.clear_predicate()
        assert self.engine.pred_bytes == 32
        with pytest.raises(ExecutionError, match="does not fit"):
            self.engine.set_predicate(9, DType.I32)  # 36 > 32 bytes

    def test_arithmetic_spans_every_lane(self):
        self.engine.execute(VDupImm(QReg(0), 3, DType.I32), self.regs, self.memory)
        self.engine.execute(VDupImm(QReg(1), 4, DType.I32), self.regs, self.memory)
        self.engine.execute(
            VBinOp(VBinKind.VADD, QReg(2), QReg(0), QReg(1), DType.I32),
            self.regs, self.memory,
        )
        result = self.engine.read_reg(2).view(np.int32)
        assert result.tolist() == [7] * 8

    def test_reset_restores_pristine_state(self):
        self.engine.write_reg(0, np.ones(32, dtype=np.uint8))
        self.engine.set_predicate(1, DType.I32)
        self.engine.stats.arith_ops = 9
        self.engine.reset()
        assert not self.engine.read_reg(0).any()
        assert self.engine.pred_bytes == 32
        assert self.engine.stats.arith_ops == 0


class TestPerRunStatsReset:
    """Regression: a core reused across runs must not leak vector-op
    counters from one run (or from attach-time warm-up) into the next."""

    SOURCE = """
            mov r0, #0
        loop:
            add r0, r0, #1
            cmp r0, #5
            blt loop
            halt
    """

    def test_fresh_run_starts_from_zero(self):
        core = Core(assemble(self.SOURCE), MainMemory(1 << 16))
        core.vector.stats.arith_ops = 7  # e.g. left over from a prior probe
        core.run()
        assert core.vector.stats.arith_ops == 0

    def test_continuation_keeps_accumulating(self):
        core = Core(assemble(self.SOURCE), MainMemory(1 << 16))
        try:
            core.run(max_instructions=3)  # cut mid-run
        except Exception:
            pass
        core.vector.stats.arith_ops = 7  # stand-in for mid-run vector work
        core.run()  # resumes: must NOT reset
        assert core.vector.stats.arith_ops == 7
