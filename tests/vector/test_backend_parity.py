"""Differential parity: the scalable backend against NEON.

The scalable engine at VL=128 is architecturally the same machine as the
NEON engine, so every microkernel must produce a byte-identical RunResult
on it — including the committed golden snapshot.  At wider VLs the DSA's
bursts are timing-only (the scalar core computes all architected results),
so only the timing and energy channels may move; the architected memory
image, register file, instruction counts and golden outputs must not.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.systems.campaign import CampaignRunner, RunSpec, build_workload, execute_spec
from repro.systems.setups import run_system
from repro.workloads.synthetic import LOOP_TYPE_MICROKERNELS

MICRO_KINDS = sorted(LOOP_TYPE_MICROKERNELS)
STATIC_SYSTEMS = ("arm_original", "neon_autovec", "neon_handvec")
GOLDEN_PATH = Path(__file__).parent.parent / "cpu" / "golden_microkernels.json"

#: RunResult channels that legitimately move with the vector width
#: (wider bursts change cycle counts, cache traffic, DSA counters and the
#: energy they imply); everything else must match across backends exactly
TIMING_KEYS = frozenset(
    {"cycles", "seconds", "energy", "timing_stats", "dsa_stats", "hierarchy_stats"}
)


def canonical(d: dict) -> str:
    return json.dumps(d, sort_keys=True)


def stripped(d: dict) -> dict:
    """Drop the backend identity keys, which are the only allowed delta
    between a NEON record and a scalable@128 record."""
    d = dict(d)
    d.pop("backend", None)
    d.pop("vl", None)
    return d


_memo: dict = {}


def result_dict(kind: str, system: str = "neon_dsa",
                backend: str = "neon", vl: int = 128) -> dict:
    key = (kind, system, backend, vl)
    if key not in _memo:
        spec = RunSpec(f"micro:{kind}", system, seed=3, backend=backend, vl=vl)
        _memo[key] = execute_spec(spec).to_dict()
    return _memo[key]


class TestScalable128Identity:
    """scalable@128 == NEON, bit for bit, on every microkernel × system."""

    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_dsa_runresult_identical(self, kind):
        neon = result_dict(kind)
        scalable = result_dict(kind, backend="scalable", vl=128)
        assert scalable["backend"] == "scalable" and scalable["vl"] == 128
        assert canonical(stripped(scalable)) == canonical(neon)

    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_matches_neon_golden_snapshot(self, kind):
        """The committed NEON golden pins scalable@128 too."""
        golden = json.loads(GOLDEN_PATH.read_text())[f"micro:{kind}"]
        d = result_dict(kind, backend="scalable", vl=128)
        digest = hashlib.sha256(canonical(stripped(d)).encode()).hexdigest()
        assert digest == golden["digest"], (
            "scalable@128 drifted from the NEON golden snapshot; the two "
            "backends must stay architecturally identical at VL=128"
        )

    @pytest.mark.parametrize("system", STATIC_SYSTEMS)
    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_static_systems_identical(self, kind, system):
        """The scalar and statically vectorized binaries see the same
        machine whichever 128-bit backend executes their vector ops."""
        neon = result_dict(kind, system)
        scalable = result_dict(kind, system, backend="scalable", vl=128)
        assert canonical(stripped(scalable)) == canonical(neon)


class TestWiderVLTimingOnly:
    """At VL>128 only the timing/energy channels may move."""

    @pytest.mark.parametrize("vl", [256, 512])
    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_architected_payload_identical(self, kind, vl):
        neon = result_dict(kind)
        wide = result_dict(kind, backend="scalable", vl=vl)
        assert wide["backend"] == "scalable" and wide["vl"] == vl
        for key in neon:
            if key in TIMING_KEYS:
                continue
            assert wide[key] == neon[key], f"{key} moved at VL={vl}"

    # long streaming loops, where each wider burst covers strictly more
    # iterations; tail-dominated classes (e.g. partial) may legitimately
    # regress at wide VL because fewer full-width bursts fit the trip count
    STREAMING_KINDS = ("count", "conditional", "dynamic_range")

    @pytest.mark.parametrize("kind", STREAMING_KINDS)
    def test_wider_vectors_speed_up_streaming_loops(self, kind):
        neon = result_dict(kind)
        for vl in (256, 512):
            wide = result_dict(kind, backend="scalable", vl=vl)
            assert wide["cycles"] <= neon["cycles"]

    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_architected_state_identical_at_512(self, kind):
        """Full memory image, register file and PC — not just the checked
        output arrays — must match NEON after a VL=512 DSA run."""

        def state(backend, vl):
            spec = RunSpec(f"micro:{kind}", "neon_dsa", backend=backend, vl=vl)
            result = run_system("neon_dsa", build_workload(spec), backend=backend, vl=vl)
            core = result.run.core
            return core.memory.snapshot(), tuple(core.regs), core.pc

        assert state("scalable", 512) == state("neon", 128)


class TestBackendSelectionRules:
    def test_neon_is_fixed_at_128(self):
        with pytest.raises(ConfigError, match="fixed at VL=128"):
            RunSpec("micro:count", "neon_dsa", backend="neon", vl=256)

    @pytest.mark.parametrize("system", ["neon_autovec", "neon_handvec"])
    def test_static_binaries_reject_wide_vl(self, system):
        with pytest.raises(ConfigError, match="static 128-bit"):
            RunSpec("micro:count", system, backend="scalable", vl=256)
        with pytest.raises(ConfigError, match="static 128-bit"):
            run_system(system, build_workload(RunSpec("micro:count", system)),
                       backend="scalable", vl=256)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            RunSpec("micro:count", "neon_dsa", backend="avx")


class TestCacheKeySeparation:
    """A scalable sweep must never shadow or evict clean NEON results."""

    def test_backend_and_vl_partition_the_cache(self):
        runner = CampaignRunner(use_cache=False)
        keys = {
            runner.cache_key(RunSpec("micro:count", "neon_dsa")),
            runner.cache_key(
                RunSpec("micro:count", "neon_dsa", backend="scalable", vl=128)
            ),
            runner.cache_key(
                RunSpec("micro:count", "neon_dsa", backend="scalable", vl=256)
            ),
            runner.cache_key(
                RunSpec("micro:count", "neon_dsa", backend="scalable", vl=512)
            ),
        }
        assert len(keys) == 4

    def test_default_spec_serialization_unchanged(self):
        """Pre-backend records must round-trip and hash as before."""
        spec = RunSpec("micro:count", "neon_dsa")
        d = spec.to_dict()
        assert "backend" not in d and "vl" not in d
        assert RunSpec.from_dict(d) == spec

    def test_scalable_spec_round_trips(self):
        spec = RunSpec("micro:count", "neon_dsa", backend="scalable", vl=512)
        d = spec.to_dict()
        assert d["backend"] == "scalable" and d["vl"] == 512
        assert RunSpec.from_dict(d) == spec
        assert spec.label.endswith("@scalable512")
