"""Conditional branch-link retirement semantics.

ARM semantics (DDI 0406, A4.1.1): a conditional instruction whose condition
fails retires as a NOP.  An untaken ``BL<cond>`` therefore must not write
LR, and its TraceRecord must not report a (stale) LR write — the DSA
samples the retire stream and a phantom write would poison its dataflow.

Every execution tier (legacy ``step()``, the predecoded fast loop, the
predecoded traced loop, and the trace-compiled tier) must agree.
"""

import pytest

from repro.cpu import Core
from repro.cpu.config import CPUConfig
from repro.cpu.trace import TraceBuffer
from repro.isa import assemble
from repro.isa.instructions import Branch
from repro.isa.operands import LR
from repro.memory import MainMemory

CONFIGS = {
    "legacy": CPUConfig(predecode=False),
    "predecoded": CPUConfig(predecode=True, compile_hot=False),
    "compiled": CPUConfig(predecode=True, compile_hot=True, hot_threshold=2),
}

LR_SEED = 0xDEAD

# r0 = 1 < 5, so BLGE is untaken and BLLT is taken
UNTAKEN = """
        mov r0, #1
        mov lr, #0xDEAD
        cmp r0, #5
        blge sub
        mov r1, #7
        halt
    sub:
        mov r2, #9
        bx lr
"""

TAKEN = """
        mov r0, #1
        mov lr, #0xDEAD
        cmp r0, #5
        bllt sub
        mov r1, #7
        halt
    sub:
        mov r2, #9
        bx lr
"""


def _run(source: str, config: CPUConfig, traced: bool = False):
    core = Core(assemble(source), MainMemory(1 << 16), config=config)
    buffer = TraceBuffer()
    if traced:
        core.retire_hooks.append(buffer)
    result = core.run()
    return core, result, buffer


class TestUntakenConditionalBranchLink:
    @pytest.mark.parametrize("name", CONFIGS)
    def test_lr_not_written(self, name):
        core, result, _ = _run(UNTAKEN, CONFIGS[name])
        assert core.get_reg(LR) == LR_SEED, "untaken BL<cond> must not write LR"
        assert core.get_reg(1) == 7       # fell through to the next instruction
        assert core.get_reg(2) == 0       # the callee never ran
        assert result.halted

    @pytest.mark.parametrize("name", CONFIGS)
    def test_taken_still_links(self, name):
        core, result, _ = _run(TAKEN, CONFIGS[name])
        assert core.get_reg(2) == 9       # the callee ran
        assert core.get_reg(1) == 7       # and returned to the fall-through
        assert core.get_reg(LR) != LR_SEED
        assert result.halted

    @pytest.mark.parametrize("name", CONFIGS)
    def test_record_reports_no_lr_write(self, name):
        _, _, buffer = _run(UNTAKEN, CONFIGS[name], traced=True)
        records = [
            r for r in buffer.records
            if isinstance(r.instr, Branch) and r.instr.link
        ]
        assert len(records) == 1
        record = records[0]
        assert record.branch_taken is False
        assert record.reg_writes == (), (
            "untaken BL<cond> retired as a NOP: the record must not report "
            "a phantom LR write"
        )

    @pytest.mark.parametrize("name", CONFIGS)
    def test_record_reports_lr_write_when_taken(self, name):
        _, _, buffer = _run(TAKEN, CONFIGS[name], traced=True)
        records = [
            r for r in buffer.records
            if isinstance(r.instr, Branch) and r.instr.link
        ]
        assert len(records) == 1
        record = records[0]
        assert record.branch_taken is True
        assert record.written_value(LR) not in (None, LR_SEED)

    @pytest.mark.parametrize("name", CONFIGS)
    def test_all_tiers_agree(self, name):
        """Architected state must be identical to the legacy interpreter."""
        legacy_core, legacy_result, _ = _run(UNTAKEN, CONFIGS["legacy"])
        core, result, _ = _run(UNTAKEN, CONFIGS[name])
        assert core.regs == legacy_core.regs
        assert result.cycles == legacy_result.cycles
        assert result.instructions == legacy_result.instructions


class TestAssemblerConditionalLink:
    def test_bleq_is_branch_link(self):
        program = assemble("bleq 0x1000\nhalt")
        instr = program.instructions[0]
        assert isinstance(instr, Branch) and instr.link
        assert instr.cond.name == "EQ"

    def test_ble_stays_plain_conditional(self):
        program = assemble("ble 0x1000\nhalt")
        instr = program.instructions[0]
        assert isinstance(instr, Branch) and not instr.link
        assert instr.cond.name == "LE"
