"""Golden byte-identity: the predecoded fast path vs the legacy interpreter.

``CPUConfig.predecode`` selects between two implementations of the same
architecture; everything observable — cycles, instruction counts, cache
stats, timing stats, energy inputs, DSA behaviour, the TraceRecord stream,
error messages — must be identical bit for bit.  The legacy interpreter is
kept for one release precisely so this suite can keep comparing against
it; the committed golden snapshot additionally pins the predecoded results
so both paths cannot silently drift together.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cpu import Core
from repro.cpu.config import CPUConfig
from repro.errors import ExecutionError
from repro.isa import assemble
from repro.memory import MainMemory
from repro.systems.campaign import RunSpec, execute_spec
from repro.systems.runner import execute_kernel
from repro.systems.setups import SYSTEM_NAMES, lower_for
from repro.workloads import load
from repro.workloads.synthetic import LOOP_TYPE_MICROKERNELS

PREDECODED = CPUConfig(predecode=True)
LEGACY = CPUConfig(predecode=False)

#: one config per execution tier above the legacy interpreter; every tier
#: must produce bit-identical RunResults (hot_threshold=2 forces the
#: compiled tiers to engage even on short test-scale workloads)
TIER_CONFIGS = {
    "interp": CPUConfig(predecode=True, compile_hot=False),
    "compiled": CPUConfig(
        predecode=True, compile_hot=True, hot_threshold=2, compile_numpy=False
    ),
    "bulk": CPUConfig(
        predecode=True, compile_hot=True, hot_threshold=2, compile_numpy=True
    ),
}

GOLDEN_PATH = Path(__file__).with_name("golden_microkernels.json")

MICRO_KINDS = sorted(LOOP_TYPE_MICROKERNELS)


def result_dict(spec: RunSpec, config: CPUConfig, guard: bool = False) -> dict:
    return execute_spec(spec, cpu_config=config, guard=guard).to_dict()


def canonical(d: dict) -> str:
    return json.dumps(d, sort_keys=True)


class TestRunResultIdentity:
    @pytest.mark.parametrize("guard", [False, True], ids=["clean", "guard"])
    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_microkernel_dsa(self, kind, guard):
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3)
        a = result_dict(spec, PREDECODED, guard=guard)
        b = result_dict(spec, LEGACY, guard=guard)
        assert canonical(a) == canonical(b)

    @pytest.mark.parametrize("system", SYSTEM_NAMES)
    def test_paper_workload_all_systems(self, system):
        spec = RunSpec("rgb_gray", system)
        a = result_dict(spec, PREDECODED)
        b = result_dict(spec, LEGACY)
        assert canonical(a) == canonical(b)


class TestCompiledTierIdentity:
    """Each tier of the execution ladder must agree with the legacy
    interpreter bit for bit — including the trace-compiled hot-loop tier
    and its numpy bulk lowering."""

    _legacy_memo: dict = {}

    @classmethod
    def _legacy(cls, spec: RunSpec) -> str:
        key = (spec.workload, spec.system, spec.seed)
        got = cls._legacy_memo.get(key)
        if got is None:
            got = cls._legacy_memo[key] = canonical(result_dict(spec, LEGACY))
        return got

    @pytest.mark.parametrize("tier", sorted(TIER_CONFIGS))
    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_microkernel_dsa(self, kind, tier):
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3)
        assert canonical(result_dict(spec, TIER_CONFIGS[tier])) == self._legacy(spec)

    @pytest.mark.parametrize("tier", sorted(TIER_CONFIGS))
    @pytest.mark.parametrize("workload", ["rgb_gray", "matmul"])
    def test_paper_workloads(self, workload, tier):
        for system in ("arm_original", "neon_dsa"):
            spec = RunSpec(workload, system)
            assert (
                canonical(result_dict(spec, TIER_CONFIGS[tier])) == self._legacy(spec)
            ), f"{workload}/{system} diverged on tier {tier!r}"


class TestGoldenSnapshot:
    """The committed fixture pins the predecoded results absolutely."""

    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_microkernel_matches_fixture(self, golden, kind):
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3)
        d = result_dict(spec, PREDECODED)
        entry = golden[f"micro:{kind}"]
        assert d["cycles"] == entry["cycles"]
        assert d["instructions"] == entry["instructions"]
        digest = hashlib.sha256(canonical(d).encode()).hexdigest()
        assert digest == entry["digest"], (
            "predecoded RunResult drifted from the committed golden snapshot; "
            "if the architectural model intentionally changed, regenerate "
            "tests/cpu/golden_microkernels.json (see its '_note' field)"
        )


class TestTraceStreamIdentity:
    """Retire hooks must observe the exact same TraceRecord stream."""

    @staticmethod
    def _records(lowered, workload, config: CPUConfig) -> list:
        records = []
        execute_kernel(
            lowered,
            workload.fresh_args(),
            config=config,
            attach=lambda core: core.retire_hooks.append(records.append),
        )
        return records

    def test_streams_equal(self):
        workload = load("rgb_gray", "test")
        lowered = lower_for("arm_original", workload)
        fast = self._records(lowered, workload, PREDECODED)
        legacy = self._records(lowered, workload, LEGACY)
        assert len(fast) == len(legacy)
        for a, b in zip(fast, legacy):
            assert (a.seq, a.pc, a.next_pc, a.branch_taken) == (
                b.seq, b.pc, b.next_pc, b.branch_taken)
            assert a.accesses == b.accesses
            assert a.reg_reads == b.reg_reads
            assert a.reg_writes == b.reg_writes
            assert a.instr is b.instr  # the very same Program object


def _run_one(source: str, config: CPUConfig, max_instructions: int):
    core = Core(assemble(source), MainMemory(1 << 16), config=config)
    try:
        result = core.run(max_instructions=max_instructions)
        return ("ok", result.cycles, result.instructions,
                tuple(core.regs), core.pc, dict(core.icounts),
                core.memory.snapshot())
    except ExecutionError as exc:
        return ("error", str(exc), core.seq, core.pc,
                tuple(core.regs), dict(core.icounts),
                core.memory.snapshot())


def _run_both(source: str, max_instructions: int = 100_000_000):
    return [_run_one(source, config, max_instructions)
            for config in (PREDECODED, LEGACY)]


class TestErrorPathIdentity:
    """Failure modes must match the legacy interpreter exactly, including
    the error message and the architected state left behind."""

    def test_fall_off_end_of_text(self):
        fast, legacy = _run_both("mov r0, #1\nadd r0, r0, #2\n")
        assert fast == legacy
        assert fast[0] == "error" and "not inside the text segment" in fast[1]

    def test_branch_outside_text(self):
        fast, legacy = _run_both("mov r0, #0\nbx r0\nhalt")
        assert fast == legacy
        assert "0x0 is not inside the text segment" in fast[1]

    def test_misaligned_branch_target(self):
        fast, legacy = _run_both("mov r0, #4098\nbx r0\nhalt")
        assert fast == legacy
        assert "0x1002 is not inside the text segment" in fast[1]

    def test_did_not_halt_within_limit(self):
        source = """
            loop:
                add r0, r0, #1
                b loop
        """
        fast, legacy = _run_both(source, max_instructions=10)
        assert fast == legacy
        assert fast[0] == "error" and "did not halt within 10" in fast[1]

    def test_architected_state_after_success(self):
        source = """
                mov r0, #0
                mov r1, #10
            loop:
                add r0, r0, #3
                subs r1, r1, #1
                bne loop
                halt
        """
        fast, legacy = _run_both(source)
        assert fast == legacy
        assert fast[0] == "ok"


class TestMaxInstructionBoundaries:
    """``max_instructions`` must cut every tier at the identical point.

    The compiled tiers retire whole loop bodies (and, with numpy lowering,
    whole batches of iterations) per host dispatch, so the limit can land
    at a block entry, mid-body, or mid-batch; the architected state and the
    error message must still match a legacy core stopped at the same seq.
    """

    # 5-op counted store loop: 2 setup ops, 200 iterations, halt => 1003
    SOURCE = """
            mov r0, #0
            mov r1, #32768
        loop:
            add r2, r0, #7
            str r2, [r1, r0, lsl #2]
            add r0, r0, #1
            cmp r0, #200
            blt loop
            halt
    """
    TOTAL = 2 + 200 * 5 + 1

    # entry-aligned, every mid-body offset, mid-batch, around completion
    LIMITS = [7, 10, 11, 12, 13, 14, 251, 252, 497,
              TOTAL - 3, TOTAL - 1, TOTAL, TOTAL + 1]

    @pytest.mark.parametrize("tier", sorted(TIER_CONFIGS))
    def test_boundary_parity(self, tier):
        config = TIER_CONFIGS[tier]
        for limit in self.LIMITS:
            want = _run_one(self.SOURCE, LEGACY, limit)
            got = _run_one(self.SOURCE, config, limit)
            assert got == want, f"tier {tier!r} diverged at limit {limit}"
        full = _run_one(self.SOURCE, config, self.TOTAL)
        assert full[0] == "ok"
        short = _run_one(self.SOURCE, config, self.TOTAL - 1)
        assert short[0] == "error" and "did not halt" in short[1]

    @pytest.mark.parametrize("tier", sorted(TIER_CONFIGS))
    def test_every_offset_within_one_iteration(self, tier):
        """Sweep a full loop body's worth of consecutive limits."""
        config = TIER_CONFIGS[tier]
        for limit in range(500, 506):
            want = _run_one(self.SOURCE, LEGACY, limit)
            got = _run_one(self.SOURCE, config, limit)
            assert got == want, f"tier {tier!r} diverged at limit {limit}"

    @pytest.mark.parametrize("tier", [*sorted(TIER_CONFIGS), "legacy"])
    def test_already_halted_core_rerun(self, tier):
        """Re-running a halted core must be a no-op on every tier."""
        config = LEGACY if tier == "legacy" else TIER_CONFIGS[tier]
        core = Core(assemble(self.SOURCE), MainMemory(1 << 16), config=config)
        first = core.run(max_instructions=self.TOTAL)
        state = (core.seq, core.pc, tuple(core.regs), dict(core.icounts))
        again = core.run(max_instructions=self.TOTAL)
        assert (again.cycles, again.instructions) == (
            first.cycles, first.instructions)
        assert (core.seq, core.pc, tuple(core.regs), dict(core.icounts)) == state
