"""Unit tests for the pure functional semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.dtypes import bits_to_float, float_to_bits, to_s32, to_u32
from repro.isa.instructions import AluKind, FloatKind, MulKind
from repro.isa.operands import Address, Cond, Imm, IndexMode, Reg, ShiftedReg, ShiftKind
from repro.cpu.executor import (
    Flags,
    alu_compute,
    apply_shift,
    cond_holds,
    effective_address,
    eval_operand2,
    flags_for_add,
    flags_for_logical,
    flags_for_sub,
    float_compute,
    load_to_register,
    mul_compute,
)

u32 = st.integers(0, 0xFFFFFFFF)


class TestAlu:
    def test_add_wraps(self):
        assert alu_compute(AluKind.ADD, 0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert alu_compute(AluKind.SUB, 0, 1) == 0xFFFFFFFF

    def test_rsb(self):
        assert alu_compute(AluKind.RSB, 3, 10) == 7

    def test_logical(self):
        assert alu_compute(AluKind.AND, 0b1100, 0b1010) == 0b1000
        assert alu_compute(AluKind.ORR, 0b1100, 0b1010) == 0b1110
        assert alu_compute(AluKind.EOR, 0b1100, 0b1010) == 0b0110
        assert alu_compute(AluKind.BIC, 0b1111, 0b0101) == 0b1010

    def test_shifts(self):
        assert alu_compute(AluKind.LSL, 1, 4) == 16
        assert alu_compute(AluKind.LSR, 0x80000000, 31) == 1
        assert alu_compute(AluKind.ASR, 0x80000000, 31) == 0xFFFFFFFF

    def test_min_max_signed(self):
        assert to_s32(alu_compute(AluKind.MIN, to_u32(-5), 3)) == -5
        assert to_s32(alu_compute(AluKind.MAX, to_u32(-5), 3)) == 3

    @given(u32, u32)
    def test_add_sub_inverse(self, a, b):
        s = alu_compute(AluKind.ADD, a, b)
        assert alu_compute(AluKind.SUB, s, b) == a


class TestShifts:
    def test_lsl_overflow(self):
        assert apply_shift(1, ShiftKind.LSL, 31) == 0x80000000

    def test_asr_sign_fill(self):
        assert apply_shift(0xFFFFFFF0, ShiftKind.ASR, 4) == 0xFFFFFFFF

    def test_zero_shift_identity(self):
        assert apply_shift(123, ShiftKind.LSR, 0) == 123


class TestFlags:
    def test_sub_equal_sets_z_and_c(self):
        f = flags_for_sub(5, 5)
        assert f.z and f.c and not f.n

    def test_sub_borrow_clears_c(self):
        f = flags_for_sub(3, 5)
        assert not f.c and f.n

    def test_add_carry(self):
        f = flags_for_add(0xFFFFFFFF, 1)
        assert f.c and f.z

    def test_signed_overflow(self):
        f = flags_for_add(0x7FFFFFFF, 1)
        assert f.v and f.n
        f = flags_for_sub(0x80000000, 1)
        assert f.v

    def test_logical_preserves_cv(self):
        prev = Flags(c=True, v=True)
        f = flags_for_logical(0, prev)
        assert f.z and f.c and f.v


class TestConditions:
    @pytest.mark.parametrize(
        "a,b,true_conds",
        [
            (5, 5, {Cond.EQ, Cond.GE, Cond.LE, Cond.HS, Cond.PL}),
            (3, 5, {Cond.NE, Cond.LT, Cond.LE, Cond.LO, Cond.MI}),
            (7, 5, {Cond.NE, Cond.GT, Cond.GE, Cond.HS, Cond.PL}),
        ],
    )
    def test_cmp_condition_table(self, a, b, true_conds):
        f = flags_for_sub(a, b)
        for cond in Cond:
            if cond is Cond.AL:
                assert cond_holds(cond, f)
            else:
                assert cond_holds(cond, f) == (cond in true_conds), cond

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_signed_comparisons_match_python(self, a, b):
        f = flags_for_sub(to_u32(a), to_u32(b))
        assert cond_holds(Cond.LT, f) == (a < b)
        assert cond_holds(Cond.GE, f) == (a >= b)
        assert cond_holds(Cond.GT, f) == (a > b)
        assert cond_holds(Cond.LE, f) == (a <= b)
        assert cond_holds(Cond.EQ, f) == (a == b)

    @given(u32, u32)
    def test_unsigned_comparisons_match_python(self, a, b):
        f = flags_for_sub(a, b)
        assert cond_holds(Cond.LO, f) == (a < b)
        assert cond_holds(Cond.HS, f) == (a >= b)


class TestMul:
    def test_mul_wraps(self):
        assert mul_compute(MulKind.MUL, 0x10000, 0x10000) == 0

    def test_mla(self):
        assert mul_compute(MulKind.MLA, 3, 4, 5) == 17

    def test_sdiv_truncates_toward_zero(self):
        assert to_s32(mul_compute(MulKind.SDIV, to_u32(-7), 2)) == -3

    def test_div_by_zero_is_zero(self):
        assert mul_compute(MulKind.SDIV, 5, 0) == 0
        assert mul_compute(MulKind.UDIV, 5, 0) == 0

    def test_udiv(self):
        assert mul_compute(MulKind.UDIV, 0xFFFFFFFE, 2) == 0x7FFFFFFF


class TestFloat:
    def test_fadd(self):
        r = float_compute(FloatKind.FADD, float_to_bits(1.5), float_to_bits(2.25))
        assert bits_to_float(r) == 3.75

    def test_fmul(self):
        r = float_compute(FloatKind.FMUL, float_to_bits(3.0), float_to_bits(0.5))
        assert bits_to_float(r) == 1.5

    def test_fdiv_by_zero(self):
        r = float_compute(FloatKind.FDIV, float_to_bits(1.0), float_to_bits(0.0))
        assert bits_to_float(r) == float("inf")


class TestOperand2AndAddressing:
    def test_eval_imm_reg_shifted(self):
        regs = [0] * 16
        regs[4] = 3
        assert eval_operand2(regs, Imm(-1)) == 0xFFFFFFFF
        assert eval_operand2(regs, Reg(4)) == 3
        assert eval_operand2(regs, ShiftedReg(Reg(4), ShiftKind.LSL, 2)) == 12

    def test_offset_mode(self):
        regs = [0] * 16
        regs[1] = 0x100
        ea, wb = effective_address(regs, Address(Reg(1), Imm(8)))
        assert ea == 0x108 and wb is None

    def test_pre_index(self):
        regs = [0] * 16
        regs[1] = 0x100
        ea, wb = effective_address(regs, Address(Reg(1), Imm(8), IndexMode.PRE))
        assert ea == 0x108 and wb == 0x108

    def test_post_index(self):
        regs = [0] * 16
        regs[1] = 0x100
        ea, wb = effective_address(regs, Address(Reg(1), Imm(8), IndexMode.POST))
        assert ea == 0x100 and wb == 0x108

    def test_register_offset_with_shift(self):
        regs = [0] * 16
        regs[1], regs[2] = 0x100, 4
        addr = Address(Reg(1), ShiftedReg(Reg(2), ShiftKind.LSL, 2))
        ea, _ = effective_address(regs, addr)
        assert ea == 0x110


class TestLoadExtension:
    def test_signed_byte_extends(self):
        from repro.isa.dtypes import DType

        assert load_to_register(-1, DType.I8) == 0xFFFFFFFF
        assert load_to_register(200, DType.U8) == 200

    def test_float_load_is_bit_pattern(self):
        from repro.isa.dtypes import DType

        assert load_to_register(1.0, DType.F32) == float_to_bits(1.0)


class TestShiftByRegisterClamp:
    """ARM shift-by-register semantics (DDI 0406, A8.4.1): only the bottom
    byte of the shift amount participates — so 256 shifts by 0, not 255."""

    @pytest.mark.parametrize("kind", [AluKind.LSL, AluKind.LSR, AluKind.ASR])
    def test_amount_zero_is_identity(self, kind):
        assert alu_compute(kind, 0xDEADBEEF, 0) == 0xDEADBEEF

    def test_amount_31(self):
        assert alu_compute(AluKind.LSL, 1, 31) == 0x80000000
        assert alu_compute(AluKind.LSR, 0x80000000, 31) == 1
        assert alu_compute(AluKind.ASR, 0x80000000, 31) == 0xFFFFFFFF
        assert alu_compute(AluKind.ASR, 0x7FFFFFFF, 31) == 0

    def test_amount_32_clears_or_saturates_sign(self):
        assert alu_compute(AluKind.LSL, 0xFFFFFFFF, 32) == 0
        assert alu_compute(AluKind.LSR, 0xFFFFFFFF, 32) == 0
        # ASR saturates at the sign bit rather than clearing
        assert alu_compute(AluKind.ASR, 0x80000000, 32) == 0xFFFFFFFF
        assert alu_compute(AluKind.ASR, 0x7FFFFFFF, 32) == 0

    def test_amount_255_behaves_like_over_32(self):
        assert alu_compute(AluKind.LSL, 0xFFFFFFFF, 255) == 0
        assert alu_compute(AluKind.LSR, 0xFFFFFFFF, 255) == 0
        assert alu_compute(AluKind.ASR, 0x80000000, 255) == 0xFFFFFFFF

    @pytest.mark.parametrize("kind", [AluKind.LSL, AluKind.LSR, AluKind.ASR])
    def test_amount_256_wraps_to_zero_shift(self, kind):
        # the historical bug clamped 256 to a 255-bit shift (result 0);
        # hardware sees the bottom byte 0x00 and shifts by nothing
        assert alu_compute(kind, 0x89ABCDEF, 256) == 0x89ABCDEF
        assert alu_compute(kind, 0x89ABCDEF, 0x100) == 0x89ABCDEF

    def test_amount_257_shifts_by_one(self):
        assert alu_compute(AluKind.LSL, 1, 257) == 2
        assert alu_compute(AluKind.LSR, 2, 0x101) == 1
