"""Direct unit tests for the cycle-accounting model."""

import pytest

from repro.isa import assemble
from repro.cpu.config import CPUConfig, ScalarLatencies, VectorLatencies
from repro.cpu.timing import TimingModel


def instrs(src: str):
    return list(assemble(src).instructions)


def model(**kwargs) -> TimingModel:
    return TimingModel(CPUConfig(**kwargs))


class TestScalarIssue:
    def test_single_instruction(self):
        m = model()
        (i,) = instrs("mov r0, #1")
        m.charge_scalar(i)
        assert m.drain() == 1.0

    def test_dual_issue_two_independent(self):
        m = model()
        a, b = instrs("mov r0, #1\nmov r1, #2")
        m.charge_scalar(a)
        m.charge_scalar(b)
        # both issue in cycle 0, complete in cycle 1
        assert m.drain() == 1.0

    def test_third_instruction_next_cycle(self):
        m = model()
        a, b, c = instrs("mov r0, #1\nmov r1, #2\nmov r2, #3")
        for i in (a, b, c):
            m.charge_scalar(i)
        assert m.drain() == 2.0

    def test_raw_dependency_serializes(self):
        m = model()
        a, b = instrs("mov r0, #1\nadd r1, r0, #1")
        m.charge_scalar(a)
        m.charge_scalar(b)
        # b waits for a's completion (cycle 1), finishes cycle 2
        assert m.drain() == 2.0

    def test_issue_width_one(self):
        m = model(issue_width=1)
        a, b = instrs("mov r0, #1\nmov r1, #2")
        m.charge_scalar(a)
        m.charge_scalar(b)
        assert m.drain() == 2.0

    def test_long_latency_op(self):
        m = model()
        (i,) = instrs("sdiv r0, r1, r2")
        m.charge_scalar(i)
        assert m.drain() == m.config.scalar.div

    def test_memory_latency_added(self):
        m = model()
        (i,) = instrs("ldr r0, [r1]")
        m.charge_scalar(i, mem_latency=10)
        assert m.drain() == 1 + m.config.scalar.load + 10 - 1  # issue 0, lat 1+10

    def test_mispredict_penalty(self):
        m = model()
        a, branch = instrs("cmp r0, #1\nbeq 0x1000")
        m.charge_scalar(a, sets_flags=True)
        before = m.cycles
        m.charge_scalar(branch, mispredicted=True, reads_flags=True)
        assert m.cycles >= before + m.config.mispredict_penalty
        assert m.stats.branch_mispredicts == 1

    def test_flags_dependency(self):
        m = model()
        cmp_i, branch = instrs("cmp r0, #1\nbne 0x1000")
        m.charge_scalar(cmp_i, sets_flags=True)
        m.charge_scalar(branch, reads_flags=False)
        no_dep = m.drain()
        m2 = model()
        m2.charge_scalar(cmp_i, sets_flags=True)
        m2.charge_scalar(branch, reads_flags=True)
        with_dep = m2.drain()
        assert with_dep >= no_dep


class TestVectorPath:
    def test_burst_pays_pipeline_fill_once(self):
        m = model()
        ops = instrs("vadd.i32 q0, q1, q2\nvadd.i32 q3, q4, q5\nvadd.i32 q6, q7, q0")
        for op in ops:
            m.charge_vector(op)
        total = m.drain()
        depth = m.config.vector.pipeline_depth
        # fill once + ~1/cycle throughput + op latency, not 3x the fill
        assert depth < total < 2 * depth + 10

    def test_end_burst_refills(self):
        m = model()
        (op,) = instrs("vadd.i32 q0, q1, q2")
        m.charge_vector(op)
        first = m.cycles
        m.end_vector_burst()
        m.charge_vector(op)
        assert m.cycles >= first + m.config.vector.pipeline_depth

    def test_vector_raw_on_q_registers(self):
        m = model()
        a, b = instrs("vadd.i32 q0, q1, q2\nvadd.i32 q3, q0, q2")
        m.charge_vector(a)
        m.charge_vector(b)
        dependent = m.drain()
        m2 = model()
        a2, c2 = instrs("vadd.i32 q0, q1, q2\nvadd.i32 q3, q4, q5")
        m2.charge_vector(a2)
        m2.charge_vector(c2)
        independent = m2.drain()
        assert dependent > independent

    def test_vector_loads_overlap_misses(self):
        """Memory latency must pipeline: 4 loads with big misses cost far
        less than 4x the miss latency."""
        m = model()
        loads = instrs("\n".join(f"vld1.i32 q{i}, [r5]!" for i in range(4)))
        for ld in loads:
            m.charge_vector(ld, mem_latency=90)
        assert m.drain() < 4 * 90

    def test_stats_accumulate(self):
        m = model()
        sc, ve = instrs("mov r0, #1\nvadd.i32 q0, q1, q2")
        m.charge_scalar(sc)
        m.charge_vector(ve)
        assert m.stats.scalar_instructions == 1
        assert m.stats.vector_instructions == 1


class TestDSAHooks:
    def test_suppressed_instructions_cost_nothing(self):
        m = model()
        (i,) = instrs("add r0, r0, #1")
        m.charge_scalar(i)
        before = m.cycles
        m.note_suppressed()
        assert m.cycles == before
        assert m.stats.suppressed_instructions == 1

    def test_add_stall_advances_time(self):
        m = model()
        m.add_stall(14)
        assert m.cycles == 14
        assert m.stats.dsa_stall_cycles == 14

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            model().add_stall(-1)

    def test_stall_resets_issue_group(self):
        m = model()
        a, b = instrs("mov r0, #1\nmov r1, #2")
        m.charge_scalar(a)
        m.add_stall(5)
        m.charge_scalar(b)
        assert m.cycles > 5
