"""Integration tests: assemble small programs and run them on the core."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.isa import assemble, DType
from repro.isa.dtypes import float_to_bits, to_s32
from repro.memory import Allocator, MainMemory
from repro.cpu import Core, TraceBuffer, run_program


def make_core(source: str, mem_size: int = 1 << 20, **regs) -> Core:
    program = assemble(source)
    memory = MainMemory(mem_size)
    core = Core(program, memory)
    for name, value in regs.items():
        core.set_reg(int(name[1:]), value)
    return core


class TestBasicExecution:
    def test_mov_add_halt(self):
        core = make_core("mov r0, #5\nadd r1, r0, #7\nhalt")
        result = core.run()
        assert core.regs[1] == 12
        assert result.halted
        assert result.instructions == 3

    def test_loop_counts(self):
        core = make_core(
            """
                mov r0, #0
            loop:
                add r0, r0, #1
                cmp r0, #10
                blt loop
                halt
            """
        )
        core.run()
        assert core.regs[0] == 10

    def test_memory_roundtrip(self):
        core = make_core(
            """
                mov r1, #0x100
                mov r0, #42
                str r0, [r1]
                ldr r2, [r1]
                halt
            """
        )
        core.run()
        assert core.regs[2] == 42
        assert core.memory.read_value(0x100, DType.I32) == 42

    def test_post_index_walks_array(self):
        core = make_core(
            """
                mov r1, #0x100
                mov r0, #7
                str r0, [r1], #4
                str r0, [r1], #4
                halt
            """
        )
        core.run()
        assert core.regs[1] == 0x108
        assert core.memory.read_value(0x104, DType.I32) == 7

    def test_function_call_and_return(self):
        core = make_core(
            """
                mov r0, #3
                bl double
                add r1, r0, #0
                halt
            double:
                add r0, r0, r0
                bx lr
            """
        )
        core.run()
        assert core.regs[1] == 6

    def test_byte_access_sign_extension(self):
        core = make_core(
            """
                mov r0, #0xFF
                mov r1, #0x200
                strb r0, [r1]
                ldrsb r2, [r1]
                ldrb r3, [r1]
                halt
            """
        )
        core.run()
        assert to_s32(core.regs[2]) == -1
        assert core.regs[3] == 0xFF

    def test_float_pipeline(self):
        core = make_core(
            """
                fadd r2, r0, r1
                fmul r3, r2, r1
                halt
            """
        )
        core.set_reg(0, float_to_bits(1.5))
        core.set_reg(1, float_to_bits(2.0))
        core.run()
        from repro.isa.dtypes import bits_to_float

        assert bits_to_float(core.regs[2]) == 3.5
        assert bits_to_float(core.regs[3]) == 7.0

    def test_step_after_halt_raises(self):
        core = make_core("halt")
        core.run()
        with pytest.raises(ExecutionError):
            core.step()

    def test_runaway_program_detected(self):
        core = make_core("spin:\n b spin")
        with pytest.raises(ExecutionError):
            core.run(max_instructions=100)


class TestVectorSum:
    """A full NEON kernel executed directly by the core (autovec-style)."""

    SOURCE = """
        ; r5 = a, r6 = b, r7 = out, r4 = quads
    loop:
        vld1.i32 q0, [r5]!
        vld1.i32 q1, [r6]!
        vadd.i32 q2, q0, q1
        vst1.i32 q2, [r7]!
        subs r4, r4, #1
        bgt loop
        halt
    """

    def test_vector_sum_matches_numpy(self):
        program = assemble(self.SOURCE)
        memory = MainMemory(1 << 20)
        alloc = Allocator(memory)
        rng = np.random.default_rng(0)
        a = rng.integers(-1000, 1000, 64, dtype=np.int32)
        b = rng.integers(-1000, 1000, 64, dtype=np.int32)
        pa, pb = alloc.alloc_array(a), alloc.alloc_array(b)
        pout = alloc.alloc_zeros(DType.I32, 64)
        result = run_program(program, memory, regs={5: pa, 6: pb, 7: pout, 4: 16})
        np.testing.assert_array_equal(memory.read_array(pout, DType.I32, 64), a + b)
        assert result.halted

    def test_vector_faster_than_scalar(self):
        """The NEON path must beat the equivalent scalar loop (4 lanes)."""
        scalar_src = """
        loop:
            ldr r0, [r5], #4
            ldr r1, [r6], #4
            add r0, r0, r1
            str r0, [r7], #4
            subs r4, r4, #1
            bgt loop
            halt
        """

        def run(src, count):
            program = assemble(src)
            memory = MainMemory(1 << 20)
            alloc = Allocator(memory)
            a = np.arange(256, dtype=np.int32)
            pa, pb = alloc.alloc_array(a), alloc.alloc_array(a)
            pout = alloc.alloc_zeros(DType.I32, 256)
            return run_program(program, memory, regs={5: pa, 6: pb, 7: pout, 4: count})

        vec = run(self.SOURCE, 64)       # 64 quads
        scalar = run(scalar_src, 256)    # 256 elements
        assert vec.cycles < scalar.cycles


class TestTraceRecords:
    def test_records_carry_memory_accesses(self):
        core = make_core(
            """
                mov r1, #0x300
                ldr r0, [r1]
                halt
            """
        )
        buf = TraceBuffer()
        core.retire_hooks.append(buf)
        core.run()
        loads = [r for r in buf.records if r.instr.is_load]
        assert len(loads) == 1
        assert loads[0].accesses[0].addr == 0x300
        assert not loads[0].accesses[0].is_write

    def test_backward_branch_flag(self):
        core = make_core(
            """
                mov r0, #0
            loop:
                add r0, r0, #1
                cmp r0, #3
                blt loop
                halt
            """
        )
        buf = TraceBuffer()
        core.retire_hooks.append(buf)
        core.run()
        backwards = [r for r in buf.records if r.is_backward_branch]
        assert len(backwards) == 2  # taken twice, falls through the third time

    def test_reg_reads_snapshot_values(self):
        core = make_core("mov r0, #9\nadd r1, r0, r0\nhalt")
        buf = TraceBuffer()
        core.retire_hooks.append(buf)
        core.run()
        add_rec = buf.records[1]
        assert add_rec.read_value(0) == 9
        assert add_rec.written_value(1) == 18


class TestTimingSuppression:
    def test_suppressor_removes_cycles(self):
        src = """
            mov r4, #0
        loop:
            add r4, r4, #1
            cmp r4, #100
            blt loop
            halt
        """
        plain = make_core(src)
        plain_result = plain.run()

        suppressed = make_core(src)
        loop_pc = suppressed.program.addr_of("loop")
        suppressed.timing_suppressor = lambda rec: rec.pc >= loop_pc and rec.pc < loop_pc + 12
        sup_result = suppressed.run()
        assert sup_result.cycles < plain_result.cycles
        assert suppressed.timing.stats.suppressed_instructions == 300
        # functional result identical
        assert suppressed.regs[4] == plain.regs[4] == 100


class TestTimingModel:
    def test_dual_issue_pairs_independent_ops(self):
        dep = make_core("mov r0, #1\nadd r1, r0, #1\nadd r2, r1, #1\nadd r3, r2, #1\nhalt")
        indep = make_core("mov r0, #1\nmov r1, #1\nmov r2, #1\nmov r3, #1\nhalt")
        dep_cycles = dep.run().cycles
        indep_cycles = indep.run().cycles
        assert indep_cycles < dep_cycles

    def test_cache_misses_cost_cycles(self):
        # strided accesses that miss L1 vs repeated hits
        hit_src = """
            mov r1, #0x100
            mov r4, #0
        loop:
            ldr r0, [r1]
            add r4, r4, #1
            cmp r4, #64
            blt loop
            halt
        """
        miss_src = """
            mov r1, #0x100
            mov r4, #0
        loop:
            ldr r0, [r1], #128
            add r4, r4, #1
            cmp r4, #64
            blt loop
            halt
        """
        hits = make_core(hit_src).run()
        misses = make_core(miss_src).run()
        assert misses.cycles > hits.cycles

    def test_mispredict_penalty_applies_to_exits(self):
        # a loop exit is a mispredicted backward branch under BTFN
        core = make_core(
            """
            mov r0, #0
        loop:
            add r0, r0, #1
            cmp r0, #4
            blt loop
            halt
        """
        )
        core.run()
        assert core.timing.stats.branch_mispredicts == 1

    def test_ipc_reported(self):
        result = make_core("mov r0, #1\nmov r1, #2\nhalt").run()
        assert 0 < result.ipc <= 2
