"""Tests for the loop profiler."""

import numpy as np

from repro.isa import assemble
from repro.memory import MainMemory
from repro.cpu import Core
from repro.cpu.profile import LoopProfiler
from repro.compiler import lower
from repro.systems.runner import execute_kernel
from repro.workloads import load
from repro.workloads.synthetic import vecsum


def profiled_run(source: str, regs=None) -> LoopProfiler:
    core = Core(assemble(source), MainMemory(1 << 20))
    for idx, value in (regs or {}).items():
        core.set_reg(idx, value)
    profiler = LoopProfiler()
    core.retire_hooks.append(profiler)
    core.run()
    return profiler


SIMPLE = """
    mov r0, #0
loop:
    add r0, r0, #1
    cmp r0, #10
    blt loop
    halt
"""


class TestLoopProfiler:
    def test_detects_the_loop(self):
        p = profiled_run(SIMPLE)
        assert len(p.loops) == 1
        profile = next(iter(p.loops.values()))
        assert profile.invocations == 1
        assert profile.iterations == 10
        assert profile.avg_trip_count == 10.0

    def test_no_loops_in_straight_line(self):
        p = profiled_run("mov r0, #1\nadd r1, r0, #2\nhalt")
        assert p.loops == {}
        assert p.coverage() == 0.0

    def test_multiple_invocations(self):
        source = """
            mov r2, #0
        outer:
            mov r0, #0
        inner:
            add r0, r0, #1
            cmp r0, #5
            blt inner
            add r2, r2, #1
            cmp r2, #3
            blt outer
            halt
        """
        p = profiled_run(source)
        assert len(p.loops) == 2
        inner = min(p.loops.values(), key=lambda q: q.body_instructions)
        assert inner.invocations == 3
        assert inner.iterations == 15

    def test_coverage_mostly_in_loops(self):
        p = profiled_run(SIMPLE)
        assert p.coverage() > 0.8

    def test_table_renders(self):
        p = profiled_run(SIMPLE)
        text = p.table()
        assert "loop coverage" in text and "0x" in text

    def test_on_a_real_workload(self):
        wl = load("rgb_gray", "test")
        profiler = LoopProfiler()
        run = execute_kernel(
            lower(wl.kernel), wl.fresh_args(), attach=lambda core: core.retire_hooks.append(profiler)
        )
        assert profiler.coverage() > 0.9  # rgb_gray is one hot loop
        hottest = profiler.hottest(1)[0]
        assert hottest.iterations == 256

    def test_hottest_ordering(self):
        wl = vecsum(n=64)
        profiler = LoopProfiler()
        execute_kernel(
            lower(wl.kernel), wl.fresh_args(), attach=lambda core: core.retire_hooks.append(profiler)
        )
        tops = profiler.hottest()
        assert all(
            tops[i].instructions >= tops[i + 1].instructions for i in range(len(tops) - 1)
        )
