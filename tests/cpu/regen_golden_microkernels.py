"""Regenerate tests/cpu/golden_microkernels.json.

Run ONLY after an intentional architectural-model change (latencies, cache
geometry, DSA policy, energy inputs...) — never to paper over an identity
failure you can't explain:

    PYTHONPATH=src python tests/cpu/regen_golden_microkernels.py
"""

import hashlib
import json
from pathlib import Path

from repro.cpu.config import CPUConfig
from repro.systems.campaign import RunSpec, execute_spec
from repro.workloads.synthetic import LOOP_TYPE_MICROKERNELS

OUT = Path(__file__).with_name("golden_microkernels.json")


def main() -> None:
    golden = {
        "_note": (
            "Golden RunResult snapshot of every loop-type microkernel on "
            "neon_dsa (seed=3, scale=test, predecode on). Regenerate ONLY on "
            "an intentional architectural-model change: "
            "PYTHONPATH=src python tests/cpu/regen_golden_microkernels.py"
        ),
    }
    for kind in sorted(LOOP_TYPE_MICROKERNELS):
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3)
        d = execute_spec(spec, cpu_config=CPUConfig(predecode=True)).to_dict()
        golden[f"micro:{kind}"] = {
            "cycles": d["cycles"],
            "instructions": d["instructions"],
            "digest": hashlib.sha256(
                json.dumps(d, sort_keys=True).encode()
            ).hexdigest(),
        }
    OUT.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT} ({len(golden) - 1} entries)")


if __name__ == "__main__":
    main()
