"""Covered-execution identity: record-free released regions vs full tracing.

``CPUConfig.covered_execution`` lets an attached DSA release a fully
characterized loop region to the record-free runners in
:mod:`repro.cpu.covered`, bulk-folding its own per-record bookkeeping
afterwards.  That is a pure host-side optimization: every observable —
cycles, instruction counts, cache stats, DSA statistics, energy inputs,
the architected state at a ``max_instructions`` cut — must be identical
bit for bit with covering disabled, across guard mode, fault plans,
attached observers and vector backends.  The committed golden snapshot
pins both settings absolutely so they cannot drift together.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cpu import Core
from repro.cpu.config import CPUConfig
from repro.dsa.engine import DynamicSIMDAssembler
from repro.errors import ExecutionError
from repro.faults import FaultPlan
from repro.faults.plan import FaultSpec
from repro.isa import assemble
from repro.memory import MainMemory
from repro.observe import Observer
from repro.observe.events import EventKind
from repro.systems.campaign import RunSpec, execute_spec
from repro.systems.setups import DSA_STAGES, run_system
from repro.workloads import load
from repro.workloads.synthetic import LOOP_TYPE_MICROKERNELS

COVERED = CPUConfig(predecode=True, covered_execution=True)
UNCOVERED = CPUConfig(predecode=True, covered_execution=False)

GOLDEN_PATH = Path(__file__).with_name("golden_microkernels.json")

MICRO_KINDS = sorted(LOOP_TYPE_MICROKERNELS)


def canonical(spec: RunSpec, config: CPUConfig, **kwargs) -> str:
    return json.dumps(
        execute_spec(spec, cpu_config=config, **kwargs).to_dict(), sort_keys=True
    )


class TestMicrokernelIdentity:
    """Covered on/off across every loop-class microkernel, with and
    without guarded execution and an injected-fault plan."""

    @pytest.mark.parametrize("guard", [False, True], ids=["clean", "guard"])
    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_dsa_microkernel(self, kind, guard):
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3)
        assert canonical(spec, COVERED, guard=guard) == canonical(
            spec, UNCOVERED, guard=guard
        )

    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_dsa_microkernel_faulted(self, kind):
        # an active fault plan corrupts speculative DSA state: covering
        # must stand down (an injector is a re-arm condition) and the
        # guarded run must produce the identical fallback accounting
        plan = FaultPlan(faults=[FaultSpec(kind="lane", match="*")], seed=11)
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3)
        assert canonical(spec, COVERED, guard=True, plan=plan) == canonical(
            spec, UNCOVERED, guard=True, plan=plan
        )

    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_dsa_microkernel_scalable_backend(self, kind):
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3, backend="scalable", vl=256)
        assert canonical(spec, COVERED) == canonical(spec, UNCOVERED)


class TestObserverIdentity:
    """An attached observer needs the record stream, so it is a standing
    re-arm condition: covering stands down, results stay identical, and
    the would-cover/re-arm decision points surface as events."""

    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_observed_run_is_identical(self, kind):
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3)
        baseline = canonical(spec, UNCOVERED)
        assert canonical(spec, COVERED, observer=Observer()) == baseline

    def test_cover_and_rearm_events_emitted(self):
        observer = Observer()
        run_system(
            "neon_dsa", load("matmul", "test"), cpu_config=COVERED, observer=observer
        )
        kinds = [e.kind for e in observer.events]
        covered = [e for e in observer.events if e.kind is EventKind.LOOP_COVERED]
        # matmul re-enters its inner loop once per output row/column pair:
        # each exit re-arms tracing, each re-entry would cover again
        assert len(covered) > 1
        assert EventKind.COVER_REARM in kinds
        for event in covered:
            assert event.args["mode"] in ("suppressed", "scalar", "postlimit")


class TestGoldenSnapshot:
    """Covering disabled must still reproduce the committed digests —
    the same fixture the covered-by-default config is pinned to in
    ``test_predecode_identity.py``."""

    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("kind", MICRO_KINDS)
    def test_uncovered_matches_fixture(self, golden, kind):
        spec = RunSpec(f"micro:{kind}", "neon_dsa", seed=3)
        digest = hashlib.sha256(canonical(spec, UNCOVERED).encode()).hexdigest()
        assert digest == golden[f"micro:{kind}"]["digest"], (
            "covered_execution=False diverged from the committed golden "
            "snapshot: the uncovered traced path changed behaviour"
        )


class TestMidLoopRearm:
    """matmul's inner loop is entered and left hundreds of times: every
    exit is a phase change that re-arms tracing mid-workload, and the
    suppression limit flips suppressed cover to post-limit cover inside
    a single entry.  The run must be identical and actually use the
    covered tier for the bulk of its retirements."""

    def test_matmul_identity_and_residency(self):
        workload = load("matmul", "test")
        covered = run_system("neon_dsa", workload, cpu_config=COVERED)
        uncovered = run_system("neon_dsa", load("matmul", "test"), cpu_config=UNCOVERED)
        a = covered.run.result
        b = uncovered.run.result
        assert (a.cycles, a.instructions, a.seconds) == (b.cycles, b.instructions, b.seconds)
        assert dict(a.icounts) == dict(b.icounts)
        assert covered.dsa_stats == uncovered.dsa_stats
        tiers = dict(a.tier_counts)
        assert tiers.get("covered", 0) > a.instructions // 2, tiers
        # detection + the fast-resume collection window keep the first
        # iterations of every re-armed entry on the traced tier
        assert tiers.get("traced", 0) > 0, tiers
        assert "covered" not in uncovered.run.result.tier_counts


class TestMaxInstructionBoundaries:
    """A ``max_instructions`` limit landing *inside* a covered region must
    stop the run at the identical instruction with identical architected
    state — covered runners retire whole stretches per host dispatch, so
    the budget math is where an off-by-one would hide."""

    # counted store loop the DSA vectorizes and covers: 2 setup ops,
    # 200 iterations x 5 ops, halt => 1003 retirements total
    SOURCE = """
            mov r0, #0
            mov r1, #32768
        loop:
            add r2, r0, #7
            str r2, [r1, r0, lsl #2]
            add r0, r0, #1
            cmp r0, #200
            blt loop
            halt
    """
    TOTAL = 2 + 200 * 5 + 1

    @staticmethod
    def _run_one(config: CPUConfig, limit: int):
        core = Core(assemble(TestMaxInstructionBoundaries.SOURCE),
                    MainMemory(1 << 16), config=config)
        dsa = DynamicSIMDAssembler(DSA_STAGES["full"])
        dsa.attach(core)
        try:
            result = core.run(max_instructions=limit)
            state = ("ok", result.cycles, result.instructions)
        except ExecutionError as exc:
            state = ("error", str(exc), core.seq)
        return state + (
            core.pc, tuple(core.regs), dict(core.icounts),
            core.memory.snapshot(), dsa.stats,
        )

    def test_cut_inside_covered_region(self):
        # entry-aligned, mid-body, deep inside the covered stretch, and
        # around completion
        for limit in (7, 11, 13, 101, 102, 250, 251, 500, 503,
                      self.TOTAL - 1, self.TOTAL, self.TOTAL + 1):
            want = self._run_one(UNCOVERED, limit)
            got = self._run_one(COVERED, limit)
            assert got == want, f"diverged at max_instructions={limit}"
