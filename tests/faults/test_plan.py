"""FaultPlan / FaultSpec schema, selection and determinism."""

import pytest

from repro.errors import ConfigError
from repro.faults import ALL_FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultSpec(kind="bitsquatch")

    def test_every_documented_kind_constructs(self):
        for kind in ALL_FAULT_KINDS:
            FaultSpec(kind=kind)

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigError, match="times"):
            FaultSpec(kind="worker_crash", times=-1)

    def test_hang_needs_positive_seconds(self):
        with pytest.raises(ConfigError, match="seconds"):
            FaultSpec(kind="worker_hang", seconds=0)

    def test_cache_corrupt_mode_checked(self):
        with pytest.raises(ConfigError, match="cache_corrupt mode"):
            FaultSpec(kind="cache_corrupt", mode="setfire")

    def test_zero_delta_lane_rejected(self):
        with pytest.raises(ConfigError, match="delta"):
            FaultSpec(kind="lane", delta=0)

    def test_zero_shift_trip_count_rejected(self):
        with pytest.raises(ConfigError, match="shift"):
            FaultSpec(kind="trip_count", shift=0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault spec field"):
            FaultSpec.from_dict({"kind": "lane", "blast_radius": 3})

    def test_kind_required(self):
        with pytest.raises(ConfigError, match="kind"):
            FaultSpec.from_dict({"match": "*"})


class TestSelection:
    def test_fnmatch_over_labels(self):
        spec = FaultSpec(kind="lane", match="micro:*/neon_dsa*")
        assert spec.matches("micro:count/neon_dsa[full]")
        assert not spec.matches("matmul/neon_dsa[full]")
        assert not spec.matches("micro:count/arm_original")

    def test_worker_fault_attempt_windows(self):
        plan = FaultPlan(faults=[FaultSpec(kind="worker_crash", match="*", times=2)])
        assert plan.worker_fault_for("x/y", attempt=1) is not None
        assert plan.worker_fault_for("x/y", attempt=2) is not None
        assert plan.worker_fault_for("x/y", attempt=3) is None

    def test_times_zero_means_every_attempt(self):
        plan = FaultPlan(faults=[FaultSpec(kind="worker_crash", times=0)])
        assert plan.worker_fault_for("any/label", attempt=99) is not None

    def test_alters_result_only_for_state_faults(self):
        plan = FaultPlan(faults=[
            FaultSpec(kind="lane", match="a/*"),
            FaultSpec(kind="worker_crash", match="b/*"),
            FaultSpec(kind="cache_corrupt", match="c/*"),
        ])
        assert plan.alters_result("a/neon_dsa[full]")
        assert not plan.alters_result("b/neon_dsa[full]")
        assert not plan.alters_result("c/neon_dsa[full]")


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            faults=[
                FaultSpec(kind="lane", match="micro:*", delta=3),
                FaultSpec(kind="worker_hang", seconds=1.5, times=2),
            ],
            seed=17,
        )
        again = FaultPlan.loads(plan.dumps())
        assert again == plan

    def test_digest_is_content_addressed(self):
        a = FaultPlan(faults=[FaultSpec(kind="lane")], seed=1)
        b = FaultPlan(faults=[FaultSpec(kind="lane")], seed=1)
        c = FaultPlan(faults=[FaultSpec(kind="lane", delta=2)], seed=1)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_stream_seed_deterministic_and_distinct(self):
        f1 = FaultSpec(kind="lane")
        f2 = FaultSpec(kind="trip_count")
        plan = FaultPlan(faults=[f1, f2], seed=5)
        assert plan.stream_seed(f1, "a/b") == plan.stream_seed(f1, "a/b")
        assert plan.stream_seed(f1, "a/b") != plan.stream_seed(f2, "a/b")
        assert plan.stream_seed(f1, "a/b") != plan.stream_seed(f1, "a/c")

    def test_load_rejects_bad_json(self, tmp_path):
        bad = tmp_path / "plan.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            FaultPlan.load(bad)

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault plan field"):
            FaultPlan.loads('{"faults": [], "chaos": true}')
