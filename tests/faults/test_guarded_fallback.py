"""Guarded DSA execution vs injected mis-speculation.

The contract under test is the acceptance bar of the robustness issue:
every injected DSA output corruption — across every vectorizable loop
type — must be *detected* by the guard, rolled back to the scalar
reference (the golden check still passes), and surfaced through the
``fallbacks`` counter.  And on clean runs the guard must be a pure
observer: byte-identical results, zero fallbacks.
"""

import json

import pytest

from repro.dsa.engine import DSAVerificationError
from repro.faults import FaultPlan, FaultSpec, build_injector
from repro.systems.campaign import RunSpec, execute_spec

#: every vectorizable loop-type microkernel x every DSA state fault that
#: applies to straight-line loops
MATRIX_WORKLOADS = (
    "micro:count",
    "micro:function",
    "micro:dynamic_range",
    "micro:sentinel",
    "micro:partial",
    "micro:conditional",
)
STATE_FAULTS = ("lane", "trip_count", "loop_cache")


def _plan(kind: str, workload: str, **kw) -> FaultPlan:
    return FaultPlan(faults=[FaultSpec(kind=kind, match=f"{workload}/*", **kw)])


def _spec(workload: str) -> RunSpec:
    return RunSpec(workload, "neon_dsa", "full", "test")


class TestDetectionMatrix:
    @pytest.mark.parametrize("workload", MATRIX_WORKLOADS)
    @pytest.mark.parametrize("kind", STATE_FAULTS)
    def test_injected_corruption_detected_and_rolled_back(self, workload, kind):
        result = execute_spec(_spec(workload), guard=True, plan=_plan(kind, workload))
        # the fault fired, the guard caught it, and (because execute_spec
        # golden-checks) the architectural outputs still match the oracle
        assert result.dsa_stats.injected_faults >= 1
        assert result.dsa_stats.fallbacks >= 1
        assert sum(result.dsa_stats.fallback_causes.values()) == result.dsa_stats.fallbacks

    def test_verdict_fault_on_conditional_loop(self):
        result = execute_spec(
            _spec("micro:conditional"), guard=True, plan=_plan("verdict", "micro:conditional")
        )
        assert result.dsa_stats.injected_faults >= 1
        assert result.dsa_stats.fallbacks >= 1

    @pytest.mark.parametrize("kind", STATE_FAULTS)
    def test_unguarded_corruption_raises(self, kind):
        with pytest.raises(DSAVerificationError):
            execute_spec(_spec("micro:count"), guard=False, plan=_plan(kind, "micro:count"))

    def test_fallback_charges_cycles(self):
        clean = execute_spec(_spec("micro:count"), guard=True)
        faulted = execute_spec(_spec("micro:count"), guard=True, plan=_plan("lane", "micro:count"))
        assert faulted.cycles > clean.cycles  # rollback is not free


class TestGuardIsPureObserverWhenClean:
    @pytest.mark.parametrize("workload", ("micro:count", "micro:conditional"))
    def test_clean_guarded_run_is_byte_identical(self, workload):
        plain = execute_spec(_spec(workload))
        guarded = execute_spec(_spec(workload), guard=True)
        assert guarded.dsa_stats.fallbacks == 0
        assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
            guarded.to_dict(), sort_keys=True
        )


class TestNeonLaneFault:
    def test_architectural_corruption_fails_golden_check(self):
        # static SIMD systems have no runtime scalar reference: the injected
        # register-file corruption must surface as a golden-check failure
        plan = FaultPlan(faults=[FaultSpec(kind="neon_lane", match="*/neon_handvec")])
        with pytest.raises(AssertionError):
            execute_spec(RunSpec("micro:count", "neon_handvec"), plan=plan)


class TestInjectorConstruction:
    def test_unarmed_plans_build_no_injector(self):
        assert build_injector(None, "a/b") is None
        plan = FaultPlan(faults=[FaultSpec(kind="worker_crash", match="*")])
        assert build_injector(plan, "a/b") is None  # worker faults live elsewhere

    def test_armed_plan_builds_injector(self):
        plan = FaultPlan(faults=[FaultSpec(kind="lane", match="a/*")])
        injector = build_injector(plan, "a/b")
        assert injector is not None and injector.armed
        assert build_injector(plan, "z/b") is None  # label does not match
