"""Crash-isolated campaign execution under injected harness faults.

Workers that raise, hard-exit, or hang cost the campaign exactly the run
they were computing: everything else completes, failures come back as
:class:`RunFailure` records, and retried runs produce byte-identical
results to a fault-free serial campaign.
"""

import json

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan, FaultSpec
from repro.systems.campaign import CampaignRunner, RunSpec

SPECS = [
    RunSpec("micro:count", "neon_dsa", "full", "test"),
    RunSpec("micro:conditional", "neon_dsa", "full", "test"),
    RunSpec("micro:sentinel", "arm_original", "full", "test"),
    RunSpec("micro:partial", "neon_autovec", "full", "test"),
]


def _encode(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def clean_serial(tmp_path_factory):
    """The fault-free --jobs 1 reference campaign."""
    cache = tmp_path_factory.mktemp("clean-cache")
    return CampaignRunner(jobs=1, cache_dir=cache).run(SPECS)


class TestWorkerCrash:
    def test_retry_recovers_and_results_match_serial(self, clean_serial, tmp_path):
        plan = FaultPlan(faults=[FaultSpec(kind="worker_crash", match="micro:count/*", times=1)])
        runner = CampaignRunner(
            jobs=2, cache_dir=tmp_path, fault_plan=plan,
            timeout=60.0, retries=1, backoff=0.05,
        )
        outcome = runner.run(SPECS)
        assert outcome.ok, [f.to_dict() for f in outcome.failures]
        for spec in SPECS:
            assert _encode(outcome.result_for(spec)) == _encode(clean_serial.result_for(spec))

    def test_terminal_crash_reported_not_fatal(self, tmp_path):
        plan = FaultPlan(faults=[FaultSpec(kind="worker_exit", match="micro:count/*", times=0, exit_code=7)])
        runner = CampaignRunner(jobs=2, cache_dir=tmp_path, fault_plan=plan, retries=1, backoff=0.05)
        outcome = runner.run(SPECS)
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.kind == "crash"
        assert failure.label == "micro:count/neon_dsa[full]"
        assert failure.attempts == 2  # one retry was spent
        assert "exit code 7" in failure.cause
        assert len(outcome.metrics) == len(SPECS) - 1  # the rest completed

    def test_raising_worker_is_an_error_failure(self, tmp_path):
        plan = FaultPlan(faults=[FaultSpec(kind="worker_crash", match="micro:count/*", times=0)])
        outcome = CampaignRunner(jobs=2, cache_dir=tmp_path, fault_plan=plan).run(SPECS[:2])
        (failure,) = outcome.failures
        assert failure.kind == "error"
        assert "InjectedFaultError" in failure.cause


class TestWorkerHang:
    def test_hang_is_killed_at_deadline_and_retried(self, clean_serial, tmp_path):
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_hang", match="micro:sentinel/*", times=1, seconds=300.0)
        ])
        runner = CampaignRunner(
            jobs=2, cache_dir=tmp_path, fault_plan=plan,
            timeout=3.0, retries=1, backoff=0.05,
        )
        outcome = runner.run(SPECS[:3])
        assert outcome.ok, [f.to_dict() for f in outcome.failures]
        spec = SPECS[2]
        assert _encode(outcome.result_for(spec)) == _encode(clean_serial.result_for(spec))

    def test_persistent_hang_becomes_timeout_failure(self, tmp_path):
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_hang", match="micro:sentinel/*", times=0, seconds=300.0)
        ])
        runner = CampaignRunner(jobs=2, cache_dir=tmp_path, fault_plan=plan, timeout=2.0)
        outcome = runner.run(SPECS[2:])
        (failure,) = outcome.failures
        assert failure.kind == "timeout"
        assert failure.label == "micro:sentinel/arm_original"


class TestAcceptanceCombo:
    def test_crash_hang_and_corrupted_cache_in_one_campaign(self, clean_serial, tmp_path):
        """The issue's acceptance scenario: one worker crash, one hang, two
        corrupted cache entries — the campaign completes, the faulted specs
        recover through retries, and every non-faulted result is
        byte-identical to the fault-free serial run."""
        cache = tmp_path / "cache"
        # pre-populate the cache so the corruption faults have targets
        CampaignRunner(jobs=1, cache_dir=cache).run(SPECS)
        plan = FaultPlan(faults=[
            FaultSpec(kind="worker_crash", match="micro:count/*", times=1),
            FaultSpec(kind="worker_hang", match="micro:conditional/*", times=1, seconds=300.0),
            FaultSpec(kind="cache_corrupt", match="micro:sentinel/*", mode="garbage"),
            FaultSpec(kind="cache_corrupt", match="micro:partial/*", mode="truncate"),
        ])
        runner = CampaignRunner(
            jobs=2, cache_dir=cache, fault_plan=plan,
            timeout=5.0, retries=2, backoff=0.05,
        )
        outcome = runner.run(SPECS)
        assert outcome.ok, [f.to_dict() for f in outcome.failures]
        # corrupted entries were recovered by recomputing, not served stale
        for m in outcome.metrics:
            assert m.source == "computed"
        for spec in SPECS:
            assert _encode(outcome.result_for(spec)) == _encode(clean_serial.result_for(spec))


class TestIncrementalStore:
    def test_results_are_durable_before_the_campaign_ends(self, tmp_path):
        """A terminal failure in one spec must not lose sibling results:
        each run is written to the disk cache the moment it completes."""
        plan = FaultPlan(faults=[FaultSpec(kind="worker_exit", match="micro:count/*", times=0)])
        runner = CampaignRunner(jobs=2, cache_dir=tmp_path, fault_plan=plan, retries=0)
        outcome = runner.run(SPECS[:3])
        assert not outcome.ok
        # the two non-faulted siblings are already on disk: a fresh runner
        # serves them without computing anything
        rerun = CampaignRunner(jobs=1, cache_dir=tmp_path).run(SPECS[1:3])
        assert rerun.ok
        assert [m.source for m in rerun.metrics] == ["disk-cache", "disk-cache"]


class TestResume:
    def test_resume_serves_plan_targets_from_cache(self, tmp_path):
        plan = FaultPlan(faults=[FaultSpec(kind="worker_crash", match="micro:count/*", times=0)])
        first = CampaignRunner(jobs=2, cache_dir=tmp_path, fault_plan=plan, retries=0).run(SPECS[:2])
        assert len(first.failures) == 1
        # without --resume the crash would fire again forever; with it the
        # campaign treats the incremental store as the source of truth
        resumed = CampaignRunner(jobs=1, cache_dir=tmp_path, fault_plan=plan, resume=True).run(SPECS[:2])
        assert len(resumed.failures) == 1  # the crashed spec was never computed
        done = CampaignRunner(jobs=1, cache_dir=tmp_path).run(SPECS[:2])
        assert done.ok


class TestRunOneContract:
    def test_run_one_raises_a_clear_error_on_failure(self, tmp_path):
        plan = FaultPlan(faults=[FaultSpec(kind="worker_crash", match="*", times=0)])
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path, fault_plan=plan)
        with pytest.raises(ReproError, match="failed after 1 attempt"):
            runner.run_one(SPECS[0])


class TestCLIExitCodes:
    def test_partial_failure_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(
            {"faults": [{"kind": "worker_exit", "match": "micro:count/*", "times": 0}]}
        ))
        code = main([
            "campaign", "--workloads", "micro:count", "micro:sentinel",
            "--systems", "arm_original",
            "--inject", str(plan_file), "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "failed: micro:count/arm_original" in err
        assert "exit code" in err

    def test_unreadable_plan_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["campaign", "--inject", str(tmp_path / "missing.json")])
        assert code == 2
        assert "fault plan" in capsys.readouterr().err
