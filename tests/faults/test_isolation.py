"""IsolatedExecutor unit tests with sacrificial toy workers.

The worker functions must be module-level so they survive pickling under
any multiprocessing start method.
"""

import os
import time

import pytest

from repro.errors import ConfigError
from repro.systems.isolation import IsolatedExecutor

# tasks are (verb, payload) tuples interpreted by _toy_worker


def _toy_worker(task, attempt):
    verb, payload = task
    if verb == "ok":
        return payload * 2
    if verb == "raise":
        raise ValueError(f"boom {payload}")
    if verb == "exit":
        os._exit(payload)
    if verb == "hang":
        time.sleep(payload)
        return "woke"
    if verb == "flaky":
        # fails until the given attempt number is reached
        if attempt < payload:
            raise RuntimeError(f"attempt {attempt} too early")
        return f"ok on {attempt}"
    raise AssertionError(f"unknown verb {verb}")


class TestOutcomes:
    def test_ok_and_error_and_crash(self):
        executor = IsolatedExecutor(_toy_worker, jobs=3)
        outcomes = executor.run([("ok", 21), ("raise", "x"), ("exit", 5)])
        assert [o.status for o in outcomes] == ["ok", "error", "crash"]
        assert outcomes[0].value == 42
        assert "ValueError: boom x" in outcomes[1].detail
        assert "exit code 5" in outcomes[2].detail
        assert all(o.attempts == 1 for o in outcomes)

    def test_results_stay_parallel_to_tasks(self):
        executor = IsolatedExecutor(_toy_worker, jobs=4)
        tasks = [("ok", n) for n in range(8)]
        outcomes = executor.run(tasks)
        assert [o.value for o in outcomes] == [n * 2 for n in range(8)]

    def test_hang_is_killed_as_timeout(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, timeout=0.5)
        (outcome,) = executor.run([("hang", 60.0)])
        assert outcome.status == "timeout"
        assert "killed" in outcome.detail

    def test_fast_task_beats_its_deadline(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, timeout=30.0)
        (outcome,) = executor.run([("ok", 1)])
        assert outcome.ok and outcome.value == 2


class TestRetries:
    def test_flaky_task_recovers_within_budget(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, retries=2, backoff=0.01)
        (outcome,) = executor.run([("flaky", 3)])
        assert outcome.ok
        assert outcome.value == "ok on 3"
        assert outcome.attempts == 3

    def test_retries_exhausted_reports_final_attempt(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, retries=1, backoff=0.01)
        (outcome,) = executor.run([("raise", "always")])
        assert outcome.status == "error"
        assert outcome.attempts == 2

    def test_crash_is_retried_too(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, retries=1, backoff=0.01)
        (outcome,) = executor.run([("exit", 3)])
        assert outcome.status == "crash"
        assert outcome.attempts == 2


class TestOnComplete:
    def test_callback_fires_once_per_task_with_final_outcome(self):
        seen = {}
        executor = IsolatedExecutor(
            _toy_worker, jobs=2, retries=1, backoff=0.01,
            on_complete=lambda index, outcome: seen.setdefault(index, outcome),
        )
        executor.run([("ok", 1), ("raise", "y")])
        assert set(seen) == {0, 1}
        assert seen[0].ok and not seen[1].ok
        assert seen[1].attempts == 2


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError):
            IsolatedExecutor(_toy_worker, jobs=0)
        with pytest.raises(ConfigError):
            IsolatedExecutor(_toy_worker, retries=-1)
        with pytest.raises(ConfigError):
            IsolatedExecutor(_toy_worker, timeout=0)
