"""IsolatedExecutor unit tests with sacrificial toy workers.

The worker functions must be module-level so they survive pickling under
any multiprocessing start method.
"""

import os
import time

import pytest

from repro.errors import ConfigError
from repro.systems.isolation import IsolatedExecutor

# tasks are (verb, payload) tuples interpreted by _toy_worker


def _toy_worker(task, attempt):
    verb, payload = task
    if verb == "ok":
        return payload * 2
    if verb == "raise":
        raise ValueError(f"boom {payload}")
    if verb == "exit":
        os._exit(payload)
    if verb == "hang":
        time.sleep(payload)
        return "woke"
    if verb == "flaky":
        # fails until the given attempt number is reached
        if attempt < payload:
            raise RuntimeError(f"attempt {attempt} too early")
        return f"ok on {attempt}"
    if verb == "stderr_exit":
        # the shape of a native abort: a last scream on stderr, then death
        print(f"fatal: {payload}", file=__import__("sys").stderr, flush=True)
        os._exit(70)
    raise AssertionError(f"unknown verb {verb}")


class TestOutcomes:
    def test_ok_and_error_and_crash(self):
        executor = IsolatedExecutor(_toy_worker, jobs=3)
        outcomes = executor.run([("ok", 21), ("raise", "x"), ("exit", 5)])
        assert [o.status for o in outcomes] == ["ok", "error", "crash"]
        assert outcomes[0].value == 42
        assert "ValueError: boom x" in outcomes[1].detail
        assert "exit code 5" in outcomes[2].detail
        assert all(o.attempts == 1 for o in outcomes)

    def test_results_stay_parallel_to_tasks(self):
        executor = IsolatedExecutor(_toy_worker, jobs=4)
        tasks = [("ok", n) for n in range(8)]
        outcomes = executor.run(tasks)
        assert [o.value for o in outcomes] == [n * 2 for n in range(8)]

    def test_hang_is_killed_as_timeout(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, timeout=0.5)
        (outcome,) = executor.run([("hang", 60.0)])
        assert outcome.status == "timeout"
        assert "killed" in outcome.detail

    def test_fast_task_beats_its_deadline(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, timeout=30.0)
        (outcome,) = executor.run([("ok", 1)])
        assert outcome.ok and outcome.value == 2


class TestRetries:
    def test_flaky_task_recovers_within_budget(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, retries=2, backoff=0.01)
        (outcome,) = executor.run([("flaky", 3)])
        assert outcome.ok
        assert outcome.value == "ok on 3"
        assert outcome.attempts == 3

    def test_retries_exhausted_reports_final_attempt(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, retries=1, backoff=0.01)
        (outcome,) = executor.run([("raise", "always")])
        assert outcome.status == "error"
        assert outcome.attempts == 2

    def test_crash_is_retried_too(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1, retries=1, backoff=0.01)
        (outcome,) = executor.run([("exit", 3)])
        assert outcome.status == "crash"
        assert outcome.attempts == 2


class TestPostMortemDiagnostics:
    def test_raised_exception_carries_its_traceback(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1)
        (outcome,) = executor.run([("raise", "diagnosable")])
        assert outcome.status == "error"
        assert "ValueError: boom diagnosable" in outcome.detail
        assert "[traceback:" in outcome.detail
        assert "_toy_worker" in outcome.detail  # the frame that raised

    def test_hard_exit_carries_the_stderr_tail(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1)
        (outcome,) = executor.run([("stderr_exit", "bus error at 0xdead")])
        assert outcome.status == "crash"
        assert "exit code 70" in outcome.detail
        assert "[stderr: fatal: bus error at 0xdead]" in outcome.detail

    def test_silent_hard_exit_reports_just_the_exit_code(self):
        executor = IsolatedExecutor(_toy_worker, jobs=1)
        (outcome,) = executor.run([("exit", 3)])
        assert "exit code 3" in outcome.detail
        assert "[stderr:" not in outcome.detail

    def test_stderr_scratch_files_are_cleaned_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile
        tempfile.tempdir = None  # re-read TMPDIR
        try:
            executor = IsolatedExecutor(_toy_worker, jobs=2)
            executor.run([("ok", 1), ("stderr_exit", "x"), ("raise", "y")])
            assert list(tmp_path.glob("repro-worker-*.stderr")) == []
        finally:
            tempfile.tempdir = None


class TestOnComplete:
    def test_callback_fires_once_per_task_with_final_outcome(self):
        seen = {}
        executor = IsolatedExecutor(
            _toy_worker, jobs=2, retries=1, backoff=0.01,
            on_complete=lambda index, outcome: seen.setdefault(index, outcome),
        )
        executor.run([("ok", 1), ("raise", "y")])
        assert set(seen) == {0, 1}
        assert seen[0].ok and not seen[1].ok
        assert seen[1].attempts == 2


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError):
            IsolatedExecutor(_toy_worker, jobs=0)
        with pytest.raises(ConfigError):
            IsolatedExecutor(_toy_worker, retries=-1)
        with pytest.raises(ConfigError):
            IsolatedExecutor(_toy_worker, timeout=0)
