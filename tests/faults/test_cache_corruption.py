"""Disk-cache damage: recovery semantics and the tmp-file hygiene.

Every flavor of cache damage must read as a miss (recompute), never as an
error and never as a stale hit.
"""

import json

from repro.faults import FaultPlan, FaultSpec
from repro.systems.campaign import CampaignRunner, RunSpec
from repro.systems.result_cache import CACHE_VERSION, ResultDiskCache

SPEC = RunSpec("micro:count", "arm_original")


def _key_path(runner: CampaignRunner, spec: RunSpec):
    return runner.disk.path_for(runner.cache_key(spec))


class TestManualDamageRecovery:
    def _primed(self, tmp_path):
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        baseline = runner.run([SPEC]).result_for(SPEC)
        return CampaignRunner(jobs=1, cache_dir=tmp_path), baseline

    def test_bad_json_recovers(self, tmp_path):
        runner, baseline = self._primed(tmp_path)
        path = _key_path(runner, SPEC)
        path.write_bytes(b"\x00not json\xff")
        outcome = runner.run([SPEC])
        assert outcome.metrics[0].source == "computed"
        assert outcome.result_for(SPEC).to_dict() == baseline.to_dict()
        assert not path.exists() or json.loads(path.read_text())  # re-stored clean

    def test_wrong_cache_version_recovers(self, tmp_path):
        runner, baseline = self._primed(tmp_path)
        path = _key_path(runner, SPEC)
        payload = json.loads(path.read_text())
        assert payload["cache_version"] == CACHE_VERSION
        payload["cache_version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(payload))
        outcome = runner.run([SPEC])
        assert outcome.metrics[0].source == "computed"
        assert outcome.result_for(SPEC).to_dict() == baseline.to_dict()

    def test_truncated_entry_recovers(self, tmp_path):
        runner, baseline = self._primed(tmp_path)
        path = _key_path(runner, SPEC)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        outcome = runner.run([SPEC])
        assert outcome.metrics[0].source == "computed"
        assert outcome.result_for(SPEC).to_dict() == baseline.to_dict()

    def test_intact_entry_still_hits(self, tmp_path):
        runner, _ = self._primed(tmp_path)
        assert runner.run([SPEC]).metrics[0].source == "disk-cache"


class TestInjectedCacheFaults:
    def test_every_corrupt_mode_recovers(self, tmp_path):
        clean = CampaignRunner(jobs=1, cache_dir=tmp_path)
        baseline = clean.run([SPEC]).result_for(SPEC)
        for mode in ("garbage", "version", "truncate"):
            plan = FaultPlan(faults=[FaultSpec(kind="cache_corrupt", match="micro:count/*", mode=mode)])
            runner = CampaignRunner(jobs=1, cache_dir=tmp_path, fault_plan=plan)
            outcome = runner.run([SPEC])
            assert outcome.ok
            assert outcome.metrics[0].source == "computed", mode
            assert outcome.result_for(SPEC).to_dict() == baseline.to_dict(), mode

    def test_tmp_mode_orphans_are_pruned_on_startup(self, tmp_path):
        plan = FaultPlan(faults=[FaultSpec(kind="cache_corrupt", match="micro:count/*", mode="tmp")])
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path, fault_plan=plan)
        outcome = runner.run([SPEC])
        assert outcome.ok
        assert not list(tmp_path.rglob("*.tmp"))


class TestTmpHygiene:
    def test_prune_tmp_removes_only_orphans(self, tmp_path):
        cache = ResultDiskCache(tmp_path)
        cache.store("ab" + "0" * 62, {"keep": True})
        sub = tmp_path / "ab"
        (sub / "orphan1.tmp").write_text("torn")
        (sub / "orphan2.tmp").write_text("torn")
        assert cache.prune_tmp() == 2
        loaded = cache.load("ab" + "0" * 62)
        assert loaded["cache_version"] == CACHE_VERSION and loaded["keep"] is True
        assert cache.prune_tmp() == 0

    def test_clear_removes_entries_and_orphans(self, tmp_path):
        cache = ResultDiskCache(tmp_path)
        cache.store("cd" + "0" * 62, {"x": 1})
        (tmp_path / "cd" / "leftover.tmp").write_text("torn")
        assert cache.clear() == 2
        assert cache.load("cd" + "0" * 62) is None

    def test_disabled_cache_prunes_nothing(self, tmp_path):
        (tmp_path / "a.tmp").write_text("torn")
        cache = ResultDiskCache(tmp_path, enabled=False)
        assert cache.prune_tmp() == 0
