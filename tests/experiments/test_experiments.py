"""Experiment harness tests: every table/figure regenerates, and the
paper's qualitative shape holds (who wins, where, and by what sign)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, ResultCache, run_all
from repro.experiments import (
    art1_fig12,
    art1_table3,
    art2_fig16,
    art3_fig7,
    art3_fig8,
    art3_fig9,
    fig_neon_parallelism,
    table4_setup,
)


@pytest.fixture(scope="module")
def cache():
    return ResultCache("test")


class TestHarness:
    def test_all_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 11

    def test_tables_render(self, cache):
        exp = table4_setup.run()
        text = exp.table()
        assert "2 wide" in text and "1GHz" in text and "8 kb" in text

    def test_area_table_matches_paper(self):
        exp = art1_table3.run()
        text = exp.table()
        assert "2.18%" in text and "10.37%" in text

    def test_neon_parallelism_matches_paper(self):
        exp = fig_neon_parallelism.run()
        rows = exp.row_dict()
        assert rows["i8"][1] == 16
        assert rows["f32"][1] == 4
        assert rows["i64"][1] == 2


class TestArticle1Shape:
    def test_fig12_shape(self, cache):
        exp = art1_fig12.run(cache=cache)
        rows = exp.row_dict()
        # high-DLP benchmarks improve under both systems
        for name in ("matmul", "rgb_gray", "gaussian"):
            assert rows[name][0] > 50 and rows[name][1] > 50
        # low-DLP: the DSA never penalizes; autovec's guards cost a little
        assert rows["qsort"][1] >= 0
        assert rows["dijkstra"][1] >= -2
        assert rows["dijkstra"][0] <= 0.5  # autovec gains nothing there


class TestArticle2Shape:
    def test_fig16_extended_dsa_unlocks_dynamic_loops(self, cache):
        exp = art2_fig16.run(cache=cache)
        rows = exp.row_dict()
        # BitCounts: untouchable statically, large gain for the extended DSA
        assert rows["bitcount"][0] <= 0.5
        assert rows["bitcount"][1] <= 0.5
        assert rows["bitcount"][2] > 50
        # Susan: the conditional loop only helps the extended DSA
        assert rows["susan_edges"][2] > rows["susan_edges"][1]
        # extended dominates original everywhere
        for name in ("bitcount", "dijkstra", "susan_edges", "qsort"):
            assert rows[name][2] >= rows[name][1] - 2.5

    def test_extended_beats_autovec_on_average(self, cache):
        exp = art2_fig16.run(cache=cache)
        avg = exp.row_dict()["AVERAGE"]
        assert avg[2] > avg[0]  # the paper's +12% headline (sign)


class TestArticle3Shape:
    def test_fig8_dsa_covers_what_static_cannot(self, cache):
        exp = art3_fig8.run(cache=cache)
        rows = exp.row_dict()
        assert rows["bitcount"][2] > 50 and rows["bitcount"][0] <= 0.5 and rows["bitcount"][1] <= 0.5

    def test_fig9_energy_savings(self, cache):
        exp = art3_fig9.run(cache=cache)
        rows = exp.row_dict()
        # the paper's 45% headline: high-DLP apps save big under the DSA
        for name in ("matmul", "rgb_gray", "gaussian", "bitcount"):
            assert rows[name][2] > 30, name
        # low-DLP apps are not made substantially worse
        assert rows["qsort"][2] > -5

    def test_fig7_loop_census(self, cache):
        exp = art3_fig7.run(cache=cache)
        rows = exp.row_dict()
        header = exp.columns[1:]
        census = {name: dict(zip(header, vals)) for name, vals in rows.items()}
        assert census["rgb_gray"]["count"] == 100.0
        assert census["bitcount"]["sentinel"] > 0
        assert census["bitcount"]["dynamic_range"] > 0
        assert census["susan_edges"]["conditional"] > 0
        assert census["dijkstra"]["conditional"] > 0
        assert census["qsort"]["count"] == 0.0  # nothing statically countable


@pytest.mark.slow
def test_run_all_smoke():
    results = run_all("test")
    assert set(results) == set(ALL_EXPERIMENTS)
    for exp in results.values():
        assert exp.table()
