"""Assembler tests: parsing, labels, errors, and disassembly round-trips."""

import pytest

from repro.errors import AssemblerError
from repro.isa import (
    Alu,
    AluKind,
    Branch,
    BranchReg,
    Cmp,
    CmpKind,
    Cond,
    DType,
    FloatOp,
    Halt,
    Imm,
    IndexMode,
    Mem,
    Mov,
    Mul,
    MulKind,
    Nop,
    QReg,
    Reg,
    ShiftedReg,
    ShiftKind,
    VBinOp,
    VBsl,
    VCmp,
    VDup,
    VLoad,
    VLoadLane,
    VMovFromCore,
    VMovToCore,
    VStore,
    assemble,
)
from repro.isa.program import DEFAULT_TEXT_BASE, INSTRUCTION_BYTES


def one(text: str):
    prog = assemble(text)
    assert len(prog) == 1
    return prog.instructions[0]


class TestScalarParsing:
    def test_mov_imm(self):
        instr = one("mov r0, #42")
        assert instr == Mov(Reg(0), Imm(42))

    def test_mov_negative_hex(self):
        assert one("mov r0, #-4") == Mov(Reg(0), Imm(-4))
        assert one("mov r0, #0x10") == Mov(Reg(0), Imm(16))

    def test_mvn(self):
        assert one("mvn r1, r2") == Mov(Reg(1), Reg(2), negate=True)

    def test_add_reg(self):
        assert one("add r3, r4, r5") == Alu(AluKind.ADD, Reg(3), Reg(4), Reg(5))

    def test_adds_sets_flags(self):
        instr = one("subs r0, r0, #1")
        assert isinstance(instr, Alu) and instr.sets_flags

    def test_shifted_operand(self):
        instr = one("add r3, r4, r5, lsl #2")
        assert instr == Alu(AluKind.ADD, Reg(3), Reg(4), ShiftedReg(Reg(5), ShiftKind.LSL, 2))

    def test_mul_and_mla(self):
        assert one("mul r0, r1, r2") == Mul(MulKind.MUL, Reg(0), Reg(1), Reg(2))
        assert one("mla r0, r1, r2, r3") == Mul(MulKind.MLA, Reg(0), Reg(1), Reg(2), Reg(3))

    def test_float_ops(self):
        instr = one("fmul r0, r1, r2")
        assert isinstance(instr, FloatOp)

    def test_cmp(self):
        assert one("cmp r0, #100") == Cmp(CmpKind.CMP, Reg(0), Imm(100))

    def test_nop_halt(self):
        assert one("nop") == Nop()
        assert one("halt") == Halt()


class TestMemoryParsing:
    def test_ldr_offset(self):
        instr = one("ldr r0, [r1, #8]")
        assert isinstance(instr, Mem) and instr.is_load
        assert instr.addr.offset == Imm(8)
        assert instr.addr.mode is IndexMode.OFFSET

    def test_ldr_post_index(self):
        instr = one("ldr r0, [r1], #4")
        assert instr.addr.mode is IndexMode.POST
        assert instr.regs_written() == frozenset({Reg(0), Reg(1)})

    def test_str_pre_index(self):
        instr = one("str r0, [r1, #4]!")
        assert instr.is_store and instr.addr.mode is IndexMode.PRE

    def test_register_offset_with_shift(self):
        instr = one("ldr r0, [r1, r2, lsl #2]")
        assert instr.addr.offset == ShiftedReg(Reg(2), ShiftKind.LSL, 2)

    def test_byte_and_half_variants(self):
        assert one("ldrb r0, [r1]").dtype is DType.U8
        assert one("ldrsb r0, [r1]").dtype is DType.I8
        assert one("ldrh r0, [r1]").dtype is DType.U16
        assert one("ldrsh r0, [r1]").dtype is DType.I16
        assert one("strb r0, [r1]").dtype is DType.U8


class TestBranches:
    def test_labels_resolve(self):
        prog = assemble(
            """
            loop:
                add r0, r0, #1
                cmp r0, #10
                blt loop
                halt
            """
        )
        assert prog.labels["loop"] == DEFAULT_TEXT_BASE
        branch = prog.instructions[2]
        assert branch == Branch(DEFAULT_TEXT_BASE, cond=Cond.LT)

    def test_forward_reference(self):
        prog = assemble(
            """
                b end
                nop
            end:
                halt
            """
        )
        assert prog.instructions[0].target == DEFAULT_TEXT_BASE + 2 * INSTRUCTION_BYTES

    def test_bl_and_bx(self):
        prog = assemble(
            """
                bl func
                halt
            func:
                bx lr
            """
        )
        assert prog.instructions[0].link
        assert isinstance(prog.instructions[2], BranchReg)

    def test_bic_not_a_branch(self):
        instr = one("bic r0, r1, r2")
        assert isinstance(instr, Alu) and instr.kind is AluKind.BIC

    def test_blo_is_conditional_branch(self):
        prog = assemble("x:\n blo x")
        assert prog.instructions[0].cond is Cond.LO

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("b nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nnop\na:\nnop")


class TestVectorParsing:
    def test_vld1_writeback(self):
        instr = one("vld1.i32 q0, [r5]!")
        assert instr == VLoad(QReg(0), Reg(5), DType.I32, writeback=True)

    def test_vst1(self):
        instr = one("vst1.f32 q2, [r7]")
        assert instr == VStore(QReg(2), Reg(7), DType.F32, writeback=False)

    def test_vadd(self):
        instr = one("vadd.i16 q2, q0, q1")
        assert isinstance(instr, VBinOp) and instr.dtype is DType.I16

    def test_vdup(self):
        assert one("vdup.i32 q3, r2") == VDup(QReg(3), Reg(2), DType.I32)

    def test_vceq(self):
        assert isinstance(one("vceq.i8 q0, q1, q2"), VCmp)

    def test_vbsl(self):
        assert one("vbsl q0, q1, q2") == VBsl(QReg(0), QReg(1), QReg(2))

    def test_lane_load(self):
        instr = one("vldlane.i32 q0[2], [r5]!")
        assert instr == VLoadLane(QReg(0), 2, Reg(5), DType.I32, writeback=True)

    def test_vmov_lane_directions(self):
        assert isinstance(one("vmov.i32 r3, q0[1]"), VMovToCore)
        assert isinstance(one("vmov.i32 q0[1], r3"), VMovFromCore)

    def test_missing_dtype_suffix(self):
        with pytest.raises(AssemblerError):
            assemble("vadd q0, q1, q2")

    def test_vector_flag_set(self):
        assert one("vadd.i32 q0, q1, q2").is_vector
        assert not one("add r0, r1, r2").is_vector


class TestCommentsAndLayout:
    def test_comments_stripped(self):
        prog = assemble(
            """
            ; full line comment
            mov r0, #1  @ trailing
            add r0, r0, #2 // c++ style
            """
        )
        assert len(prog) == 2

    def test_label_on_same_line(self):
        prog = assemble("start: mov r0, #1\nb start")
        assert prog.labels["start"] == DEFAULT_TEXT_BASE
        assert len(prog) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("frobnicate r0, r1")
        assert "frobnicate" in str(exc.value)


class TestDisassemblyRoundTrip:
    SOURCE = """
    init:
        mov r0, #0
        mov r5, #0x100
    loop:
        ldr r3, [r5], #4
        ldrb r4, [r6, #1]
        add r3, r3, r4, lsl #2
        mla r7, r3, r4, r7
        str r3, [r8], #4
        add r0, r0, #1
        cmp r0, #64
        blt loop
        bl helper
        halt
    helper:
        vld1.i32 q0, [r5]!
        vdup.i32 q1, r2
        vadd.i32 q2, q0, q1
        vcgt.i32 q3, q2, q0
        vbsl q3, q2, q0
        vst1.i32 q3, [r8]!
        vmov.i32 r3, q3[0]
        bx lr
    """

    def test_roundtrip(self):
        prog1 = assemble(self.SOURCE)
        text = prog1.disassemble()
        prog2 = assemble(text)
        assert prog1.instructions == prog2.instructions
        assert prog1.labels == prog2.labels

    def test_instr_at_and_contains(self):
        prog = assemble(self.SOURCE)
        addr = prog.addr_of("loop")
        assert prog.contains(addr)
        assert isinstance(prog.instr_at(addr), Mem)
        assert not prog.contains(prog.end)
