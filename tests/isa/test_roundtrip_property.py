"""Property test: disassembling any instruction and re-assembling it gives
back the identical instruction object (the canonical-text round trip)."""

from hypothesis import given, settings, strategies as st

from repro.isa import assemble
from repro.isa.dtypes import DType
from repro.isa.instructions import (
    Alu,
    AluKind,
    BranchReg,
    Cmp,
    CmpKind,
    FloatKind,
    FloatOp,
    Halt,
    Mem,
    Mov,
    Mul,
    MulKind,
    Nop,
)
from repro.isa.neon import (
    VBinKind,
    VBinOp,
    VBsl,
    VCmp,
    VCmpKind,
    VDup,
    VDupImm,
    VLoad,
    VLoadLane,
    VMla,
    VMovFromCore,
    VMovQ,
    VMovToCore,
    VShiftImm,
    VShiftKind,
    VStore,
    VStoreLane,
    VUnary,
    VUnaryKind,
)
from repro.isa.operands import Address, Imm, IndexMode, QReg, Reg, ShiftedReg, ShiftKind

regs = st.builds(Reg, st.integers(0, 12))
qregs = st.builds(QReg, st.integers(0, 15))
imms = st.builds(Imm, st.integers(-4096, 4096))
shifted = st.builds(ShiftedReg, regs, st.sampled_from(list(ShiftKind)), st.integers(0, 31))
operand2 = st.one_of(imms, regs, shifted)

addresses = st.one_of(
    st.builds(Address, regs, imms, st.sampled_from([IndexMode.OFFSET, IndexMode.POST])),
    st.builds(Address, regs, regs, st.just(IndexMode.OFFSET)),
    st.builds(Address, regs, shifted, st.just(IndexMode.OFFSET)),
    st.builds(
        Address,
        regs,
        st.builds(Imm, st.integers(1, 4096)),
        st.just(IndexMode.PRE),
    ),
)

# loads distinguish sign (ldrb/ldrsb); stores do not (strb stores bytes),
# so store dtypes are restricted to the canonical unsigned/word forms
load_dtypes = st.sampled_from([DType.U8, DType.I8, DType.U16, DType.I16, DType.I32])
store_dtypes = st.sampled_from([DType.U8, DType.U16, DType.I32])
mem_instrs = st.one_of(
    st.builds(Mem, st.just(False), regs, addresses, load_dtypes),
    st.builds(Mem, st.just(True), regs, addresses, store_dtypes),
)
vec_dtypes = st.sampled_from([DType.I8, DType.U8, DType.I16, DType.U16, DType.I32, DType.U32, DType.F32])
int_vec_dtypes = st.sampled_from([DType.I8, DType.U8, DType.I16, DType.U16, DType.I32, DType.U32])


def lane_for(dtype_strategy):
    return dtype_strategy.flatmap(
        lambda dt: st.tuples(st.just(dt), st.integers(0, dt.lanes - 1))
    )


scalar_instrs = st.one_of(
    st.builds(Alu, st.sampled_from(list(AluKind)), regs, regs, operand2, st.booleans()),
    st.builds(Mov, regs, operand2, st.booleans()),
    st.builds(Cmp, st.sampled_from(list(CmpKind)), regs, operand2),
    st.builds(Mul, st.sampled_from([MulKind.MUL, MulKind.SDIV, MulKind.UDIV]), regs, regs, regs),
    st.builds(lambda d, n, m, a: Mul(MulKind.MLA, d, n, m, a), regs, regs, regs, regs),
    st.builds(FloatOp, st.sampled_from(list(FloatKind)), regs, regs, regs),
    mem_instrs,
    st.builds(BranchReg, regs),
    st.just(Nop()),
    st.just(Halt()),
)

vector_instrs = st.one_of(
    st.builds(VLoad, qregs, regs, vec_dtypes, st.booleans()),
    st.builds(VStore, qregs, regs, vec_dtypes, st.booleans()),
    lane_for(vec_dtypes).flatmap(
        lambda dl: st.builds(VLoadLane, qregs, st.just(dl[1]), regs, st.just(dl[0]), st.booleans())
    ),
    lane_for(vec_dtypes).flatmap(
        lambda dl: st.builds(VStoreLane, qregs, st.just(dl[1]), regs, st.just(dl[0]), st.booleans())
    ),
    st.builds(VBinOp, st.sampled_from(list(VBinKind)), qregs, qregs, qregs, vec_dtypes),
    st.builds(VMla, qregs, qregs, qregs, vec_dtypes),
    int_vec_dtypes.flatmap(
        lambda dt: st.builds(
            VShiftImm,
            st.sampled_from(list(VShiftKind)),
            qregs,
            qregs,
            st.integers(0, dt.bits - 1),
            st.just(dt),
        )
    ),
    st.builds(VUnary, st.sampled_from(list(VUnaryKind)), qregs, qregs, vec_dtypes),
    st.builds(VDup, qregs, regs, vec_dtypes),
    st.builds(VDupImm, qregs, st.integers(-100, 100), vec_dtypes),
    st.builds(VCmp, st.sampled_from(list(VCmpKind)), qregs, qregs, qregs, vec_dtypes),
    st.builds(VBsl, qregs, qregs, qregs),
    st.builds(VMovQ, qregs, qregs),
    lane_for(vec_dtypes).flatmap(
        lambda dl: st.builds(VMovToCore, regs, qregs, st.just(dl[1]), st.just(dl[0]))
    ),
    lane_for(vec_dtypes).flatmap(
        lambda dl: st.builds(VMovFromCore, qregs, st.just(dl[1]), regs, st.just(dl[0]))
    ),
)


class TestRoundTrip:
    @given(scalar_instrs)
    @settings(max_examples=300)
    def test_scalar_roundtrip(self, instr):
        text = str(instr)
        (reparsed,) = assemble(text).instructions
        assert reparsed == instr, text

    @given(vector_instrs)
    @settings(max_examples=300)
    def test_vector_roundtrip(self, instr):
        text = str(instr)
        (reparsed,) = assemble(text).instructions
        assert reparsed == instr, text

    @given(st.lists(st.one_of(scalar_instrs, vector_instrs), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_program_roundtrip(self, instrs):
        from repro.isa.program import Program

        prog = Program(list(instrs))
        reparsed = assemble(prog.disassemble())
        assert reparsed.instructions == prog.instructions
