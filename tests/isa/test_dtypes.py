"""Unit tests for element types and register-width helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.dtypes import (
    DType,
    LaneLayout,
    NEON_WIDTH_BYTES,
    bits_to_float,
    float_to_bits,
    to_s32,
    to_u32,
)

INT_TYPES = [dt for dt in DType if not dt.is_float]


class TestGeometry:
    @pytest.mark.parametrize(
        "dtype,bits,lanes",
        [
            (DType.I8, 8, 16),
            (DType.U8, 8, 16),
            (DType.I16, 16, 8),
            (DType.U16, 16, 8),
            (DType.I32, 32, 4),
            (DType.U32, 32, 4),
            (DType.I64, 64, 2),
            (DType.U64, 64, 2),
            (DType.F32, 32, 4),
        ],
    )
    def test_lane_counts_match_paper_figure4(self, dtype, bits, lanes):
        assert dtype.bits == bits
        assert dtype.lanes == lanes
        assert dtype.size * dtype.lanes == NEON_WIDTH_BYTES

    def test_signedness(self):
        assert DType.I8.is_signed and not DType.U8.is_signed
        assert DType.F32.is_signed and DType.F32.is_float

    def test_from_suffix(self):
        assert DType.from_suffix("i32") is DType.I32
        assert DType.from_suffix("F32") is DType.F32
        with pytest.raises(ValueError):
            DType.from_suffix("i128")

    def test_numpy_mapping(self):
        assert DType.I16.numpy == np.dtype(np.int16)
        assert DType.F32.numpy == np.dtype(np.float32)


class TestWrap:
    def test_signed_wraparound(self):
        assert DType.I8.wrap(128) == -128
        assert DType.I8.wrap(-129) == 127
        assert DType.I16.wrap(0x8000) == -32768

    def test_unsigned_wraparound(self):
        assert DType.U8.wrap(256) == 0
        assert DType.U8.wrap(-1) == 255

    def test_float_wrap_is_float32(self):
        # a value not representable exactly in float32 gets rounded
        assert DType.F32.wrap(0.1) == float(np.float32(0.1))

    @given(st.sampled_from(INT_TYPES), st.integers(-(2**70), 2**70))
    def test_wrap_idempotent(self, dtype, value):
        once = dtype.wrap(value)
        assert dtype.wrap(once) == once
        assert dtype.min_value() <= once <= dtype.max_value()


class TestPacking:
    @given(st.sampled_from(INT_TYPES), st.integers(-(2**63), 2**64))
    def test_pack_unpack_roundtrip(self, dtype, value):
        wrapped = dtype.wrap(value)
        assert dtype.unpack(dtype.pack(wrapped)) == wrapped

    def test_pack_is_little_endian(self):
        assert DType.U16.pack(0x1234) == b"\x34\x12"
        assert DType.U32.pack(0x11223344) == b"\x44\x33\x22\x11"

    def test_float_roundtrip(self):
        v = DType.F32.wrap(3.25)
        assert DType.F32.unpack(DType.F32.pack(v)) == v

    def test_unpack_wrong_size_raises(self):
        with pytest.raises(ValueError):
            DType.I32.unpack(b"\x00\x00")


class TestLaneLayout:
    def test_lane_slices_tile_register(self):
        layout = LaneLayout(DType.I32)
        covered = []
        for lane in range(layout.lanes):
            s = layout.lane_slice(lane)
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(NEON_WIDTH_BYTES))

    def test_out_of_range_lane(self):
        with pytest.raises(IndexError):
            LaneLayout(DType.I64).lane_slice(2)


class TestRegisterHelpers:
    def test_to_u32_and_s32(self):
        assert to_u32(-1) == 0xFFFFFFFF
        assert to_s32(0xFFFFFFFF) == -1
        assert to_s32(0x7FFFFFFF) == 0x7FFFFFFF

    @given(st.integers(-(2**40), 2**40))
    def test_s32_u32_consistent(self, v):
        assert to_u32(to_s32(v)) == to_u32(v)

    @given(st.floats(width=32, allow_nan=False, allow_infinity=False))
    def test_float_bits_roundtrip(self, f):
        assert bits_to_float(float_to_bits(f)) == f
