"""Unit tests for operand kinds."""

import pytest

from repro.isa.operands import (
    Address,
    Cond,
    Imm,
    IndexMode,
    QReg,
    Reg,
    ShiftedReg,
    ShiftKind,
    LR,
    PC,
    SP,
)


class TestReg:
    def test_parse_numeric(self):
        assert Reg.parse("r7") == Reg(7)
        assert Reg.parse(" R12 ") == Reg(12)

    def test_parse_aliases(self):
        assert Reg.parse("sp") == Reg(SP)
        assert Reg.parse("lr") == Reg(LR)
        assert Reg.parse("pc") == Reg(PC)

    def test_names(self):
        assert str(Reg(3)) == "r3"
        assert str(Reg(SP)) == "sp"
        assert str(Reg(LR)) == "lr"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Reg(16)
        with pytest.raises(ValueError):
            Reg.parse("r16")

    def test_not_a_register(self):
        with pytest.raises(ValueError):
            Reg.parse("q3")


class TestQReg:
    def test_parse(self):
        assert QReg.parse("q15") == QReg(15)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            QReg(16)

    def test_rejects_scalar(self):
        with pytest.raises(ValueError):
            QReg.parse("r3")


class TestShiftedReg:
    def test_str(self):
        sr = ShiftedReg(Reg(4), ShiftKind.LSL, 2)
        assert str(sr) == "r4, lsl #2"

    def test_bad_amount(self):
        with pytest.raises(ValueError):
            ShiftedReg(Reg(4), ShiftKind.LSR, 32)


class TestAddress:
    def test_offset_str(self):
        assert str(Address(Reg(1))) == "[r1]"
        assert str(Address(Reg(1), Imm(4))) == "[r1, #4]"

    def test_post_str(self):
        assert str(Address(Reg(1), Imm(4), IndexMode.POST)) == "[r1], #4"

    def test_pre_str(self):
        assert str(Address(Reg(1), Imm(4), IndexMode.PRE)) == "[r1, #4]!"

    def test_register_offset_str(self):
        assert str(Address(Reg(1), Reg(2))) == "[r1, r2]"
        sr = ShiftedReg(Reg(2), ShiftKind.LSL, 2)
        assert str(Address(Reg(1), sr)) == "[r1, r2, lsl #2]"

    def test_writeback_flag(self):
        assert not Address(Reg(0)).writes_back
        assert Address(Reg(0), Imm(4), IndexMode.POST).writes_back
        assert Address(Reg(0), Imm(4), IndexMode.PRE).writes_back


class TestCond:
    def test_suffix(self):
        assert Cond.AL.suffix == ""
        assert Cond.LT.suffix == "lt"

    @pytest.mark.parametrize("cond", [c for c in Cond if c is not Cond.AL])
    def test_inverse_is_involution(self, cond):
        assert cond.inverse().inverse() is cond

    def test_al_has_no_inverse(self):
        with pytest.raises(ValueError):
            Cond.AL.inverse()
