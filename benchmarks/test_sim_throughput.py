"""Simulator-throughput benchmark: guest MIPS per host second.

Not part of the default test run (pyproject pins ``testpaths = ["tests"]``);
invoke explicitly, either as a script or through pytest:

    PYTHONPATH=src python benchmarks/test_sim_throughput.py
    PYTHONPATH=src python -m pytest benchmarks/test_sim_throughput.py -q

The script form measures the full default matrix with a legacy comparison
and writes ``BENCH_sim_throughput.json`` (the file CI uploads and the
committed baseline is refreshed from).  The pytest form runs a reduced
matrix with loose assertions — it guards the *machinery* and the headline
claim (the predecoded interpreter beats the legacy one on the record-free
path), not exact numbers, which are host-dependent.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.systems.bench import run_bench  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_sim_throughput.json"


def test_throughput_is_measurable():
    report = run_bench(workloads=["rgb_gray"], systems=["arm_original"], repeats=1)
    assert report.aggregate_mips > 0
    assert all(r.host_seconds > 0 for r in report.runs)


def test_predecode_beats_legacy_on_fast_path():
    # arm_original runs the record-free loop, where predecode wins big
    # (~5x here); 1.5x leaves a wide margin for noisy CI hosts
    report = run_bench(
        workloads=["matmul"], systems=["arm_original"],
        repeats=2, compare_legacy=True,
    )
    run = report.runs[0]
    assert run.speedup is not None
    assert run.speedup > 1.5, (
        f"predecoded interpreter only {run.speedup:.2f}x faster than legacy; "
        "the fast path has regressed"
    )


def test_traced_path_not_slower_than_legacy():
    # neon_dsa forces the traced loop (records + suppressor); it must at
    # minimum not lose to the legacy interpreter
    report = run_bench(
        workloads=["rgb_gray"], systems=["neon_dsa"],
        repeats=2, compare_legacy=True,
    )
    assert report.runs[0].speedup > 0.9


def main() -> int:
    print("measuring simulator throughput (default matrix + legacy comparison)...",
          file=sys.stderr)
    report = run_bench(repeats=3, compare_legacy=True,
                       progress=lambda label: print(f"  {label}", file=sys.stderr))
    print(report.table())
    OUTPUT.write_text(json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
