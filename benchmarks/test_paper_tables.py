"""Benchmark harness: regenerate every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each benchmark times one table/figure regeneration and prints the same
rows/series the paper reports (paper-vs-measured is recorded in
EXPERIMENTS.md).  Simulations are shared through a session cache, so the
first benchmark pays for the runs its successors reuse.
"""

from repro.experiments import (
    art1_fig12,
    art1_table3,
    art2_fig16,
    art2_table3,
    art3_fig7,
    art3_fig8,
    art3_fig9,
    art3_table2,
    art3_table3,
    fig_neon_parallelism,
    table4_setup,
)

from conftest import emit


def test_table4_systems_setup(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: table4_setup.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    assert exp.rows


def test_art1_fig12_autovec_vs_original_dsa(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art1_fig12.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    rows = exp.row_dict()
    assert rows["qsort"][1] >= 0  # the DSA never penalizes (paper's claim)


def test_art1_table3_area_overhead(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art1_table3.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    assert "2.18%" in exp.table()


def test_art2_fig16_extended_dsa(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art2_fig16.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    rows = exp.row_dict()
    assert rows["bitcount"][2] > rows["bitcount"][0]  # extended DSA unlocks it


def test_art2_table3_dsa_latency(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art2_table3.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    assert exp.rows


def test_art3_fig7_loop_census(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art3_fig7.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    assert exp.rows


def test_art3_fig8_performance(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art3_fig8.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    avg = exp.row_dict()["AVERAGE"]
    assert avg[2] > 0  # DSA improves over the ARM original on average


def test_art3_fig9_energy(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art3_fig9.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    avg = exp.row_dict()["AVERAGE"]
    assert avg[2] > 0  # net energy savings on average (paper: 45%)


def test_art3_table2_detection_latency(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art3_table2.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    assert exp.rows


def test_art3_table3_dsa_energy_scenarios(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: art3_table3.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    assert len(exp.rows) == 7  # one scenario per loop type


def test_fig_neon_parallelism(benchmark, scale, cache):
    exp = benchmark.pedantic(lambda: fig_neon_parallelism.run(scale, cache), rounds=1, iterations=1)
    emit(exp)
    assert exp.row_dict()["i8"][1] == 16
