"""Ablation benchmarks for the design choices DESIGN.md calls out.

These isolate individual DSA mechanisms by toggling feature gates or
shrinking structures, and print the cycle deltas.
"""

import numpy as np
import pytest

from repro.dsa import DSAConfig, DSAFeatures, DynamicSIMDAssembler
from repro.systems import run_system
from repro.systems.setups import lower_for
from repro.systems.runner import execute_kernel
from repro.workloads import load
from repro.workloads.synthetic import offset_accumulate, strcopy, threshold, vecsum


def _dsa_cycles(workload, config) -> float:
    lowered = lower_for("neon_dsa", workload)
    dsa = DynamicSIMDAssembler(config)
    run = execute_kernel(lowered, workload.fresh_args(), attach=dsa.attach)
    return run.result.cycles


def test_ablation_partial_vectorization(benchmark):
    """Partial vectorization on vs off on a distance-24 dependency loop."""
    wl = offset_accumulate(n=256, distance=48)
    on = DSAConfig(features=DSAFeatures(partial=True))
    off = DSAConfig(features=DSAFeatures(partial=False))

    cycles_on = benchmark.pedantic(lambda: _dsa_cycles(wl, on), rounds=1, iterations=1)
    cycles_off = _dsa_cycles(wl, off)
    print(f"\npartial=on {cycles_on:.0f} cycles, partial=off {cycles_off:.0f} cycles "
          f"({cycles_off / cycles_on - 1:+.1%} slower without chunked vectorization)")
    assert cycles_on < cycles_off


def test_ablation_conditional_coverage(benchmark):
    """Conditional-loop support on vs off (Article 2's extension)."""
    wl = threshold(n=512)
    on = DSAConfig(features=DSAFeatures(conditional=True))
    off = DSAConfig(features=DSAFeatures(conditional=False))
    cycles_on = benchmark.pedantic(lambda: _dsa_cycles(wl, on), rounds=1, iterations=1)
    cycles_off = _dsa_cycles(wl, off)
    print(f"\nconditional=on {cycles_on:.0f}, off {cycles_off:.0f} "
          f"({cycles_off / cycles_on - 1:+.1%})")
    assert cycles_on < cycles_off


def test_ablation_sentinel_speculation(benchmark):
    """Sentinel speculation on vs off — the learned speculative range pays
    off once the loop repeats (paper Fig. 23)."""
    from repro.workloads.synthetic import repeated_strcopy

    wl = repeated_strcopy(n=256, valid=200, repeats=6)
    on = DSAConfig(features=DSAFeatures(sentinel=True))
    off = DSAConfig(features=DSAFeatures(sentinel=False))
    cycles_on = benchmark.pedantic(lambda: _dsa_cycles(wl, on), rounds=1, iterations=1)
    cycles_off = _dsa_cycles(wl, off)
    print(f"\nsentinel=on {cycles_on:.0f}, off {cycles_off:.0f}")
    assert cycles_on <= cycles_off


def test_ablation_dsa_cache_size(benchmark, scale):
    """A starved DSA cache forces re-analysis on every loop invocation."""
    wl = load("matmul", "test")
    big = DSAConfig(dsa_cache_bytes=8 * 1024)
    tiny = DSAConfig(dsa_cache_bytes=64)  # one entry: thrashes across loops
    cycles_big = benchmark.pedantic(lambda: _dsa_cycles(wl, big), rounds=1, iterations=1)
    cycles_tiny = _dsa_cycles(wl, tiny)
    print(f"\n8KB cache {cycles_big:.0f} cycles, 64B cache {cycles_tiny:.0f} cycles "
          f"({cycles_tiny / cycles_big - 1:+.1%} without cached verdicts)")
    assert cycles_big <= cycles_tiny


def test_ablation_functional_verification_is_timing_free(benchmark):
    """The numpy replay is a host-side check: simulated cycles identical."""
    wl = vecsum(n=512)
    with_verify = DSAConfig(verify_functional=True)
    without = DSAConfig(verify_functional=False)
    c1 = benchmark.pedantic(lambda: _dsa_cycles(wl, with_verify), rounds=1, iterations=1)
    c2 = _dsa_cycles(wl, without)
    print(f"\nverify=on {c1:.0f}, verify=off {c2:.0f} (must match)")
    assert c1 == c2


def test_ablation_dsa_overhead_when_idle(benchmark):
    """Running the DSA on a DLP-free program must cost (almost) nothing —
    the paper's 'no performance penalties when loops are not found'."""
    wl = load("qsort", "test")
    base = run_system("arm_original", wl)
    dsa = run_system("neon_dsa", wl, dsa_stage="original")
    ratio = dsa.cycles / base.cycles

    def regen():
        return run_system("neon_dsa", wl, dsa_stage="original").cycles

    benchmark.pedantic(regen, rounds=1, iterations=1)
    print(f"\nqsort: original {base.cycles:.0f}, dsa(original features) {dsa.cycles:.0f} "
          f"(ratio {ratio:.3f})")
    assert ratio < 1.02


def test_ablation_leftover_technique(benchmark):
    """Single elements vs overlapping on a 16-lane (u8) loop whose trip
    count leaves 15 leftover elements — the worst case for element-wise
    handling (paper, Section 4.8 / Fig. 27-28)."""
    from repro.isa import DType
    from repro.compiler import ArrayParam, Const, For, Kernel, Load, Store, Var
    from repro.compiler.ir import add
    from repro.workloads.base import Workload

    n = 527  # 32 full 16-lane vectors + 15 leftovers
    kernel = Kernel(
        "leftover_u8",
        [ArrayParam("a", DType.U8), ArrayParam("out", DType.U8)],
        [For("i", Const(0), Const(n), [Store("out", Var("i"), add(Load("a", Var("i")), Const(1)))])],
    )

    def make_args():
        return {"a": (np.arange(n) % 100).astype(np.uint8), "out": np.zeros(n, np.uint8)}

    wl = Workload(
        name="leftover_u8",
        dlp_level="high",
        kernel=kernel,
        make_args=make_args,
        golden=lambda args: {"out": (args["a"] + 1).astype(np.uint8)},
        output_arrays=["out"],
    )
    def run_policy(policy):
        lowered = lower_for("neon_dsa", wl)
        dsa = DynamicSIMDAssembler(DSAConfig(leftover_policy=policy))
        run = execute_kernel(lowered, wl.fresh_args(), attach=dsa.attach)
        t = run.core.timing.stats
        return run.result.cycles, t.scalar_instructions + t.vector_instructions

    cycles_overlap, work_overlap = benchmark.pedantic(
        lambda: run_policy("auto"), rounds=1, iterations=1
    )
    cycles_single, work_single = run_policy("single_elements")
    print(
        f"\noverlapping: {cycles_overlap:.0f} cycles / {work_overlap} charged instructions; "
        f"single elements: {cycles_single:.0f} cycles / {work_single} charged instructions"
    )
    # the paper's op-count argument: one overlapped vector replaces up to 15
    # element-wise load/op/store triples (cycle deltas are within cache noise)
    assert work_overlap < work_single
