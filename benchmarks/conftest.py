"""Shared fixtures for the benchmark harness.

One :class:`ResultCache` per session: the experiments share the underlying
system runs, so regenerating every table/figure costs each simulation once.

Scale selection: set ``REPRO_SCALE=test|bench|full`` (default ``bench`` —
paper-like loop sizes; ``test`` for a quick pass, ``full`` for overnight
fidelity runs).
"""

import os

import pytest

from repro.experiments import ResultCache

SCALE = os.environ.get("REPRO_SCALE", "bench")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


@pytest.fixture(scope="session")
def cache() -> ResultCache:
    return ResultCache(SCALE)


def emit(exp) -> None:
    """Print a regenerated table under the benchmark output."""
    print()
    print(exp.table())
    if exp.paper_reference:
        print(f"paper reference: {exp.paper_reference}")
