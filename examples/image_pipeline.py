#!/usr/bin/env python3
"""Image pipeline: the multimedia workloads that motivate the paper.

Runs the three image benchmarks (RGB->gray conversion, Gaussian blur,
SUSAN-style edge detection) through every system and prints the
performance/energy picture, including the conditional loop that only the
(extended) DSA and hand-written if-conversion can vectorize.

Run:  python examples/image_pipeline.py [scale]     (scale: test|bench)
"""

import sys

from repro.systems import SYSTEM_NAMES, run_system
from repro.workloads import load


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "test"
    print(f"image pipeline at scale={scale!r}\n")
    for name in ("rgb_gray", "gaussian", "susan_edges"):
        workload = load(name, scale)
        print(f"--- {name}: {workload.description} ---")
        print(f"    loop mix: {workload.loop_note}")
        base = None
        for system in SYSTEM_NAMES:
            result = run_system(system, workload)
            if base is None:
                base = result
            energy_saving = result.energy_savings_over(base) * 100
            line = (
                f"  {system:14s} cycles={result.cycles:9.0f} "
                f"perf={result.improvement_over(base)*100:+7.1f}%  "
                f"energy={energy_saving:+6.1f}%"
            )
            if result.dsa_stats is not None:
                line += f"  vectorized={dict(result.dsa_stats.vectorized_invocations)}"
            print(line)
        print()
    print("note: the edge-detection stage contains an if/else loop — the compiler")
    print("auto-vectorizer rejects it (paper, Table 1 line 12), while the DSA maps")
    print("each condition at runtime and selects results through its array maps.")


if __name__ == "__main__":
    main()
