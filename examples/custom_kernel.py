#!/usr/bin/env python3
"""Author your own kernel and watch the DSA analyze it.

Builds a kernel mixing several of the paper's loop types — a sentinel
scan, a dynamic-range compute loop and a conditional clamp — inspects the
lowered ARM-like assembly, runs it under the DSA, and prints the loop
classification, the CIDP verdicts, and the area/energy accounting.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.isa import DType
from repro.compiler import (
    ArrayParam,
    CmpOp,
    Compare,
    Const,
    For,
    If,
    Kernel,
    Let,
    Load,
    Store,
    Var,
    While,
    lower,
)
from repro.compiler.ir import add, mul, shr
from repro.dsa import DynamicSIMDAssembler, FULL_DSA_CONFIG
from repro.energy import AreaModel, EnergyModel
from repro.systems import execute_kernel


def build_kernel() -> Kernel:
    i = Var("i")
    return Kernel(
        "custom",
        [ArrayParam("src", DType.I32), ArrayParam("work", DType.I32), ArrayParam("out", DType.I32)],
        [
            # sentinel scan: copy the zero-terminated prefix
            Let("len", Const(0)),
            While(
                Compare(Load("src", Var("len")), CmpOp.NE, Const(0)),
                [
                    Store("work", Var("len"), Load("src", Var("len"))),
                    Let("len", add(Var("len"), Const(1))),
                ],
            ),
            # dynamic-range compute over the discovered prefix
            For("i", Const(0), Var("len"), [Store("work", i, shr(mul(Load("work", i), Const(5)), 1))]),
            # conditional clamp
            For(
                "i", Const(0), Var("len"),
                [
                    If(
                        Compare(Load("work", i), CmpOp.GT, Const(100)),
                        [Store("out", i, Const(100))],
                        [Store("out", i, Load("work", i))],
                    )
                ],
            ),
        ],
    )


def main() -> None:
    kernel = build_kernel()
    lowered = lower(kernel)
    print("lowered scalar assembly (what the DSA observes):\n")
    print(lowered.asm)

    n = 300
    src = np.arange(1, n + 1, dtype=np.int32)
    src[250] = 0
    args = {"src": src, "work": np.zeros(n, np.int32), "out": np.zeros(n, np.int32)}

    dsa = DynamicSIMDAssembler(FULL_DSA_CONFIG)
    run = execute_kernel(lowered, args, attach=dsa.attach)

    print(f"cycles: {run.result.cycles:.0f}   instructions: {run.result.instructions}")
    print(f"loop verdicts: {dict(dsa.stats.verdicts)}")
    print(f"vectorized invocations: {dict(dsa.stats.vectorized_invocations)}")
    print(f"iterations covered by NEON bursts: {dsa.stats.iterations_covered}")
    print(f"leftover techniques used: {dict(dsa.stats.leftover_used)}")
    print(f"functional verifications run: {dsa.stats.verifications} (all passed)")

    report = EnergyModel().report(run.core, run.result, dsa=dsa)
    print("\nenergy breakdown (mJ):")
    for key, value in report.breakdown().items():
        print(f"  {key:22s} {value:.6f}")

    area = AreaModel()
    print(f"\nDSA silicon cost: {area.logic_overhead_pct:.2f}% logic, "
          f"{area.total_overhead_pct:.2f}% with caches (paper, Article 1 Table 3)")

    # sanity: results equal a plain numpy computation
    expected = np.zeros(n, np.int32)
    prefix = (np.arange(1, 251, dtype=np.int64) * 5 >> 1).astype(np.int32)
    expected[:250] = np.minimum(prefix, 100)
    np.testing.assert_array_equal(run.array("out")[:250], expected[:250])
    print("\nresults verified against numpy — transparent vectorization confirmed.")


if __name__ == "__main__":
    main()
