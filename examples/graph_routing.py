#!/usr/bin/env python3
"""Graph routing: dynamic-behaviour loops on Dijkstra and BitCounts.

The benchmarks where static vectorization fails entirely — runtime trip
counts, sentinel scans, and data-dependent conditionals — and where the
paper's extended DSA earns its keep (Article 2, Fig. 16).

Run:  python examples/graph_routing.py [scale]
"""

import sys

from repro.systems import run_system
from repro.workloads import load


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "test"
    for name in ("dijkstra", "bitcount"):
        workload = load(name, scale)
        print(f"--- {name}: {workload.description} ---")
        print(f"    loop mix: {workload.loop_note}")
        base = run_system("arm_original", workload)
        auto = run_system("neon_autovec", workload)
        print(
            f"  neon_autovec   {auto.cycles:9.0f} cycles "
            f"({auto.improvement_over(base)*100:+.1f}%) — "
            f"guarded loops: {auto.lowered.guarded_loops or 'none'}"
        )
        for stage in ("original", "extended", "full"):
            result = run_system("neon_dsa", workload, dsa_stage=stage)
            stats = result.dsa_stats
            print(
                f"  dsa({stage:8s}) {result.cycles:9.0f} cycles "
                f"({result.improvement_over(base)*100:+.1f}%) — "
                f"vectorized: {dict(stats.vectorized_invocations) or 'nothing'}"
            )
        print()
    print("the original DSA (count/function/nested loops only) cannot touch these;")
    print("conditional + dynamic-range + sentinel coverage is what Articles 2 and 3 add.")


if __name__ == "__main__":
    main()
