#!/usr/bin/env python3
"""Quickstart: runtime DLP detection in five minutes.

Builds a small element-wise kernel, runs it on the four systems of the
paper (plain ARM, compiler auto-vectorization, hand-written NEON library
code, and the scalar binary + DSA), and shows that the DSA vectorizes the
loop at runtime with bit-identical results.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.isa import DType
from repro.compiler import ArrayParam, Const, For, Kernel, Load, Store, Var, lower
from repro.compiler.ir import add, mul
from repro.systems import SYSTEM_NAMES, run_system
from repro.workloads.base import Workload


def make_workload(n: int = 2000) -> Workload:
    """out[i] = (a[i] + b[i]) * 3 — the classic count loop."""
    i = Var("i")
    kernel = Kernel(
        "quickstart",
        [ArrayParam("a", DType.I32), ArrayParam("b", DType.I32), ArrayParam("out", DType.I32)],
        [For("i", Const(0), Const(n), [Store("out", i, mul(add(Load("a", i), Load("b", i)), Const(3)))])],
    )

    def make_args():
        rng = np.random.default_rng(0)
        return {
            "a": rng.integers(-1000, 1000, n).astype(np.int32),
            "b": rng.integers(-1000, 1000, n).astype(np.int32),
            "out": np.zeros(n, np.int32),
        }

    return Workload(
        name="quickstart",
        dlp_level="high",
        kernel=kernel,
        make_args=make_args,
        golden=lambda args: {"out": ((args["a"] + args["b"]) * 3).astype(np.int32)},
        output_arrays=["out"],
    )


def main() -> None:
    workload = make_workload()
    print("scalar binary the DSA will watch:\n")
    print(lower(workload.kernel).asm)

    print(f"{'system':16s} {'cycles':>10s} {'vs ARM original':>16s}")
    base = None
    for system in SYSTEM_NAMES:
        result = run_system(system, workload)  # verifies against the golden
        if base is None:
            base = result
        print(f"{system:16s} {result.cycles:10.0f} {result.improvement_over(base)*100:+15.1f}%")
        if result.dsa_stats is not None:
            s = result.dsa_stats
            print(
                f"{'':16s} DSA: {dict(s.vectorized_invocations)} — "
                f"{s.iterations_covered} iterations replaced by "
                f"{s.vector_instructions} NEON instructions "
                f"(leftovers: {dict(s.leftover_used)})"
            )
    print("\nall four systems produced bit-identical results (checked against numpy).")


if __name__ == "__main__":
    main()
