"""Static vectorizers: the two baselines the paper compares DSA against.

``AutoVectorizer`` models the ARM NEON auto-vectorizing compiler: it claims
counted loops with *compile-time* trip counts, affine unit-stride accesses,
uniform element width, no conditionals, no calls, and provably disjoint
reads/writes (paper, Table 1).  Loops that are clean but have a runtime trip
count or an unprovable dependency get a *versioning guard*: the compiler
emits a runtime check that falls back to the scalar loop — the source of the
small slowdowns the paper reports for ARM auto-vectorization on Dijkstra and
QSort (Article 1, Fig. 12).

``HandVectorizer`` models a programmer using the ARM NEON intrinsics
library: wider coverage (runtime trip counts, if/else conversion through
VBSL), but per-loop library glue overhead and element-wise leftovers; still
*static* knowledge only, so sentinel loops and ranges computed inside the
loop body remain scalar (paper, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompilerError
from ..isa.dtypes import DType
from .analysis import AffineIndex, analyze_loop, split_affine
from .ir import (
    Binary,
    BinOp,
    Compare,
    Const,
    Expr,
    For,
    If,
    Let,
    Load,
    Stmt,
    Store,
    UnOp,
    Unary,
    Var,
)

_VBIN = {
    BinOp.ADD: "vadd",
    BinOp.SUB: "vsub",
    BinOp.MUL: "vmul",
    BinOp.AND: "vand",
    BinOp.OR: "vorr",
    BinOp.XOR: "veor",
    BinOp.MIN: "vmin",
    BinOp.MAX: "vmax",
}

_VCMP = {
    "<": "vclt",
    "<=": "vcle",
    ">": "vcgt",
    ">=": "vcge",
    "==": "vceq",
}


@dataclass
class LoopDecision:
    """Why a loop was or was not vectorized (kept for tests/reports)."""

    loop_var: str
    vectorized: bool
    reason: str


@dataclass
class _Stream:
    """One unit-stride memory stream inside a vectorized loop."""

    array: str
    index: AffineIndex
    index_expr: Expr
    pointer_reg: int
    is_store: bool = False


class _Bailout(Exception):
    """Internal: abandon vector emission and fall back to the scalar loop."""


class AutoVectorizer:
    """The NEON auto-vectorization compiler baseline."""

    name = "autovec"
    #: emit a runtime-versioning guard for clean-but-unprovable loops
    emits_guards = True
    #: handle runtime (type A dynamic range) trip counts
    handles_dynamic_range = False
    #: convert if/else bodies through compare+select
    handles_conditionals = False
    #: extra instructions charged per vectorized loop entry (library glue)
    glue_instructions = 0
    #: maximum distinct memory streams before giving up
    max_streams = 4

    def __init__(self) -> None:
        self.decisions: list[LoopDecision] = []

    # ------------------------------------------------------------------
    def try_vectorize(self, loop: For, low) -> bool:
        """Attempt to emit NEON code for ``loop`` via the lowerer ``low``."""
        reason = self._rejection_reason(loop, low)
        if reason is not None:
            if self.emits_guards and reason in ("dynamic trip count", "unprovable dependency"):
                self._emit_guard(loop, low)
                low.guarded_loops.append(loop.var)
            self.decisions.append(LoopDecision(loop.var, False, reason))
            return False
        snapshot = len(low.lines)
        scope = low.scope
        scope_state = (
            scope.next_named,
            dict(scope.regs),
            dict(scope.spills),
            scope.next_spill,
            list(scope.free_named),
        )
        try:
            self._emit_vector_loop(loop, low)
        except (_Bailout, CompilerError) as exc:
            # roll back both the emitted lines and any registers the
            # emitter bound, so the scalar fallback is not starved
            del low.lines[snapshot:]
            scope.next_named = scope_state[0]
            scope.regs = scope_state[1]
            scope.spills = scope_state[2]
            scope.next_spill = scope_state[3]
            scope.free_named = scope_state[4]
            self.decisions.append(LoopDecision(loop.var, False, str(exc)))
            return False
        self.decisions.append(LoopDecision(loop.var, True, "vectorized"))
        return True

    # ------------------------------------------------------------------
    def _rejection_reason(self, loop: For, low) -> str | None:
        feats = analyze_loop(loop, low.kernel)
        if loop.step != 1:
            return "non-unit step"
        if feats.has_inner_loop or feats.has_while:
            return "nested loop"
        if feats.has_call:
            return "function call in body"
        if feats.has_if and not self.handles_conditionals:
            return "conditional body"
        if feats.has_if and not self._conditional_supported(loop):
            return "unsupported conditional shape"
        if feats.mixed_element_width:
            return "mixed element widths"
        if feats.non_affine_access:
            return "non-affine access"
        if feats.unsupported_op:
            return "unsupported operation"
        if feats.carried_scalars:
            return "carry-around scalar"
        if feats.element_dtype is None:
            return "no array access"
        if feats.possible_cross_iteration_dep:
            return "unprovable dependency"
        if not feats.static_bounds and not self.handles_dynamic_range:
            return "dynamic trip count"
        return None

    def _conditional_supported(self, loop: For) -> bool:
        for stmt in loop.body:
            if isinstance(stmt, If):
                if not _select_pattern(stmt):
                    return False
        return True

    # ------------------------------------------------------------------
    def _emit_guard(self, loop: For, low) -> None:
        """Runtime versioning attempt that always falls back to scalar.

        Models the checks a real auto-vectorizer inserts when it multi-
        versions a loop it cannot prove safe; only the (failing) check cost
        remains, which is the paper's observed autovec penalty.
        """
        t = low.acquire_temp()
        value, is_temp = low._eval(loop.end)
        if isinstance(value, int):
            low.emit(f"mov r{t}, r{value}")
            if is_temp:
                low.release_temp(value)
        else:
            low.emit(f"mov r{t}, #{value}")
        skip = low.fresh_label("guard")
        low.emit(f"cmp r{t}, #{DType.I32.lanes}")
        low.emit(f"blt {skip}")
        low.emit(f"eor r{t}, r{t}, r{t}")
        low.emit_label(skip)
        low.release_temp(t)

    # ------------------------------------------------------------------
    # vector emission
    # ------------------------------------------------------------------
    def _emit_vector_loop(self, loop: For, low) -> None:
        feats = analyze_loop(loop, low.kernel)
        dtype = feats.element_dtype
        assert dtype is not None
        lanes = dtype.lanes
        emitter = _VectorEmitter(self, loop, low, dtype)
        emitter.plan()  # raises _Bailout when the body cannot be mapped

        self._emit_glue(low)
        emitter.emit_pointer_setup()
        emitter.emit_invariants()

        if feats.static_bounds:
            assert isinstance(loop.start, Const) and isinstance(loop.end, Const)
            trip = max(0, loop.end.value - loop.start.value)
            quads, leftover = divmod(trip, lanes)
            if quads == 0:
                emitter.release()
                raise _Bailout("trip count below one vector")
            emitter.emit_static_loop(quads)
            self._emit_glue(low)
            if leftover:
                split = loop.start.value + quads * lanes
                low.emit_scalar_for(For(loop.var, Const(split), loop.end, loop.body))
            emitter.release()
        else:
            emitter.emit_dynamic_loop()
            self._emit_glue(low)
            emitter.emit_dynamic_leftover()
            emitter.release()

    def _emit_glue(self, low) -> None:
        if self.glue_instructions:
            t = low.acquire_temp()
            for _ in range(self.glue_instructions // 2):
                low.emit(f"mov r{t}, r{t}")
                low.emit(f"eor r{t}, r{t}, #0")
            low.release_temp(t)
            low.glue_instructions += 2 * (self.glue_instructions // 2)


class HandVectorizer(AutoVectorizer):
    """The ARM NEON library (hand-coded intrinsics) baseline.

    Like the compiler, the programmer only has *static* knowledge (paper,
    Table 2: hand-code vectorization is static): loops whose trip count or
    control flow is resolved at runtime stay scalar.  What distinguishes
    hand coding is reach within the static domain — a programmer
    if-converts conditional bodies through compare+select — paid for with
    per-loop library glue (register save/restore, marshalling).
    """

    name = "handvec"
    emits_guards = False
    handles_dynamic_range = False
    handles_conditionals = True
    #: intrinsics live behind library call boundaries; model the per-loop
    #: save/restore + marshalling as a fixed instruction overhead
    glue_instructions = 12


def _select_pattern(stmt: If) -> tuple[Store, Expr] | None:
    """Match an if/else body convertible to compare+select.

    Supported shapes::

        if c: a[i] = x  else: a[i] = y     -> select(x, y)
        if c: a[i] = x                     -> select(x, a[i])

    Returns (canonical store, else-value expression) or None.
    """
    if len(stmt.then) != 1 or not isinstance(stmt.then[0], Store):
        return None
    then_store = stmt.then[0]
    if not stmt.else_:
        return then_store, Load(then_store.array, then_store.index)
    if len(stmt.else_) != 1 or not isinstance(stmt.else_[0], Store):
        return None
    else_store = stmt.else_[0]
    if else_store.array != then_store.array or str(else_store.index) != str(then_store.index):
        return None
    return then_store, else_store.value


class _VectorEmitter:
    """Emits the NEON body for one loop through the lowerer."""

    def __init__(self, vec: AutoVectorizer, loop: For, low, dtype: DType):
        self.vec = vec
        self.loop = loop
        self.low = low
        self.dtype = dtype
        self.streams: dict[tuple, _Stream] = {}
        self.q_map: dict[str, int] = {}     # expr/var key -> q register
        self.var_q: dict[str, int] = {}     # Let-defined vector locals
        self.invariants: list[tuple[Expr, int]] = []
        self.next_q = 0
        self._free_q: list[int] = []        # recycled transient registers
        self._transient: set[int] = set()   # anonymous op results in flight
        self._bound_names: list[str] = []
        self.counter_name = f"{loop.var}$vcnt"
        self.split_name = f"{loop.var}$vsplit"

    # ------------------------------------------------------------------
    def _alloc_q(self, transient: bool = True) -> int:
        if self._free_q:
            q = self._free_q.pop()
        else:
            if self.next_q >= 16:
                raise _Bailout("out of NEON registers")
            q = self.next_q
            self.next_q += 1
        if transient:
            self._transient.add(q)
        return q

    def _release_q(self, q: int) -> None:
        """Recycle an anonymous op result once its last consumer emitted."""
        if q in self._transient:
            self._transient.discard(q)
            self._free_q.append(q)

    def _bind_pointer(self, name: str) -> int:
        self.low.scope.bind(name)
        kind, home = self.low.scope.home(name)
        if kind != "reg":
            raise _Bailout("out of scalar registers for stream pointers")
        self._bound_names.append(name)
        return home

    def release(self) -> None:
        """Free the scratch registers (stream pointers, counters) bound for
        this loop — they are dead once the loop and its leftover finish."""
        for name in self._bound_names:
            self.low.scope.unbind(name)
        self._bound_names = []

    # ------------------------------------------------------------------
    # planning: walk the body once, build streams and check feasibility
    # ------------------------------------------------------------------
    def plan(self) -> None:
        self._stored_keys: set[tuple] = set()
        for stmt in self.loop.body:
            self._plan_stmt(stmt)
        if len(self.streams) > self.vec.max_streams:
            raise _Bailout(f"too many memory streams ({len(self.streams)})")
        if not any(s.is_store for s in self.streams.values()):
            raise _Bailout("no store stream")

    def _plan_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Let):
            self._plan_expr(stmt.expr)
        elif isinstance(stmt, Store):
            self._plan_expr(stmt.value)
            self._stream_for(stmt.array, stmt.index, is_store=True)
        elif isinstance(stmt, If):
            pattern = _select_pattern(stmt)
            if pattern is None:
                raise _Bailout("unsupported conditional shape")
            self._plan_expr(stmt.cond.left)
            self._plan_expr(stmt.cond.right)
            store, else_value = pattern
            self._plan_expr(store.value)
            self._plan_expr(else_value)
            self._stream_for(store.array, store.index, is_store=True)
        else:
            raise _Bailout(f"unsupported statement {type(stmt).__name__}")

    def _plan_expr(self, expr: Expr) -> None:
        if isinstance(expr, Load):
            key = self._stream_key(expr.array, expr.index)
            if key in self._stored_keys:
                raise _Bailout("load after store of the same stream")
            self._stream_for(expr.array, expr.index, is_store=False)
        elif isinstance(expr, Binary):
            self._plan_expr(expr.left)
            self._plan_expr(expr.right)
        elif isinstance(expr, Unary):
            self._plan_expr(expr.operand)
        elif isinstance(expr, Var):
            if expr.name == self.loop.var:
                raise _Bailout("loop variable used as data")
        elif isinstance(expr, Const):
            pass
        else:
            raise _Bailout(f"unsupported expression {type(expr).__name__}")

    def _stream_key(self, array: str, index: Expr) -> tuple:
        affine = split_affine(index, self.loop.var)
        if affine is None or affine.coeff != 1:
            raise _Bailout("non-unit-stride stream")
        return (array, affine.base_key, affine.const)

    def _stream_for(self, array: str, index: Expr, is_store: bool) -> _Stream:
        key = self._stream_key(array, index)
        if is_store:
            self._stored_keys.add(key)
        stream = self.streams.get(key)
        if stream is None:
            affine = split_affine(index, self.loop.var)
            assert affine is not None
            name = f"{self.loop.var}$p{len(self.streams)}"
            stream = _Stream(array, affine, index, self._bind_pointer(name))
            self.streams[key] = stream
        stream.is_store = stream.is_store or is_store
        return stream

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit_pointer_setup(self) -> None:
        """pointer = base + (index at var = start) * element_size."""
        low = self.low
        for stream in self.streams.values():
            dtype = low.array_dtype(stream.array)
            start_index = _substitute(stream.index_expr, self.loop.var, self.loop.start)
            idx_reg, is_temp = low._eval_to_reg(start_index)
            base = low.param_reg(stream.array)
            shift = {1: 0, 2: 1, 4: 2}[dtype.size]
            if shift:
                low.emit(f"add r{stream.pointer_reg}, r{base}, r{idx_reg}, lsl #{shift}")
            else:
                low.emit(f"add r{stream.pointer_reg}, r{base}, r{idx_reg}")
            if is_temp:
                low.release_temp(idx_reg)

    def emit_invariants(self) -> None:
        """vdup every loop-invariant scalar operand once, before the loop."""
        # handled lazily in _vec_eval; nothing to pre-compute beyond q moves

    # ------------------------------------------------------------------
    def emit_static_loop(self, quads: int) -> None:
        low = self.low
        counter = self._bind_pointer(self.counter_name)
        low.emit(f"mov r{counter}, #{quads}")
        head = low.fresh_label("vloop")
        low.emit_label(head)
        self._emit_body()
        low.emit(f"subs r{counter}, r{counter}, #1")
        low.emit(f"bgt {head}")

    def emit_dynamic_loop(self) -> None:
        """Runtime trip count: quads = (end - start) >> log2(lanes)."""
        low = self.low
        lanes = self.dtype.lanes
        shift = {2: 1, 4: 2, 8: 3, 16: 4}[lanes]
        counter = self._bind_pointer(self.counter_name)
        split = self._bind_pointer(self.split_name)
        end_reg, end_temp = low._eval_to_reg(self.loop.end)
        start_reg, start_temp = low._eval_to_reg(self.loop.start)
        low.emit(f"sub r{counter}, r{end_reg}, r{start_reg}")
        low.emit(f"asr r{counter}, r{counter}, #{shift}")
        # split = start + quads * lanes  (start of the leftover region)
        low.emit(f"lsl r{split}, r{counter}, #{shift}")
        low.emit(f"add r{split}, r{split}, r{start_reg}")
        if end_temp:
            low.release_temp(end_reg)
        if start_temp:
            low.release_temp(start_reg)
        skip = low.fresh_label("vskip")
        head = low.fresh_label("vloop")
        low.emit(f"cmp r{counter}, #0")
        low.emit(f"ble {skip}")
        low.emit_label(head)
        self._emit_body()
        low.emit(f"subs r{counter}, r{counter}, #1")
        low.emit(f"bgt {head}")
        low.emit_label(skip)

    def emit_dynamic_leftover(self) -> None:
        """Scalar loop over the runtime leftover region [split, end)."""
        low = self.low
        _, split_reg = low.scope.home(self.split_name)
        low.emit_scalar_for(
            For(self.loop.var, Var(self.split_name), self.loop.end, self.loop.body),
            start_reg=split_reg,
        )

    # ------------------------------------------------------------------
    def _emit_body(self) -> None:
        self.var_q = {}
        self._loaded: dict[tuple, int] = {}
        # loads first: every stream's pointer advances exactly once per
        # vector iteration — read-modify-write streams load without
        # writeback and let their store do the pointer bump
        for key, stream in self.streams.items():
            if not stream.is_store or self._stream_also_loaded(key):
                dtype = self.low.array_dtype(stream.array)
                q = self._q_for_key(("load",) + key)
                wb = "" if stream.is_store else "!"
                self.low.emit(f"vld1.{dtype} q{q}, [r{stream.pointer_reg}]{wb}")
                self._loaded[key] = q
        for stmt in self.loop.body:
            self._emit_vector_stmt(stmt)

    def _stream_also_loaded(self, key: tuple) -> bool:
        """A store stream whose location is also read (e.g. out[i] += ...)."""
        for stmt in self.loop.body:
            for expr in _all_exprs(stmt):
                if isinstance(expr, Load) and self._stream_key(expr.array, expr.index) == key:
                    return True
        return False

    def _q_for_key(self, key: tuple) -> int:
        if key not in self.q_map:
            self.q_map[key] = self._alloc_q(transient=False)
        return self.q_map[key]

    def _emit_vector_stmt(self, stmt: Stmt) -> None:
        low = self.low
        if isinstance(stmt, Let):
            q = self._vec_eval(stmt.expr)
            self._transient.discard(q)  # the name keeps the register alive
            self.var_q[stmt.name] = q
        elif isinstance(stmt, Store):
            q = self._vec_eval(stmt.value)
            stream = self.streams[self._stream_key(stmt.array, stmt.index)]
            dtype = low.array_dtype(stmt.array)
            low.emit(f"vst1.{dtype} q{q}, [r{stream.pointer_reg}]!")
            self._release_q(q)
        elif isinstance(stmt, If):
            pattern = _select_pattern(stmt)
            assert pattern is not None
            store, else_value = pattern
            mask_q = self._vec_compare(stmt.cond)
            then_q = self._vec_eval(store.value)
            else_q = self._vec_eval(else_value)
            # vbsl overwrites the mask register with the selection result
            low.emit(f"vbsl q{mask_q}, q{then_q}, q{else_q}")
            self._release_q(then_q)
            self._release_q(else_q)
            stream = self.streams[self._stream_key(store.array, store.index)]
            dtype = low.array_dtype(store.array)
            low.emit(f"vst1.{dtype} q{mask_q}, [r{stream.pointer_reg}]!")
            self._release_q(mask_q)
        else:  # pragma: no cover - plan() already rejected it
            raise _Bailout(f"unsupported statement {type(stmt).__name__}")

    def _vec_compare(self, cond: Compare) -> int:
        low = self.low
        left = self._vec_eval(cond.left)
        op = cond.op.value
        if op == "!=":
            right = self._vec_eval(cond.right)
            eq = self._alloc_q()
            low.emit(f"vceq.{self.dtype} q{eq}, q{left}, q{right}")
            self._release_q(left)
            self._release_q(right)
            out = self._alloc_q()
            low.emit(f"vmvn.{self.dtype} q{out}, q{eq}")
            self._release_q(eq)
            return out
        right = self._vec_eval(cond.right)
        out = self._alloc_q()
        low.emit(f"{_VCMP[op]}.{self.dtype} q{out}, q{left}, q{right}")
        self._release_q(left)
        self._release_q(right)
        return out

    def _vec_eval(self, expr: Expr) -> int:
        low = self.low
        if isinstance(expr, Load):
            key = self._stream_key(expr.array, expr.index)
            return self._loaded[key]
        if isinstance(expr, Const):
            key = ("const", expr.value)
            if key not in self.q_map:
                q = self._q_for_key(key)
                low.emit(f"vmovi.{self.dtype} q{q}, #{expr.value}")
            return self.q_map[key]
        if isinstance(expr, Var):
            if expr.name in self.var_q:
                return self.var_q[expr.name]
            # loop-invariant scalar: broadcast from its register
            key = ("dup", expr.name)
            if key not in self.q_map:
                q = self._q_for_key(key)
                kind, home = low.scope.home(expr.name)
                if kind != "reg":
                    raise _Bailout("spilled invariant")
                low.emit(f"vdup.{self.dtype} q{q}, r{home}")
            return self.q_map[key]
        if isinstance(expr, Binary):
            if expr.op in (BinOp.SHL, BinOp.SHR):
                if not isinstance(expr.right, Const):
                    raise _Bailout("variable shift amount")
                src = self._vec_eval(expr.left)
                q = self._alloc_q()
                mnem = "vshl" if expr.op is BinOp.SHL else "vshr"
                low.emit(f"{mnem}.{self.dtype} q{q}, q{src}, #{expr.right.value}")
                self._release_q(src)
                return q
            left = self._vec_eval(expr.left)
            right = self._vec_eval(expr.right)
            q = self._alloc_q()
            low.emit(f"{_VBIN[expr.op]}.{self.dtype} q{q}, q{left}, q{right}")
            self._release_q(left)
            self._release_q(right)
            return q
        if isinstance(expr, Unary):
            src = self._vec_eval(expr.operand)
            q = self._alloc_q()
            mnem = {UnOp.ABS: "vabs", UnOp.NEG: "vneg", UnOp.NOT: "vmvn"}[expr.op]
            low.emit(f"{mnem}.{self.dtype} q{q}, q{src}")
            self._release_q(src)
            return q
        raise _Bailout(f"unsupported expression {type(expr).__name__}")


# ---------------------------------------------------------------------------
# small IR utilities
# ---------------------------------------------------------------------------
def _substitute(expr: Expr, var: str, replacement: Expr) -> Expr:
    if isinstance(expr, Var) and expr.name == var:
        return replacement
    if isinstance(expr, Binary):
        return Binary(expr.op, _substitute(expr.left, var, replacement), _substitute(expr.right, var, replacement))
    if isinstance(expr, Unary):
        return Unary(expr.op, _substitute(expr.operand, var, replacement))
    if isinstance(expr, Load):
        return Load(expr.array, _substitute(expr.index, var, replacement))
    return expr


def _all_exprs(stmt: Stmt):
    """Every expression in a statement, descending into If branches."""
    from .ir import stmt_exprs

    yield from stmt_exprs(stmt)
    if isinstance(stmt, If):
        for s in stmt.then + stmt.else_:
            yield from _all_exprs(s)
