"""Loop-kernel intermediate representation.

The workloads (MiBench / OpenCV substitutes) are written in this small typed
IR and lowered to assembly three ways: scalar (the "ARM original" binary the
DSA observes), statically auto-vectorized (the NEON compiler baseline), and
hand-vectorized (the NEON library baseline).

The IR deliberately mirrors the loop taxonomy of the paper (Fig. 11 /
Article 3 Fig. 3):

* ``For`` with constant bounds            -> count loop
* ``For`` with a runtime bound            -> dynamic range loop (type A)
* ``While``                               -> sentinel / dynamic range type B
* ``If`` inside a loop                    -> conditional loop
* ``Call`` inside a loop                  -> function loop
* nested ``For``                          -> inner/outer loops
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Union

from ..errors import CompilerError
from ..isa.dtypes import DType


# ---------------------------------------------------------------------------
# parameters
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayParam:
    """A kernel parameter that is a base pointer to a typed array."""

    name: str
    dtype: DType


@dataclass(frozen=True)
class ScalarParam:
    """A kernel parameter passed by value (always a 32-bit integer)."""

    name: str


Param = Union[ArrayParam, ScalarParam]


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
class BinOp(Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    AND = "&"
    OR = "|"
    XOR = "^"
    SHL = "<<"
    SHR = ">>"
    MIN = "min"
    MAX = "max"


class UnOp(Enum):
    NEG = "neg"
    ABS = "abs"
    NOT = "not"


@dataclass(frozen=True)
class Const:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var:
    """A local variable, loop variable, or scalar parameter reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Load:
    """``array[index]`` — index is in elements, not bytes."""

    array: str
    index: "Expr"

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class Binary:
    op: BinOp
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        if self.op in (BinOp.MIN, BinOp.MAX):
            return f"{self.op.value}({self.left}, {self.right})"
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class Unary:
    op: UnOp
    operand: "Expr"

    def __str__(self) -> str:
        return f"{self.op.value}({self.operand})"


@dataclass(frozen=True)
class Call:
    """A call to one of the kernel's helper functions (function loops)."""

    func: str
    args: tuple["Expr", ...]

    def __str__(self) -> str:
        return f"{self.func}({', '.join(map(str, self.args))})"


Expr = Union[Const, Var, Load, Binary, Unary, Call]


class CmpOp(Enum):
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="


@dataclass(frozen=True)
class Compare:
    """A signed comparison used by If / While / For bounds."""

    left: Expr
    op: CmpOp
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
@dataclass
class Let:
    """Assign an expression to a local scalar variable."""

    name: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.name} = {self.expr}"


@dataclass
class Store:
    """``array[index] = value``."""

    array: str
    index: Expr
    value: Expr

    def __str__(self) -> str:
        return f"{self.array}[{self.index}] = {self.value}"


@dataclass
class For:
    """Counted loop: ``for var in start..end (step)``; end is exclusive."""

    var: str
    start: Expr
    end: Expr
    body: list["Stmt"]
    step: int = 1

    def __post_init__(self) -> None:
        if self.step == 0:
            raise CompilerError("loop step cannot be zero")

    def __str__(self) -> str:
        return f"for {self.var} in {self.start}..{self.end} step {self.step}"


@dataclass
class While:
    """Sentinel loop: the condition is evaluated before each iteration."""

    cond: Compare
    body: list["Stmt"]

    def __str__(self) -> str:
        return f"while {self.cond}"


@dataclass
class If:
    cond: Compare
    then: list["Stmt"]
    else_: list["Stmt"] = field(default_factory=list)

    def __str__(self) -> str:
        return f"if {self.cond}"


@dataclass
class Return:
    """Only valid inside a Function body."""

    expr: Expr

    def __str__(self) -> str:
        return f"return {self.expr}"


Stmt = Union[Let, Store, For, While, If, Return]


# ---------------------------------------------------------------------------
# functions and kernels
# ---------------------------------------------------------------------------
@dataclass
class Function:
    """A leaf helper function: scalar params, scalar return, no calls/arrays.

    Used to build the paper's "function loops"; lowered with an r0-r3
    register window so no save/restore code is needed.
    """

    name: str
    params: list[str]
    body: list[Stmt]

    def __post_init__(self) -> None:
        if len(self.params) > 2:
            raise CompilerError(f"function {self.name}: at most 2 parameters supported")
        for stmt in walk_stmts(self.body):
            if isinstance(stmt, (For, While)):
                raise CompilerError(f"function {self.name}: loops inside functions unsupported")
            if isinstance(stmt, (Store,)):
                raise CompilerError(f"function {self.name}: array access inside functions unsupported")
        for expr in walk_exprs(self.body):
            if isinstance(expr, (Load, Call)):
                raise CompilerError(
                    f"function {self.name}: loads/calls inside functions unsupported"
                )


@dataclass
class Kernel:
    """A complete kernel: parameters, helper functions, and a body."""

    name: str
    params: list[Param]
    body: list[Stmt]
    functions: list[Function] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise CompilerError(f"kernel {self.name}: duplicate parameter names")
        funcs = {f.name for f in self.functions}
        for expr in walk_exprs(self.body):
            if isinstance(expr, Call) and expr.func not in funcs:
                raise CompilerError(f"kernel {self.name}: call to unknown function {expr.func!r}")
            if isinstance(expr, Load) and expr.array not in {
                p.name for p in self.params if isinstance(p, ArrayParam)
            }:
                raise CompilerError(f"kernel {self.name}: load from unknown array {expr.array!r}")
        for stmt in walk_stmts(self.body):
            if isinstance(stmt, Return):
                raise CompilerError(f"kernel {self.name}: return outside a function")
            if isinstance(stmt, Store) and stmt.array not in {
                p.name for p in self.params if isinstance(p, ArrayParam)
            }:
                raise CompilerError(f"kernel {self.name}: store to unknown array {stmt.array!r}")

    def array_params(self) -> list[ArrayParam]:
        return [p for p in self.params if isinstance(p, ArrayParam)]

    def scalar_params(self) -> list[ScalarParam]:
        return [p for p in self.params if isinstance(p, ScalarParam)]

    def array(self, name: str) -> ArrayParam:
        for p in self.array_params():
            if p.name == name:
                return p
        raise KeyError(f"no array parameter named {name!r}")

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")


# ---------------------------------------------------------------------------
# tree walking
# ---------------------------------------------------------------------------
def walk_stmts(body: list[Stmt]) -> Iterator[Stmt]:
    """Yield every statement, depth first."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, (For, While)):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.else_)


def walk_exprs(body: list[Stmt]) -> Iterator[Expr]:
    """Yield every expression appearing anywhere in ``body``."""
    for stmt in walk_stmts(body):
        yield from stmt_exprs(stmt)


def stmt_exprs(stmt: Stmt) -> Iterator[Expr]:
    """Yield the expressions directly referenced by one statement."""
    if isinstance(stmt, Let):
        yield from subexprs(stmt.expr)
    elif isinstance(stmt, Store):
        yield from subexprs(stmt.index)
        yield from subexprs(stmt.value)
    elif isinstance(stmt, For):
        yield from subexprs(stmt.start)
        yield from subexprs(stmt.end)
    elif isinstance(stmt, While):
        yield from subexprs(stmt.cond.left)
        yield from subexprs(stmt.cond.right)
    elif isinstance(stmt, If):
        yield from subexprs(stmt.cond.left)
        yield from subexprs(stmt.cond.right)
    elif isinstance(stmt, Return):
        yield from subexprs(stmt.expr)


def subexprs(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every expression below it."""
    yield expr
    if isinstance(expr, Binary):
        yield from subexprs(expr.left)
        yield from subexprs(expr.right)
    elif isinstance(expr, Unary):
        yield from subexprs(expr.operand)
    elif isinstance(expr, Load):
        yield from subexprs(expr.index)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from subexprs(arg)


# ---------------------------------------------------------------------------
# convenience constructors (used heavily by the workloads)
# ---------------------------------------------------------------------------
def c(value: int) -> Const:
    return Const(value)


def v(name: str) -> Var:
    return Var(name)


def add(a: Expr, b: Expr) -> Binary:
    return Binary(BinOp.ADD, a, b)


def sub(a: Expr, b: Expr) -> Binary:
    return Binary(BinOp.SUB, a, b)


def mul(a: Expr, b: Expr) -> Binary:
    return Binary(BinOp.MUL, a, b)


def shr(a: Expr, amount: int) -> Binary:
    return Binary(BinOp.SHR, a, Const(amount))


def shl(a: Expr, amount: int) -> Binary:
    return Binary(BinOp.SHL, a, Const(amount))
