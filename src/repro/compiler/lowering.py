"""Lowering: kernel IR -> assembly text -> assembled Program.

Calling convention (harness-facing):

* kernel parameters live in ``r4, r5, ...`` in declaration order — array
  parameters receive base addresses, scalar parameters receive values;
* ``sp`` points at a spill frame of ``LoweredKernel.frame_size`` bytes
  (only needed when the kernel has more locals than registers);
* helper functions use an ``r0``-``r3`` window (args in r0/r1, result in
  r0), so kernels with functions keep r0-r3 free.

A vectorizer (``repro.compiler.vectorize``) may claim counted loops during
lowering and emit NEON code instead of the scalar loop; everything else is
shared between the scalar and vectorized binaries, which keeps the baseline
comparison honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompilerError
from ..isa.assembler import assemble
from ..isa.dtypes import DType
from ..isa.program import Program
from .ir import (
    ArrayParam,
    Binary,
    BinOp,
    Call,
    CmpOp,
    Compare,
    Const,
    Expr,
    For,
    Function,
    If,
    Kernel,
    Let,
    Load,
    Return,
    ScalarParam,
    Stmt,
    Store,
    UnOp,
    Unary,
    Var,
    While,
)

#: registers available to kernels (r13=sp, r14=lr, r15=pc stay reserved)
_FULL_POOL = list(range(0, 13))
#: pool when helper functions exist (r0-r3 form the function window)
_WINDOWED_POOL = list(range(4, 13))
#: registers reserved for expression temporaries (taken from the pool tail)
_NUM_TEMPS = 3

_CMP_BRANCH = {
    CmpOp.LT: ("blt", "bge"),
    CmpOp.LE: ("ble", "bgt"),
    CmpOp.GT: ("bgt", "ble"),
    CmpOp.GE: ("bge", "blt"),
    CmpOp.EQ: ("beq", "bne"),
    CmpOp.NE: ("bne", "beq"),
}

_INT_ALU = {
    BinOp.ADD: "add",
    BinOp.SUB: "sub",
    BinOp.AND: "and",
    BinOp.OR: "orr",
    BinOp.XOR: "eor",
    BinOp.SHL: "lsl",
    BinOp.SHR: "asr",
    BinOp.MIN: "min",
    BinOp.MAX: "max",
}

_FLOAT_ALU = {BinOp.ADD: "fadd", BinOp.SUB: "fsub", BinOp.MUL: "fmul"}


def _load_mnemonic(dtype: DType) -> str:
    return {
        DType.U8: "ldrb",
        DType.I8: "ldrsb",
        DType.U16: "ldrh",
        DType.I16: "ldrsh",
        DType.I32: "ldr",
        DType.U32: "ldr",
        DType.F32: "ldr",
    }[dtype]


def _store_mnemonic(dtype: DType) -> str:
    return {
        DType.U8: "strb",
        DType.I8: "strb",
        DType.U16: "strh",
        DType.I16: "strh",
        DType.I32: "str",
        DType.U32: "str",
        DType.F32: "str",
    }[dtype]


def _shift_for_size(size: int) -> int:
    return {1: 0, 2: 1, 4: 2}[size]


@dataclass
class LoweredKernel:
    """The result of lowering: assembled program + calling information."""

    kernel: Kernel
    program: Program
    asm: str
    param_regs: dict[str, int]
    frame_size: int
    vectorized_loops: list[str] = field(default_factory=list)
    guarded_loops: list[str] = field(default_factory=list)
    glue_instructions: int = 0

    @property
    def name(self) -> str:
        return self.kernel.name


class _Scope:
    """Register/spill bookkeeping for one lowering context."""

    def __init__(self, pool: list[int], num_temps: int = _NUM_TEMPS, allow_spill: bool = True):
        if len(pool) <= num_temps:
            raise CompilerError("register pool too small")
        self.temps = pool[-num_temps:]
        self.free_temps = list(self.temps)
        self.named_pool = pool[:-num_temps]
        self.next_named = 0
        self.free_named: list[int] = []  # registers released by unbind()
        self.allow_spill = allow_spill
        self.regs: dict[str, int] = {}      # name -> register
        self.spills: dict[str, int] = {}    # name -> frame offset
        self.next_spill = 0
        self.types: dict[str, str] = {}     # name -> "int" | "float"

    # -- named locals ---------------------------------------------------
    def bind(self, name: str) -> None:
        """Give ``name`` a home (register if available, else a spill slot)."""
        if name in self.regs or name in self.spills:
            return
        if self.free_named:
            self.regs[name] = self.free_named.pop()
        elif self.next_named < len(self.named_pool):
            self.regs[name] = self.named_pool[self.next_named]
            self.next_named += 1
        elif self.allow_spill:
            self.spills[name] = self.next_spill
            self.next_spill += 4
        else:
            raise CompilerError(f"no register available for {name!r} in this scope")

    def unbind(self, name: str) -> None:
        """Release a register whose value is dead (vectorizer scratch)."""
        reg = self.regs.pop(name, None)
        if reg is not None:
            self.free_named.append(reg)

    def bind_register(self, name: str, reg: int) -> None:
        self.regs[name] = reg

    def home(self, name: str) -> tuple[str, int]:
        """('reg', index) or ('spill', offset)."""
        if name in self.regs:
            return "reg", self.regs[name]
        if name in self.spills:
            return "spill", self.spills[name]
        raise CompilerError(f"undefined variable {name!r}")

    # -- temporaries ----------------------------------------------------
    def acquire_temp(self) -> int:
        if not self.free_temps:
            raise CompilerError("expression too deep: out of temporaries")
        return self.free_temps.pop()

    def release_temp(self, reg: int) -> None:
        if reg in self.temps and reg not in self.free_temps:
            self.free_temps.append(reg)


class Lowerer:
    """Lowers one kernel to assembly, optionally with a vectorizer attached."""

    def __init__(self, kernel: Kernel, vectorizer=None):
        self.kernel = kernel
        self.vectorizer = vectorizer
        self.lines: list[str] = []
        self._label_counter = 0
        pool = _WINDOWED_POOL if kernel.functions else _FULL_POOL
        self.scope = _Scope(list(pool))
        self.param_regs: dict[str, int] = {}
        self.vectorized_loops: list[str] = []
        self.guarded_loops: list[str] = []
        self.glue_instructions = 0
        self._in_function = False
        self._assign_params()

    # ------------------------------------------------------------------
    def _assign_params(self) -> None:
        for param in self.kernel.params:
            self.scope.bind(param.name)
            kind, home = self.scope.home(param.name)
            if kind != "reg":
                raise CompilerError(
                    f"kernel {self.kernel.name}: too many parameters for registers"
                )
            self.param_regs[param.name] = home
            self.scope.types[param.name] = "int"

    # ------------------------------------------------------------------
    # public emit API (also used by the vectorizers)
    # ------------------------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append(f"    {line}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def fresh_label(self, prefix: str) -> str:
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def array_dtype(self, name: str) -> DType:
        return self.kernel.array(name).dtype

    def param_reg(self, name: str) -> int:
        return self.param_regs[name]

    def acquire_temp(self) -> int:
        return self.scope.acquire_temp()

    def release_temp(self, reg: int) -> None:
        self.scope.release_temp(reg)

    # ------------------------------------------------------------------
    def lower(self) -> LoweredKernel:
        for stmt in self.kernel.body:
            self._emit_stmt(stmt)
        self.emit("halt")
        for func in self.kernel.functions:
            self._emit_function(func)
        asm = "\n".join(self.lines) + "\n"
        try:
            program = assemble(asm)
        except Exception as exc:  # pragma: no cover - lowering bug guard
            raise CompilerError(f"lowering produced bad assembly: {exc}\n{asm}") from exc
        return LoweredKernel(
            kernel=self.kernel,
            program=program,
            asm=asm,
            param_regs=dict(self.param_regs),
            frame_size=self.scope.next_spill,
            vectorized_loops=list(self.vectorized_loops),
            guarded_loops=list(self.guarded_loops),
            glue_instructions=self.glue_instructions,
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _emit_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Let):
            self._emit_let(stmt)
        elif isinstance(stmt, Store):
            self._emit_store(stmt)
        elif isinstance(stmt, For):
            self._emit_for(stmt)
        elif isinstance(stmt, While):
            self._emit_while(stmt)
        elif isinstance(stmt, If):
            self._emit_if(stmt)
        elif isinstance(stmt, Return):
            if not self._in_function:
                raise CompilerError("return outside a function")
            self._emit_return(stmt)
        else:
            raise CompilerError(f"cannot lower statement {stmt!r}")

    def _emit_return(self, stmt: Return) -> None:
        value, is_temp = self._eval(stmt.expr)
        if isinstance(value, int):
            if value != 0:
                self.emit(f"mov r0, r{value}")
            if is_temp:
                self.scope.release_temp(value)
        else:
            self.emit(f"mov r0, #{value}")
        self.emit("bx lr")

    def _emit_let(self, stmt: Let) -> None:
        value, is_temp = self._eval(stmt.expr)
        self.scope.bind(stmt.name)
        self.scope.types[stmt.name] = self._expr_type(stmt.expr)
        kind, home = self.scope.home(stmt.name)
        if kind == "reg":
            if isinstance(value, int):
                if value != home:
                    self.emit(f"mov r{home}, r{value}")
            else:
                self.emit(f"mov r{home}, #{value}")
        else:
            reg = value if isinstance(value, int) else None
            if reg is None:
                reg = self.scope.acquire_temp()
                self.emit(f"mov r{reg}, #{value}")
                self.emit(f"str r{reg}, [sp, #{home}]")
                self.scope.release_temp(reg)
            else:
                self.emit(f"str r{reg}, [sp, #{home}]")
        if is_temp and isinstance(value, int):
            self.scope.release_temp(value)

    def _emit_store(self, stmt: Store) -> None:
        dtype = self.array_dtype(stmt.array)
        value_reg, value_temp = self._eval_to_reg(stmt.value)
        addr_operand, addr_temp = self._address_operand(stmt.array, stmt.index, dtype)
        self.emit(f"{_store_mnemonic(dtype)} r{value_reg}, {addr_operand}")
        if value_temp:
            self.scope.release_temp(value_reg)
        if addr_temp is not None:
            self.scope.release_temp(addr_temp)

    def _emit_if(self, stmt: If) -> None:
        else_label = self.fresh_label("else")
        end_label = self.fresh_label("endif")
        target = else_label if stmt.else_ else end_label
        self._emit_cond_branch(stmt.cond, target, jump_when_false=True)
        for s in stmt.then:
            self._emit_stmt(s)
        if stmt.else_:
            self.emit(f"b {end_label}")
            self.emit_label(else_label)
            for s in stmt.else_:
                self._emit_stmt(s)
        self.emit_label(end_label)

    def _emit_while(self, stmt: While) -> None:
        head = self.fresh_label("while")
        exit_label = self.fresh_label("wend")
        self.emit_label(head)
        self._emit_cond_branch(stmt.cond, exit_label, jump_when_false=True)
        for s in stmt.body:
            self._emit_stmt(s)
        self.emit(f"b {head}")
        self.emit_label(exit_label)

    def _emit_for(self, stmt: For) -> None:
        if self.vectorizer is not None and self.vectorizer.try_vectorize(stmt, self):
            self.vectorized_loops.append(stmt.var)
            return
        self.emit_scalar_for(stmt)

    def emit_scalar_for(self, stmt: For, start_reg: int | None = None) -> None:
        """Emit the plain scalar loop (also used for vectorizer leftovers).

        ``start_reg`` optionally supplies a register already holding the
        start value (used by leftover loops with runtime split points).
        """
        head = self.fresh_label("loop")
        end_label = self.fresh_label("endloop")

        self.scope.bind(stmt.var)
        self.scope.types[stmt.var] = "int"
        kind, var_home = self.scope.home(stmt.var)
        if kind != "reg":
            raise CompilerError("loop variable spilled; simplify the kernel")

        if start_reg is not None:
            if start_reg != var_home:
                self.emit(f"mov r{var_home}, r{start_reg}")
        else:
            value, is_temp = self._eval(stmt.start)
            if isinstance(value, int):
                if value != var_home:
                    self.emit(f"mov r{var_home}, r{value}")
                if is_temp:
                    self.scope.release_temp(value)
            else:
                self.emit(f"mov r{var_home}, #{value}")

        # loop bound: immediate when static, register otherwise; bounds that
        # do not fit a register live in a spill slot and are reloaded at
        # each compare through a temporary
        bound_operand: str
        bound_spill: int | None = None
        if isinstance(stmt.end, Const):
            bound_operand = f"#{stmt.end.value}"
        elif (
            isinstance(stmt.end, Var)
            and self.scope.home(stmt.end.name)[0] == "reg"
            and not _written_in(stmt.body, stmt.end.name)
        ):
            # the bound already lives in a register and is loop-invariant:
            # compare against it directly instead of copying
            bound_operand = f"r{self.scope.home(stmt.end.name)[1]}"
        elif (
            isinstance(stmt.end, Var)
            and self.scope.home(stmt.end.name)[0] == "spill"
            and not _written_in(stmt.body, stmt.end.name)
        ):
            bound_operand = ""
            bound_spill = self.scope.home(stmt.end.name)[1]
        else:
            end_name = f"{stmt.var}$end"
            value, is_temp = self._eval(stmt.end)
            self.scope.bind(end_name)
            kind, end_home = self.scope.home(end_name)
            if kind != "reg":
                # out of registers: spill the bound and reload per compare
                if isinstance(value, int):
                    self.emit(f"str r{value}, [sp, #{end_home}]")
                    if is_temp:
                        self.scope.release_temp(value)
                else:
                    t = self.scope.acquire_temp()
                    self.emit(f"mov r{t}, #{value}")
                    self.emit(f"str r{t}, [sp, #{end_home}]")
                    self.scope.release_temp(t)
                bound_operand = ""
                bound_spill = end_home
            else:
                if isinstance(value, int):
                    if value != end_home:
                        self.emit(f"mov r{end_home}, r{value}")
                    if is_temp:
                        self.scope.release_temp(value)
                else:
                    self.emit(f"mov r{end_home}, #{value}")
                bound_operand = f"r{end_home}"

        def emit_compare() -> None:
            if bound_spill is not None:
                t = self.scope.acquire_temp()
                self.emit(f"ldr r{t}, [sp, #{bound_spill}]")
                self.emit(f"cmp r{var_home}, r{t}")
                self.scope.release_temp(t)
            else:
                self.emit(f"cmp r{var_home}, {bound_operand}")

        back = "blt" if stmt.step > 0 else "bgt"
        guard_skip = "bge" if stmt.step > 0 else "ble"
        emit_compare()
        self.emit(f"{guard_skip} {end_label}")
        self.emit_label(head)
        for s in stmt.body:
            self._emit_stmt(s)
        if stmt.step > 0:
            self.emit(f"add r{var_home}, r{var_home}, #{stmt.step}")
        else:
            self.emit(f"sub r{var_home}, r{var_home}, #{-stmt.step}")
        emit_compare()
        self.emit(f"{back} {head}")
        self.emit_label(end_label)

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------
    def _emit_cond_branch(self, cond: Compare, target: str, jump_when_false: bool) -> None:
        left_reg, left_temp = self._eval_to_reg(cond.left)
        right_value, right_temp = self._eval(cond.right)
        if isinstance(right_value, int):
            self.emit(f"cmp r{left_reg}, r{right_value}")
            if right_temp:
                self.scope.release_temp(right_value)
        else:
            self.emit(f"cmp r{left_reg}, #{right_value}")
        if left_temp:
            self.scope.release_temp(left_reg)
        taken, not_taken = _CMP_BRANCH[cond.op]
        self.emit(f"{not_taken if jump_when_false else taken} {target}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _expr_type(self, expr: Expr) -> str:
        if isinstance(expr, Load):
            return "float" if self.array_dtype(expr.array).is_float else "int"
        if isinstance(expr, Var):
            return self.scope.types.get(expr.name, "int")
        if isinstance(expr, Binary):
            t = self._expr_type(expr.left)
            return t if t == "float" else self._expr_type(expr.right)
        if isinstance(expr, Unary):
            return self._expr_type(expr.operand)
        return "int"

    def _eval(self, expr: Expr) -> tuple[int | str, bool]:
        """Evaluate an expression.

        Returns ``(register_index, is_temp)`` or ``(imm_string, False)``
        where the immediate string is a bare integer for ``#value`` slots.
        """
        if isinstance(expr, Const):
            return str(expr.value), False
        reg, is_temp = self._eval_to_reg(expr)
        return reg, is_temp

    def _eval_to_reg(self, expr: Expr) -> tuple[int, bool]:
        """Evaluate into a register; bool says whether it is a temp to free."""
        if isinstance(expr, Var):
            kind, home = self.scope.home(expr.name)
            if kind == "reg":
                return home, False
            temp = self.scope.acquire_temp()
            self.emit(f"ldr r{temp}, [sp, #{home}]")
            return temp, True
        if isinstance(expr, Const):
            temp = self.scope.acquire_temp()
            self.emit(f"mov r{temp}, #{expr.value}")
            return temp, True
        if isinstance(expr, Load):
            return self._eval_load(expr)
        if isinstance(expr, Binary):
            return self._eval_binary(expr)
        if isinstance(expr, Unary):
            return self._eval_unary(expr)
        if isinstance(expr, Call):
            return self._eval_call(expr)
        raise CompilerError(f"cannot evaluate {expr!r}")

    def _eval_load(self, expr: Load) -> tuple[int, bool]:
        dtype = self.array_dtype(expr.array)
        addr_operand, addr_temp = self._address_operand(expr.array, expr.index, dtype)
        dest = self.scope.acquire_temp()
        self.emit(f"{_load_mnemonic(dtype)} r{dest}, {addr_operand}")
        if addr_temp is not None:
            self.scope.release_temp(addr_temp)
        return dest, True

    def _address_operand(self, array: str, index: Expr, dtype: DType) -> tuple[str, int | None]:
        """Build a load/store address operand string for array[index]."""
        base = self.param_regs[array]
        shift = _shift_for_size(dtype.size)
        if isinstance(index, Const):
            return f"[r{base}, #{index.value * dtype.size}]", None
        idx_reg, idx_temp = self._eval_to_reg(index)
        if shift == 0:
            op = f"[r{base}, r{idx_reg}]"
        else:
            op = f"[r{base}, r{idx_reg}, lsl #{shift}]"
        return op, (idx_reg if idx_temp else None)

    def _eval_binary(self, expr: Binary) -> tuple[int, bool]:
        etype = self._expr_type(expr)
        if etype == "float":
            return self._eval_float_binary(expr)
        if expr.op is BinOp.MUL:
            left, lt = self._eval_to_reg(expr.left)
            right, rt = self._eval_to_reg(expr.right)
            dest = left if lt else right if rt else self.scope.acquire_temp()
            self.emit(f"mul r{dest}, r{left}, r{right}")
            self._release_operands(dest, (left, lt), (right, rt))
            return dest, True
        mnemonic = _INT_ALU[expr.op]
        left, lt = self._eval_to_reg(expr.left)
        if isinstance(expr.right, Const):
            dest = left if lt else self.scope.acquire_temp()
            self.emit(f"{mnemonic} r{dest}, r{left}, #{expr.right.value}")
            return dest, True
        right, rt = self._eval_to_reg(expr.right)
        dest = left if lt else right if rt else self.scope.acquire_temp()
        self.emit(f"{mnemonic} r{dest}, r{left}, r{right}")
        self._release_operands(dest, (left, lt), (right, rt))
        return dest, True

    def _eval_float_binary(self, expr: Binary) -> tuple[int, bool]:
        if expr.op not in _FLOAT_ALU:
            raise CompilerError(f"float operation {expr.op} unsupported")
        left, lt = self._eval_to_reg(expr.left)
        right, rt = self._eval_to_reg(expr.right)
        dest = left if lt else right if rt else self.scope.acquire_temp()
        self.emit(f"{_FLOAT_ALU[expr.op]} r{dest}, r{left}, r{right}")
        self._release_operands(dest, (left, lt), (right, rt))
        return dest, True

    def _release_operands(self, dest: int, *operands: tuple[int, bool]) -> None:
        for reg, is_temp in operands:
            if is_temp and reg != dest:
                self.scope.release_temp(reg)

    def _eval_unary(self, expr: Unary) -> tuple[int, bool]:
        operand, is_temp = self._eval_to_reg(expr.operand)
        dest = operand if is_temp else self.scope.acquire_temp()
        if expr.op is UnOp.NEG:
            self.emit(f"rsb r{dest}, r{operand}, #0")
        elif expr.op is UnOp.NOT:
            self.emit(f"mvn r{dest}, r{operand}")
        elif expr.op is UnOp.ABS:
            # abs(x) = max(x, -x)
            temp = self.scope.acquire_temp()
            self.emit(f"rsb r{temp}, r{operand}, #0")
            self.emit(f"max r{dest}, r{operand}, r{temp}")
            self.scope.release_temp(temp)
        else:
            raise CompilerError(f"bad unary op {expr.op!r}")
        return dest, True

    def _eval_call(self, expr: Call) -> tuple[int, bool]:
        if not self.kernel.functions:
            raise CompilerError("call in a kernel without functions")
        if len(expr.args) > 2:
            raise CompilerError("at most 2 call arguments supported")
        for i, arg in enumerate(expr.args):
            value, is_temp = self._eval(arg)
            if isinstance(value, int):
                self.emit(f"mov r{i}, r{value}")
                if is_temp:
                    self.scope.release_temp(value)
            else:
                self.emit(f"mov r{i}, #{value}")
        self.emit(f"bl {expr.func}")
        dest = self.scope.acquire_temp()
        self.emit(f"mov r{dest}, r0")
        return dest, True

    # ------------------------------------------------------------------
    # helper functions (r0-r3 window)
    # ------------------------------------------------------------------
    def _emit_function(self, func: Function) -> None:
        self.emit_label(func.name)
        outer_scope = self.scope
        # function window: params in r0/r1, temporaries r2/r3, no spilling
        self.scope = _Scope([0, 1, 2, 3], num_temps=2, allow_spill=False)
        self._in_function = True
        for i, pname in enumerate(func.params):
            self.scope.bind_register(pname, i)
            self.scope.next_named = max(self.scope.next_named, i + 1)
            self.scope.types[pname] = "int"
        for stmt in func.body:
            self._emit_stmt(stmt)
        self._in_function = False
        self.scope = outer_scope


def _written_in(body: list[Stmt], name: str) -> bool:
    """Is the named local assigned anywhere inside ``body``?"""
    from .ir import walk_stmts

    return any(isinstance(s, Let) and s.name == name for s in walk_stmts(body))


def lower(kernel: Kernel, vectorizer=None) -> LoweredKernel:
    """Lower ``kernel`` to an assembled program."""
    return Lowerer(kernel, vectorizer=vectorizer).lower()
