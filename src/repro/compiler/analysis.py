"""Static loop analysis shared by the vectorizers and the tests.

Implements, at the IR level, the inhibiting factors of the paper's Table 1:
dynamic trip counts (line 4), carry-around scalars (line 5), cross-iteration
dependencies (line 2), non-unit access patterns (line 1), mixed element
widths (line 9), function calls (line 10), and if/switch statements
(line 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..isa.dtypes import DType
from .ir import (
    Binary,
    BinOp,
    Call,
    Compare,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Let,
    Load,
    Stmt,
    Store,
    Unary,
    Var,
    While,
    stmt_exprs,
    subexprs,
    walk_exprs,
    walk_stmts,
)


class LoopClass(Enum):
    """The paper's loop taxonomy (Article 3, Fig. 3 / Fig. 7)."""

    COUNT = "count"
    DYNAMIC_RANGE = "dynamic_range"
    SENTINEL = "sentinel"
    CONDITIONAL = "conditional"
    FUNCTION = "function"
    NON_VECTORIZABLE = "non_vectorizable"


@dataclass(frozen=True)
class AffineIndex:
    """An index expression decomposed as ``sum(base_terms) + coeff*var + const``."""

    base_terms: tuple[Expr, ...]
    coeff: int
    const: int

    @property
    def base_key(self) -> tuple[str, ...]:
        """A structural key for comparing invariant parts."""
        return tuple(sorted(str(t) for t in self.base_terms))


def split_affine(expr: Expr, var: str) -> AffineIndex | None:
    """Decompose an index expression as affine in ``var`` with unit stride.

    Returns None when the expression is not affine in ``var`` (indirect
    addressing, products with the loop variable, etc. — Table 1 lines 1/7).
    """
    terms = _flatten_sum(expr)
    if terms is None:
        return None
    base: list[Expr] = []
    coeff = 0
    const = 0
    for sign, term in terms:
        if isinstance(term, Var) and term.name == var:
            coeff += sign
        elif isinstance(term, Const):
            const += sign * term.value
        else:
            if _mentions_var(term, var):
                return None  # non-linear in the loop variable
            if sign < 0:
                base.append(Binary(BinOp.SUB, Const(0), term))
            else:
                base.append(term)
    return AffineIndex(tuple(base), coeff, const)


def _flatten_sum(expr: Expr) -> list[tuple[int, Expr]] | None:
    """Flatten nested +/- into signed terms; None for other top-level shapes."""
    out: list[tuple[int, Expr]] = []

    def go(e: Expr, sign: int) -> bool:
        if isinstance(e, Binary) and e.op is BinOp.ADD:
            return go(e.left, sign) and go(e.right, sign)
        if isinstance(e, Binary) and e.op is BinOp.SUB:
            return go(e.left, sign) and go(e.right, -sign)
        out.append((sign, e))
        return True

    return out if go(expr, 1) else None


def _mentions_var(expr: Expr, var: str) -> bool:
    return any(isinstance(e, Var) and e.name == var for e in subexprs(expr))


# ---------------------------------------------------------------------------
# loop feature extraction
# ---------------------------------------------------------------------------
@dataclass
class LoopFeatures:
    """Everything the vectorizers need to know about one loop."""

    static_bounds: bool = False
    trip_count: int | None = None
    has_if: bool = False
    has_call: bool = False
    has_inner_loop: bool = False
    has_while: bool = False
    carried_scalars: set[str] = field(default_factory=set)
    possible_cross_iteration_dep: bool = False
    non_affine_access: bool = False
    mixed_element_width: bool = False
    unsupported_op: bool = False
    arrays_read: set[str] = field(default_factory=set)
    arrays_written: set[str] = field(default_factory=set)
    element_dtype: DType | None = None


def direct_body_stmts(loop: For | While) -> list[Stmt]:
    return loop.body


def analyze_loop(loop: For, kernel: Kernel) -> LoopFeatures:
    """Extract the vectorization-relevant features of a counted loop."""
    feats = LoopFeatures()
    feats.static_bounds = isinstance(loop.start, Const) and isinstance(loop.end, Const)
    if feats.static_bounds:
        assert isinstance(loop.start, Const) and isinstance(loop.end, Const)
        feats.trip_count = max(0, (loop.end.value - loop.start.value + loop.step - 1) // loop.step)

    array_dtypes: set[DType] = set()
    loads: list[tuple[str, AffineIndex | None]] = []
    stores: list[tuple[str, AffineIndex | None]] = []

    for stmt in walk_stmts(loop.body):
        if isinstance(stmt, If):
            feats.has_if = True
        elif isinstance(stmt, For):
            feats.has_inner_loop = True
        elif isinstance(stmt, While):
            feats.has_while = True
        elif isinstance(stmt, Store):
            feats.arrays_written.add(stmt.array)
            array_dtypes.add(kernel.array(stmt.array).dtype)
            stores.append((stmt.array, split_affine(stmt.index, loop.var)))
        for expr in stmt_exprs(stmt):
            if isinstance(expr, Call):
                feats.has_call = True
            elif isinstance(expr, Load):
                feats.arrays_read.add(expr.array)
                array_dtypes.add(kernel.array(expr.array).dtype)
                loads.append((expr.array, split_affine(expr.index, loop.var)))
            elif isinstance(expr, Binary) and expr.op is BinOp.SHR and not isinstance(expr.right, Const):
                feats.unsupported_op = True
            elif isinstance(expr, Binary) and expr.op is BinOp.SHL and not isinstance(expr.right, Const):
                feats.unsupported_op = True

    feats.carried_scalars = carried_scalars(loop)
    if len({dt.size for dt in array_dtypes}) > 1:
        feats.mixed_element_width = True
    if len(array_dtypes) >= 1:
        # prefer the widest signed representative for op selection
        feats.element_dtype = sorted(array_dtypes, key=lambda d: (d.size, d.is_float))[-1]

    for _, idx in loads + stores:
        if idx is None or idx.coeff not in (0, 1):
            feats.non_affine_access = True

    feats.possible_cross_iteration_dep = _cross_iteration_dep(loads, stores)
    return feats


def carried_scalars(loop: For | While) -> set[str]:
    """Local variables read before they are (re)written in an iteration.

    These are the paper's "carry-around scalar variables" (Table 1, line 5):
    reductions such as ``acc = acc + x`` cannot be vectorized lane-wise.
    Conservative: straight-line body order; reads inside nested control count
    as reads.
    """
    carried: set[str] = set()
    written: set[str] = set()
    loop_var = loop.var if isinstance(loop, For) else None

    def scan(body: list[Stmt]) -> None:
        for stmt in body:
            for expr in stmt_exprs(stmt):
                for e in subexprs(expr):
                    if isinstance(e, Var) and e.name != loop_var:
                        if e.name not in written:
                            carried.add(e.name)
            if isinstance(stmt, Let):
                written.add(stmt.name)
            elif isinstance(stmt, (For, While)):
                scan(stmt.body)
            elif isinstance(stmt, If):
                scan(stmt.then)
                scan(stmt.else_)

    scan(loop.body)
    # parameters and outer-scope names read but never written in the loop are
    # loop-invariant, not carried
    return {name for name in carried if name in written}


def _cross_iteration_dep(
    loads: list[tuple[str, AffineIndex | None]],
    stores: list[tuple[str, AffineIndex | None]],
) -> bool:
    """Can a store in one iteration alias a load in another iteration?"""
    for s_arr, s_idx in stores:
        for l_arr, l_idx in loads:
            if s_arr != l_arr:
                continue
            if s_idx is None or l_idx is None:
                return True  # cannot prove independence
            if s_idx.base_key != l_idx.base_key:
                return True  # different invariant bases: cannot prove
            if s_idx.coeff != l_idx.coeff:
                return True
            if s_idx.coeff == 0:
                return True  # same element touched every iteration
            if s_idx.const != l_idx.const:
                return True  # e.g. out[i] vs out[i-1]
    # two stores to the same array at different offsets are fine (distinct
    # lanes); store/store at identical indexes are also fine (last-writer)
    return False


def classify_loop(loop: For | While, kernel: Kernel) -> LoopClass:
    """The paper's primary classification for one loop."""
    if isinstance(loop, While):
        return LoopClass.SENTINEL
    feats = analyze_loop(loop, kernel)
    if feats.has_call:
        return LoopClass.FUNCTION
    if feats.has_if:
        return LoopClass.CONDITIONAL
    if feats.carried_scalars or feats.possible_cross_iteration_dep or feats.non_affine_access:
        return LoopClass.NON_VECTORIZABLE
    if not feats.static_bounds:
        return LoopClass.DYNAMIC_RANGE
    return LoopClass.COUNT


def kernel_loops(kernel: Kernel) -> list[For | While]:
    """All loops in a kernel, outermost first."""
    return [s for s in walk_stmts(kernel.body) if isinstance(s, (For, While))]


def innermost_loops(kernel: Kernel) -> list[For | While]:
    out = []
    for loop in kernel_loops(kernel):
        if not any(isinstance(s, (For, While)) for s in walk_stmts(loop.body)):
            out.append(loop)
    return out


def loop_census(kernel: Kernel) -> dict[LoopClass, int]:
    """Static count of loop classes (Article 3, Fig. 7 uses the dynamic
    counterpart from the DSA; this static census backs the unit tests)."""
    census: dict[LoopClass, int] = {cls: 0 for cls in LoopClass}
    for loop in kernel_loops(kernel):
        census[classify_loop(loop, kernel)] += 1
    return census
