"""The backend-neutral vector execution protocol.

Everything above the engines — the core's dispatch, the DSA's template
lowering, the energy model — talks to this surface instead of to
``repro.neon`` directly.  A backend is a *functional* model: it owns a
register file of ``num_regs`` registers, each ``width_bytes`` wide, and
executes :class:`~repro.isa.neon.VInstr` instructions against a
:class:`~repro.memory.backing.MainMemory`, reporting the data-memory
events it performed so the timing model and cache hierarchy can charge
them.  Timing never lives here.

Two implementations ship:

* :class:`repro.neon.NeonEngine` — the paper's fixed 128-bit NEON unit
  (16 Q registers).
* :class:`repro.vector.scalable.ScalableEngine` — a vector-length-
  agnostic (SVE/RVV-style) unit with a configurable VL of 128/256/512/
  1024 bits and a prefix predicate over the lanes.

Construct either through :func:`repro.vector.get_backend`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

# The stats counters and memory-event record are shared by every backend;
# they were born in repro.neon and keep their names there as the stable
# import location — re-exported here under backend-neutral spellings.
from ..neon.engine import NeonStats, VMemEvent

VectorStats = NeonStats

#: vector lengths (bits) a scalable backend may be configured with
VALID_VECTOR_LENGTHS = (128, 256, 512, 1024)


@runtime_checkable
class VectorBackend(Protocol):
    """What the core, the DSA and the energy model require of an engine.

    Attributes
    ----------
    name:
        Stable backend identifier ("neon", "scalable") — appears in
        :class:`CPUConfig`, campaign cache keys and RunResult records.
    vl_bits:
        The configured vector length in bits.
    width_bytes:
        ``vl_bits // 8`` — one register's width.  All lane/chunk math in
        the DSA derives from this; never hard-code 16.
    num_regs:
        Architectural register-file size (both backends: 16, the range
        :class:`~repro.isa.operands.QReg` can encode).
    stats:
        :class:`VectorStats` op counters consumed by the energy model;
        reset per run by the core.
    """

    name: str
    vl_bits: int
    width_bytes: int
    num_regs: int
    stats: VectorStats

    def lanes_for(self, dtype) -> int:
        """Element lanes one register holds at this backend's width."""
        ...

    def read_reg(self, index: int) -> np.ndarray:
        """Copy of register ``index`` as a ``width_bytes`` uint8 image."""
        ...

    def write_reg(self, index: int, image: np.ndarray) -> None:
        """Replace register ``index``; the image must be register-width."""
        ...

    def execute(self, instr, regs, memory) -> list[VMemEvent]:
        """Execute one vector instruction against the scalar register file
        and memory; returns the data-memory events performed."""
        ...

    def run(self, instrs, regs, memory) -> list[VMemEvent]:
        """Execute a burst of vector instructions (see ``execute``)."""
        ...

    def reset(self) -> None:
        """Zero the register file and the stats counters."""
        ...


__all__ = [
    "VALID_VECTOR_LENGTHS",
    "VectorBackend",
    "VectorStats",
    "VMemEvent",
]
