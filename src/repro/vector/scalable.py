"""A vector-length-agnostic (SVE/RVV-style) engine.

Unlike NEON's fixed 128-bit Q registers, the scalable engine is built for
one configurable vector length VL ∈ {128, 256, 512, 1024} bits.  The same
vector program runs at any width: full-width loads and stores move
``width_bytes`` per instruction and post-increment the base register by
``width_bytes``, so a loop template built against this backend covers
``lanes_for(dtype)`` iterations per burst instead of NEON's 128-bit lane
count.

Predication follows the SVE ``whilelt`` idiom: a *prefix* predicate marks
the first N lanes active.  Memory instructions honour it — a predicated
load zeroes the inactive tail (the ``/z`` zeroing form) and touches only
the active bytes; a predicated store writes only the active bytes.
Register-to-register arithmetic is unpredicated (all lanes compute);
with zeroed inactive inputs and masked stores that is architecturally
sufficient for tail handling, which is the only thing the DSA needs a
predicate for.

At VL=128 with the predicate fully active, every operation here is
byte-identical to :class:`repro.neon.NeonEngine` — the differential
parity suite (`tests/vector/test_backend_parity.py`) holds the two
engines to that.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ExecutionError
from ..isa.dtypes import DType, bits_to_float, float_to_bits, to_u32
from ..isa.neon import (
    VBinOp,
    VBsl,
    VCmp,
    VDup,
    VDupImm,
    VInstr,
    VLoad,
    VLoadLane,
    VMla,
    VMovFromCore,
    VMovQ,
    VMovToCore,
    VShiftImm,
    VShiftKind,
    VStore,
    VStoreLane,
    VUnary,
)
from ..memory.backing import MainMemory
from ..neon import lanes
from ..observe.events import EventKind
from .backend import VALID_VECTOR_LENGTHS, VectorStats, VMemEvent


class ScalableEngine:
    """Functional model of a scalable vector unit at one configured VL."""

    name = "scalable"
    num_regs = 16  # the QReg operand encoding spans q0..q15 on any backend

    def __init__(self, vl_bits: int = 128) -> None:
        if vl_bits not in VALID_VECTOR_LENGTHS:
            raise ConfigError(
                f"scalable backend vector length must be one of "
                f"{VALID_VECTOR_LENGTHS}, got {vl_bits}"
            )
        self.vl_bits = vl_bits
        self.width_bytes = vl_bits // 8
        self.q = [lanes.zero_register(self.width_bytes) for _ in range(self.num_regs)]
        self.stats = VectorStats()
        #: active-prefix predicate: memory ops touch the first pred_bytes
        #: bytes of each transfer; width_bytes means "all lanes active"
        self.pred_bytes = self.width_bytes
        #: fault-injection hook: called as hook(instr, q) after each
        #: executed instruction (same contract as the NEON engine)
        self.fault_hook = None
        #: optional repro.observe.Observer; dispatch events reuse the
        #: NEON_DISPATCH kind so exporters need no second schema
        self.observer = None

    # ------------------------------------------------------------------
    def lanes_for(self, dtype: DType) -> int:
        return self.width_bytes // dtype.size

    def set_predicate(self, active_lanes: int, dtype: DType) -> None:
        """Activate the first ``active_lanes`` lanes of ``dtype`` (whilelt)."""
        nbytes = active_lanes * dtype.size
        if not 0 <= nbytes <= self.width_bytes:
            raise ExecutionError(
                f"predicate of {active_lanes} {dtype} lanes does not fit in "
                f"{self.width_bytes} bytes"
            )
        self.pred_bytes = nbytes

    def clear_predicate(self) -> None:
        """Back to all-lanes-active."""
        self.pred_bytes = self.width_bytes

    def read_reg(self, index: int) -> np.ndarray:
        return self.q[index].copy()

    def write_reg(self, index: int, image: np.ndarray) -> None:
        if image.nbytes != self.width_bytes:
            raise ExecutionError(
                f"register image must be {self.width_bytes} bytes at "
                f"VL={self.vl_bits}"
            )
        self.q[index] = image.astype(np.uint8, copy=True)

    # NEON-spelled aliases so engine-generic test helpers can poke either
    read_q = read_reg
    write_q = write_reg

    def reset(self) -> None:
        self.q = [lanes.zero_register(self.width_bytes) for _ in range(self.num_regs)]
        self.stats.reset()
        self.pred_bytes = self.width_bytes

    # ------------------------------------------------------------------
    # handlers (dict-dispatched; each returns its memory event or None)
    # ------------------------------------------------------------------
    def _exec_vload(self, instr: VLoad, regs, memory) -> VMemEvent:
        addr = regs[instr.base.index]
        n = self.pred_bytes
        if n == self.width_bytes:
            self.q[instr.qd.index] = memory.view(addr, n).copy()
        else:
            img = lanes.zero_register(self.width_bytes)
            img[:n] = memory.view(addr, n)
            self.q[instr.qd.index] = img
        if instr.writeback:
            regs[instr.base.index] = to_u32(addr + self.width_bytes)
        self.stats.mem_ops += 1
        self.stats.bytes_loaded += n
        return VMemEvent(addr, n, False)

    def _exec_vstore(self, instr: VStore, regs, memory) -> VMemEvent:
        addr = regs[instr.base.index]
        n = self.pred_bytes
        memory.write(addr, self.q[instr.qs.index][:n].tobytes())
        if instr.writeback:
            regs[instr.base.index] = to_u32(addr + self.width_bytes)
        self.stats.mem_ops += 1
        self.stats.bytes_stored += n
        return VMemEvent(addr, n, True)

    def _exec_vload_lane(self, instr: VLoadLane, regs, memory) -> VMemEvent:
        addr = regs[instr.base.index]
        value = memory.read_value(addr, instr.dtype)
        self.q[instr.qd.index] = lanes.lane_set(
            self.q[instr.qd.index], instr.lane, value, instr.dtype
        )
        if instr.writeback:
            regs[instr.base.index] = to_u32(addr + instr.dtype.size)
        self.stats.mem_ops += 1
        self.stats.bytes_loaded += instr.dtype.size
        return VMemEvent(addr, instr.dtype.size, False)

    def _exec_vstore_lane(self, instr: VStoreLane, regs, memory) -> VMemEvent:
        addr = regs[instr.base.index]
        value = lanes.lane_get(self.q[instr.qs.index], instr.lane, instr.dtype)
        memory.write_value(addr, value, instr.dtype)
        if instr.writeback:
            regs[instr.base.index] = to_u32(addr + instr.dtype.size)
        self.stats.mem_ops += 1
        self.stats.bytes_stored += instr.dtype.size
        return VMemEvent(addr, instr.dtype.size, True)

    def _exec_vbinop(self, instr: VBinOp, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.binop(
            instr.kind, self.q[instr.qn.index], self.q[instr.qm.index], instr.dtype
        )
        self.stats.arith_ops += 1

    def _exec_vmla(self, instr: VMla, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.mla(
            self.q[instr.qd.index],
            self.q[instr.qn.index],
            self.q[instr.qm.index],
            instr.dtype,
        )
        self.stats.arith_ops += 1

    def _exec_vshift(self, instr: VShiftImm, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.shift(
            instr.kind is VShiftKind.VSHL,
            self.q[instr.qn.index],
            instr.amount,
            instr.dtype,
        )
        self.stats.arith_ops += 1

    def _exec_vunary(self, instr: VUnary, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.unary(instr.kind, self.q[instr.qn.index], instr.dtype)
        self.stats.arith_ops += 1

    def _exec_vdup(self, instr: VDup, regs, memory) -> None:
        raw = regs[instr.rn.index]
        value = bits_to_float(raw) if instr.dtype.is_float else raw
        self.q[instr.qd.index] = lanes.broadcast(
            value, instr.dtype, lanes=self.lanes_for(instr.dtype)
        )
        self.stats.lane_ops += 1

    def _exec_vdup_imm(self, instr: VDupImm, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.broadcast(
            instr.value, instr.dtype, lanes=self.lanes_for(instr.dtype)
        )
        self.stats.lane_ops += 1

    def _exec_vcmp(self, instr: VCmp, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.compare(
            instr.kind, self.q[instr.qn.index], self.q[instr.qm.index], instr.dtype
        )
        self.stats.arith_ops += 1

    def _exec_vbsl(self, instr: VBsl, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.bitwise_select(
            self.q[instr.qd.index], self.q[instr.qn.index], self.q[instr.qm.index]
        )
        self.stats.arith_ops += 1

    def _exec_vmovq(self, instr: VMovQ, regs, memory) -> None:
        self.q[instr.qd.index] = self.q[instr.qm.index].copy()
        self.stats.lane_ops += 1

    def _exec_vmov_to_core(self, instr: VMovToCore, regs, memory) -> None:
        value = lanes.lane_get(self.q[instr.qn.index], instr.lane, instr.dtype)
        regs[instr.rd.index] = (
            float_to_bits(value) if instr.dtype.is_float else to_u32(int(value))
        )
        self.stats.lane_ops += 1

    def _exec_vmov_from_core(self, instr: VMovFromCore, regs, memory) -> None:
        raw = regs[instr.rn.index]
        value = bits_to_float(raw) if instr.dtype.is_float else raw
        self.q[instr.qd.index] = lanes.lane_set(
            self.q[instr.qd.index], instr.lane, value, instr.dtype
        )
        self.stats.lane_ops += 1

    _DISPATCH = {
        VLoad: _exec_vload,
        VStore: _exec_vstore,
        VLoadLane: _exec_vload_lane,
        VStoreLane: _exec_vstore_lane,
        VBinOp: _exec_vbinop,
        VMla: _exec_vmla,
        VShiftImm: _exec_vshift,
        VUnary: _exec_vunary,
        VDup: _exec_vdup,
        VDupImm: _exec_vdup_imm,
        VCmp: _exec_vcmp,
        VBsl: _exec_vbsl,
        VMovQ: _exec_vmovq,
        VMovToCore: _exec_vmov_to_core,
        VMovFromCore: _exec_vmov_from_core,
    }

    def execute(
        self, instr: VInstr, regs: list[int], memory: MainMemory
    ) -> list[VMemEvent]:
        """Execute one vector instruction (see :meth:`NeonEngine.execute`)."""
        handler = self._DISPATCH.get(type(instr))
        if handler is None:
            raise ExecutionError(f"unknown vector instruction {instr!r}")
        event = handler(self, instr, regs, memory)
        if self.fault_hook is not None:
            self.fault_hook(instr, self.q)
        if self.observer is not None:
            self.observer.emit(
                EventKind.NEON_DISPATCH,
                instructions=1, source="architectural", op=type(instr).__name__,
            )
        return [event] if event is not None else []

    # ------------------------------------------------------------------
    def run(
        self,
        instrs: list[VInstr],
        regs: list[int],
        memory: MainMemory,
    ) -> list[VMemEvent]:
        """Execute a burst of vector instructions; returns all memory events."""
        events: list[VMemEvent] = []
        for instr in instrs:
            events.extend(self.execute(instr, regs, memory))
        return events
