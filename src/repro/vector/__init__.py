"""Backend-neutral vector execution (ROADMAP item 3).

The stable public surface of the vector layer:

>>> from repro.vector import get_backend
>>> be = get_backend("scalable", 256)
>>> be.width_bytes, be.lanes_for(DType.S32)
(32, 8)

Everything above the engines (core dispatch, DSA template lowering, the
energy model) goes through :class:`VectorBackend`; constructing
:class:`repro.neon.NeonEngine` directly is deprecated in favour of
``get_backend("neon")`` so call sites stay backend-agnostic.
"""

from __future__ import annotations

from ..errors import ConfigError
from .backend import (
    VALID_VECTOR_LENGTHS,
    VectorBackend,
    VectorStats,
    VMemEvent,
)
from .scalable import ScalableEngine

#: names accepted by :func:`get_backend`, CPUConfig.vector_backend,
#: RunSpec.backend and `repro campaign --backend`
BACKEND_NAMES = ("neon", "scalable")


def get_backend(name: str, vl: int = 128) -> VectorBackend:
    """Construct a vector backend by name at vector length ``vl`` (bits).

    The single supported way to build an engine: ``get_backend("neon")``
    for the paper's fixed 128-bit NEON unit (``vl`` must be 128), or
    ``get_backend("scalable", vl)`` for the VLA engine at
    ``vl`` ∈ {128, 256, 512, 1024}.
    """
    if name == "neon":
        if vl != 128:
            raise ConfigError(
                f"the neon backend is fixed at VL=128, got VL={vl}; "
                f"use the scalable backend for wider vectors"
            )
        from ..neon.engine import NeonEngine  # deferred: repro.neon is heavier

        return NeonEngine()
    if name == "scalable":
        return ScalableEngine(vl)
    raise ConfigError(
        f"unknown vector backend {name!r} (choose from {BACKEND_NAMES})"
    )


__all__ = [
    "BACKEND_NAMES",
    "VALID_VECTOR_LENGTHS",
    "VectorBackend",
    "VectorStats",
    "VMemEvent",
    "ScalableEngine",
    "get_backend",
]
