"""Fault plans: declarative, seed-driven fault-injection campaigns.

A :class:`FaultPlan` is a list of :class:`FaultSpec` records, each naming a
*kind* of fault and an fnmatch pattern over :attr:`RunSpec.label`
(``workload/system[stage]``) selecting which runs it applies to.  Plans are
plain JSON so the same plan file drives the CLI (``repro campaign --inject
plan.json``), the test suite, and any external harness.

Two fault families exist:

* **DSA state faults** (``lane``, ``trip_count``, ``loop_cache``,
  ``verdict``, ``neon_lane``) corrupt the microarchitectural state the DSA
  (or the NEON register file) speculates with.  They alter the *vector*
  outcome only — the scalar core's architectural results are never touched
  — so a guarded run must detect every one of them and fall back to the
  scalar reference.
* **Campaign faults** (``worker_crash``, ``worker_exit``, ``worker_hang``,
  ``cache_corrupt``) attack the execution harness itself: a worker that
  raises, hard-exits, or hangs past the timeout, and damaged disk-cache
  entries.  The campaign runner must survive all of them.

Every fault is deterministic: the plan seed plus the fault's position in
the list fully determine where and when it fires, so a faulted campaign is
exactly reproducible.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from fnmatch import fnmatchcase
from pathlib import Path

from ..errors import ConfigError

#: faults that corrupt DSA / NEON speculative state (alter vector outcomes)
DSA_FAULT_KINDS = ("lane", "trip_count", "loop_cache", "verdict")

#: fault corrupting architectural NEON lanes on statically vectorized runs
NEON_FAULT_KINDS = ("neon_lane",)

#: faults a worker process applies to itself
WORKER_FAULT_KINDS = ("worker_crash", "worker_exit", "worker_hang")

#: faults applied to the on-disk result cache before the campaign runs
CACHE_FAULT_KINDS = ("cache_corrupt",)

ALL_FAULT_KINDS = DSA_FAULT_KINDS + NEON_FAULT_KINDS + WORKER_FAULT_KINDS + CACHE_FAULT_KINDS

#: how a ``cache_corrupt`` fault damages the entry
CACHE_CORRUPT_MODES = ("garbage", "version", "truncate", "tmp")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to corrupt, where, and how often."""

    kind: str
    match: str = "*"          # fnmatch pattern over RunSpec.label
    times: int = 1            # worker faults fire on attempts 1..times (0 = every attempt)
    seconds: float = 3600.0   # worker_hang: how long the worker sleeps
    exit_code: int = 9        # worker_exit: os._exit status
    mode: str = "garbage"     # cache_corrupt: damage mode
    delta: int = 1            # lane / neon_lane: value perturbation
    shift: int = 1            # trip_count: iteration skew; neon_lane: which vector op

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; pick one of {sorted(ALL_FAULT_KINDS)}"
            )
        if self.times < 0:
            raise ConfigError("fault 'times' cannot be negative (0 = every attempt)")
        if self.kind == "worker_hang" and self.seconds <= 0:
            raise ConfigError("worker_hang 'seconds' must be positive")
        if self.kind == "cache_corrupt" and self.mode not in CACHE_CORRUPT_MODES:
            raise ConfigError(
                f"unknown cache_corrupt mode {self.mode!r}; pick one of {CACHE_CORRUPT_MODES}"
            )
        if self.kind in ("lane", "neon_lane") and self.delta == 0:
            raise ConfigError("lane fault 'delta' must be nonzero")
        if self.kind == "trip_count" and self.shift == 0:
            raise ConfigError("trip_count fault 'shift' must be nonzero")

    def matches(self, label: str) -> bool:
        return fnmatchcase(label, self.match)

    def fires_on_attempt(self, attempt: int) -> bool:
        """Worker faults fire on the first ``times`` attempts (0 = always)."""
        return self.times == 0 or attempt <= self.times

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        extra = sorted(set(d) - known)
        if extra:
            raise ConfigError(f"unknown fault spec field(s): {extra}")
        if "kind" not in d:
            raise ConfigError("fault spec needs a 'kind'")
        return cls(**d)


@dataclass
class FaultPlan:
    """A deterministic set of faults to inject into one campaign."""

    faults: list[FaultSpec] = field(default_factory=list)
    seed: int = 0

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def for_label(self, label: str) -> list[FaultSpec]:
        return [f for f in self.faults if f.matches(label)]

    def dsa_faults_for(self, label: str) -> list[FaultSpec]:
        return [f for f in self.for_label(label) if f.kind in DSA_FAULT_KINDS]

    def neon_faults_for(self, label: str) -> list[FaultSpec]:
        return [f for f in self.for_label(label) if f.kind in NEON_FAULT_KINDS]

    def worker_fault_for(self, label: str, attempt: int) -> FaultSpec | None:
        """The first worker-level fault that fires for this label/attempt."""
        for f in self.for_label(label):
            if f.kind in WORKER_FAULT_KINDS and f.fires_on_attempt(attempt):
                return f
        return None

    def cache_faults_for(self, label: str) -> list[FaultSpec]:
        return [f for f in self.for_label(label) if f.kind in CACHE_FAULT_KINDS]

    def alters_result(self, label: str) -> bool:
        """True when an injected fault can change the run's *recorded*
        outcome (guard fallback counters, stall recharges) — such runs must
        never share disk-cache entries with clean runs."""
        return bool(self.dsa_faults_for(label) or self.neon_faults_for(label))

    def stream_seed(self, spec: FaultSpec, label: str) -> int:
        """Deterministic per-(fault, run) RNG seed."""
        index = self.faults.index(spec)
        digest = hashlib.sha256(f"{self.seed}|{index}|{label}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        if not isinstance(d, dict):
            raise ConfigError("fault plan must be a JSON object")
        extra = sorted(set(d) - {"seed", "faults"})
        if extra:
            raise ConfigError(f"unknown fault plan field(s): {extra}")
        raw = d.get("faults", [])
        if not isinstance(raw, list):
            raise ConfigError("fault plan 'faults' must be a list")
        faults = [FaultSpec.from_dict(item) for item in raw]
        return cls(faults=faults, seed=int(d.get("seed", 0)))

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigError(f"cannot read fault plan {path}: {exc}") from None
        return cls.loads(text)

    def digest(self) -> str:
        """Short content hash, part of faulted runs' cache identity."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]
