"""Fault injection for the DSA reproduction.

``repro.faults`` provides the adversarial half of the robustness story:
deterministic, seed-driven fault plans (:mod:`repro.faults.plan`) and the
injector that applies them to a single run (:mod:`repro.faults.injector`).
The campaign layer consumes plans directly (``repro campaign --inject``);
the guarded execution mode of :mod:`repro.systems.setups` is the oracle
that proves injected DSA faults are caught rather than silently absorbed.
"""

from .injector import FaultInjector, InjectionEvent, build_injector
from .plan import (
    ALL_FAULT_KINDS,
    CACHE_CORRUPT_MODES,
    CACHE_FAULT_KINDS,
    DSA_FAULT_KINDS,
    NEON_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "CACHE_CORRUPT_MODES",
    "CACHE_FAULT_KINDS",
    "DSA_FAULT_KINDS",
    "NEON_FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectionEvent",
    "build_injector",
]
