"""Deterministic fault injector: applies a :class:`FaultPlan` to one run.

One injector is built per (plan, run-label) pair — in the worker process,
right before the simulation starts — and hooks into the execution stack at
the points the plan targets:

* the DSA's guarded-verification boundary (``corrupt_check`` /
  ``corrupt_paths``), where lane values, speculated trip counts, cached
  loop templates and conditional verdicts are corrupted *in the vector
  outcome the DSA is about to commit*.  The scalar core's architectural
  results are never touched, which is exactly what makes the guard's
  fallback path testable: a corrupted speculation must be detected and
  rolled back, and the final numbers must still match the scalar
  reference.
* the NEON engine's register file (``neon_lane``), corrupting the
  *architectural* Q registers of statically vectorized systems — those
  runs have no runtime scalar reference, so the corruption must surface as
  a golden-check failure that the campaign harness captures.

All decisions are pure functions of the plan, so re-running the same plan
reproduces the same faults at the same points.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import FaultPlan, FaultSpec


@dataclass
class InjectionEvent:
    """One fault that actually fired."""

    kind: str
    where: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}@{self.where}"


class FaultInjector:
    """Applies the DSA/NEON faults of a plan to one run."""

    #: how many injection events to keep verbatim (the count is unbounded)
    MAX_EVENTS = 32

    def __init__(self, plan: FaultPlan, label: str):
        self.plan = plan
        self.label = label
        self.dsa_faults = plan.dsa_faults_for(label)
        self.neon_faults = plan.neon_faults_for(label)
        self.injections = 0
        self.events: list[InjectionEvent] = []
        self._neon_ops = 0
        self._neon_done: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        """Does this run need an injector at all?"""
        return bool(self.dsa_faults or self.neon_faults)

    @property
    def has_neon_faults(self) -> bool:
        return bool(self.neon_faults)

    def _record(self, kind: str, where: str) -> None:
        self.injections += 1
        if len(self.events) < self.MAX_EVENTS:
            self.events.append(InjectionEvent(kind, where))

    # ------------------------------------------------------------------
    # DSA guarded-verification boundary
    # ------------------------------------------------------------------
    def corrupt_check(self, pc: int, iteration: int, addr: int, expected, stream):
        """Corrupt one (store pc, iteration) vector outcome before it is
        cross-checked against the scalar reference.

        * ``lane``       — perturb the computed value (a stuck result lane);
        * ``trip_count`` — skew the iteration→address mapping by whole
          iterations (a mis-speculated trip count / induction step);
        * ``loop_cache`` — skew the remembered stream base by a sub-element
          byte offset (a corrupted cached template).
        """
        for spec in self.dsa_faults:
            if spec.kind == "lane":
                expected = expected + spec.delta
                self._record("lane", f"pc=0x{pc:x} it={iteration}")
            elif spec.kind == "trip_count":
                gap = stream.gap() or stream.dtype.size
                addr = addr + spec.shift * gap
                self._record("trip_count", f"pc=0x{pc:x} it={iteration}")
            elif spec.kind == "loop_cache":
                addr = addr + max(1, stream.dtype.size // 2)
                self._record("loop_cache", f"pc=0x{pc:x} it={iteration}")
        return addr, expected

    def corrupt_paths(self, by_path: dict, path_templates: dict) -> dict:
        """``verdict`` fault: swap which template two conditional paths are
        believed to have executed (a corrupted vector-map verdict)."""
        if not any(f.kind == "verdict" for f in self.dsa_faults):
            return by_path
        sigs = [s for s in by_path if path_templates.get(s) is not None]
        if len(sigs) < 2:
            return by_path  # nothing to mis-attribute on this loop
        a, b = sigs[0], sigs[1]
        swapped = dict(by_path)
        swapped[a], swapped[b] = by_path[b], by_path[a]
        self._record("verdict", f"paths {len(by_path[a])}<->{len(by_path[b])} iters")
        return swapped

    # ------------------------------------------------------------------
    # architectural NEON lane corruption (static SIMD systems)
    # ------------------------------------------------------------------
    def attach_neon(self, core) -> None:
        core.vector.fault_hook = self.on_neon_op

    def on_neon_op(self, instr, q) -> None:
        """Corrupt a Q-register byte at the ``shift``-th register write."""
        qd = getattr(instr, "qd", None)
        if qd is None:
            return
        self._neon_ops += 1
        for index, spec in enumerate(self.neon_faults):
            target_op = max(1, spec.shift)
            if index in self._neon_done or self._neon_ops != target_op:
                continue
            byte = spec.delta % 16
            q[qd.index][byte] ^= 0xA5
            self._neon_done.add(index)
            self._record("neon_lane", f"q{qd.index} byte {byte} op {self._neon_ops}")

    # ------------------------------------------------------------------
    def summary(self) -> str:
        head = ", ".join(str(e) for e in self.events[:4])
        more = f" (+{self.injections - len(self.events)} more)" if self.injections > len(self.events) else ""
        return f"{self.injections} injection(s): {head}{more}"


def build_injector(plan: FaultPlan | None, label: str) -> FaultInjector | None:
    """An injector for this run, or ``None`` when the plan has nothing
    targeting it (the common case — zero overhead on clean runs)."""
    if plan is None:
        return None
    injector = FaultInjector(plan, label)
    return injector if injector.armed else None
