"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``campaign``     run the (workload × system × DSA-stage) matrix, parallel + cached
``experiments``  regenerate every paper table/figure (or a chosen one)
``run``          run one workload on one or all systems
``workloads``    list the available benchmarks
``asm``          print the lowered assembly of a workload per system
``area``         print the DSA area table (Article 1, Table 3)

Configuration mistakes (unknown workload, experiment, system, ...) print a
one-line error naming the valid choices and exit with status 2 — never a
raw traceback.  A campaign that runs to completion but could not finish
every spec reports each failure by label and exits with status 3.
"""

from __future__ import annotations

import argparse
import json
import sys

from .energy.area import AreaModel
from .errors import ConfigError
from .experiments import ALL_EXPERIMENTS, ResultCache
from .faults import FaultPlan
from .systems.campaign import CampaignRunner, RunSpec, default_matrix
from .systems.metrics import RunMetrics
from .systems.report import ComparisonReport, DSACoverageReport
from .systems.result_cache import ResultDiskCache
from .systems.setups import DSA_STAGES, SYSTEM_NAMES, lower_for
from .workloads import PAPER_WORKLOADS, load


def _progress(done: int, total: int, metrics: RunMetrics) -> None:
    spec = metrics.spec
    stage = f"[{spec['dsa_stage']}]" if spec["system"] == "neon_dsa" else ""
    print(
        f"[{done:>3}/{total}] {spec['workload']}/{spec['system']}{stage} "
        f"{metrics.source} ({metrics.wall_time_s:.2f}s)",
        file=sys.stderr,
    )


def _runner_from(args: argparse.Namespace, progress=None) -> CampaignRunner:
    plan_path = getattr(args, "inject", None)
    return CampaignRunner(
        jobs=getattr(args, "jobs", 1),
        use_cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        progress=progress,
        guard=getattr(args, "guard", False),
        fault_plan=FaultPlan.load(plan_path) if plan_path else None,
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 0),
        backoff=getattr(args, "backoff", 0.5),
        resume=getattr(args, "resume", False),
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.clear_cache:
        removed = ResultDiskCache(args.cache_dir).clear()
        print(f"cleared {removed} cached result(s)", file=sys.stderr)
    specs = default_matrix(
        scale=args.scale,
        workloads=args.workloads,
        systems=args.systems,
        dsa_stages=tuple(args.dsa_stages),
        seed=args.seed,
    )
    runner = _runner_from(args, progress=None if args.json else _progress)
    result = runner.run(specs)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.summary_table())
    for f in result.failures:
        print(
            f"failed: {f.label}: {f.kind}: {f.cause} (after {f.attempts} attempt(s))",
            file=sys.stderr,
        )
    # 3 = the campaign ran to completion but some specs failed; 2 stays
    # reserved for configuration mistakes
    return 3 if result.failures else 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = args.only or list(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: {sorted(ALL_EXPERIMENTS)}")
            return 2
    cache = ResultCache(args.scale, runner=_runner_from(args))
    for name in names:
        exp = ALL_EXPERIMENTS[name](scale=args.scale, cache=cache)
        print(exp.table())
        if args.paper and exp.paper_reference:
            print(f"paper reference: {exp.paper_reference}")
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workload not in PAPER_WORKLOADS:
        raise ConfigError(
            f"unknown workload {args.workload!r}; valid choices: {sorted(PAPER_WORKLOADS)}"
        )
    systems = [args.system] if args.system else list(SYSTEM_NAMES)
    if "arm_original" not in systems:
        systems.append("arm_original")
    runner = _runner_from(args)
    results = {
        system: runner.run_one(
            RunSpec(args.workload, system, dsa_stage=args.dsa_stage, scale=args.scale)
        )
        for system in systems
    }
    report = ComparisonReport(args.workload, results)
    print(report.table())
    dsa_result = results.get("neon_dsa")
    if dsa_result is not None and args.verbose:
        print("\nDSA coverage:")
        print(DSACoverageReport(dsa_result).table())
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in PAPER_WORKLOADS:
        workload = load(name, args.scale)
        print(f"{name:12s} [{workload.dlp_level:6s}] {workload.description}")
        print(f"{'':12s} loops: {workload.loop_note}")
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    if args.workload not in PAPER_WORKLOADS:
        raise ConfigError(
            f"unknown workload {args.workload!r}; valid choices: {sorted(PAPER_WORKLOADS)}"
        )
    workload = load(args.workload, args.scale)
    lowered = lower_for(args.system, workload)
    print(f"; {args.workload} lowered for {args.system}")
    if lowered.vectorized_loops:
        print(f"; statically vectorized loops: {lowered.vectorized_loops}")
    if lowered.guarded_loops:
        print(f"; runtime-versioned (guarded) loops: {lowered.guarded_loops}")
    print(lowered.asm)
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    print(AreaModel().table())
    return 0


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for uncached runs (default: 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache entirely")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache location (default: $REPRO_CACHE_DIR or .repro-cache/results)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic SIMD Assembler reproduction (DATE 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("campaign", help="run the workload × system matrix, parallel + cached")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--workloads", nargs="*", default=None,
                   help="workload ids (default: all seven; micro:<kind> also allowed)")
    p.add_argument("--systems", nargs="*", default=None, choices=SYSTEM_NAMES,
                   help="systems to run (default: all four)")
    p.add_argument("--dsa-stages", nargs="*", default=["full"], choices=tuple(DSA_STAGES),
                   help="DSA feature stages to run for neon_dsa (default: full)")
    p.add_argument("--seed", type=int, default=None, help="input RNG seed override")
    p.add_argument("--json", action="store_true", help="emit the metrics/results JSON record")
    p.add_argument("--clear-cache", action="store_true", help="drop cached results first")
    p.add_argument("--guard", action="store_true",
                   help="guarded DSA execution: verify vector outcomes, fall back to scalar on mismatch")
    p.add_argument("--inject", default=None, metavar="PLAN.json",
                   help="fault plan to inject (see repro.faults; EXPERIMENTS.md has an example)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-run wall-clock budget; timed-out runs are killed and retried/reported")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="extra attempts per failed run (default: 0)")
    p.add_argument("--backoff", type=float, default=0.5, metavar="SECONDS",
                   help="base delay between retries, doubled each attempt (default: 0.5)")
    p.add_argument("--resume", action="store_true",
                   help="serve plan-targeted specs from the disk cache instead of re-faulting them")
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--only", nargs="*", help="experiment ids (default: all)")
    p.add_argument("--paper", action="store_true", help="print paper reference values")
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("run", help="run one workload")
    p.add_argument("workload", help=f"one of {sorted(PAPER_WORKLOADS)}")
    p.add_argument("--system", choices=SYSTEM_NAMES)
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--dsa-stage", default="full", choices=tuple(DSA_STAGES))
    p.add_argument("--guard", action="store_true",
                   help="guarded DSA execution: verify vector outcomes, fall back to scalar on mismatch")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("workloads", help="list benchmarks")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("asm", help="print lowered assembly")
    p.add_argument("workload", help=f"one of {sorted(PAPER_WORKLOADS)}")
    p.add_argument("--system", default="arm_original", choices=SYSTEM_NAMES)
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.set_defaults(func=_cmd_asm)

    p = sub.add_parser("area", help="DSA area table")
    p.set_defaults(func=_cmd_area)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigError, KeyError) as exc:
        # configuration mistakes get a one-line error, not a traceback
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
