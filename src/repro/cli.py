"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``  regenerate every paper table/figure (or a chosen one)
``run``          run one workload on one or all systems
``workloads``    list the available benchmarks
``asm``          print the lowered assembly of a workload per system
``area``         print the DSA area table (Article 1, Table 3)
"""

from __future__ import annotations

import argparse
import sys

from .energy.area import AreaModel
from .experiments import ALL_EXPERIMENTS, ResultCache
from .systems.report import ComparisonReport, DSACoverageReport
from .systems.setups import SYSTEM_NAMES, lower_for, run_system
from .workloads import PAPER_WORKLOADS, load


def _cmd_experiments(args: argparse.Namespace) -> int:
    cache = ResultCache(args.scale)
    names = args.only or list(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: {sorted(ALL_EXPERIMENTS)}")
            return 2
        exp = ALL_EXPERIMENTS[name](scale=args.scale, cache=cache)
        print(exp.table())
        if args.paper and exp.paper_reference:
            print(f"paper reference: {exp.paper_reference}")
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    workload = load(args.workload, args.scale)
    systems = [args.system] if args.system else list(SYSTEM_NAMES)
    results = {}
    for system in systems:
        results[system] = run_system(system, workload, dsa_stage=args.dsa_stage)
    if "arm_original" not in results:
        results["arm_original"] = run_system("arm_original", workload)
    report = ComparisonReport(workload.name, results)
    print(report.table())
    dsa_result = results.get("neon_dsa")
    if dsa_result is not None and args.verbose:
        print("\nDSA coverage:")
        print(DSACoverageReport(dsa_result).table())
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in PAPER_WORKLOADS:
        workload = load(name, args.scale)
        print(f"{name:12s} [{workload.dlp_level:6s}] {workload.description}")
        print(f"{'':12s} loops: {workload.loop_note}")
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    workload = load(args.workload, args.scale)
    lowered = lower_for(args.system, workload)
    print(f"; {args.workload} lowered for {args.system}")
    if lowered.vectorized_loops:
        print(f"; statically vectorized loops: {lowered.vectorized_loops}")
    if lowered.guarded_loops:
        print(f"; runtime-versioned (guarded) loops: {lowered.guarded_loops}")
    print(lowered.asm)
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    print(AreaModel().table())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic SIMD Assembler reproduction (DATE 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--only", nargs="*", help="experiment ids (default: all)")
    p.add_argument("--paper", action="store_true", help="print paper reference values")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("run", help="run one workload")
    p.add_argument("workload", choices=sorted(PAPER_WORKLOADS))
    p.add_argument("--system", choices=SYSTEM_NAMES)
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--dsa-stage", default="full", choices=("original", "extended", "full"))
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("workloads", help="list benchmarks")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("asm", help="print lowered assembly")
    p.add_argument("workload", choices=sorted(PAPER_WORKLOADS))
    p.add_argument("--system", default="arm_original", choices=SYSTEM_NAMES)
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.set_defaults(func=_cmd_asm)

    p = sub.add_parser("area", help="DSA area table")
    p.set_defaults(func=_cmd_area)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
