"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``campaign``     run the (workload × system × DSA-stage) matrix, parallel + cached
``experiments``  regenerate every paper table/figure (or a chosen one)
``run``          run one workload on one or all systems
``bench``        measure simulator throughput (guest MIPS per host second)
``report``       render a saved campaign/bench JSON record as tables
``workloads``    list the available benchmarks
``asm``          print the lowered assembly of a workload per system
``area``         print the DSA area table (Article 1, Table 3)
``trace``        run one spec instrumented; export Chrome tracing / JSONL / Prometheus
``stats``        per-loop-type DSA coverage table (paper loop taxonomy)
``serve``        long-lived crash-safe campaign service (journaled HTTP job API)
``submit``       submit a RunSpec batch to a running service and await verdicts

Configuration mistakes (unknown workload, experiment, system, ...) print a
one-line error naming the valid choices and exit with status 2 — never a
raw traceback.  A campaign that runs to completion but could not finish
every spec reports each failure by label and exits with status 3; a bench
throughput regression against ``--check-baseline`` exits with status 4; a
loop-class coverage deficit under ``stats --gate`` exits with status 5.
"""

from __future__ import annotations

import argparse
import json
import sys

from .energy.area import AreaModel
from .errors import ConfigError
from .experiments import ALL_EXPERIMENTS, ResultCache
from .faults import FaultPlan
from .systems.campaign import CampaignRunner, RunSpec, default_matrix
from .systems.metrics import RunMetrics
from .systems.report import ComparisonReport, DSACoverageReport
from .systems.result_cache import ResultDiskCache
from .systems.setups import DSA_STAGES, SYSTEM_NAMES, lower_for
from .vector import BACKEND_NAMES, VALID_VECTOR_LENGTHS
from .workloads import ALL_WORKLOADS, PAPER_WORKLOADS, load


def _progress(done: int, total: int, metrics: RunMetrics) -> None:
    spec = metrics.spec
    stage = f"[{spec['dsa_stage']}]" if spec["system"] == "neon_dsa" else ""
    backend = spec.get("backend", "neon")
    if backend != "neon":
        stage += f"@{backend}{spec.get('vl', 128)}"
    print(
        f"[{done:>3}/{total}] {spec['workload']}/{spec['system']}{stage} "
        f"{metrics.source} ({metrics.wall_time_s:.2f}s)",
        file=sys.stderr,
    )


def _runner_from(args: argparse.Namespace, progress=None) -> CampaignRunner:
    plan_path = getattr(args, "inject", None)
    return CampaignRunner(
        jobs=getattr(args, "jobs", 1),
        use_cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        progress=progress,
        guard=getattr(args, "guard", False),
        fault_plan=FaultPlan.load(plan_path) if plan_path else None,
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 0),
        backoff=getattr(args, "backoff", 0.5),
        resume=getattr(args, "resume", False),
        observe=getattr(args, "observe", False),
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.clear_cache:
        removed = ResultDiskCache(args.cache_dir).clear()
        print(f"cleared {removed} cached result(s)", file=sys.stderr)
    specs = default_matrix(
        scale=args.scale,
        workloads=args.workloads,
        systems=args.systems,
        dsa_stages=tuple(args.dsa_stages),
        seed=args.seed,
        backend=args.backend,
        vl=args.vl,
    )
    runner = _runner_from(args, progress=None if args.json else _progress)
    result = runner.run(specs)
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.summary_table())
    for f in result.failures:
        print(
            f"failed: {f.label}: {f.kind}: {f.cause} (after {f.attempts} attempt(s))",
            file=sys.stderr,
        )
    # 3 = the campaign ran to completion but some specs failed; 2 stays
    # reserved for configuration mistakes
    return 3 if result.failures else 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = args.only or list(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: {sorted(ALL_EXPERIMENTS)}")
            return 2
    cache = ResultCache(args.scale, runner=_runner_from(args))
    for name in names:
        exp = ALL_EXPERIMENTS[name](scale=args.scale, cache=cache)
        print(exp.table())
        if args.paper and exp.paper_reference:
            print(f"paper reference: {exp.paper_reference}")
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workload not in ALL_WORKLOADS:
        raise ConfigError(
            f"unknown workload {args.workload!r}; valid choices: {sorted(ALL_WORKLOADS)}"
        )
    systems = [args.system] if args.system else list(SYSTEM_NAMES)
    if "arm_original" not in systems:
        systems.append("arm_original")
    runner = _runner_from(args)
    results = {
        system: runner.run_one(
            RunSpec(args.workload, system, dsa_stage=args.dsa_stage, scale=args.scale)
        )
        for system in systems
    }
    report = ComparisonReport(args.workload, results)
    print(report.table())
    dsa_result = results.get("neon_dsa")
    if dsa_result is not None and args.verbose:
        print("\nDSA coverage:")
        print(DSACoverageReport(dsa_result).table())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .systems.bench import (
        DEFAULT_WORKLOADS,
        check_baseline,
        load_baseline,
        run_bench,
    )

    def progress(label: str) -> None:
        print(f"bench: {label}", file=sys.stderr)

    report = run_bench(
        scale=args.scale,
        repeats=args.repeats,
        workloads=args.workloads or DEFAULT_WORKLOADS,
        systems=args.systems,
        compare_legacy=args.compare_legacy,
        quick=args.quick,
        progress=None if args.json else progress,
    )
    payload = report.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.table())
    if args.check_baseline:
        problems = check_baseline(
            report, load_baseline(args.check_baseline), tolerance=args.tolerance
        )
        for problem in problems:
            print(f"regression: {problem}", file=sys.stderr)
        if problems:
            return 4  # throughput regression, distinct from config (2) / campaign (3)
        print(
            f"throughput within {args.tolerance:.0%} of baseline "
            f"({report.aggregate_mips:.2f} MIPS)",
            file=sys.stderr,
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with open(args.record, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        raise ConfigError(f"no such record: {args.record}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{args.record} is not valid JSON: {exc}") from None

    if "bench_version" in payload:  # a repro bench record
        header = ["workload", "system", "instructions", "host_s", "mips"]
        rows = [
            [r["workload"], r["system"], str(r["instructions"]),
             f"{r['host_seconds']:.3f}", f"{r['guest_mips']:.2f}"]
            for r in payload.get("runs", [])
        ]
        aggregate = payload.get("aggregate", {})
        tail = (
            f"aggregate: {aggregate.get('instructions', 0)} guest instructions = "
            f"{aggregate.get('guest_mips', 0.0):.2f} MIPS"
        )
    elif "campaign" in payload:  # a repro campaign --json record
        header = ["workload", "system", "stage", "cycles", "source", "wall_s", "host_s", "mips"]
        rows = []
        for m in payload.get("runs", []):
            spec = m["spec"]
            live = not m.get("cache_hit", False)
            rows.append([
                spec["workload"], spec["system"], spec["dsa_stage"], str(m["cycles"]),
                m["source"], f"{m['wall_time_s']:.3f}",
                f"{m.get('host_seconds', 0.0):.3f}" if live else "-",
                f"{m.get('guest_mips', 0.0):.2f}" if live else "-",
            ])
        c = payload["campaign"]
        tail = (
            f"{c.get('total_runs', 0)} runs: {c.get('cache_hits', 0)} from cache, "
            f"{c.get('computed', 0)} computed in {c.get('wall_time_s', 0.0):.2f}s"
        )
        worn = {k: v for k, v in (c.get("degradation") or {}).items() if v}
        if worn:
            tail += "\ndegradation: " + ", ".join(
                f"{k.replace('_', ' ')}={v}" for k, v in sorted(worn.items())
            )
    else:
        raise ConfigError(
            f"{args.record} is neither a campaign record nor a bench record"
        )
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    print(tail)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .observe import (
        Observer,
        write_chrome_trace,
        write_jsonl,
        write_prometheus,
    )
    from .systems.campaign import execute_spec

    spec = RunSpec(
        args.workload, args.system,
        dsa_stage=args.dsa_stage, scale=args.scale, seed=args.seed,
    )
    observer = Observer()
    result = execute_spec(spec, guard=args.guard, observer=observer)
    safe = args.workload.replace(":", "_")
    out = args.output or f"{safe}_{args.system}.trace.json"
    write_chrome_trace(observer, out, process_name=spec.label)
    print(f"wrote {out} ({len(observer.events)} events, "
          f"{len(observer.spans)} span(s)) — load it in chrome://tracing",
          file=sys.stderr)
    if args.jsonl:
        write_jsonl(observer, args.jsonl)
        print(f"wrote {args.jsonl}", file=sys.stderr)
    if args.prom:
        write_prometheus(
            observer, args.prom,
            labels={"workload": spec.workload, "system": spec.system},
        )
        print(f"wrote {args.prom}", file=sys.stderr)
    profile = observer.profile()
    print(f"{spec.label}: {result.cycles} cycles, {result.instructions} instructions")
    for kind, count in sorted(profile.events.items()):
        print(f"  {kind:18s} {count}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .observe import LoopCoverageReport, PAPER_LOOP_CLASSES
    from .systems.campaign import MICRO_PREFIX
    from .workloads.coverage import evaluate_gate

    # the gate is static (classifier over the registered kernels' IR): it
    # needs no simulation, so --gate alone is a milliseconds-fast CI step
    gate = evaluate_gate(required=args.required)
    if args.gate:
        if args.json:
            print(json.dumps(gate.to_dict(), indent=2, sort_keys=True))
        else:
            print(gate.table())
        return 0 if gate.passed else 5

    runner = _runner_from(args, progress=None if args.json else _progress)
    # the NEON backend is fixed at VL=128; --vl only widens the scalable one
    specs_by_backend = {
        backend: [
            RunSpec(
                f"{MICRO_PREFIX}{kind}", "neon_dsa", args.dsa_stage, args.scale,
                backend=backend, vl=128 if backend == "neon" else args.vl,
            )
            for kind in PAPER_LOOP_CLASSES
        ]
        for backend in dict.fromkeys(args.backends)
    }
    outcome = runner.run([s for specs in specs_by_backend.values() for s in specs])
    if outcome.failures:
        for f in outcome.failures:
            print(f"failed: {f.label}: {f.kind}: {f.cause}", file=sys.stderr)
        return 3
    report = LoopCoverageReport.merged([
        LoopCoverageReport.from_results({
            spec.workload[len(MICRO_PREFIX):]: outcome.result_for(spec)
            for spec in specs
        })
        for specs in specs_by_backend.values()
    ])
    degradation = {k: v for k, v in outcome.degradation.items() if v}
    # where the host simulator actually spent its retirements, summed over
    # the live runs of this invocation (cache hits did no simulation and
    # therefore contribute nothing)
    tier_residency: dict[str, int] = {}
    for m in outcome.metrics:
        for tier, count in (m.tier_counts or {}).items():
            tier_residency[tier] = tier_residency.get(tier, 0) + count
    if args.json:
        record = report.to_dict()
        record["degradation"] = outcome.degradation
        record["tier_residency"] = tier_residency
        record["coverage_gate"] = gate.to_dict()
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(report.table())
        print(
            "coverage gate: " + ("PASS" if gate.passed else "FAIL")
            + " (details: repro stats --gate)"
        )
        total = sum(tier_residency.values())
        if total:
            print("tier residency: " + ", ".join(
                f"{tier}={count} ({count / total:.1%})"
                for tier, count in sorted(tier_residency.items(), key=lambda kv: -kv[1])
            ))
        if degradation:
            print("degradation: " + ", ".join(
                f"{k.replace('_', ' ')}={v}" for k, v in sorted(degradation.items())
            ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .observe import Observer
    from .observe.events import EventKind
    from .systems.service import (
        AdmissionConfig,
        CampaignService,
        JobJournal,
        JobStore,
        Supervisor,
        SupervisorConfig,
    )

    plan = FaultPlan.load(args.inject) if args.inject else None

    async def serve() -> int:
        journal = JobJournal(args.journal)
        store = JobStore(journal)
        recovered = store.recover()
        observer = Observer()
        for job in recovered:
            observer.emit(EventKind.JOB_RECOVERED, job=job.job_id)
        supervisor = Supervisor(
            store,
            SupervisorConfig(
                jobs=args.jobs,
                timeout=args.timeout,
                retries=args.retries,
                backoff=args.backoff,
                jitter=args.jitter,
                quarantine_threshold=args.quarantine_threshold,
                drain_grace=args.drain_grace,
            ),
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            cache_max_bytes=args.cache_budget,
            guard=args.guard,
            fault_plan=plan,
            observe=args.observe,
            observer=observer,
        )
        service = CampaignService(
            store, supervisor,
            AdmissionConfig(max_queue=args.max_queue, per_client_limit=args.per_client),
            observer=observer,
        )
        host, port = await service.start(args.host, args.port)

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        import signal
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        # the readiness line the smoke tests and operators wait for
        print(
            f"serving on {host}:{port} (journal {args.journal}, "
            f"{len(recovered)} job(s) recovered)",
            file=sys.stderr, flush=True,
        )
        run_task = asyncio.create_task(supervisor.run())
        await stop.wait()
        in_flight = await supervisor.drain()
        await service.stop()
        run_task.cancel()
        journal.close()
        print(
            f"drained ({in_flight} job(s) were in flight; interrupted jobs "
            f"resume from the journal on the next start)",
            file=sys.stderr,
        )
        return 0

    return asyncio.run(serve())


def _parse_service_url(url: str) -> tuple[str, int]:
    from urllib.parse import urlparse

    parsed = urlparse(url if "//" in url else f"http://{url}")
    if not parsed.hostname:
        raise ConfigError(f"cannot parse service URL {url!r}")
    return parsed.hostname, parsed.port or 8321


def _cmd_submit(args: argparse.Namespace) -> int:
    from .systems.service import ServiceClient, ServiceUnavailable

    host, port = _parse_service_url(args.url)
    client = ServiceClient(host, port)
    try:
        client.wait_ready(timeout=args.connect_timeout)
        if args.await_jobs:
            with open(args.await_jobs, "r", encoding="utf-8") as fh:
                job_ids = json.load(fh)["jobs"]
            print(f"awaiting {len(job_ids)} previously submitted job(s)", file=sys.stderr)
        else:
            specs = [
                spec.to_dict()
                for spec in default_matrix(
                    scale=args.scale,
                    workloads=args.workloads,
                    systems=args.systems,
                    dsa_stages=tuple(args.dsa_stages),
                    seed=args.seed,
                    backend=args.backend,
                    vl=args.vl,
                )
            ]
            accepted = client.submit(specs, client=args.client)
            job_ids = accepted["jobs"]
            print(
                f"submitted batch {accepted['batch']}: {len(job_ids)} job(s)",
                file=sys.stderr,
            )
            if args.ids_out:
                with open(args.ids_out, "w", encoding="utf-8") as fh:
                    json.dump({"batch": accepted["batch"], "jobs": job_ids}, fh)
                    fh.write("\n")
        if args.no_wait:
            for job_id in job_ids:
                print(job_id)
            return 0
        records = client.wait_jobs(job_ids, timeout=args.wait_timeout)
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3

    header = ["job", "label", "state", "source", "cycles"]
    rows = []
    failed = 0
    for job_id in job_ids:
        record = records[job_id]
        done = record["state"] == "done"
        if not done:
            failed += 1
        rows.append([
            job_id,
            f"{record['spec']['workload']}/{record['spec']['system']}",
            record["state"],
            record.get("source") or "-",
            str(record["result"]["cycles"]) if done else "-",
        ])
    widths = [max(len(header[i]), max((len(r[i]) for r in rows), default=0))
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    if failed:
        for job_id in job_ids:
            record = records[job_id]
            if record["state"] != "done":
                error = record.get("error") or {}
                print(
                    f"failed: {job_id}: {error.get('kind')}: {error.get('cause')}",
                    file=sys.stderr,
                )
        return 3
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    # paper benchmarks first (registry order), then the streaming family
    for name in ALL_WORKLOADS:
        workload = load(name, args.scale)
        family = "paper" if name in PAPER_WORKLOADS else "streaming"
        print(f"{name:16s} [{workload.dlp_level:6s}|{family:9s}] {workload.description}")
        print(f"{'':16s} loops: {workload.loop_note}")
        if workload.loop_classes:
            print(f"{'':16s} classes: {', '.join(workload.loop_classes)}")
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    if args.workload not in ALL_WORKLOADS:
        raise ConfigError(
            f"unknown workload {args.workload!r}; valid choices: {sorted(ALL_WORKLOADS)}"
        )
    workload = load(args.workload, args.scale)
    lowered = lower_for(args.system, workload)
    print(f"; {args.workload} lowered for {args.system}")
    if lowered.vectorized_loops:
        print(f"; statically vectorized loops: {lowered.vectorized_loops}")
    if lowered.guarded_loops:
        print(f"; runtime-versioned (guarded) loops: {lowered.guarded_loops}")
    print(lowered.asm)
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    print(AreaModel().table())
    return 0


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for uncached runs (default: 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache entirely")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache location (default: $REPRO_CACHE_DIR or .repro-cache/results)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic SIMD Assembler reproduction (DATE 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("campaign", help="run the workload × system matrix, parallel + cached")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--workloads", nargs="*", default=None,
                   help="workload ids (default: all seven; micro:<kind> also allowed)")
    p.add_argument("--systems", nargs="*", default=None, choices=SYSTEM_NAMES,
                   help="systems to run (default: all four)")
    p.add_argument("--dsa-stages", nargs="*", default=["full"], choices=tuple(DSA_STAGES),
                   help="DSA feature stages to run for neon_dsa (default: full)")
    p.add_argument("--seed", type=int, default=None, help="input RNG seed override")
    p.add_argument("--backend", default="neon", choices=BACKEND_NAMES,
                   help="vector backend for every run (default: neon)")
    p.add_argument("--vl", type=int, default=128, choices=VALID_VECTOR_LENGTHS,
                   help="vector length in bits for the scalable backend; a VL wider "
                        "than 128 restricts the matrix to arm_original + neon_dsa "
                        "(default: 128)")
    p.add_argument("--json", action="store_true", help="emit the metrics/results JSON record")
    p.add_argument("--clear-cache", action="store_true", help="drop cached results first")
    p.add_argument("--guard", action="store_true",
                   help="guarded DSA execution: verify vector outcomes, fall back to scalar on mismatch")
    p.add_argument("--inject", default=None, metavar="PLAN.json",
                   help="fault plan to inject (see repro.faults; EXPERIMENTS.md has an example)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-run wall-clock budget; timed-out runs are killed and retried/reported")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="extra attempts per failed run (default: 0)")
    p.add_argument("--backoff", type=float, default=0.5, metavar="SECONDS",
                   help="base delay between retries, doubled each attempt (default: 0.5)")
    p.add_argument("--resume", action="store_true",
                   help="serve plan-targeted specs from the disk cache instead of re-faulting them")
    p.add_argument("--observe", action="store_true",
                   help="attach a per-run observer; computed runs carry a profile in the JSON record")
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--only", nargs="*", help="experiment ids (default: all)")
    p.add_argument("--paper", action="store_true", help="print paper reference values")
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("run", help="run one workload")
    p.add_argument("workload", help=f"one of {sorted(PAPER_WORKLOADS)}")
    p.add_argument("--system", choices=SYSTEM_NAMES)
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--dsa-stage", default="full", choices=tuple(DSA_STAGES))
    p.add_argument("--guard", action="store_true",
                   help="guarded DSA execution: verify vector outcomes, fall back to scalar on mismatch")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("bench", help="measure simulator throughput (guest MIPS)")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--workloads", nargs="*", default=None,
                   help="workload ids to time (default: matmul rgb_gray bitcount)")
    p.add_argument("--systems", nargs="*", default=None, choices=SYSTEM_NAMES,
                   help="systems to time (default: all four)")
    p.add_argument("--repeats", type=int, default=3, metavar="N",
                   help="timing repeats per spec, best-of-N (default: 3)")
    p.add_argument("--quick", action="store_true",
                   help="small fixed matrix, one repeat (CI smoke configuration)")
    p.add_argument("--compare-legacy", action="store_true",
                   help="also time the legacy interpreter (predecode=False) and report speedups")
    p.add_argument("-o", "--output", default=None, metavar="FILE.json",
                   help="write the JSON report (e.g. BENCH_sim_throughput.json)")
    p.add_argument("--json", action="store_true", help="print the JSON report to stdout")
    p.add_argument("--check-baseline", default=None, metavar="BASELINE.json",
                   help="compare against a saved report; exit 4 on throughput regression")
    p.add_argument("--tolerance", type=float, default=0.25, metavar="FRACTION",
                   help="allowed aggregate slowdown vs baseline (default: 0.25)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("report", help="render a saved campaign/bench JSON record")
    p.add_argument("record", help="path to a 'repro campaign --json' or 'repro bench' record")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("workloads", help="list benchmarks")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("asm", help="print lowered assembly")
    p.add_argument("workload", help=f"one of {sorted(PAPER_WORKLOADS)}")
    p.add_argument("--system", default="arm_original", choices=SYSTEM_NAMES)
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.set_defaults(func=_cmd_asm)

    p = sub.add_parser(
        "trace",
        help="run one spec with the observer attached and export its trace",
    )
    p.add_argument("workload",
                   help=f"one of {sorted(PAPER_WORKLOADS)} or micro:<kind>")
    p.add_argument("system", choices=SYSTEM_NAMES)
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--dsa-stage", default="full", choices=tuple(DSA_STAGES))
    p.add_argument("--seed", type=int, default=None, help="input RNG seed override")
    p.add_argument("--guard", action="store_true",
                   help="guarded DSA execution (guard fallbacks show up as events)")
    p.add_argument("-o", "--output", default=None, metavar="TRACE.json",
                   help="Chrome tracing output path (default: <workload>_<system>.trace.json)")
    p.add_argument("--jsonl", default=None, metavar="FILE.jsonl",
                   help="also write the raw event log as JSON lines")
    p.add_argument("--prom", default=None, metavar="FILE.prom",
                   help="also write Prometheus textfile counters")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "stats",
        help="per-loop-type DSA coverage table over the paper's loop taxonomy",
    )
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--dsa-stage", default="full", choices=tuple(DSA_STAGES))
    p.add_argument("--backends", nargs="*", default=["neon"], choices=BACKEND_NAMES,
                   help="vector backends to cover, one table block each (default: neon)")
    p.add_argument("--vl", type=int, default=128, choices=VALID_VECTOR_LENGTHS,
                   help="vector length in bits for the scalable backend (default: 128)")
    p.add_argument("--json", action="store_true", help="emit the coverage record as JSON")
    p.add_argument("--gate", action="store_true",
                   help="evaluate only the static loop-class coverage gate; "
                        "exit 5 unless every paper loop class is exercised by "
                        "enough registered workloads")
    p.add_argument("--required", type=int, default=2, metavar="N",
                   help="workloads required per loop class for the gate (default: 2)")
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("area", help="DSA area table")
    p.set_defaults(func=_cmd_area)

    p = sub.add_parser(
        "serve",
        help="long-lived campaign service: journaled job store + supervised workers",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321)
    p.add_argument("--journal", default=".repro-cache/service-journal.jsonl",
                   metavar="FILE.jsonl",
                   help="write-ahead job journal; replayed on startup to resume after a crash")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="concurrent worker processes (default: 2)")
    p.add_argument("--timeout", type=float, default=120.0, metavar="SECONDS",
                   help="per-attempt worker heartbeat deadline (default: 120)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="extra attempts per job (default: 2)")
    p.add_argument("--backoff", type=float, default=0.5, metavar="SECONDS",
                   help="base retry delay, doubled each attempt (default: 0.5)")
    p.add_argument("--jitter", type=float, default=0.25, metavar="FRACTION",
                   help="random extra retry delay fraction (default: 0.25)")
    p.add_argument("--quarantine-threshold", type=int, default=3, metavar="N",
                   help="consecutive worker deaths before a (workload, system) cell is quarantined")
    p.add_argument("--drain-grace", type=float, default=10.0, metavar="SECONDS",
                   help="SIGTERM drain: how long in-flight jobs may finish (default: 10)")
    p.add_argument("--max-queue", type=int, default=256, metavar="N",
                   help="queued-job bound before submissions get 429 (default: 256)")
    p.add_argument("--per-client", type=int, default=64, metavar="N",
                   help="non-terminal jobs one client may hold (default: 64)")
    p.add_argument("--cache-budget", type=int, default=None, metavar="BYTES",
                   help="LRU size budget for the result cache (default: unbounded)")
    p.add_argument("--guard", action="store_true",
                   help="guarded DSA execution for all served runs")
    p.add_argument("--inject", default=None, metavar="PLAN.json",
                   help="fault plan applied to served runs (the chaos suite's hook)")
    p.add_argument("--observe", action="store_true",
                   help="attach per-run observers; profiles ride on job records")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the on-disk result cache entirely")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache location (default: $REPRO_CACHE_DIR or .repro-cache/results)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a workload × system batch to a running campaign service",
    )
    p.add_argument("--url", default="http://127.0.0.1:8321",
                   help="service base URL (default: http://127.0.0.1:8321)")
    p.add_argument("--scale", default="test", choices=("test", "bench", "full"))
    p.add_argument("--workloads", nargs="*", default=None,
                   help="workload ids (default: all seven; micro:<kind> also allowed)")
    p.add_argument("--systems", nargs="*", default=None, choices=SYSTEM_NAMES,
                   help="systems to run (default: all four)")
    p.add_argument("--dsa-stages", nargs="*", default=["full"], choices=tuple(DSA_STAGES))
    p.add_argument("--seed", type=int, default=None, help="input RNG seed override")
    p.add_argument("--backend", default="neon", choices=BACKEND_NAMES,
                   help="vector backend for every submitted run (default: neon)")
    p.add_argument("--vl", type=int, default=128, choices=VALID_VECTOR_LENGTHS,
                   help="vector length in bits for the scalable backend (default: 128)")
    p.add_argument("--client", default="cli", help="client id for admission accounting")
    p.add_argument("--no-wait", action="store_true",
                   help="print job ids and exit without polling for completion")
    p.add_argument("--ids-out", default=None, metavar="FILE.json",
                   help="write the accepted batch/job ids (pairs with --await-jobs)")
    p.add_argument("--await-jobs", default=None, metavar="FILE.json",
                   help="skip submission; await the job ids recorded by --ids-out "
                        "(crash-recovery workflows)")
    p.add_argument("--connect-timeout", type=float, default=10.0, metavar="SECONDS",
                   help="how long to wait for the service to come up (default: 10)")
    p.add_argument("--wait-timeout", type=float, default=600.0, metavar="SECONDS",
                   help="how long to wait for terminal job states (default: 600)")
    p.set_defaults(func=_cmd_submit)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigError, KeyError) as exc:
        # configuration mistakes get a one-line error, not a traceback
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
