"""The evaluated systems (paper Methodology, Table 4).

All four share the identical core and memory hierarchy; they differ only in
how DLP is exploited:

* ``arm_original``  — plain scalar execution, NEON unused;
* ``neon_autovec``  — binary produced by the auto-vectorizing compiler;
* ``neon_handvec``  — binary written against the NEON intrinsics library;
* ``neon_dsa``      — the scalar binary plus the DSA at runtime, in the
  three feature stages the articles describe (original / extended / full).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from ..compiler.lowering import LoweredKernel, lower
from ..compiler.vectorize import AutoVectorizer, HandVectorizer
from ..cpu.config import CPUConfig, DEFAULT_CPU_CONFIG
from ..dsa.config import (
    DSAConfig,
    EXTENDED_DSA_CONFIG,
    FULL_DSA_CONFIG,
    ORIGINAL_DSA_CONFIG,
)
from ..dsa.engine import DSAStats, DynamicSIMDAssembler
from ..energy.model import EnergyModel, EnergyReport
from ..errors import ConfigError
from ..workloads.base import Workload
from .runner import KernelRun, execute_kernel

#: canonical system names, in the order the paper's figures use
SYSTEM_NAMES = ("arm_original", "neon_autovec", "neon_handvec", "neon_dsa")

#: DSA feature stages (Articles 1-3)
DSA_STAGES = {
    "original": ORIGINAL_DSA_CONFIG,
    "extended": EXTENDED_DSA_CONFIG,
    "full": FULL_DSA_CONFIG,
}


@dataclass
class SystemResult:
    """Everything one (system, workload) run produces."""

    system: str
    workload: str
    run: KernelRun
    energy: EnergyReport
    dsa_stats: DSAStats | None = None
    lowered: LoweredKernel | None = None

    @property
    def cycles(self) -> int:
        return self.run.result.cycles

    @property
    def seconds(self) -> float:
        return self.run.result.seconds

    def improvement_over(self, baseline: "SystemResult") -> float:
        """Performance improvement as the paper reports it:
        ``baseline_time / this_time - 1`` (0.31 = 31% faster)."""
        return baseline.cycles / self.cycles - 1.0

    def energy_savings_over(self, baseline: "SystemResult") -> float:
        return self.energy.savings_over(baseline.energy)


def lower_for(system: str, workload: Workload) -> LoweredKernel:
    """Produce the binary each system runs."""
    if system in ("arm_original", "neon_dsa"):
        return lower(workload.kernel)  # the DSA works on the plain binary
    if system == "neon_autovec":
        return lower(workload.kernel, vectorizer=AutoVectorizer())
    if system == "neon_handvec":
        return lower(workload.kernel, vectorizer=HandVectorizer())
    raise ConfigError(f"unknown system {system!r}; pick one of {SYSTEM_NAMES}")


def run_system(
    system: str,
    workload: Workload,
    cpu_config: CPUConfig | None = None,
    dsa_config: DSAConfig | None = None,
    dsa_stage: str = "full",
    check_golden: bool = True,
    max_instructions: int = 100_000_000,
    guard: bool = False,
    injector=None,
    max_seconds: float | None = None,
    observer=None,
    backend: str | None = None,
    vl: int | None = None,
) -> SystemResult:
    """Run one workload on one system and (optionally) verify its outputs.

    ``guard`` turns on the DSA's guarded execution: vector outcomes are
    cross-checked against the scalar reference and mis-speculation rolls
    back to scalar instead of raising (``dsa_stats.fallbacks`` counts the
    rollbacks).  ``injector`` attaches a :class:`repro.faults.FaultInjector`
    corrupting speculative DSA state (``neon_dsa``) or architectural NEON
    lanes (static SIMD systems).  ``max_seconds`` bounds the run's wall
    clock (see :func:`repro.systems.runner.execute_kernel`).  ``observer``
    attaches a :class:`repro.observe.Observer` to the core, its vector
    engine and (on ``neon_dsa``) the DSA; observation never changes the
    result.  ``backend``/``vl`` select the vector engine (see
    :func:`repro.vector.get_backend`), overriding what ``cpu_config``
    carries; the static NEON binaries (``neon_autovec``/``neon_handvec``)
    assume 128-bit registers, so a wider VL is rejected for them.
    """
    cpu_config = cpu_config or DEFAULT_CPU_CONFIG
    if backend is not None or vl is not None:
        cpu_config = dc_replace(
            cpu_config,
            vector_backend=backend if backend is not None else cpu_config.vector_backend,
            vector_length=vl if vl is not None else cpu_config.vector_length,
        )
    if cpu_config.vector_length != 128 and system in ("neon_autovec", "neon_handvec"):
        raise ConfigError(
            f"system {system!r} executes a static 128-bit NEON binary and "
            f"cannot run at VL={cpu_config.vector_length}; only arm_original "
            f"and neon_dsa (timing-only bursts) support wider vectors"
        )
    lowered = lower_for(system, workload)
    dsa = None
    attach = None
    if system == "neon_dsa":
        dsa = DynamicSIMDAssembler(
            dsa_config or DSA_STAGES[dsa_stage],
            guard=guard, injector=injector, observer=observer,
        )
        attach = dsa.attach
    elif injector is not None and injector.has_neon_faults:
        attach = injector.attach_neon
    if observer is not None:
        inner_attach = attach

        def observed_attach(core):
            core.observer = observer
            core.vector.observer = observer
            if inner_attach is not None:
                inner_attach(core)

        attach = observed_attach
    run = execute_kernel(
        lowered,
        workload.fresh_args(),
        config=cpu_config,
        attach=attach,
        max_instructions=max_instructions,
        max_seconds=max_seconds,
    )
    if dsa is not None and injector is not None:
        dsa.stats.injected_faults = injector.injections
    if check_golden:
        expected = workload.expected()
        for name in workload.output_arrays:
            got = run.array(name)
            np.testing.assert_array_equal(
                got, expected[name], err_msg=f"{system}/{workload.name}/{name}"
            )
    energy = EnergyModel().report(run.core, run.result, dsa=dsa)
    return SystemResult(
        system=system,
        workload=workload.name,
        run=run,
        energy=energy,
        dsa_stats=dsa.stats if dsa else None,
        lowered=lowered,
    )


def run_all_systems(
    workload: Workload,
    systems: tuple[str, ...] = SYSTEM_NAMES,
    dsa_stage: str = "full",
    **kwargs,
) -> dict[str, SystemResult]:
    return {
        system: run_system(system, workload, dsa_stage=dsa_stage, **kwargs)
        for system in systems
    }
