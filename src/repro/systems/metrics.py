"""Serializable run records: what the campaign layer caches and reports.

:class:`RunResult` is the deterministic, dataclass → dict round-trippable
summary of one (workload, system) simulation — everything the experiment
tables and figures consume, none of the live simulator state.  It is the
unit that crosses the process boundary and lives in the on-disk result
cache, so it must serialize identically no matter which process produced
it.

:class:`RunMetrics` wraps one campaign run with the observability fields
that must *not* participate in result identity (cache hit/miss, wall
time): two campaigns that produce byte-identical RunResults may still
differ in how long they took and where the results came from.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, field, fields

from ..dsa.engine import DSAStats
from ..energy.model import EnergyReport
from .setups import SystemResult

#: DSAStats fields that are Counters (plain dicts on the wire)
_COUNTER_FIELDS = (
    "verdicts",
    "vectorized_invocations",
    "stage_activations",
    "leftover_used",
    "fallback_causes",
)


@dataclass
class RunResult:
    """Deterministically serializable summary of one simulation run."""

    workload: str
    system: str
    dsa_stage: str              # "-" when the system has no DSA attached
    scale: str
    seed: int | None
    cycles: int
    instructions: int
    seconds: float
    icounts: dict[str, int] = field(default_factory=dict)
    hierarchy_stats: dict[str, float] = field(default_factory=dict)
    timing_stats: dict[str, int] = field(default_factory=dict)
    energy: EnergyReport = field(default_factory=EnergyReport)
    dsa_stats: DSAStats | None = None
    backend: str = "neon"       # vector backend the run executed on
    vl: int = 128               # vector length in bits
    #: host-side execution-tier residency (legacy/traced/fast/compiled/
    #: bulk/covered → instructions retired there).  Pure observability:
    #: two byte-identical runs may retire the same work in different
    #: tiers (e.g. covered_execution on/off), so this never serializes
    #: with the result, is excluded from equality, and rides live objects
    #: only — it is re-homed onto :class:`RunMetrics` for reporting.
    tier_counts: dict[str, int] = field(default_factory=dict, compare=False, repr=False)

    # -- the quantities the experiments derive -------------------------
    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def improvement_over(self, baseline: "RunResult") -> float:
        """Performance improvement as the paper reports it:
        ``baseline_time / this_time - 1`` (0.31 = 31% faster)."""
        return baseline.cycles / self.cycles - 1.0

    def energy_savings_over(self, baseline: "RunResult") -> float:
        return self.energy.savings_over(baseline.energy)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["icounts"] = dict(self.icounts)
        d["hierarchy_stats"] = dict(self.hierarchy_stats)
        d["timing_stats"] = dict(self.timing_stats)
        d["energy"] = asdict(self.energy)
        if self.dsa_stats is not None:
            # not dataclasses.asdict: it would rebuild each Counter from an
            # items-iterable and count the (key, value) pairs themselves
            stats = {f.name: getattr(self.dsa_stats, f.name) for f in fields(self.dsa_stats)}
            for name in _COUNTER_FIELDS:
                stats[name] = dict(stats[name])
            d["dsa_stats"] = stats
        # the default backend (neon, 128) is omitted so pre-backend result
        # records, journals and cache payloads stay byte-identical
        if self.backend == "neon" and self.vl == 128:
            del d["backend"], d["vl"]
        del d["tier_counts"]  # observability, never result identity
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunResult":
        d = dict(d)
        d.pop("tier_counts", None)  # never stored, tolerate hand-built dicts
        d["energy"] = EnergyReport(**d["energy"])
        if d.get("dsa_stats") is not None:
            stats = dict(d["dsa_stats"])
            for name in _COUNTER_FIELDS:
                stats[name] = Counter(stats[name])
            d["dsa_stats"] = DSAStats(**stats)
        return cls(**d)


def summarize_run(
    result: SystemResult,
    scale: str,
    seed: int | None,
    dsa_stage: str,
    backend: str = "neon",
    vl: int = 128,
) -> RunResult:
    """Collapse a live :class:`SystemResult` into its serializable record."""
    core_result = result.run.result
    timing = result.run.core.timing.stats
    return RunResult(
        workload=result.workload,
        system=result.system,
        dsa_stage=dsa_stage,
        scale=scale,
        seed=seed,
        cycles=core_result.cycles,
        instructions=core_result.instructions,
        seconds=core_result.seconds,
        icounts=dict(core_result.icounts),
        hierarchy_stats=dict(core_result.hierarchy_stats),
        timing_stats=asdict(timing),
        energy=result.energy,
        dsa_stats=result.dsa_stats,
        backend=backend,
        vl=vl,
        tier_counts=dict(core_result.tier_counts),
    )


@dataclass
class RunMetrics:
    """One campaign run plus the observability that is not part of result
    identity: where the result came from and what it cost to obtain."""

    spec: dict                       # RunSpec.to_dict()
    source: str                      # "computed" | "disk-cache" | "memory"
    wall_time_s: float
    cycles: int
    instructions: int
    stall_breakdown: dict[str, int]  # TimingStats counters
    dsa_counters: dict | None        # DSA stage activations, if a DSA ran
    fallbacks: int = 0               # guarded-execution scalar rollbacks
    host_seconds: float = 0.0        # host compute time; 0.0 for cache hits
    guest_mips: float = 0.0          # guest MIPS of a live run; 0.0 for hits
    fallback_causes: dict | None = None  # guard-rollback causes, if a DSA ran
    profile: dict | None = None      # RunProfile.to_dict() when observed live
    #: execution-tier residency of a live run (instructions retired per
    #: tier: legacy/traced/fast/compiled/bulk/covered); None for cache
    #: hits, which did no simulation
    tier_counts: dict | None = None

    @property
    def cache_hit(self) -> bool:
        return self.source != "computed"

    @classmethod
    def for_run(
        cls,
        spec_dict: dict,
        result: RunResult,
        source: str,
        wall_time_s: float,
        profile: dict | None = None,
        tier_counts: dict | None = None,
    ) -> "RunMetrics":
        # Host-side throughput is observability, never result identity: a
        # cache hit did no simulation, so it reports 0.0 — which is also
        # what makes hits distinguishable from live runs in reports.
        host_seconds = wall_time_s if source == "computed" else 0.0
        guest_mips = (
            result.instructions / host_seconds / 1e6 if host_seconds > 0 else 0.0
        )
        return cls(
            spec=spec_dict,
            source=source,
            wall_time_s=wall_time_s,
            cycles=result.cycles,
            instructions=result.instructions,
            stall_breakdown=dict(result.timing_stats),
            dsa_counters=dict(result.dsa_stats.stage_activations) if result.dsa_stats else None,
            fallbacks=result.dsa_stats.fallbacks if result.dsa_stats else 0,
            host_seconds=host_seconds,
            guest_mips=guest_mips,
            fallback_causes=dict(result.dsa_stats.fallback_causes) if result.dsa_stats else None,
            profile=profile,
            tier_counts=tier_counts if tier_counts else (
                dict(result.tier_counts) if result.tier_counts else None
            ),
        )

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "source": self.source,
            "cache_hit": self.cache_hit,
            "wall_time_s": round(self.wall_time_s, 6),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stall_breakdown": self.stall_breakdown,
            "dsa_counters": self.dsa_counters,
            "fallbacks": self.fallbacks,
            "host_seconds": round(self.host_seconds, 6),
            "guest_mips": round(self.guest_mips, 4),
            "fallback_causes": self.fallback_causes,
            "profile": self.profile,
            "tier_counts": self.tier_counts,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunMetrics":
        d = dict(d)
        d.pop("cache_hit", None)  # derived from source, never stored state
        return cls(**d)


@dataclass
class RunFailure:
    """A spec the campaign could not complete, after all retries.

    Failures are first-class campaign output: the campaign finishes the
    rest of the matrix, reports every failure by label, and exits nonzero —
    it never dies on the first broken run.
    """

    spec: dict                # RunSpec.to_dict()
    label: str                # RunSpec.label, the human-facing handle
    kind: str                 # "error" | "crash" | "timeout"
    cause: str                # one-line diagnosis (exception / exit code)
    attempts: int             # how many times the run was tried
    wall_time_s: float = 0.0  # wall time of the final attempt

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "label": self.label,
            "kind": self.kind,
            "cause": self.cause,
            "attempts": self.attempts,
            "wall_time_s": round(self.wall_time_s, 6),
        }
