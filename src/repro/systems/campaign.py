"""Campaign runner: the (workload × system × DSA-stage) matrix, fanned out
across a process pool and backed by the content-addressed result cache.

Every paper artefact re-simulates the same handful of (workload, system)
pairs; this layer is where those runs are dispatched, deduplicated, cached
and observed.  The contract that makes it work is :class:`RunResult`'s
deterministic serialization: a run computed in a worker process, loaded
from the disk cache, or computed inline must produce byte-identical
records, so ``--jobs N`` can never change an experiment's numbers.

Workload ids are either one of the seven paper benchmarks (``matmul``,
``rgb_gray``, ...) or a loop-type microkernel addressed as
``micro:<kind>`` (``micro:count``, ``micro:sentinel``, ...).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

from ..cpu.config import DEFAULT_CPU_CONFIG, CPUConfig
from ..energy.params import DEFAULT_ENERGY_PARAMS
from ..errors import ConfigError
from ..workloads import PAPER_WORKLOADS, load
from ..workloads.base import Workload, check_scale
from ..workloads.synthetic import LOOP_TYPE_MICROKERNELS
from .metrics import RunMetrics, RunResult, summarize_run
from .result_cache import ResultDiskCache, code_fingerprint, content_key
from .setups import DSA_STAGES, SYSTEM_NAMES, lower_for, run_system

#: prefix selecting a loop-type microkernel instead of a paper benchmark
MICRO_PREFIX = "micro:"

ProgressHook = Callable[[int, int, RunMetrics], None]


@dataclass(frozen=True)
class RunSpec:
    """Identity of one simulation in the campaign matrix."""

    workload: str
    system: str
    dsa_stage: str = "full"
    scale: str = "test"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.system not in SYSTEM_NAMES:
            raise ConfigError(f"unknown system {self.system!r}; pick one of {SYSTEM_NAMES}")
        if self.system == "neon_dsa":
            if self.dsa_stage not in DSA_STAGES:
                raise ConfigError(
                    f"unknown DSA stage {self.dsa_stage!r}; pick one of {sorted(DSA_STAGES)}"
                )
        else:
            # the stage is meaningless without a DSA: normalize it away so
            # (matmul, arm_original, full) and (matmul, arm_original,
            # original) are one run, one cache entry
            object.__setattr__(self, "dsa_stage", "-")
        check_scale(self.scale)

    @property
    def label(self) -> str:
        stage = f"[{self.dsa_stage}]" if self.system == "neon_dsa" else ""
        return f"{self.workload}/{self.system}{stage}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        return cls(**d)


def build_workload(spec: RunSpec) -> Workload:
    """Materialize the workload a spec names (paper benchmark or micro)."""
    if spec.workload.startswith(MICRO_PREFIX):
        kind = spec.workload[len(MICRO_PREFIX):]
        try:
            builder = LOOP_TYPE_MICROKERNELS[kind]
        except KeyError:
            raise ConfigError(
                f"unknown microkernel {kind!r}; available: {sorted(LOOP_TYPE_MICROKERNELS)}"
            ) from None
        return builder(seed=spec.seed)
    if spec.workload not in PAPER_WORKLOADS:
        raise ConfigError(
            f"unknown workload {spec.workload!r}; available: {sorted(PAPER_WORKLOADS)} "
            f"or micro:<{('|'.join(sorted(LOOP_TYPE_MICROKERNELS)))}>"
        )
    return load(spec.workload, spec.scale, seed=spec.seed)


def execute_spec(spec: RunSpec, cpu_config: CPUConfig | None = None) -> RunResult:
    """Run one spec to completion (golden-checked) and summarize it."""
    workload = build_workload(spec)
    stage = spec.dsa_stage if spec.system == "neon_dsa" else "full"
    result = run_system(spec.system, workload, cpu_config=cpu_config, dsa_stage=stage)
    return summarize_run(result, scale=spec.scale, seed=spec.seed, dsa_stage=spec.dsa_stage)


def _pool_execute(payload: tuple[RunSpec, CPUConfig | None]) -> tuple[str, float]:
    """Process-pool entry point: returns (canonical JSON, compute seconds)."""
    spec, cpu_config = payload
    start = time.perf_counter()
    result = execute_spec(spec, cpu_config=cpu_config)
    return json.dumps(result.to_dict(), sort_keys=True), time.perf_counter() - start


def _canonical(result: RunResult) -> RunResult:
    """Round-trip through JSON so inline runs construct the exact same
    object a pooled or cache-served run would."""
    return RunResult.from_dict(json.loads(json.dumps(result.to_dict(), sort_keys=True)))


@dataclass
class CampaignResult:
    """Everything one campaign invocation produced."""

    metrics: list[RunMetrics]
    results: dict[RunSpec, RunResult]
    wall_time_s: float
    jobs: int = 1
    cache_dir: str | None = None

    @property
    def cache_hits(self) -> int:
        return sum(1 for m in self.metrics if m.cache_hit)

    @property
    def computed(self) -> int:
        return sum(1 for m in self.metrics if not m.cache_hit)

    def result_for(self, spec: RunSpec) -> RunResult:
        return self.results[spec]

    def to_json(self) -> dict:
        """The ``repro campaign --json`` schema (see EXPERIMENTS.md)."""
        return {
            "campaign": {
                "total_runs": len(self.metrics),
                "cache_hits": self.cache_hits,
                "computed": self.computed,
                "wall_time_s": round(self.wall_time_s, 6),
                "jobs": self.jobs,
                "cache_dir": self.cache_dir,
                "code_fingerprint": code_fingerprint(),
            },
            "runs": [m.to_dict() for m in self.metrics],
            "results": [self.results[RunSpec.from_dict(m.spec)].to_dict() for m in self.metrics],
        }

    def summary_table(self) -> str:
        header = ["workload", "system", "stage", "cycles", "source", "wall_s"]
        rows = [
            [
                m.spec["workload"],
                m.spec["system"],
                m.spec["dsa_stage"],
                str(m.cycles),
                m.source,
                f"{m.wall_time_s:.3f}",
            ]
            for m in self.metrics
        ]
        widths = [max(len(header[i]), max((len(r[i]) for r in rows), default=0)) for i in range(len(header))]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines += ["  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rows]
        lines.append(
            f"{len(self.metrics)} runs: {self.cache_hits} from cache, "
            f"{self.computed} computed in {self.wall_time_s:.2f}s with {self.jobs} job(s)"
        )
        return "\n".join(lines)


class CampaignRunner:
    """Dispatches run specs: in-memory memo → disk cache → (pooled) compute."""

    def __init__(
        self,
        jobs: int = 1,
        use_cache: bool = True,
        cache_dir=None,
        cpu_config: CPUConfig | None = None,
        progress: ProgressHook | None = None,
    ):
        if jobs < 1:
            raise ConfigError("jobs must be at least 1")
        self.jobs = jobs
        self.cpu_config = cpu_config
        self.progress = progress
        self.disk = ResultDiskCache(cache_dir, enabled=use_cache)
        self._memory: dict[RunSpec, RunResult] = {}

    # ------------------------------------------------------------------
    def cache_key(self, spec: RunSpec) -> str:
        """Content address of a run: lowered kernel + inputs + configs + code."""
        workload = build_workload(spec)
        lowered = lower_for(spec.system, workload)
        dsa_config = DSA_STAGES[spec.dsa_stage] if spec.system == "neon_dsa" else None
        return content_key(
            {
                "code": code_fingerprint(),
                "kernel_asm": lowered.asm,
                "workload": spec.workload,
                "scale": spec.scale,
                "seed": workload.seed,
                "system": spec.system,
                "dsa_stage": spec.dsa_stage,
                "cpu_config": asdict(self.cpu_config or DEFAULT_CPU_CONFIG),
                "dsa_config": asdict(dsa_config) if dsa_config else None,
                "energy_params": asdict(DEFAULT_ENERGY_PARAMS),
            }
        )

    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec]).result_for(spec)

    def run(self, specs: Sequence[RunSpec]) -> CampaignResult:
        """Run the matrix; duplicate specs are computed once."""
        start = time.perf_counter()
        ordered = list(specs)
        sources: dict[RunSpec, str] = {}
        walls: dict[RunSpec, float] = {}
        results: dict[RunSpec, RunResult] = {}
        keys: dict[RunSpec, str] = {}
        pending: list[RunSpec] = []
        seen: set[RunSpec] = set()

        for spec in ordered:
            if spec in seen:
                continue
            seen.add(spec)
            if spec in self._memory:
                sources[spec] = "memory"
                walls[spec] = 0.0
                results[spec] = self._memory[spec]
                continue
            lookup_start = time.perf_counter()
            key = self.cache_key(spec)
            keys[spec] = key
            cached = self._load_cached(key)
            if cached is not None:
                sources[spec] = "disk-cache"
                walls[spec] = time.perf_counter() - lookup_start
                results[spec] = cached
            else:
                pending.append(spec)

        if pending:
            self._compute(pending, results, walls)
            for spec in pending:
                sources[spec] = "computed"
                self.disk.store(keys[spec], {"spec": spec.to_dict(), "result": results[spec].to_dict()})

        self._memory.update(results)

        unique = [s for s in dict.fromkeys(ordered)]
        metrics: list[RunMetrics] = []
        for done, spec in enumerate(unique, start=1):
            m = RunMetrics.for_run(spec.to_dict(), results[spec], sources[spec], walls[spec])
            metrics.append(m)
            if self.progress is not None:
                self.progress(done, len(unique), m)
        return CampaignResult(
            metrics=metrics,
            results=results,
            wall_time_s=time.perf_counter() - start,
            jobs=self.jobs,
            cache_dir=str(self.disk.root) if self.disk.enabled else None,
        )

    # ------------------------------------------------------------------
    def _load_cached(self, key: str) -> RunResult | None:
        payload = self.disk.load(key)
        if payload is None:
            return None
        try:
            return RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            # schema drift or a damaged record: recover by re-running
            self.disk.path_for(key).unlink(missing_ok=True)
            return None

    def _compute(
        self,
        pending: list[RunSpec],
        results: dict[RunSpec, RunResult],
        walls: dict[RunSpec, float],
    ) -> None:
        if self.jobs == 1 or len(pending) == 1:
            for spec in pending:
                run_start = time.perf_counter()
                results[spec] = _canonical(execute_spec(spec, cpu_config=self.cpu_config))
                walls[spec] = time.perf_counter() - run_start
            return
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_pool_execute, (spec, self.cpu_config)): spec for spec in pending
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec = futures[future]
                    encoded, wall = future.result()
                    results[spec] = RunResult.from_dict(json.loads(encoded))
                    walls[spec] = wall


# ----------------------------------------------------------------------
# matrix builders
# ----------------------------------------------------------------------
def default_matrix(
    scale: str = "test",
    workloads: Sequence[str] | None = None,
    systems: Sequence[str] | None = None,
    dsa_stages: Sequence[str] = ("full",),
    seed: int | None = None,
) -> list[RunSpec]:
    """The campaign matrix: every workload on every system, the DSA once
    per requested feature stage."""
    specs: list[RunSpec] = []
    for workload in workloads or list(PAPER_WORKLOADS):
        for system in systems or SYSTEM_NAMES:
            stages = dsa_stages if system == "neon_dsa" else ("full",)
            for stage in stages:
                specs.append(RunSpec(workload, system, stage, scale, seed))
    return specs


def experiment_matrix(scale: str = "test") -> list[RunSpec]:
    """Every run the full experiment suite (art1..art3) consumes."""
    specs = default_matrix(scale, dsa_stages=tuple(DSA_STAGES))
    specs += [
        RunSpec(f"{MICRO_PREFIX}{kind}", "neon_dsa", "full", scale)
        for kind in LOOP_TYPE_MICROKERNELS
    ]
    return specs
