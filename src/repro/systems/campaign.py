"""Campaign runner: the (workload × system × DSA-stage) matrix, fanned out
across crash-isolated worker processes and backed by the content-addressed
result cache.

Every paper artefact re-simulates the same handful of (workload, system)
pairs; this layer is where those runs are dispatched, deduplicated, cached
and observed.  The contract that makes it work is :class:`RunResult`'s
deterministic serialization: a run computed in a worker process, loaded
from the disk cache, or computed inline must produce byte-identical
records, so ``--jobs N`` can never change an experiment's numbers.

Robustness contract (see ``repro.faults``): a worker that raises, hard-
exits, or hangs costs the campaign exactly that one run.  Each run gets a
wall-clock deadline and bounded retries with exponential backoff; whatever
still fails becomes a :class:`RunFailure` record reported at the end —
the campaign always completes the rest of the matrix.  Results hit the
disk cache as each run finishes (not when the batch does), so an
interrupted campaign resumes from what it already computed.

Workload ids are either one of the seven paper benchmarks (``matmul``,
``rgb_gray``, ...) or a loop-type microkernel addressed as
``micro:<kind>`` (``micro:count``, ``micro:sentinel``, ...).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field, replace as dc_replace
from typing import Callable, Sequence

from ..cpu.config import DEFAULT_CPU_CONFIG, CPUConfig
from ..energy.params import DEFAULT_ENERGY_PARAMS
from ..errors import ConfigError, InjectedFaultError, ReproError, RunTimeoutError
from ..faults import WORKER_FAULT_KINDS, FaultPlan, build_injector
from ..workloads import ALL_WORKLOADS, PAPER_WORKLOADS, load
from ..workloads.base import Workload, check_scale
from ..observe import Observer
from ..observe.events import EventKind
from ..workloads.synthetic import LOOP_TYPE_MICROKERNELS
from .isolation import IsolatedExecutor, IsolatedOutcome
from .metrics import RunFailure, RunMetrics, RunResult, summarize_run
from .result_cache import ResultDiskCache, code_fingerprint, content_key
from .setups import DSA_STAGES, SYSTEM_NAMES, lower_for, run_system

#: prefix selecting a loop-type microkernel instead of a paper benchmark
MICRO_PREFIX = "micro:"

ProgressHook = Callable[[int, int, RunMetrics], None]


@dataclass(frozen=True)
class RunSpec:
    """Identity of one simulation in the campaign matrix."""

    workload: str
    system: str
    dsa_stage: str = "full"
    scale: str = "test"
    seed: int | None = None
    #: vector backend + vector length (bits) the core runs with; the
    #: default (neon, 128) is the paper's configuration
    backend: str = "neon"
    vl: int = 128

    def __post_init__(self) -> None:
        if self.system not in SYSTEM_NAMES:
            raise ConfigError(f"unknown system {self.system!r}; pick one of {SYSTEM_NAMES}")
        if self.system == "neon_dsa":
            if self.dsa_stage not in DSA_STAGES:
                raise ConfigError(
                    f"unknown DSA stage {self.dsa_stage!r}; pick one of {sorted(DSA_STAGES)}"
                )
        else:
            # the stage is meaningless without a DSA: normalize it away so
            # (matmul, arm_original, full) and (matmul, arm_original,
            # original) are one run, one cache entry
            object.__setattr__(self, "dsa_stage", "-")
        check_scale(self.scale)
        if self.seed is not None and int(self.seed) < 0:
            raise ConfigError(f"workload seed must be non-negative, got {self.seed}")
        from ..vector import BACKEND_NAMES, VALID_VECTOR_LENGTHS

        if self.backend not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown vector backend {self.backend!r}; pick one of {BACKEND_NAMES}"
            )
        if self.vl not in VALID_VECTOR_LENGTHS:
            raise ConfigError(
                f"vector length must be one of {VALID_VECTOR_LENGTHS}, got {self.vl}"
            )
        if self.backend == "neon" and self.vl != 128:
            raise ConfigError(
                "the neon backend is fixed at VL=128; use backend='scalable' "
                "for wider vectors"
            )
        if self.vl != 128 and self.system in ("neon_autovec", "neon_handvec"):
            raise ConfigError(
                f"system {self.system!r} executes a static 128-bit NEON binary "
                f"and cannot run at VL={self.vl}"
            )

    @property
    def label(self) -> str:
        stage = f"[{self.dsa_stage}]" if self.system == "neon_dsa" else ""
        tail = "" if self.backend == "neon" else f"@{self.backend}{self.vl}"
        return f"{self.workload}/{self.system}{stage}{tail}"

    def to_dict(self) -> dict:
        d = asdict(self)
        # the default (neon, 128) is omitted so pre-backend spec records,
        # journals and cache payloads stay byte-identical
        if self.backend == "neon" and self.vl == 128:
            del d["backend"], d["vl"]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RunSpec":
        return cls(**d)


def build_workload(spec: RunSpec) -> Workload:
    """Materialize the workload a spec names (paper, streaming or micro)."""
    if spec.workload.startswith(MICRO_PREFIX):
        kind = spec.workload[len(MICRO_PREFIX):]
        try:
            builder = LOOP_TYPE_MICROKERNELS[kind]
        except KeyError:
            raise ConfigError(
                f"unknown microkernel {kind!r}; available: {sorted(LOOP_TYPE_MICROKERNELS)}"
            ) from None
        return builder(seed=spec.seed)
    if spec.workload not in ALL_WORKLOADS:
        raise ConfigError(
            f"unknown workload {spec.workload!r}; available: {sorted(ALL_WORKLOADS)} "
            f"or micro:<{('|'.join(sorted(LOOP_TYPE_MICROKERNELS)))}>"
        )
    return load(spec.workload, spec.scale, seed=spec.seed)


def execute_spec(
    spec: RunSpec,
    cpu_config: CPUConfig | None = None,
    guard: bool = False,
    plan: FaultPlan | None = None,
    max_seconds: float | None = None,
    observer=None,
) -> RunResult:
    """Run one spec to completion (golden-checked) and summarize it.

    ``guard`` enables the DSA's guarded execution (mis-speculation falls
    back to scalar instead of raising); ``plan`` attaches the fault
    injector for any DSA/NEON faults targeting this spec's label;
    ``max_seconds`` bounds the simulation's wall clock cooperatively;
    ``observer`` instruments the run (see :mod:`repro.observe`) without
    perturbing the result.
    """
    workload = build_workload(spec)
    stage = spec.dsa_stage if spec.system == "neon_dsa" else "full"
    injector = build_injector(plan, spec.label)
    result = run_system(
        spec.system,
        workload,
        cpu_config=cpu_config,
        dsa_stage=stage,
        guard=guard,
        injector=injector,
        max_seconds=max_seconds,
        observer=observer,
        backend=spec.backend,
        vl=spec.vl,
    )
    return summarize_run(
        result, scale=spec.scale, seed=spec.seed, dsa_stage=spec.dsa_stage,
        backend=spec.backend, vl=spec.vl,
    )


def _worker_run(task: tuple, attempt: int) -> tuple[str, float, str | None, str | None]:
    """Isolated-worker entry point: returns (canonical JSON, compute secs,
    profile JSON or ``None``, tier-residency JSON or ``None``).

    Worker-level faults from the plan are applied *here*, inside the
    sacrificial process, before any simulation work starts — a crash,
    hard exit or hang therefore exercises exactly the failure path a
    genuinely broken worker would take.  An :class:`~repro.observe.Observer`
    is not picklable, so when the campaign asks for profiles the worker
    builds its own observer and ships back the aggregated profile dict.
    """
    spec, cpu_config, guard, plan, max_seconds, observe = task
    if plan is not None:
        fault = plan.worker_fault_for(spec.label, attempt)
        if fault is not None:
            if fault.kind == "worker_crash":
                raise InjectedFaultError(f"injected worker crash (attempt {attempt})")
            if fault.kind == "worker_exit":
                os._exit(fault.exit_code)
            if fault.kind == "worker_hang":
                time.sleep(fault.seconds)
    observer = Observer() if observe else None
    start = time.perf_counter()
    result = execute_spec(
        spec, cpu_config=cpu_config, guard=guard, plan=plan,
        max_seconds=max_seconds, observer=observer,
    )
    profile = (
        json.dumps(observer.profile().to_dict(), sort_keys=True)
        if observer is not None
        else None
    )
    # tier residency is not part of result identity, so it crosses the
    # process boundary beside the result rather than inside it
    tiers = json.dumps(result.tier_counts, sort_keys=True) if result.tier_counts else None
    return (
        json.dumps(result.to_dict(), sort_keys=True),
        time.perf_counter() - start,
        profile,
        tiers,
    )


def _canonical(result: RunResult) -> RunResult:
    """Round-trip through JSON so inline runs construct the exact same
    object a pooled or cache-served run would."""
    return RunResult.from_dict(json.loads(json.dumps(result.to_dict(), sort_keys=True)))


@dataclass
class CampaignResult:
    """Everything one campaign invocation produced."""

    metrics: list[RunMetrics]
    results: dict[RunSpec, RunResult]
    wall_time_s: float
    jobs: int = 1
    cache_dir: str | None = None
    failures: list[RunFailure] = field(default_factory=list)
    #: graceful-degradation counters (cache quarantines/evictions, stale
    #: drops) — zero on a healthy campaign, surfaced so operators *see*
    #: recoveries instead of inferring them
    degradation: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def cache_hits(self) -> int:
        return sum(1 for m in self.metrics if m.cache_hit)

    @property
    def computed(self) -> int:
        return sum(1 for m in self.metrics if not m.cache_hit)

    @property
    def fallbacks(self) -> int:
        """Total guarded-execution scalar rollbacks across the campaign."""
        return sum(m.fallbacks for m in self.metrics)

    def result_for(self, spec: RunSpec) -> RunResult:
        return self.results[spec]

    def to_json(self) -> dict:
        """The ``repro campaign --json`` schema (see EXPERIMENTS.md)."""
        return {
            "campaign": {
                "total_runs": len(self.metrics),
                "cache_hits": self.cache_hits,
                "computed": self.computed,
                "failed": len(self.failures),
                "fallbacks": self.fallbacks,
                "wall_time_s": round(self.wall_time_s, 6),
                "jobs": self.jobs,
                "cache_dir": self.cache_dir,
                "code_fingerprint": code_fingerprint(),
                "degradation": dict(self.degradation),
            },
            "runs": [m.to_dict() for m in self.metrics],
            "results": [self.results[RunSpec.from_dict(m.spec)].to_dict() for m in self.metrics],
            "failures": [f.to_dict() for f in self.failures],
        }

    def summary_table(self) -> str:
        header = ["workload", "system", "stage", "cycles", "source", "fallbacks", "wall_s", "mips"]
        rows = [
            [
                m.spec["workload"],
                m.spec["system"],
                m.spec["dsa_stage"],
                str(m.cycles),
                m.source,
                str(m.fallbacks),
                f"{m.wall_time_s:.3f}",
                f"{m.guest_mips:.2f}" if m.guest_mips else "-",
            ]
            for m in self.metrics
        ]
        widths = [max(len(header[i]), max((len(r[i]) for r in rows), default=0)) for i in range(len(header))]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines += ["  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rows]
        tail = (
            f"{len(self.metrics)} runs: {self.cache_hits} from cache, "
            f"{self.computed} computed in {self.wall_time_s:.2f}s with {self.jobs} job(s)"
        )
        if self.fallbacks:
            tail += f"; {self.fallbacks} guarded fallback(s)"
        if self.failures:
            tail += f"; {len(self.failures)} FAILED"
        lines.append(tail)
        worn = {k: v for k, v in self.degradation.items() if v}
        if worn:
            lines.append(
                "degradation: "
                + ", ".join(f"{k.replace('_', ' ')}={v}" for k, v in sorted(worn.items()))
            )
        for f in self.failures:
            lines.append(f"FAILED {f.label}: {f.kind}: {f.cause} (after {f.attempts} attempt(s))")
        return "\n".join(lines)


class CampaignRunner:
    """Dispatches run specs: in-memory memo → disk cache → isolated compute.

    Robustness knobs (all default off):

    * ``guard``      — run the DSA in guarded mode (mis-speculation rolls
      back to scalar and is counted instead of raising);
    * ``fault_plan`` — inject the plan's faults (see ``repro.faults``);
    * ``timeout``    — per-run wall-clock budget in seconds;
    * ``retries``    — extra attempts per failed run (exponential
      ``backoff`` between attempts);
    * ``resume``     — reuse disk-cached results for specs a fault plan
      targets; without it a faulted campaign recomputes those specs so
      the faults actually fire instead of being served from cache.

    Observability knobs (see :mod:`repro.observe`):

    * ``observe``  — attach a per-run observer to every *computed* run and
      carry its aggregated :class:`~repro.observe.RunProfile` on the run's
      :class:`RunMetrics` (cache hits did no simulation: their profile is
      ``None``);
    * ``observer`` — a campaign-level observer receiving the dispatch-layer
      events (memory/disk cache hits and misses, worker retries/timeouts).
    """

    def __init__(
        self,
        jobs: int = 1,
        use_cache: bool = True,
        cache_dir=None,
        cpu_config: CPUConfig | None = None,
        progress: ProgressHook | None = None,
        guard: bool = False,
        fault_plan: FaultPlan | None = None,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
        resume: bool = False,
        observe: bool = False,
        observer: Observer | None = None,
    ):
        if jobs < 1:
            raise ConfigError("jobs must be at least 1")
        if retries < 0:
            raise ConfigError("retries cannot be negative")
        if timeout is not None and timeout <= 0:
            raise ConfigError("timeout must be positive")
        self.jobs = jobs
        self.cpu_config = cpu_config
        self.progress = progress
        self.guard = guard
        self.fault_plan = fault_plan
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.resume = resume
        self.observe = observe
        self.observer = observer
        self.disk = ResultDiskCache(cache_dir, enabled=use_cache)
        self._memory: dict[RunSpec, RunResult] = {}

    # ------------------------------------------------------------------
    def cache_key(self, spec: RunSpec) -> str:
        """Content address of a run: lowered kernel + inputs + configs + code."""
        workload = build_workload(spec)
        lowered = lower_for(spec.system, workload)
        dsa_config = DSA_STAGES[spec.dsa_stage] if spec.system == "neon_dsa" else None
        # the spec's backend/vl override the runner-level cpu_config at
        # execution time (see execute_spec), so the key must hash the
        # *effective* config — plus the pair explicitly, so NEON results
        # can never be shadowed or evicted by a scalable sweep
        cpu_config = dc_replace(
            self.cpu_config or DEFAULT_CPU_CONFIG,
            vector_backend=spec.backend,
            vector_length=spec.vl,
        )
        parts = {
            "code": code_fingerprint(),
            "kernel_asm": lowered.asm,
            "workload": spec.workload,
            "scale": spec.scale,
            "seed": workload.seed,
            "system": spec.system,
            "dsa_stage": spec.dsa_stage,
            "backend": spec.backend,
            "vl": spec.vl,
            "cpu_config": asdict(cpu_config),
            "dsa_config": asdict(dsa_config) if dsa_config else None,
            "energy_params": asdict(DEFAULT_ENERGY_PARAMS),
        }
        # Guarded runs and fault-altered runs record different counters, so
        # they live under their own keys — the clean cache stays pristine
        # and a faulted campaign can never poison a fault-free one.
        if self.guard:
            parts["guard"] = True
        if self.fault_plan is not None and self.fault_plan.alters_result(spec.label):
            parts["fault_plan"] = self.fault_plan.digest()
        return content_key(parts)

    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunResult:
        outcome = self.run([spec])
        if outcome.failures:
            f = outcome.failures[0]
            raise ReproError(
                f"run {f.label} failed after {f.attempts} attempt(s): {f.kind}: {f.cause}"
            )
        return outcome.result_for(spec)

    def run(self, specs: Sequence[RunSpec]) -> CampaignResult:
        """Run the matrix; duplicate specs are computed once."""
        start = time.perf_counter()
        plan = self.fault_plan
        ordered = list(specs)
        sources: dict[RunSpec, str] = {}
        walls: dict[RunSpec, float] = {}
        results: dict[RunSpec, RunResult] = {}
        failures: dict[RunSpec, RunFailure] = {}
        profiles: dict[RunSpec, dict] = {}
        tiers: dict[RunSpec, dict] = {}
        keys: dict[RunSpec, str] = {}
        pending: list[RunSpec] = []
        seen: set[RunSpec] = set()

        lookups: dict[RunSpec, float] = {}
        for spec in ordered:
            if spec in seen:
                continue
            seen.add(spec)
            if spec in self._memory:
                continue
            lookup_start = time.perf_counter()
            keys[spec] = self.cache_key(spec)
            lookups[spec] = time.perf_counter() - lookup_start

        if plan is not None and not self.resume:
            self._apply_cache_faults(plan, keys)
        self.disk.prune_tmp()

        obs = self.observer
        for spec in dict.fromkeys(ordered):
            if spec in self._memory:
                sources[spec] = "memory"
                walls[spec] = 0.0
                results[spec] = self._memory[spec]
                if obs is not None:
                    obs.emit(EventKind.CACHE_HIT, cache="memory", key=spec.label)
                continue
            lookup_start = time.perf_counter()
            # a freshly-faulted campaign must not serve plan-targeted specs
            # from cache — the injected faults would never fire
            skip_read = plan is not None and not self.resume and plan.for_label(spec.label)
            cached = None if skip_read else self._load_cached(keys[spec])
            if cached is not None:
                sources[spec] = "disk-cache"
                walls[spec] = lookups[spec] + time.perf_counter() - lookup_start
                results[spec] = cached
                if obs is not None:
                    obs.emit(EventKind.CACHE_HIT, cache="disk", key=keys[spec][:16])
            else:
                pending.append(spec)
                if obs is not None:
                    obs.emit(EventKind.CACHE_MISS, cache="disk", key=keys[spec][:16])

        if pending:
            self._compute(pending, keys, results, walls, failures, profiles, tiers)
            for spec in pending:
                if spec in results:
                    sources[spec] = "computed"

        self._memory.update(results)

        unique = [s for s in dict.fromkeys(ordered)]
        metrics: list[RunMetrics] = []
        done = 0
        for spec in unique:
            if spec not in results:
                continue
            done += 1
            m = RunMetrics.for_run(
                spec.to_dict(), results[spec], sources[spec], walls[spec],
                profile=profiles.get(spec),
                tier_counts=tiers.get(spec),
            )
            metrics.append(m)
            if self.progress is not None:
                self.progress(done, len(unique), m)
        return CampaignResult(
            metrics=metrics,
            results=results,
            wall_time_s=time.perf_counter() - start,
            jobs=self.jobs,
            cache_dir=str(self.disk.root) if self.disk.enabled else None,
            failures=[failures[s] for s in unique if s in failures],
            degradation=self.disk.stats.degradation(),
        )

    # ------------------------------------------------------------------
    def _load_cached(self, key: str) -> RunResult | None:
        payload = self.disk.load(key)
        if payload is None:
            return None
        try:
            return RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            # schema drift or a damaged record: recover by re-running
            self.disk.path_for(key).unlink(missing_ok=True)
            return None

    def _store(self, spec: RunSpec, keys: dict[RunSpec, str], result: RunResult) -> None:
        key = keys.get(spec)
        if key is not None:
            self.disk.store(key, {"spec": spec.to_dict(), "result": result.to_dict()})

    def _apply_cache_faults(self, plan: FaultPlan, keys: dict[RunSpec, str]) -> None:
        """Damage disk-cache entries the plan targets, the way a crashed or
        bit-rotted writer would (the loader must recover by re-running)."""
        if not self.disk.enabled:
            return
        for spec, key in keys.items():
            for fault in plan.cache_faults_for(spec.label):
                path = self.disk.path_for(key)
                path.parent.mkdir(parents=True, exist_ok=True)
                if fault.mode == "garbage":
                    path.write_bytes(b"\x00\xffnot json at all\xfe")
                elif fault.mode == "version":
                    payload = {"cache_version": -1, "spec": spec.to_dict(), "result": {}}
                    path.write_text(json.dumps(payload))
                elif fault.mode == "truncate":
                    if path.exists():
                        data = path.read_bytes()
                        path.write_bytes(data[: max(1, len(data) // 2)])
                    else:
                        path.write_text('{"cache_version": 1, "spec": {"worklo')
                elif fault.mode == "tmp":
                    (path.parent / f"{key[:12]}-orphan.tmp").write_text("{half-written")

    def _compute(
        self,
        pending: list[RunSpec],
        keys: dict[RunSpec, str],
        results: dict[RunSpec, RunResult],
        walls: dict[RunSpec, float],
        failures: dict[RunSpec, RunFailure],
        profiles: dict[RunSpec, dict],
        tiers: dict[RunSpec, dict],
    ) -> None:
        plan = self.fault_plan
        # Worker faults hard-exit or hang: they must only ever run inside a
        # sacrificial process, never in the campaign's own interpreter.
        needs_isolation = (
            self.jobs > 1
            or self.timeout is not None
            or (plan is not None and any(
                f.kind in WORKER_FAULT_KINDS
                for spec in pending
                for f in plan.for_label(spec.label)
            ))
        )
        if not needs_isolation:
            self._compute_inline(pending, keys, results, walls, failures, profiles, tiers)
        else:
            self._compute_isolated(pending, keys, results, walls, failures, profiles, tiers)

    def _compute_inline(self, pending, keys, results, walls, failures, profiles, tiers) -> None:
        for spec in pending:
            attempt = 0
            while True:
                attempt += 1
                observer = Observer() if self.observe else None
                run_start = time.perf_counter()
                try:
                    live = execute_spec(
                        spec,
                        cpu_config=self.cpu_config,
                        guard=self.guard,
                        plan=self.fault_plan,
                        max_seconds=self.timeout,
                        observer=observer,
                    )
                    # captured before _canonical: the round-trip drops
                    # everything that is not result identity
                    if live.tier_counts:
                        tiers[spec] = dict(live.tier_counts)
                    result = _canonical(live)
                except Exception as exc:  # noqa: BLE001 - captured as RunFailure
                    wall = time.perf_counter() - run_start
                    if attempt <= self.retries:
                        time.sleep(self.backoff * (2 ** (attempt - 1)))
                        continue
                    kind = "timeout" if isinstance(exc, RunTimeoutError) else "error"
                    failures[spec] = RunFailure(
                        spec=spec.to_dict(),
                        label=spec.label,
                        kind=kind,
                        cause=f"{type(exc).__name__}: {exc}",
                        attempts=attempt,
                        wall_time_s=wall,
                    )
                    break
                walls[spec] = time.perf_counter() - run_start
                results[spec] = result
                if observer is not None:
                    profiles[spec] = observer.profile().to_dict()
                self._store(spec, keys, result)
                break

    def _compute_isolated(self, pending, keys, results, walls, failures, profiles, tiers) -> None:
        def on_complete(index: int, outcome: IsolatedOutcome) -> None:
            spec = pending[index]
            if outcome.ok:
                encoded, secs, profile, tier_enc = outcome.value
                results[spec] = RunResult.from_dict(json.loads(encoded))
                walls[spec] = secs
                if profile is not None:
                    profiles[spec] = json.loads(profile)
                if tier_enc is not None:
                    tiers[spec] = json.loads(tier_enc)
                # incremental: each result is durable the moment it exists,
                # so a later crash/interrupt can never lose it
                self._store(spec, keys, results[spec])
                return
            kind = outcome.status
            if kind == "error" and outcome.detail.startswith("RunTimeoutError"):
                kind = "timeout"  # the in-worker cooperative deadline fired
            failures[spec] = RunFailure(
                spec=spec.to_dict(),
                label=spec.label,
                kind=kind,
                cause=outcome.detail,
                attempts=outcome.attempts,
                wall_time_s=outcome.wall_time_s,
            )

        executor = IsolatedExecutor(
            _worker_run,
            jobs=min(self.jobs, len(pending)),
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            on_complete=on_complete,
            observer=self.observer,
        )
        tasks = [
            (spec, self.cpu_config, self.guard, self.fault_plan, self.timeout, self.observe)
            for spec in pending
        ]
        executor.run(tasks)


# ----------------------------------------------------------------------
# matrix builders
# ----------------------------------------------------------------------
def default_matrix(
    scale: str = "test",
    workloads: Sequence[str] | None = None,
    systems: Sequence[str] | None = None,
    dsa_stages: Sequence[str] = ("full",),
    seed: int | None = None,
    backend: str = "neon",
    vl: int = 128,
) -> list[RunSpec]:
    """The campaign matrix: every workload on every system, the DSA once
    per requested feature stage.

    A non-128 ``vl`` restricts the system list to the ones that can run
    wider vectors (``arm_original`` scalar baseline + ``neon_dsa``, whose
    bursts are timing-only) unless ``systems`` was given explicitly.
    """
    if systems is None and vl != 128:
        systems = tuple(s for s in SYSTEM_NAMES if s in ("arm_original", "neon_dsa"))
    specs: list[RunSpec] = []
    for workload in workloads or list(PAPER_WORKLOADS):
        for system in systems or SYSTEM_NAMES:
            stages = dsa_stages if system == "neon_dsa" else ("full",)
            for stage in stages:
                specs.append(
                    RunSpec(workload, system, stage, scale, seed, backend, vl)
                )
    return specs


def experiment_matrix(scale: str = "test") -> list[RunSpec]:
    """Every run the full experiment suite (art1..art3) consumes."""
    specs = default_matrix(scale, dsa_stages=tuple(DSA_STAGES))
    specs += [
        RunSpec(f"{MICRO_PREFIX}{kind}", "neon_dsa", "full", scale)
        for kind in LOOP_TYPE_MICROKERNELS
    ]
    return specs
