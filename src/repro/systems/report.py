"""Comparison reports across systems and workloads.

Turns a set of run records into the text tables the examples and the CLI
print: cycles, improvement over the ARM original, energy savings, and the
DSA's coverage summary.  Works on live :class:`SystemResult` objects and
on the campaign layer's serializable :class:`~repro.systems.metrics.RunResult`
records alike — both expose ``cycles``, ``improvement_over``,
``energy_savings_over`` and ``dsa_stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import RunResult
from .setups import SystemResult


@dataclass
class ComparisonReport:
    """Results of one workload on several systems."""

    workload: str
    results: dict[str, SystemResult | RunResult]
    baseline: str = "arm_original"

    def __post_init__(self) -> None:
        if self.baseline not in self.results:
            raise KeyError(f"baseline system {self.baseline!r} missing from results")

    @property
    def base(self) -> SystemResult | RunResult:
        return self.results[self.baseline]

    def improvement(self, system: str) -> float:
        """Improvement (%) over the baseline, as the paper reports it."""
        return self.results[system].improvement_over(self.base) * 100.0

    def energy_savings(self, system: str) -> float:
        return self.results[system].energy_savings_over(self.base) * 100.0

    def rows(self) -> list[list]:
        out = []
        for name, result in self.results.items():
            row = [
                name,
                result.cycles,
                round(self.improvement(name), 1),
                round(self.energy_savings(name), 1),
            ]
            if result.dsa_stats is not None:
                row.append(dict(result.dsa_stats.vectorized_invocations))
            else:
                row.append("")
            out.append(row)
        return out

    def table(self) -> str:
        header = ["system", "cycles", "perf_%", "energy_%", "dsa_coverage"]
        rows = self.rows()
        widths = [
            max(len(str(header[i])), max(len(str(r[i])) for r in rows))
            for i in range(len(header))
        ]
        lines = [f"== {self.workload} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class DSACoverageReport:
    """Human-readable summary of one DSA run's internal behaviour."""

    result: SystemResult | RunResult

    def lines(self) -> list[str]:
        stats = self.result.dsa_stats
        if stats is None:
            return ["(no DSA attached to this run)"]
        total_cycles = self.result.cycles
        out = [
            f"loops detected:          {stats.loops_detected}",
            f"loop verdicts:           {dict(stats.verdicts)}",
            f"vectorized invocations:  {dict(stats.vectorized_invocations)}",
            f"iterations covered:      {stats.iterations_covered}",
            f"NEON instructions built: {stats.vector_instructions} in {stats.bursts_charged} bursts",
            f"leftover techniques:     {dict(stats.leftover_used)}",
            f"hand-off stalls charged: {stats.stall_cycles} cycles",
            f"parallel detection work: {stats.detection_cycles} cycles "
            f"({100 * stats.detection_cycles / total_cycles if total_cycles else 0:.1f}% of runtime, hidden)",
            f"abandoned analyses:      {stats.analyses_aborted}",
            f"functional verifications: {stats.verifications} (all must pass or the run raises)",
        ]
        return out

    def table(self) -> str:
        return "\n".join(self.lines())
