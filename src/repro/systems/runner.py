"""Kernel execution harness: binds arguments, runs, extracts results.

Calling convention (see ``repro.compiler.lowering``): parameters in r4+
(or r0+ when the kernel has no helper functions — the lowerer reports the
exact mapping), ``sp`` pointing at the spill frame.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..compiler.ir import ArrayParam, ScalarParam
from ..compiler.lowering import LoweredKernel
from ..cpu.config import CPUConfig
from ..cpu.core import Core, CoreResult
from ..errors import ConfigError, RunTimeoutError
from ..isa.operands import SP
from ..memory.backing import Allocator, MainMemory


@dataclass
class KernelRun:
    """The outcome of one kernel execution."""

    lowered: LoweredKernel
    core: Core
    result: CoreResult
    array_addrs: dict[str, int]
    array_lengths: dict[str, int]

    def array(self, name: str, count: int | None = None) -> np.ndarray:
        """Read back an array argument after execution."""
        dtype = self.lowered.kernel.array(name).dtype
        n = count if count is not None else self.array_lengths[name]
        return self.core.memory.read_array(self.array_addrs[name], dtype, n)

    @property
    def cycles(self) -> int:
        return self.result.cycles


def execute_kernel(
    lowered: LoweredKernel,
    args: dict[str, np.ndarray | int],
    config: CPUConfig | None = None,
    memory_bytes: int = 8 * 1024 * 1024,
    attach: Callable[[Core], None] | None = None,
    max_instructions: int = 100_000_000,
    max_seconds: float | None = None,
) -> KernelRun:
    """Run a lowered kernel with the given arguments.

    ``args`` maps parameter names to numpy arrays (for array parameters —
    copied into simulated memory) or Python ints (for scalar parameters).
    ``attach`` lets callers hook a DSA or trace sink onto the core before
    the run starts.  ``max_seconds`` is a cooperative wall-clock budget:
    the run raises :class:`RunTimeoutError` once it is exceeded (checked
    every few thousand retired instructions, so overshoot is bounded).
    """
    # Validate the whole argument set up front, before anything is allocated
    # or copied: a bad call must fail without mutating allocator/core state.
    param_names = {p.name for p in lowered.kernel.params}
    missing = sorted(param_names - set(args))
    if missing:
        raise ConfigError(f"missing arguments for parameters: {missing}")
    extra = sorted(set(args) - param_names)
    if extra:
        raise ConfigError(f"unknown kernel arguments: {extra}")
    for param in lowered.kernel.params:
        value = args[param.name]
        if isinstance(param, ArrayParam):
            if not isinstance(value, np.ndarray):
                raise ConfigError(f"parameter {param.name!r} expects a numpy array")
        else:
            assert isinstance(param, ScalarParam)
            if isinstance(value, np.ndarray):
                raise ConfigError(f"parameter {param.name!r} expects an int")

    memory = MainMemory(memory_bytes)
    alloc = Allocator(memory)
    core = Core(lowered.program, memory, config=config)

    array_addrs: dict[str, int] = {}
    array_lengths: dict[str, int] = {}
    for param in lowered.kernel.params:
        value = args[param.name]
        reg = lowered.param_regs[param.name]
        if isinstance(param, ArrayParam):
            typed = np.ascontiguousarray(value, dtype=param.dtype.numpy)
            addr = alloc.alloc_array(typed)
            array_addrs[param.name] = addr
            array_lengths[param.name] = typed.size
            core.set_reg(reg, addr)
        else:
            core.set_reg(reg, int(value))

    frame = alloc.alloc(max(lowered.frame_size, 4))
    core.set_reg(SP, frame)

    if attach is not None:
        attach(core)

    if max_seconds is not None:
        deadline = time.perf_counter() + max_seconds
        retired = 0

        def _deadline_hook(record) -> None:
            nonlocal retired
            retired += 1
            if retired % 2048 == 0 and time.perf_counter() > deadline:
                raise RunTimeoutError(
                    f"kernel {lowered.kernel.name!r} exceeded {max_seconds:.1f}s wall clock"
                )

        core.retire_hooks.append(_deadline_hook)

    result = core.run(max_instructions=max_instructions)
    return KernelRun(
        lowered=lowered,
        core=core,
        result=result,
        array_addrs=array_addrs,
        array_lengths=array_lengths,
    )
