"""Crash-isolated task execution: one process per run.

``concurrent.futures.ProcessPoolExecutor`` cannot survive the faults this
repo injects on purpose: a worker that hard-exits poisons the whole pool
(``BrokenProcessPool``, with no record of *which* task died) and a hung
worker can never be killed.  :class:`IsolatedExecutor` therefore runs every
task in its own short-lived ``multiprocessing.Process`` connected by a
one-way pipe: a crash loses exactly one task, a hang is terminated at its
deadline, and both come back as structured :class:`IsolatedOutcome` records
instead of exceptions.

Retries with exponential backoff live here too, so the campaign layer sees
each task exactly once — as a final success or a final failure with the
attempt count attached.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Callable

from ..errors import ConfigError
from ..observe.events import EventKind

#: grace period between SIGTERM and SIGKILL for a timed-out worker
_TERM_GRACE_S = 1.0

#: how much of a dead worker's stderr / traceback tail to keep in the outcome
_DIAG_TAIL_CHARS = 600


def _tail(text: str, limit: int = _DIAG_TAIL_CHARS) -> str:
    """Whitespace-collapsed tail of a diagnostic blob, bounded in size."""
    collapsed = " ".join(text.split())
    return collapsed[-limit:] if len(collapsed) > limit else collapsed


@dataclass
class IsolatedOutcome:
    """Terminal outcome of one task (after all retries)."""

    status: str              # "ok" | "error" | "crash" | "timeout"
    value: object = None     # whatever the task function returned (ok only)
    detail: str = ""         # exception text / exit code / deadline note
    wall_time_s: float = 0.0  # wall time of the *final* attempt
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _child_main(
    conn, fn: Callable, task, attempt: int, stderr_path: str | None,
    close_fds: tuple = (),
) -> None:
    """Child entry point: run the task, ship the outcome through the pipe.

    A fault that hard-exits or hangs simply never sends anything; the
    parent reads the empty pipe (or the expired deadline) as the verdict —
    plus whatever the child managed to write to its redirected stderr,
    which is the only forensic record a hard death leaves behind.
    """
    for fd in close_fds:
        # under the fork start method a worker inherits every parent fd —
        # including a service's listening socket, which would keep the
        # port bound after the service dies and block its restart
        try:
            os.close(fd)
        except OSError:
            pass
    if stderr_path is not None:
        try:
            fd = os.open(stderr_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
            os.dup2(fd, 2)
            os.close(fd)
            sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)
        except OSError:
            pass  # diagnostics are best-effort; the task still runs
    start = time.perf_counter()
    try:
        value = fn(task, attempt)
    except BaseException as exc:  # noqa: BLE001 - the pipe is the report
        # ship the traceback tail so retry exhaustion reports *why*, not
        # just the exception class (satellite: RunFailure.cause diagnosis)
        trace = _tail(traceback.format_exc())
        detail = f"{type(exc).__name__}: {exc} [traceback: {trace}]"
        message = ("error", detail, time.perf_counter() - start)
    else:
        message = ("ok", value, time.perf_counter() - start)
    try:
        conn.send(message)
    except Exception:
        pass  # unpicklable value / closed pipe: parent records a crash
    finally:
        conn.close()


class _Running:
    """Book-keeping for one in-flight worker process."""

    __slots__ = ("proc", "conn", "index", "attempt", "started", "deadline", "stderr_path")

    def __init__(self, proc, conn, index, attempt, started, deadline, stderr_path):
        self.proc = proc
        self.conn = conn
        self.index = index
        self.attempt = attempt
        self.started = started
        self.deadline = deadline
        self.stderr_path = stderr_path

    def stderr_tail(self) -> str:
        """Whatever the worker wrote to stderr before dying (may be '')."""
        if self.stderr_path is None:
            return ""
        try:
            return _tail(Path(self.stderr_path).read_text(errors="replace"))
        except OSError:
            return ""

    def cleanup_stderr(self) -> None:
        if self.stderr_path is not None:
            Path(self.stderr_path).unlink(missing_ok=True)


class IsolatedExecutor:
    """Run tasks through ``fn(task, attempt)``, one process per attempt."""

    def __init__(
        self,
        fn: Callable,
        jobs: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
        on_complete: Callable[[int, IsolatedOutcome], None] | None = None,
        observer=None,
        close_fds: tuple = (),
    ):
        if jobs < 1:
            raise ConfigError("jobs must be at least 1")
        if retries < 0:
            raise ConfigError("retries cannot be negative")
        if timeout is not None and timeout <= 0:
            raise ConfigError("timeout must be positive")
        self.fn = fn
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = max(0.0, backoff)
        self.on_complete = on_complete
        #: optional repro.observe.Observer: receives WORKER_RETRY and
        #: WORKER_TIMEOUT events (parent-process side; never pickled)
        self.observer = observer
        self._ctx = mp.get_context()
        # fd numbers are only meaningful in a fork child; spawn/forkserver
        # children never inherit them, and closing would hit innocent fds
        self.close_fds = tuple(close_fds) if self._ctx.get_start_method() == "fork" else ()

    # ------------------------------------------------------------------
    def run(self, tasks: list) -> list[IsolatedOutcome]:
        """Execute all tasks; the result list is parallel to ``tasks``."""
        outcomes: list[IsolatedOutcome | None] = [None] * len(tasks)
        # (eligible_time, index, attempt): backoff is an eligibility time,
        # not a blocking sleep, so other tasks keep the slots busy meanwhile
        queue: list[tuple[float, int, int]] = [
            (0.0, index, 1) for index in range(len(tasks))
        ]
        running: dict[object, _Running] = {}
        try:
            while queue or running:
                now = time.perf_counter()
                self._launch_eligible(tasks, queue, running, now)
                wait_s = self._next_wait(queue, running, now)
                ready = _connection_wait(
                    [r.proc.sentinel for r in running.values()], timeout=wait_s
                )
                now = time.perf_counter()
                for sentinel in ready:
                    self._reap(running.pop(sentinel), queue, outcomes, now)
                for sentinel, entry in list(running.items()):
                    if entry.deadline is not None and now >= entry.deadline:
                        del running[sentinel]
                        self._kill(entry, queue, outcomes, now)
        finally:
            for entry in running.values():
                self._terminate(entry.proc)
                entry.conn.close()
                entry.cleanup_stderr()
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _launch_eligible(self, tasks, queue, running, now) -> None:
        queue.sort()
        while queue and len(running) < self.jobs and queue[0][0] <= now:
            _, index, attempt = queue.pop(0)
            recv, send = self._ctx.Pipe(duplex=False)
            fd, stderr_path = tempfile.mkstemp(prefix="repro-worker-", suffix=".stderr")
            os.close(fd)
            proc = self._ctx.Process(
                target=_child_main,
                args=(send, self.fn, tasks[index], attempt, stderr_path, self.close_fds),
                daemon=True,
            )
            proc.start()
            send.close()  # the child owns the write end now
            deadline = None if self.timeout is None else now + self.timeout
            running[proc.sentinel] = _Running(
                proc, recv, index, attempt, now, deadline, stderr_path
            )

    def _next_wait(self, queue, running, now) -> float | None:
        """How long the sentinel wait may block without missing anything."""
        marks = [r.deadline for r in running.values() if r.deadline is not None]
        if queue and len(running) < self.jobs:
            marks.append(queue[0][0])  # a backoff'd task becomes eligible
        if not marks:
            return None if running else 0.0
        return max(0.0, min(marks) - now) + 0.01

    # ------------------------------------------------------------------
    def _reap(self, entry: _Running, queue, outcomes, now) -> None:
        """A worker exited on its own: read its report or call it a crash."""
        entry.proc.join()
        message = None
        try:
            if entry.conn.poll():
                message = entry.conn.recv()
        except (EOFError, OSError):
            message = None
        finally:
            entry.conn.close()
        if message is not None:
            status, value, wall = message
            if status == "ok":
                entry.cleanup_stderr()
                self._finish(
                    entry, outcomes,
                    IsolatedOutcome("ok", value=value, wall_time_s=wall, attempts=entry.attempt),
                )
                return
            outcome = IsolatedOutcome("error", detail=value, wall_time_s=wall, attempts=entry.attempt)
        else:
            # a hard death sends nothing through the pipe: the stderr tail
            # (abort message, interpreter fatal error, ...) is the diagnosis
            detail = f"worker died with exit code {entry.proc.exitcode}"
            stderr = entry.stderr_tail()
            if stderr:
                detail = f"{detail} [stderr: {stderr}]"
            outcome = IsolatedOutcome(
                "crash",
                detail=detail,
                wall_time_s=now - entry.started,
                attempts=entry.attempt,
            )
        entry.cleanup_stderr()
        self._retry_or_finish(entry, queue, outcomes, outcome, now)

    def _kill(self, entry: _Running, queue, outcomes, now) -> None:
        """A worker blew its deadline: terminate it and record a timeout."""
        self._terminate(entry.proc)
        entry.conn.close()
        detail = f"worker exceeded {self.timeout:.1f}s wall clock and was killed"
        stderr = entry.stderr_tail()
        if stderr:
            detail = f"{detail} [stderr: {stderr}]"
        entry.cleanup_stderr()
        outcome = IsolatedOutcome(
            "timeout",
            detail=detail,
            wall_time_s=now - entry.started,
            attempts=entry.attempt,
        )
        if self.observer is not None:
            self.observer.emit(
                EventKind.WORKER_TIMEOUT,
                task=entry.index, attempt=entry.attempt, deadline_s=self.timeout,
            )
        self._retry_or_finish(entry, queue, outcomes, outcome, now)

    def _terminate(self, proc) -> None:
        if proc.is_alive():
            proc.terminate()
            proc.join(_TERM_GRACE_S)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join()

    def _retry_or_finish(self, entry, queue, outcomes, outcome, now) -> None:
        if entry.attempt <= self.retries:
            delay = self.backoff * (2 ** (entry.attempt - 1))
            if self.observer is not None:
                self.observer.emit(
                    EventKind.WORKER_RETRY,
                    task=entry.index, attempt=entry.attempt,
                    status=outcome.status, delay_s=delay,
                )
            queue.append((now + delay, entry.index, entry.attempt + 1))
        else:
            self._finish(entry, outcomes, outcome)

    def _finish(self, entry, outcomes, outcome: IsolatedOutcome) -> None:
        outcomes[entry.index] = outcome
        if self.on_complete is not None:
            self.on_complete(entry.index, outcome)
