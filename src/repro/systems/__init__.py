"""System setups and the execution harness."""

from .runner import KernelRun, execute_kernel
from .setups import (
    DSA_STAGES,
    SYSTEM_NAMES,
    SystemResult,
    lower_for,
    run_all_systems,
    run_system,
)

__all__ = [
    "KernelRun",
    "execute_kernel",
    "DSA_STAGES",
    "SYSTEM_NAMES",
    "SystemResult",
    "lower_for",
    "run_all_systems",
    "run_system",
]
