"""System setups, the execution harness, and the campaign layer."""

from .campaign import (
    CampaignResult,
    CampaignRunner,
    RunSpec,
    default_matrix,
    execute_spec,
    experiment_matrix,
)
from .metrics import RunMetrics, RunResult
from .result_cache import ResultDiskCache, code_fingerprint, default_cache_dir
from .runner import KernelRun, execute_kernel
from .setups import (
    DSA_STAGES,
    SYSTEM_NAMES,
    SystemResult,
    lower_for,
    run_all_systems,
    run_system,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "RunSpec",
    "RunMetrics",
    "RunResult",
    "ResultDiskCache",
    "KernelRun",
    "execute_kernel",
    "execute_spec",
    "experiment_matrix",
    "default_matrix",
    "default_cache_dir",
    "code_fingerprint",
    "DSA_STAGES",
    "SYSTEM_NAMES",
    "SystemResult",
    "lower_for",
    "run_all_systems",
    "run_system",
]
