"""Simulator-throughput benchmark harness (``repro bench``).

Measures how fast the *host* simulates — guest instructions retired per
host second — which is the quantity the predecode fast path exists to
improve.  This is observability for the simulator itself, deliberately
separate from the architectural results: nothing here participates in
result identity or the on-disk cache (every bench run simulates live).

The report is written as ``BENCH_sim_throughput.json``; a committed copy
at the repo root serves as the regression baseline CI checks (non-gating)
with ``repro bench --check-baseline``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field

from ..cpu.config import DEFAULT_CPU_CONFIG, CPUConfig
from ..errors import ConfigError
from .campaign import RunSpec, execute_spec
from .result_cache import code_fingerprint

#: schema version of the JSON report
BENCH_VERSION = 1

#: the default bench matrix: one high-DLP, one medium, one low workload on
#: every system keeps the run under a minute while touching both run loops
#: (record-free fast path and the traced DSA path); the streaming cells
#: add the sentinel-heavy and gather/scatter simulation shapes
DEFAULT_WORKLOADS = ("matmul", "rgb_gray", "bitcount", "delim_scan", "stride_histogram")
QUICK_WORKLOADS = ("matmul", "rgb_gray", "delim_scan")
QUICK_SYSTEMS = ("arm_original", "neon_dsa")


@dataclass
class BenchRun:
    """Throughput of one (workload, system) simulation."""

    label: str
    workload: str
    system: str
    instructions: int
    cycles: int
    host_seconds: float          # best of ``repeats`` (least-noise estimate)
    guest_mips: float
    legacy_host_seconds: float | None = None   # with predecode=False
    speedup: float | None = None               # legacy / predecoded
    #: execution-tier residency (instructions retired per tier); names the
    #: ladder rung a cell actually ran on, so a regression can be blamed
    #: on "matmul/neon_dsa fell off the covered tier" instead of guesswork
    tier_counts: dict[str, int] = field(default_factory=dict)

    @property
    def dominant_tier(self) -> str:
        """The tier that retired the most instructions ("-" when unknown)."""
        if not self.tier_counts:
            return "-"
        return max(self.tier_counts.items(), key=lambda kv: kv[1])[0]

    def to_dict(self) -> dict:
        d = {
            "label": self.label,
            "workload": self.workload,
            "system": self.system,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "host_seconds": round(self.host_seconds, 6),
            "guest_mips": round(self.guest_mips, 4),
        }
        if self.legacy_host_seconds is not None:
            d["legacy_host_seconds"] = round(self.legacy_host_seconds, 6)
            d["speedup"] = round(self.speedup, 3)
        if self.tier_counts:
            d["tier_counts"] = {k: self.tier_counts[k] for k in sorted(self.tier_counts)}
        return d


@dataclass
class BenchReport:
    """Everything one ``repro bench`` invocation measured."""

    scale: str
    repeats: int
    runs: list[BenchRun] = field(default_factory=list)

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.runs)

    @property
    def total_host_seconds(self) -> float:
        return sum(r.host_seconds for r in self.runs)

    @property
    def aggregate_mips(self) -> float:
        secs = self.total_host_seconds
        return self.total_instructions / secs / 1e6 if secs > 0 else 0.0

    def to_json(self) -> dict:
        return {
            "bench_version": BENCH_VERSION,
            "code_fingerprint": code_fingerprint(),
            "python": platform.python_version(),
            "scale": self.scale,
            "repeats": self.repeats,
            "aggregate": {
                "instructions": self.total_instructions,
                "host_seconds": round(self.total_host_seconds, 6),
                "guest_mips": round(self.aggregate_mips, 4),
            },
            "runs": [r.to_dict() for r in self.runs],
        }

    def table(self) -> str:
        header = ["workload", "system", "instructions", "host_s", "mips"]
        compare = any(r.speedup is not None for r in self.runs)
        if compare:
            header += ["legacy_s", "speedup"]
        rows = []
        for r in self.runs:
            row = [
                r.workload,
                r.system,
                str(r.instructions),
                f"{r.host_seconds:.3f}",
                f"{r.guest_mips:.2f}",
            ]
            if compare:
                row += [
                    f"{r.legacy_host_seconds:.3f}" if r.legacy_host_seconds is not None else "-",
                    f"{r.speedup:.2f}x" if r.speedup is not None else "-",
                ]
            rows.append(row)
        widths = [
            max(len(header[i]), max((len(r[i]) for r in rows), default=0))
            for i in range(len(header))
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines += ["  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rows]
        lines.append(
            f"aggregate: {self.total_instructions} guest instructions in "
            f"{self.total_host_seconds:.2f}s host = {self.aggregate_mips:.2f} MIPS"
        )
        return "\n".join(lines)


def _time_spec(
    spec: RunSpec, config: CPUConfig, repeats: int
) -> tuple[float, int, int, dict[str, int]]:
    """Best-of-N wall time of one live (uncached) simulation."""
    best = float("inf")
    instructions = cycles = 0
    tiers: dict[str, int] = {}
    if repeats == 1:
        # a lone timed run would charge one-time process warmup (imports,
        # codegen exec, bytecode specialization) to the measurement and
        # read systematically slower than the best-of-N baseline numbers
        execute_spec(spec, cpu_config=config)
    for _ in range(repeats):
        start = time.perf_counter()
        result = execute_spec(spec, cpu_config=config)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        instructions, cycles = result.instructions, result.cycles
        tiers = dict(result.tier_counts)  # deterministic: same every repeat
    return best, instructions, cycles, tiers


def run_bench(
    scale: str = "test",
    repeats: int = 3,
    workloads: tuple[str, ...] | list[str] = DEFAULT_WORKLOADS,
    systems: tuple[str, ...] | list[str] | None = None,
    compare_legacy: bool = False,
    quick: bool = False,
    progress=None,
) -> BenchReport:
    """Measure simulator throughput over a (workload × system) matrix.

    Every simulation runs live and inline — no disk cache, no worker
    processes — so the numbers measure the interpreter, not the campaign
    plumbing.  ``compare_legacy`` additionally times each spec with
    ``CPUConfig.predecode=False`` and reports the speedup.
    """
    from .setups import SYSTEM_NAMES

    if repeats < 1:
        raise ConfigError("bench repeats must be at least 1")
    if quick:
        workloads = QUICK_WORKLOADS
        systems = QUICK_SYSTEMS
        repeats = min(repeats, 1)
    if systems is None:
        systems = SYSTEM_NAMES
    for system in systems:
        if system not in SYSTEM_NAMES:
            raise ConfigError(f"unknown system {system!r}; pick one of {SYSTEM_NAMES}")

    predecoded = DEFAULT_CPU_CONFIG
    legacy = CPUConfig(predecode=False)
    report = BenchReport(scale=scale, repeats=repeats)
    for workload in workloads:
        for system in systems:
            spec = RunSpec(workload=workload, system=system, scale=scale)
            if progress is not None:
                progress(spec.label)
            host, instructions, cycles, tiers = _time_spec(spec, predecoded, repeats)
            run = BenchRun(
                label=spec.label,
                workload=workload,
                system=system,
                instructions=instructions,
                cycles=cycles,
                host_seconds=host,
                guest_mips=instructions / host / 1e6 if host > 0 else 0.0,
                tier_counts=tiers,
            )
            if compare_legacy:
                legacy_host, _, _, _ = _time_spec(spec, legacy, repeats)
                run.legacy_host_seconds = legacy_host
                run.speedup = legacy_host / host if host > 0 else 0.0
            report.runs.append(run)
    return report


def check_baseline(report: BenchReport, baseline: dict, tolerance: float = 0.25) -> list[str]:
    """Compare a fresh report against a committed baseline record.

    Returns a list of regression messages (empty = within tolerance).  Only
    slowdowns count: being faster than the baseline is never a failure.
    The aggregate is the gating number; individual (workload, system) cells
    gate at twice the tolerance, since small kernels are noisy — except
    DSA-system cells, which gate at the plain tolerance: they are exactly
    the cells covered execution accelerates, so a regression there means a
    characterized region stopped releasing to the fast tiers and must not
    hide inside an otherwise-healthy aggregate.  Every gating DSA message
    names the (workload, system, tier) triple — the dominant execution
    tier pinpoints *which* ladder rung the cell fell off.  An aggregate
    failure always additionally names every cell that slowed beyond the
    plain tolerance, worst first — "the aggregate regressed" alone is not
    actionable; "matmul/neon_dsa is 40% slower" is.
    """
    if not 0 < tolerance < 1:
        raise ConfigError("tolerance must be in (0, 1)")
    problems: list[str] = []
    base_aggregate = float(baseline.get("aggregate", {}).get("guest_mips", 0.0))
    aggregate_regressed = (
        base_aggregate > 0 and report.aggregate_mips < base_aggregate * (1 - tolerance)
    )

    base_runs = {r.get("label"): r for r in baseline.get("runs", [])}
    gating: list[str] = []
    suspects: list[tuple[float, str]] = []  # (mips ratio, message), for sorting
    for run in report.runs:
        base = base_runs.get(run.label)
        if base is None:
            continue
        base_mips = float(base.get("guest_mips", 0.0))
        if base_mips <= 0:
            continue
        ratio = run.guest_mips / base_mips
        dsa_cell = run.system.endswith("_dsa")
        cell = (
            f"({run.workload}, {run.system}, tier={run.dominant_tier})"
            if dsa_cell
            else f"{run.workload}/{run.system}"
        )
        message = (
            f"{cell}: {run.guest_mips:.2f} MIPS vs "
            f"baseline {base_mips:.2f} MIPS ({1 - ratio:.0%} slower)"
        )
        if ratio < 1 - (tolerance if dsa_cell else 2 * tolerance):
            gating.append(message)
        elif ratio < 1 - tolerance:
            suspects.append((ratio, message))

    if aggregate_regressed:
        problems.append(
            f"aggregate throughput regressed: {report.aggregate_mips:.2f} MIPS vs "
            f"baseline {base_aggregate:.2f} MIPS (tolerance {tolerance:.0%})"
        )
        # name the cells responsible, worst first, even sub-gating ones
        problems += [message for _, message in sorted(suspects)]
    problems += gating
    return problems


def load_baseline(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        raise ConfigError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline file {path} is not valid JSON: {exc}") from None
    if not isinstance(baseline, dict) or "aggregate" not in baseline:
        raise ConfigError(f"baseline file {path} is not a bench report")
    return baseline
