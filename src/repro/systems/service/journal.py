"""The write-ahead job journal: crash safety as an append-only JSONL file.

Every job-state transition is one JSON line, fsync'd before the service
acknowledges anything that depends on it (a 202 for a submission, a poll
answer for a terminal state).  On startup the journal is *replayed*: the
job table is rebuilt line by line, jobs that were ``running`` when the
process died are re-queued (counted as recovered), and jobs that reached a
terminal state keep it — a completed result can never be recomputed into
something different, and a queued job can never be dropped.

Torn writes are expected, not fatal: a crash (or an injected journal
truncation) can leave a half-written final line, which replay skips and
counts.  Everything before the tear is intact because lines are only
appended, never rewritten.

Record vocabulary (one JSON object per line):

* ``{"op": "submit", "job", "spec", "client", "batch"}``
* ``{"op": "state", "job", "state", ...}`` — ``running`` carries
  ``attempt``; ``done`` carries the canonical ``result`` dict and its
  ``source``; ``failed``/``given_up`` carry an ``error`` dict;
  ``queued`` re-queues (recovery, explicit retry).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path


class JobState(str, Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"        # all attempts exhausted
    GIVEN_UP = "given_up"    # quarantined cell / drained before start

    @property
    def terminal(self) -> bool:
        return self in TERMINAL_STATES


TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.GIVEN_UP})


@dataclass
class JobRecord:
    """One job's full current state, as reconstructed from the journal."""

    job_id: str
    spec: dict                      # RunSpec.to_dict()
    client: str = "anonymous"
    batch: str = ""
    state: JobState = JobState.QUEUED
    attempts: int = 0
    result: dict | None = None      # canonical RunResult dict when DONE
    source: str = ""                # "computed" | "cache" | "journal"
    error: dict | None = None       # {"kind", "cause", "attempts"} when failed
    recovered: int = 0              # times journal replay re-queued this job

    @property
    def label(self) -> str:
        stage = f"[{self.spec.get('dsa_stage')}]" if self.spec.get("system") == "neon_dsa" else ""
        return f"{self.spec.get('workload')}/{self.spec.get('system')}{stage}"

    @property
    def cell(self) -> tuple[str, str]:
        """The circuit-breaker granularity: (workload, system)."""
        return (self.spec.get("workload", "?"), self.spec.get("system", "?"))

    def to_dict(self) -> dict:
        return {
            "job": self.job_id,
            "spec": dict(self.spec),
            "client": self.client,
            "batch": self.batch,
            "state": self.state.value,
            "attempts": self.attempts,
            "result": self.result,
            "source": self.source,
            "error": self.error,
            "recovered": self.recovered,
        }


@dataclass
class ReplaySummary:
    """What startup replay found in the journal."""

    jobs: dict[str, JobRecord] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)   # submission order
    recovered: list[str] = field(default_factory=list)  # re-queued job ids
    torn_lines: int = 0                              # skipped damaged lines


class JobJournal:
    """Append-only JSONL journal with fsync'd writes and tolerant replay."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _handle(self):
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # a crash can leave the file ending in a torn, newline-less
            # line; appending straight after it would weld the new record
            # onto the damage.  Terminate the tear first so the next
            # record starts on its own line.
            needs_newline = False
            try:
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    needs_newline = probe.read(1) != b"\n"
            except (FileNotFoundError, OSError):
                pass
            self._fh = open(self.path, "a", encoding="utf-8")
            if needs_newline:
                self._fh.write("\n")
                self._fh.flush()
                os.fsync(self._fh.fileno())
        return self._fh

    def append(self, record: dict) -> None:
        """Write one record durably: the line is on disk when this returns."""
        fh = self._handle()
        fh.write(json.dumps(record, sort_keys=True))
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()

    # -- the ops the job store emits -----------------------------------
    def log_submit(self, job: JobRecord) -> None:
        self.append({
            "op": "submit",
            "job": job.job_id,
            "spec": job.spec,
            "client": job.client,
            "batch": job.batch,
        })

    def log_state(self, job_id: str, state: JobState, **extra) -> None:
        self.append({"op": "state", "job": job_id, "state": state.value, **extra})

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self) -> ReplaySummary:
        """Rebuild the job table; re-queue jobs interrupted mid-run.

        Damaged lines (torn trailing write, bit-rot) are skipped and
        counted — an op that never hit the disk intact is an op that never
        durably happened, so skipping reproduces the pre-crash state.
        """
        summary = ReplaySummary()
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return summary
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                summary.torn_lines += 1
                continue
            if not isinstance(record, dict):
                summary.torn_lines += 1
                continue
            self._apply(record, summary)
        # jobs caught mid-run by the crash go back to the queue: the run
        # they were computing produced no durable result, so re-running it
        # is the only way every job reaches a terminal state exactly once
        for job in summary.jobs.values():
            if job.state is JobState.RUNNING:
                job.state = JobState.QUEUED
                job.recovered += 1
                summary.recovered.append(job.job_id)
        return summary

    @staticmethod
    def _apply(record: dict, summary: ReplaySummary) -> None:
        op = record.get("op")
        job_id = record.get("job")
        if not isinstance(job_id, str):
            summary.torn_lines += 1
            return
        if op == "submit":
            spec = record.get("spec")
            if not isinstance(spec, dict):
                summary.torn_lines += 1
                return
            if job_id not in summary.jobs:  # duplicate submits are idempotent
                summary.jobs[job_id] = JobRecord(
                    job_id=job_id,
                    spec=spec,
                    client=str(record.get("client", "anonymous")),
                    batch=str(record.get("batch", "")),
                )
                summary.order.append(job_id)
            return
        if op == "state":
            job = summary.jobs.get(job_id)
            if job is None:
                # a state line whose submit was lost to a tear: nothing to
                # attach it to; the submission was never acknowledged
                summary.torn_lines += 1
                return
            if job.state.terminal:
                return  # terminal is forever; late lines cannot resurrect it
            try:
                state = JobState(record.get("state"))
            except ValueError:
                summary.torn_lines += 1
                return
            job.state = state
            if state is JobState.RUNNING:
                job.attempts = int(record.get("attempt", job.attempts + 1))
            elif state is JobState.DONE:
                job.result = record.get("result")
                job.source = str(record.get("source", "computed"))
                if job.result is None:
                    # a done line without its payload is damage: re-queue
                    job.state = JobState.QUEUED
                    summary.torn_lines += 1
            elif state in (JobState.FAILED, JobState.GIVEN_UP):
                error = record.get("error")
                job.error = error if isinstance(error, dict) else {"kind": "unknown", "cause": ""}
            return
        summary.torn_lines += 1
