"""Crash-safe campaign service: journaled jobs, supervised workers, HTTP API.

The long-lived counterpart of :class:`~repro.systems.campaign.CampaignRunner`
(ROADMAP item 2): clients POST :class:`~repro.systems.campaign.RunSpec`
batches and poll cycle/energy verdicts back; the service survives worker
crashes, hangs, cache corruption, journal truncation and its own SIGKILL
without ever losing, duplicating, or altering a job's result.

Layers (each its own module, composable without the HTTP surface):

* :mod:`.journal` — the JSONL write-ahead journal; every job-state change
  is fsync'd before it is acknowledged, and startup replay resumes exactly
  where a crash left off (torn trailing writes are tolerated).
* :mod:`.jobs`    — :class:`JobStore`: in-memory job table + queue kept
  consistent with the journal.
* :mod:`.supervisor` — feeds queued jobs through
  :class:`~repro.systems.isolation.IsolatedExecutor` with per-job
  deadlines, retries with jittered backoff, and a circuit breaker that
  quarantines chronically dying (workload, system) cells.
* :mod:`.server`  — the stdlib asyncio HTTP+JSON surface with admission
  control (bounded queue → 429, schema validation → 400, per-client caps).
* :mod:`.client`  — the blocking HTTP client behind ``repro submit`` and
  the chaos suite.
"""

from .journal import JobJournal, JobRecord, JobState, TERMINAL_STATES
from .jobs import JobStore
from .supervisor import Supervisor, SupervisorConfig
from .server import AdmissionConfig, CampaignService, validate_submission
from .client import ServiceClient, ServiceError, ServiceUnavailable

__all__ = [
    "AdmissionConfig",
    "CampaignService",
    "JobJournal",
    "JobRecord",
    "JobState",
    "JobStore",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "Supervisor",
    "SupervisorConfig",
    "TERMINAL_STATES",
    "validate_submission",
]
