"""Blocking HTTP client for the campaign service (``repro submit``).

Stdlib ``http.client`` only; every method opens a fresh connection (the
server closes after each response).  ``wait_ready`` polls ``/healthz`` so
callers can start a server process and submit without racing its bind.
"""

from __future__ import annotations

import http.client
import json
import time

from ...errors import ReproError


class ServiceUnavailable(ReproError):
    """The service did not answer (connection refused / timed out)."""


class ServiceError(ReproError):
    """The service answered with an error status."""

    def __init__(self, status: int, payload):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload}")


class ServiceClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                decoded = json.loads(raw.decode("utf-8"))
            else:
                decoded = raw.decode("utf-8", errors="replace")
            return response.status, dict(response.getheaders()), decoded
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            raise ServiceUnavailable(
                f"campaign service at {self.host}:{self.port} unreachable: {exc}"
            ) from None
        finally:
            conn.close()

    def _checked(self, method: str, path: str, body: dict | None = None):
        status, headers, payload = self._request(method, path, body)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def wait_ready(self, timeout: float = 10.0, interval: float = 0.1) -> dict:
        """Poll /healthz until the service answers (or raise)."""
        deadline = time.monotonic() + timeout
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceUnavailable as exc:
                last = exc
                time.sleep(interval)
        raise ServiceUnavailable(
            f"campaign service at {self.host}:{self.port} not ready "
            f"after {timeout:.1f}s: {last}"
        )

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> str:
        return self._checked("GET", "/metrics")

    def submit(self, specs: list[dict], client: str = "anonymous",
               batch: str | None = None) -> dict:
        body = {"specs": specs, "client": client}
        if batch:
            body["batch"] = batch
        return self._checked("POST", "/jobs", body)

    def submit_raw(self, body: dict):
        """Unchecked submit: returns (status, headers, payload) for tests
        probing the 4xx surface."""
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._checked("GET", "/jobs")["jobs"]

    def events(self, since: int = -1) -> dict:
        return self._checked("GET", f"/events?since={since}")

    def wait_jobs(self, job_ids: list[str], timeout: float = 300.0,
                  interval: float = 0.2) -> dict[str, dict]:
        """Poll until every job reaches a terminal state; returns records."""
        from .journal import TERMINAL_STATES

        terminal = {state.value for state in TERMINAL_STATES}
        deadline = time.monotonic() + timeout
        records: dict[str, dict] = {}
        remaining = list(job_ids)
        while remaining and time.monotonic() < deadline:
            still = []
            for job_id in remaining:
                record = self.job(job_id)
                if record["state"] in terminal:
                    records[job_id] = record
                else:
                    still.append(job_id)
            remaining = still
            if remaining:
                time.sleep(interval)
        if remaining:
            raise ServiceUnavailable(
                f"jobs did not reach a terminal state within {timeout:.0f}s: {remaining}"
            )
        return records
