"""The supervisor: feeds queued jobs through crash-isolated workers.

One asyncio task per in-flight job (bounded by a semaphore), each attempt
executed in its own sacrificial process via
:class:`~repro.systems.isolation.IsolatedExecutor` — a worker that raises,
hard-exits, or hangs past its heartbeat deadline costs exactly one attempt.
Failed attempts retry with exponential backoff plus jitter (so a thundering
herd of retries cannot synchronize); a cell — one (workload, system) pair —
that keeps killing workers trips a circuit breaker and is *quarantined*:
its remaining jobs are given up immediately with a structured reason
instead of burning worker processes forever.

Every state transition goes through the journal-backed
:class:`~repro.systems.service.jobs.JobStore` *before* the in-memory
update, so a SIGKILL at any instant leaves a journal that replays to a
consistent table.  Graceful drain (SIGTERM) stops dispatch, lets in-flight
jobs finish within a grace period, and leaves the stragglers journaled as
``running`` — which replay re-queues on the next boot: interrupted, never
lost.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass

from ...faults import FaultPlan
from ...observe.events import EventKind
from ..campaign import CampaignRunner, RunSpec, _worker_run
from ..isolation import IsolatedExecutor
from ..metrics import RunResult
from .jobs import JobStore
from .journal import JobRecord, JobState


def _service_worker(task: tuple, _executor_attempt: int):
    """Isolated-worker shim: the service owns the attempt counter (it spans
    restarts), so each executor call is a single attempt whose real number
    rides along in the task tuple."""
    inner, attempt = task
    return _worker_run(inner, attempt)


@dataclass
class SupervisorConfig:
    """Execution policy for the service's worker fleet."""

    jobs: int = 2                    # concurrent worker processes
    timeout: float | None = 120.0    # per-attempt heartbeat deadline (seconds)
    retries: int = 2                 # extra attempts per job
    backoff: float = 0.5             # base retry delay, doubled each attempt
    jitter: float = 0.25             # random extra delay fraction on top
    quarantine_threshold: int = 3    # consecutive worker deaths before a cell is quarantined
    drain_grace: float = 10.0        # seconds to let in-flight jobs finish on drain


class Supervisor:
    """Owns the dispatch loop, the worker processes, and the breaker."""

    def __init__(
        self,
        store: JobStore,
        config: SupervisorConfig | None = None,
        cache_dir=None,
        use_cache: bool = True,
        cache_max_bytes: int | None = None,
        guard: bool = False,
        fault_plan: FaultPlan | None = None,
        cpu_config=None,
        observe: bool = False,
        observer=None,
        rng: random.Random | None = None,
    ):
        self.store = store
        self.config = config or SupervisorConfig()
        self.observer = observer
        self.observe = observe
        self.fault_plan = fault_plan
        self._rng = rng or random.Random()
        # the campaign runner is the single source of truth for cache keys
        # and the disk cache, so a service result and a CLI campaign result
        # for the same spec share one content-addressed entry
        self.runner = CampaignRunner(
            jobs=1,
            use_cache=use_cache,
            cache_dir=cache_dir,
            cpu_config=cpu_config,
            guard=guard,
            fault_plan=fault_plan,
        )
        if cache_max_bytes is not None:
            self.runner.disk.max_bytes = cache_max_bytes
        #: parent fds worker children must close at birth (the HTTP server's
        #: listening sockets — an orphaned worker must never hold the port)
        self.worker_close_fds: list[int] = []
        self._quarantined: dict[tuple[str, str], int] = {}   # cell → deaths at trip
        self._deaths: dict[tuple[str, str], int] = {}        # cell → consecutive deaths
        self._in_flight: set[asyncio.Task] = set()
        self._kick = asyncio.Event()
        self._draining = False
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Wake the dispatch loop (new jobs were queued)."""
        self._kick.set()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def quarantined_cells(self) -> dict[str, int]:
        return {f"{w}/{s}": n for (w, s), n in sorted(self._quarantined.items())}

    async def run(self) -> None:
        """The dispatch loop; returns once drained."""
        self.runner.disk.prune_tmp()
        self.runner.disk.warm_index()
        if self.observer is not None:
            self.observer.emit(EventKind.SERVICE_START, jobs=self.config.jobs)
        semaphore = asyncio.Semaphore(self.config.jobs)
        try:
            while not self._draining:
                job = self.store.next_queued()
                if job is None:
                    self._kick.clear()
                    try:
                        await asyncio.wait_for(self._kick.wait(), timeout=0.5)
                    except asyncio.TimeoutError:
                        pass
                    continue
                await semaphore.acquire()
                if self._draining:
                    semaphore.release()
                    self.store.requeue(job)
                    break
                task = asyncio.create_task(self._run_job(job))
                self._in_flight.add(task)
                task.add_done_callback(lambda t, s=semaphore: (s.release(), self._in_flight.discard(t)))
        finally:
            self._stopped.set()

    async def drain(self) -> int:
        """Graceful shutdown: finish in-flight within the grace period.

        Returns how many jobs were still in flight when drain began.
        Jobs that do not finish in time stay journaled as ``running``;
        replay re-queues them on the next boot.
        """
        in_flight = len(self._in_flight)
        self._draining = True
        self._kick.set()
        if self.observer is not None:
            self.observer.emit(EventKind.SERVICE_DRAIN, in_flight=in_flight)
        if self._in_flight:
            _, pending = await asyncio.wait(
                self._in_flight, timeout=self.config.drain_grace
            )
            for task in pending:
                task.cancel()
        await self._stopped.wait()
        return in_flight

    # ------------------------------------------------------------------
    # one job
    # ------------------------------------------------------------------
    async def _run_job(self, job: JobRecord) -> None:
        try:
            spec = RunSpec.from_dict(job.spec)
        except Exception as exc:  # noqa: BLE001 - admission should catch this
            self.store.mark_failed(job, "error", f"invalid spec: {exc}", job.attempts)
            self._emit_failed(job)
            return

        if job.cell in self._quarantined:
            self._give_up_quarantined(job)
            return

        # dedup against the content-addressed cache first — the memcache
        # story: an overlapping matrix costs one simulation, ever.  Specs a
        # fresh fault plan targets skip the read so the faults actually
        # fire (mirrors CampaignRunner's rule).
        try:
            key = await asyncio.to_thread(self.runner.cache_key, spec)
        except Exception as exc:  # noqa: BLE001 - unknown workload etc.
            self.store.mark_failed(job, "error", f"{type(exc).__name__}: {exc}", job.attempts)
            self._emit_failed(job)
            return
        skip_read = (
            self.fault_plan is not None
            and bool(self.fault_plan.for_label(spec.label))
            and job.recovered == 0
        )
        cached = None if skip_read else self.runner._load_cached(key)
        if cached is not None:
            result = json.loads(json.dumps(cached.to_dict(), sort_keys=True))
            self.store.mark_done(job, result, source="cache")
            self._emit_done(job)
            return

        cfg = self.config
        task = (spec, self.runner.cpu_config, self.runner.guard,
                self.fault_plan, cfg.timeout, self.observe)
        first_attempt = job.attempts + 1  # recovered jobs resume their count
        outcome = None
        for attempt in range(first_attempt, first_attempt + cfg.retries + 1):
            if job.cell in self._quarantined:
                self._give_up_quarantined(job)
                return
            self.store.mark_running(job, attempt)
            executor = IsolatedExecutor(
                _service_worker, jobs=1, timeout=cfg.timeout, retries=0,
                close_fds=tuple(self.worker_close_fds),
            )
            outcomes = await asyncio.to_thread(executor.run, [(task, attempt)])
            outcome = outcomes[0]
            if outcome.ok:
                encoded, _secs, _profile, _tiers = outcome.value
                result = json.loads(encoded)
                self.runner.disk.store(key, {"spec": spec.to_dict(), "result": result})
                self._deaths.pop(job.cell, None)
                self.store.mark_done(job, result, source="computed")
                self._emit_done(job)
                return
            if self._record_death(job):
                self._give_up_quarantined(job)
                return
            if attempt < first_attempt + cfg.retries:
                delay = cfg.backoff * (2 ** (attempt - first_attempt))
                delay *= 1.0 + self._rng.random() * cfg.jitter
                if self.observer is not None:
                    self.observer.emit(
                        EventKind.WORKER_RETRY,
                        task=job.job_id, attempt=attempt,
                        status=outcome.status, delay_s=round(delay, 3),
                    )
                await asyncio.sleep(delay)
        self.store.mark_failed(
            job, outcome.status, outcome.detail,
            attempts=first_attempt + cfg.retries,
        )
        self._emit_failed(job)

    # ------------------------------------------------------------------
    # circuit breaker
    # ------------------------------------------------------------------
    def _record_death(self, job: JobRecord) -> bool:
        """Count a failed attempt; True when the cell just got quarantined."""
        deaths = self._deaths.get(job.cell, 0) + 1
        self._deaths[job.cell] = deaths
        if deaths >= self.config.quarantine_threshold and job.cell not in self._quarantined:
            self._quarantined[job.cell] = deaths
            self.store.counters["cells_quarantined"] += 1
            if self.observer is not None:
                self.observer.emit(
                    EventKind.CELL_QUARANTINED,
                    cell="/".join(job.cell), deaths=deaths,
                )
            return True
        return False

    def _give_up_quarantined(self, job: JobRecord) -> None:
        deaths = self._quarantined.get(job.cell, self.config.quarantine_threshold)
        self.store.mark_given_up(
            job,
            f"cell {'/'.join(job.cell)} quarantined after "
            f"{deaths} consecutive worker death(s)",
        )
        self._emit_failed(job)

    # ------------------------------------------------------------------
    # run-record translation + events
    # ------------------------------------------------------------------
    def _emit_done(self, job: JobRecord) -> None:
        if self.observer is not None:
            self.observer.emit(EventKind.JOB_DONE, job=job.job_id, source=job.source)

    def _emit_failed(self, job: JobRecord) -> None:
        if self.observer is not None:
            self.observer.emit(
                EventKind.JOB_FAILED, job=job.job_id,
                kind=(job.error or {}).get("kind", "error"),
            )

    def result_for(self, job: JobRecord) -> RunResult | None:
        if job.result is None:
            return None
        return RunResult.from_dict(job.result)

    def degradation(self) -> dict:
        """The graceful-degradation counters operators should see."""
        cache = self.runner.disk.stats
        return {
            "quarantined_cells": len(self._quarantined),
            "cache_corrupt_quarantined": cache.corrupt_quarantined,
            "cache_evicted": cache.evicted,
            "cache_stale_dropped": cache.stale_dropped,
            "jobs_recovered": self.store.counters.get("jobs_recovered", 0),
            "journal_torn_lines": self.store.counters.get("journal_torn_lines", 0),
        }
