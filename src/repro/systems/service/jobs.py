"""The job store: in-memory job table kept consistent with the journal.

Single-writer by design — every mutation happens on the service's event
loop, journals first, then updates memory, so the durable record is never
behind the acknowledged one.  The store owns the FIFO queue the supervisor
drains and the per-client accounting admission control consults.
"""

from __future__ import annotations

import itertools
import uuid
from collections import Counter, deque

from ...errors import ConfigError
from .journal import JobJournal, JobRecord, JobState, TERMINAL_STATES


class JobStore:
    """Journal-backed table of every job the service has ever accepted."""

    def __init__(self, journal: JobJournal):
        self.journal = journal
        self.jobs: dict[str, JobRecord] = {}
        self.order: list[str] = []
        self._queue: deque[str] = deque()
        self._seq = itertools.count(1)
        #: service-level degradation / traffic counters
        self.counters: Counter = Counter()

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------
    def recover(self) -> list[JobRecord]:
        """Replay the journal; returns the jobs re-queued by recovery."""
        summary = self.journal.replay()
        self.jobs = summary.jobs
        self.order = summary.order
        self._queue = deque(
            job_id for job_id in summary.order
            if self.jobs[job_id].state is JobState.QUEUED
        )
        self.counters["journal_torn_lines"] += summary.torn_lines
        recovered = [self.jobs[j] for j in summary.recovered]
        for job in recovered:
            # the requeue is durable too: a second crash must not re-read
            # the stale 'running' line and double-count the recovery
            self.journal.log_state(job.job_id, JobState.QUEUED, recovered=True)
        self.counters["jobs_recovered"] += len(recovered)
        # keep the id sequence clear of everything already in the journal
        self._seq = itertools.count(len(self.order) + 1)
        return recovered

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, specs: list[dict], client: str, batch: str | None = None) -> list[JobRecord]:
        """Journal and enqueue one batch; the records are durable on return."""
        if not specs:
            raise ConfigError("a submission needs at least one run spec")
        batch_id = batch or f"b{uuid.uuid4().hex[:10]}"
        records = []
        for spec in specs:
            job = JobRecord(
                job_id=f"j{next(self._seq):06d}-{uuid.uuid4().hex[:8]}",
                spec=dict(spec),
                client=client,
                batch=batch_id,
            )
            self.journal.log_submit(job)
            self.jobs[job.job_id] = job
            self.order.append(job.job_id)
            self._queue.append(job.job_id)
            records.append(job)
        self.counters["jobs_submitted"] += len(records)
        return records

    # ------------------------------------------------------------------
    # queue
    # ------------------------------------------------------------------
    def next_queued(self) -> JobRecord | None:
        while self._queue:
            job = self.jobs[self._queue.popleft()]
            if job.state is JobState.QUEUED:
                return job
        return None

    def requeue(self, job: JobRecord) -> None:
        """Put an interrupted job back at the end of the queue (drain path)."""
        self.journal.log_state(job.job_id, JobState.QUEUED, requeued=True)
        job.state = JobState.QUEUED
        self._queue.append(job.job_id)

    @property
    def queued(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state is JobState.QUEUED)

    @property
    def running(self) -> int:
        return sum(1 for j in self.jobs.values() if j.state is JobState.RUNNING)

    def active_for(self, client: str) -> int:
        """Jobs this client has in a non-terminal state (admission cap)."""
        return sum(
            1 for j in self.jobs.values()
            if j.client == client and j.state not in TERMINAL_STATES
        )

    def state_counts(self) -> dict[str, int]:
        counts = Counter(j.state.value for j in self.jobs.values())
        return {state.value: counts.get(state.value, 0) for state in JobState}

    # ------------------------------------------------------------------
    # transitions (journal first, memory second)
    # ------------------------------------------------------------------
    def mark_running(self, job: JobRecord, attempt: int) -> None:
        self.journal.log_state(job.job_id, JobState.RUNNING, attempt=attempt)
        job.state = JobState.RUNNING
        job.attempts = attempt

    def mark_done(self, job: JobRecord, result: dict, source: str) -> None:
        self.journal.log_state(job.job_id, JobState.DONE, result=result, source=source)
        job.state = JobState.DONE
        job.result = result
        job.source = source
        self.counters["jobs_done"] += 1
        self.counters[f"jobs_done_{source}"] += 1

    def mark_failed(self, job: JobRecord, kind: str, cause: str, attempts: int) -> None:
        error = {"kind": kind, "cause": cause, "attempts": attempts}
        self.journal.log_state(job.job_id, JobState.FAILED, error=error)
        job.state = JobState.FAILED
        job.error = error
        self.counters["jobs_failed"] += 1

    def mark_given_up(self, job: JobRecord, reason: str) -> None:
        error = {"kind": "given_up", "cause": reason, "attempts": job.attempts}
        self.journal.log_state(job.job_id, JobState.GIVEN_UP, error=error)
        job.state = JobState.GIVEN_UP
        job.error = error
        self.counters["jobs_given_up"] += 1
