"""The service's HTTP+JSON surface: stdlib asyncio, no framework.

Endpoints
---------
``POST /jobs``        submit a batch of RunSpecs → 202 with job ids
``GET  /jobs``        summary of every job the service knows
``GET  /jobs/<id>``   one job's full record (result inline when done)
``GET  /healthz``     liveness + state counts + degradation counters
``GET  /metrics``     Prometheus textfile (observe exporter + service counters)
``GET  /events``      observe-bus progress events (``?since=<seq>`` to tail)

Admission control happens *before* anything is journaled: a malformed
submission gets a structured 400 naming each bad spec, a full queue or a
client over its concurrency cap gets 429 with ``Retry-After`` — the
backpressure contract that keeps the journal bounded under overload.  A
request that is acknowledged with 202 is durable: its submit records are
fsync'd to the journal before the response bytes leave the socket.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from ...errors import ConfigError, ReproError
from ...observe.events import EventKind
from ...observe.export import prometheus_text
from ..campaign import RunSpec, build_workload
from .jobs import JobStore
from .supervisor import Supervisor

#: request body size cap: a RunSpec batch is small; anything huge is abuse
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclass
class AdmissionConfig:
    """What the service will accept before pushing back."""

    max_queue: int = 256         # queued jobs before 429
    per_client_limit: int = 64   # non-terminal jobs one client may hold
    retry_after_s: int = 2       # hint sent with every 429


def validate_submission(payload) -> tuple[list[dict], list[dict]]:
    """Check a POST /jobs body; returns (normalized specs, structured errors).

    Every error names the offending spec index and says what is wrong, so a
    client can fix its request instead of guessing.
    """
    errors: list[dict] = []
    if not isinstance(payload, dict):
        return [], [{"index": None, "error": "body must be a JSON object"}]
    raw = payload.get("specs")
    if not isinstance(raw, list) or not raw:
        return [], [{"index": None, "error": "'specs' must be a non-empty list"}]
    specs: list[dict] = []
    for index, item in enumerate(raw):
        if not isinstance(item, dict):
            errors.append({"index": index, "error": "spec must be a JSON object"})
            continue
        try:
            spec = RunSpec.from_dict(item)
            build_workload(spec)  # rejects unknown workload / microkernel ids
        except (ConfigError, ReproError) as exc:
            errors.append({"index": index, "error": str(exc)})
        except TypeError as exc:
            errors.append({"index": index, "error": f"bad spec fields: {exc}"})
        else:
            specs.append(spec.to_dict())
    return specs, errors


class CampaignService:
    """Routes HTTP requests onto the job store and supervisor."""

    def __init__(
        self,
        store: JobStore,
        supervisor: Supervisor,
        admission: AdmissionConfig | None = None,
        observer=None,
    ):
        self.store = store
        self.supervisor = supervisor
        self.admission = admission or AdmissionConfig()
        self.observer = observer
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, host, port)
        # fork'd workers inherit these listening fds; they must close them
        # at birth or an orphaned (hung) worker would keep the port bound
        # after a SIGKILL'd service dies, blocking its restart
        self.supervisor.worker_close_fds[:] = [
            sock.fileno() for sock in self._server.sockets
        ]
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            status, headers, payload = self._route(method, path, query, body)
            await self._respond(writer, status, headers, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = b""
        if 0 < length <= MAX_BODY_BYTES:
            body = await reader.readexactly(length)
        path, _, query_string = target.partition("?")
        query = {}
        for pair in query_string.split("&"):
            if "=" in pair:
                k, _, v = pair.partition("=")
                query[k] = v
        return method.upper(), path, query, body

    async def _respond(self, writer, status: tuple[int, str], headers: dict, payload):
        code, reason = status
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            content_type = "application/json"
        else:
            body = str(payload).encode("utf-8")
            content_type = headers.pop("content-type", "text/plain; charset=utf-8")
        head = [f"HTTP/1.1 {code} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        head += [f"{k}: {v}" for k, v in headers.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, method: str, path: str, query: dict, body: bytes):
        if method == "POST" and path == "/jobs":
            return self._post_jobs(body)
        if method == "GET" and path == "/jobs":
            return self._get_jobs()
        if method == "GET" and path.startswith("/jobs/"):
            return self._get_job(path[len("/jobs/"):])
        if method == "GET" and path == "/healthz":
            return self._get_healthz()
        if method == "GET" and path == "/metrics":
            return self._get_metrics()
        if method == "GET" and path == "/events":
            return self._get_events(query)
        return (404, "Not Found"), {}, {"error": f"no route for {method} {path}"}

    # -- submission ----------------------------------------------------
    def _post_jobs(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return (400, "Bad Request"), {}, {
                "error": "body is not valid JSON", "details": [{"error": str(exc)}],
            }
        specs, errors = validate_submission(payload)
        if errors:
            self._reject("validation")
            return (400, "Bad Request"), {}, {
                "error": "invalid submission", "details": errors,
            }
        client = str(payload.get("client", "anonymous"))
        adm = self.admission
        if self.supervisor.draining:
            self._reject("draining")
            return (503, "Service Unavailable"), {
                "Retry-After": str(adm.retry_after_s),
            }, {"error": "service is draining"}
        if self.store.queued + len(specs) > adm.max_queue:
            self._reject("queue_full")
            self.store.counters["rejected_backpressure"] += 1
            return (429, "Too Many Requests"), {
                "Retry-After": str(adm.retry_after_s),
            }, {
                "error": "queue full",
                "queued": self.store.queued,
                "max_queue": adm.max_queue,
            }
        if self.store.active_for(client) + len(specs) > adm.per_client_limit:
            self._reject("client_limit")
            self.store.counters["rejected_client_limit"] += 1
            return (429, "Too Many Requests"), {
                "Retry-After": str(adm.retry_after_s),
            }, {
                "error": f"client {client!r} over its concurrent-job limit",
                "active": self.store.active_for(client),
                "per_client_limit": adm.per_client_limit,
            }
        records = self.store.submit(specs, client=client, batch=payload.get("batch"))
        if self.observer is not None:
            for job in records:
                self.observer.emit(EventKind.JOB_ADMITTED, job=job.job_id, client=client)
        self.supervisor.kick()
        return (202, "Accepted"), {}, {
            "batch": records[0].batch,
            "jobs": [job.job_id for job in records],
        }

    def _reject(self, reason: str) -> None:
        if self.observer is not None:
            self.observer.emit(EventKind.JOB_REJECTED, reason=reason)

    # -- inspection ----------------------------------------------------
    def _get_jobs(self):
        return (200, "OK"), {}, {
            "jobs": [
                {"job": j.job_id, "label": j.label, "state": j.state.value,
                 "batch": j.batch, "client": j.client}
                for j in (self.store.jobs[i] for i in self.store.order)
            ],
        }

    def _get_job(self, job_id: str):
        job = self.store.jobs.get(job_id)
        if job is None:
            return (404, "Not Found"), {}, {"error": f"unknown job {job_id!r}"}
        return (200, "OK"), {}, job.to_dict()

    def _get_healthz(self):
        return (200, "OK"), {}, {
            "status": "draining" if self.supervisor.draining else "ok",
            "jobs": self.store.state_counts(),
            "queued": self.store.queued,
            "quarantined": self.supervisor.quarantined_cells,
            "degradation": self.supervisor.degradation(),
        }

    def _get_metrics(self):
        lines = []
        if self.observer is not None:
            lines.append(prometheus_text(self.observer).rstrip("\n"))
        lines += [
            "# HELP repro_service_jobs Jobs by state.",
            "# TYPE repro_service_jobs gauge",
        ]
        for state, count in sorted(self.store.state_counts().items()):
            lines.append(f'repro_service_jobs{{state="{state}"}} {count}')
        lines += [
            "# HELP repro_service_degradation_total Graceful-degradation events.",
            "# TYPE repro_service_degradation_total counter",
        ]
        for name, value in sorted(self.supervisor.degradation().items()):
            lines.append(f'repro_service_degradation_total{{kind="{name}"}} {value}')
        return (200, "OK"), {"content-type": "text/plain; version=0.0.4"}, "\n".join(lines) + "\n"

    def _get_events(self, query: dict):
        try:
            since = int(query.get("since", "-1"))
        except ValueError:
            since = -1
        events = []
        if self.observer is not None:
            events = [e.to_dict() for e in self.observer.events if e.seq > since]
        next_seq = events[-1]["seq"] if events else since
        return (200, "OK"), {}, {"events": events, "next": next_seq}
