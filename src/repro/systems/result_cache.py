"""Content-addressed on-disk cache of campaign run results.

A cache key is the SHA-256 of everything that determines a run's outcome:
the lowered kernel (the exact assembly the core executes), the input spec
(workload id, scale, seed), the CPU / DSA / energy configurations, and a
fingerprint of the simulator's own source code.  Unchanged runs are served
instantly; touching any input — including the simulator itself — misses
cleanly instead of serving stale results.

Integrity: every committed entry embeds a SHA-256 checksum of its own
payload, verified on load.  Corrupted or truncated entries are *quarantined*
to ``corrupt/`` under the cache root (never silently deleted, so operators
can inspect what went wrong) and treated as misses: the campaign falls back
to re-running the simulation.  Writes are write-then-rename with an fsync
of both the temp file and the directory, so a host power-loss cannot leave
a zero-length committed entry — the checksum covers whatever torn-write
window remains.

Capacity: an optional LRU size budget (``max_bytes``) evicts the
least-recently-used entries once the cache grows past it; a warm index of
``key → (size, last-used)`` is built from one directory scan at startup.

Every degradation event (quarantine, eviction, stale drop) is counted on
:class:`CacheStats` so callers can *report* graceful degradation instead of
leaving it invisible.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

#: bump when the serialized RunResult layout changes incompatibly
#: (v2: entries embed an ``integrity`` checksum verified on load)
CACHE_VERSION = 2

#: environment override for the cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: subdirectory of the cache root holding quarantined (damaged) entries
CORRUPT_DIR = "corrupt"

#: payload key carrying the embedded checksum
INTEGRITY_FIELD = "integrity"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache/results`` under the
    working directory (kept project-local on purpose, like .pytest_cache)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(".repro-cache") / "results"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every source file in the ``repro`` package.

    Part of every cache key, so editing the simulator invalidates all
    previously cached results without any manual cache management.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def content_key(parts: dict) -> str:
    """Deterministic key from a dict of run-identity components."""
    canonical = json.dumps(parts, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


def payload_checksum(payload: dict) -> str:
    """Checksum of a payload's canonical JSON, excluding the checksum field."""
    body = {k: v for k, v in payload.items() if k != INTEGRITY_FIELD}
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class CacheStats:
    """Degradation and traffic counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_quarantined: int = 0   # damaged entries moved to corrupt/
    stale_dropped: int = 0         # version-mismatch entries removed
    evicted: int = 0               # LRU evictions under the size budget

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_quarantined": self.corrupt_quarantined,
            "stale_dropped": self.stale_dropped,
            "evicted": self.evicted,
        }

    def degradation(self) -> dict:
        """The graceful-degradation subset operators care about."""
        return {
            "corrupt_quarantined": self.corrupt_quarantined,
            "stale_dropped": self.stale_dropped,
            "evicted": self.evicted,
        }


class ResultDiskCache:
    """Maps content keys to JSON payloads under one directory.

    ``max_bytes`` enables the LRU size budget: each ``store`` that pushes
    the total entry size past the budget evicts least-recently-used entries
    until it fits (the entry just stored is never evicted).
    """

    def __init__(
        self,
        root: Path | str | None = None,
        enabled: bool = True,
        max_bytes: int | None = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        #: key → [size_bytes, last_used_tick]; populated by warm_index()
        self._index: dict[str, list] = {}
        self._indexed = False
        self._tick = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def corrupt_dir(self) -> Path:
        return self.root / CORRUPT_DIR

    def _entry_files(self):
        """Every committed entry file, excluding the quarantine area."""
        if not self.root.exists():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == CORRUPT_DIR:
                continue
            yield from sorted(shard.glob("*.json"))

    # ------------------------------------------------------------------
    # warm index / LRU bookkeeping
    # ------------------------------------------------------------------
    def warm_index(self) -> int:
        """One directory scan building the ``key → (size, last-used)`` index
        (last-used seeded from file mtimes).  Returns the entry count."""
        self._index = {}
        order = []
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            order.append((stat.st_mtime, path.stem, stat.st_size))
        order.sort()
        for mtime, key, size in order:
            self._tick += 1
            self._index[key] = [size, self._tick]
        self._indexed = True
        return len(self._index)

    def _ensure_index(self) -> None:
        if not self._indexed:
            self.warm_index()

    def _touch(self, key: str) -> None:
        entry = self._index.get(key)
        if entry is not None:
            self._tick += 1
            entry[1] = self._tick

    def total_bytes(self) -> int:
        self._ensure_index()
        return sum(size for size, _ in self._index.values())

    def _evict_over_budget(self, protect: str | None = None) -> int:
        """Drop least-recently-used entries until the budget fits."""
        if self.max_bytes is None:
            return 0
        removed = 0
        total = self.total_bytes()
        by_age = sorted(self._index.items(), key=lambda kv: kv[1][1])
        for key, (size, _) in by_age:
            if total <= self.max_bytes:
                break
            if key == protect:
                continue
            self.path_for(key).unlink(missing_ok=True)
            del self._index[key]
            total -= size
            removed += 1
        self.stats.evicted += removed
        return removed

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside instead of deleting the evidence."""
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            target = self.corrupt_dir / path.name
            n = 0
            while target.exists():
                n += 1
                target = self.corrupt_dir / f"{path.stem}.{n}{path.suffix}"
            os.replace(path, target)
        except OSError:
            path.unlink(missing_ok=True)  # quarantine best-effort, miss regardless
        self.stats.corrupt_quarantined += 1
        self._index.pop(path.stem, None)

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------
    def load(self, key: str) -> dict | None:
        """The cached payload, or ``None`` on miss *or* corruption."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            # a half-written or damaged entry must behave like a miss
            self._quarantine(path)
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("cache_version") != CACHE_VERSION:
            # an old layout, not damage: drop it so the slot recomputes cleanly
            path.unlink(missing_ok=True)
            self._index.pop(key, None)
            self.stats.stale_dropped += 1
            self.stats.misses += 1
            return None
        if payload.get(INTEGRITY_FIELD) != payload_checksum(payload):
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(key)
        return payload

    def store(self, key: str, payload: dict) -> None:
        if not self.enabled:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"cache_version": CACHE_VERSION, **payload}
        payload[INTEGRITY_FIELD] = payload_checksum(payload)
        # write-then-rename so a crashed writer never leaves a torn entry;
        # fsync the file *and* the directory so a host power-loss cannot
        # leave a committed-but-empty entry behind the rename
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self._fsync_dir(path.parent)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self.stats.stores += 1
        if self.max_bytes is not None or self._indexed:
            self._ensure_index()
            self._tick += 1
            self._index[key] = [path.stat().st_size, self._tick]
            self._evict_over_budget(protect=key)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry (including quarantined ones and orphaned temp
        files); returns how many files were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for pattern in ("*.json", "*.tmp"):
            for path in self.root.rglob(pattern):
                path.unlink(missing_ok=True)
                removed += 1
        self._index = {}
        self._indexed = False
        return removed

    def prune_tmp(self) -> int:
        """Remove orphaned ``*.tmp`` files left behind by crashed writers.

        The write path is mkstemp-then-rename, so a worker killed mid-store
        leaves a ``*.tmp`` beside the entries.  They are harmless to reads
        but accumulate forever; the campaign runner prunes them on startup.
        """
        removed = 0
        if not self.enabled or not self.root.exists():
            return removed
        for path in self.root.rglob("*.tmp"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
