"""Content-addressed on-disk cache of campaign run results.

A cache key is the SHA-256 of everything that determines a run's outcome:
the lowered kernel (the exact assembly the core executes), the input spec
(workload id, scale, seed), the CPU / DSA / energy configurations, and a
fingerprint of the simulator's own source code.  Unchanged runs are served
instantly; touching any input — including the simulator itself — misses
cleanly instead of serving stale results.

Corrupted or unreadable entries are treated as misses (and removed), never
as errors: the campaign falls back to re-running the simulation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path

#: bump when the serialized RunResult layout changes incompatibly
CACHE_VERSION = 1

#: environment override for the cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache/results`` under the
    working directory (kept project-local on purpose, like .pytest_cache)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(".repro-cache") / "results"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every source file in the ``repro`` package.

    Part of every cache key, so editing the simulator invalidates all
    previously cached results without any manual cache management.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def content_key(parts: dict) -> str:
    """Deterministic key from a dict of run-identity components."""
    canonical = json.dumps(parts, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultDiskCache:
    """Maps content keys to JSON payloads under one directory."""

    def __init__(self, root: Path | str | None = None, enabled: bool = True):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> dict | None:
        """The cached payload, or ``None`` on miss *or* corruption."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            # a half-written or damaged entry must behave like a miss
            path.unlink(missing_ok=True)
            return None
        if not isinstance(payload, dict) or payload.get("cache_version") != CACHE_VERSION:
            path.unlink(missing_ok=True)
            return None
        return payload

    def store(self, key: str, payload: dict) -> None:
        if not self.enabled:
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"cache_version": CACHE_VERSION, **payload}
        # write-then-rename so a crashed writer never leaves a torn entry
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    def clear(self) -> int:
        """Delete every entry (and orphaned temp files); returns how many
        files were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for pattern in ("*.json", "*.tmp"):
            for path in self.root.rglob(pattern):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def prune_tmp(self) -> int:
        """Remove orphaned ``*.tmp`` files left behind by crashed writers.

        The write path is mkstemp-then-rename, so a worker killed mid-store
        leaves a ``*.tmp`` beside the entries.  They are harmless to reads
        but accumulate forever; the campaign runner prunes them on startup.
        """
        removed = 0
        if not self.enabled or not self.root.exists():
            return removed
        for path in self.root.rglob("*.tmp"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
