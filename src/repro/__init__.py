"""repro — Dynamic SIMD Assembler (DSA) reproduction.

A trace-driven simulation stack reproducing "Boosting SIMD Benefits through
a Run-time and Energy Efficient DLP Detection" (Jordan, DATE 2019):

* :mod:`repro.isa` — ARMv7-like scalar + NEON vector instruction set;
* :mod:`repro.cpu` — functional core with a 2-wide timing model;
* :mod:`repro.memory` — L1/L2/DRAM hierarchy;
* :mod:`repro.neon` — the 128-bit NEON engine;
* :mod:`repro.compiler` — loop-kernel IR + the two static vectorizer
  baselines (compiler auto-vectorization, hand-written NEON library code);
* :mod:`repro.dsa` — the paper's contribution: runtime DLP detection;
* :mod:`repro.energy` — McPAT-substitute energy/area models;
* :mod:`repro.workloads` — MiBench/OpenCV-substitute benchmarks;
* :mod:`repro.systems` — the four evaluated system setups;
* :mod:`repro.experiments` — one harness per paper table/figure.

Quickstart::

    from repro.workloads import load
    from repro.systems import run_system

    workload = load("rgb_gray", "test")
    base = run_system("arm_original", workload)
    dsa = run_system("neon_dsa", workload)
    print(f"DSA speedup: {dsa.improvement_over(base):+.1%}")
"""

from .dsa import DSAConfig, DSAFeatures, DynamicSIMDAssembler
from .systems import SYSTEM_NAMES, SystemResult, run_all_systems, run_system
from .workloads import PAPER_WORKLOADS, load, load_all

__version__ = "1.0.0"

__all__ = [
    "DSAConfig",
    "DSAFeatures",
    "DynamicSIMDAssembler",
    "SYSTEM_NAMES",
    "SystemResult",
    "run_all_systems",
    "run_system",
    "PAPER_WORKLOADS",
    "load",
    "load_all",
    "__version__",
]
