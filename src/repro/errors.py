"""Exception hierarchy for the repro package.

Every error raised by the simulator stack derives from :class:`ReproError`
so callers can catch simulator failures without also swallowing Python
programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class AssemblerError(ReproError):
    """Malformed assembly source (bad mnemonic, operand, or label)."""

    def __init__(self, message: str, line_no: int | None = None, line: str | None = None):
        self.line_no = line_no
        self.line = line
        if line_no is not None:
            message = f"line {line_no}: {message}"
            if line is not None:
                message = f"{message} (in {line!r})"
        super().__init__(message)


class ExecutionError(ReproError):
    """The functional executor hit an illegal state (bad PC, bad opcode)."""


class MemoryError_(ReproError):
    """Out-of-range or misaligned memory access."""


class TimingError(ReproError):
    """The timing model was driven with inconsistent events."""


class CompilerError(ReproError):
    """The kernel IR could not be lowered or analyzed."""


class VectorizationError(ReproError):
    """A vectorizer (static or DSA) was asked to produce impossible code."""


class ConfigError(ReproError):
    """Invalid system or DSA configuration."""


class RunTimeoutError(ReproError):
    """A kernel run exceeded its wall-clock budget."""


class InjectedFaultError(ReproError):
    """A deliberately injected fault fired (fault-injection campaigns)."""
