"""Loop profiling over the retire stream.

A lightweight retire hook that discovers loops the same way the DSA's Loop
Detection stage does (taken backward branches) and aggregates per-loop
statistics: invocations, iterations, body size, share of dynamic
instructions.  Useful for understanding where a workload's DLP lives before
pointing the DSA at it, and for the examples' reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import TraceRecord


@dataclass
class LoopProfile:
    """Aggregate statistics for one static loop."""

    loop_id: int
    end_pc: int
    invocations: int = 0
    iterations: int = 0
    instructions: int = 0

    @property
    def body_instructions(self) -> int:
        """Static body length in instructions (from the PC range)."""
        return (self.end_pc - self.loop_id) // 4 + 1

    @property
    def avg_trip_count(self) -> float:
        return self.iterations / self.invocations if self.invocations else 0.0


class LoopProfiler:
    """Retire hook building a table of the program's loops."""

    def __init__(self) -> None:
        self.loops: dict[int, LoopProfile] = {}
        self.total_instructions = 0
        self._active: dict[int, int] = {}  # loop_id -> iterations this invocation

    def __call__(self, record: TraceRecord) -> None:
        self.total_instructions += 1
        pc = record.pc

        # attribute the instruction to every loop whose body contains it
        for loop_id, profile in self.loops.items():
            if loop_id <= pc <= profile.end_pc and loop_id in self._active:
                profile.instructions += 1

        if record.is_backward_branch:
            loop_id, end_pc = record.next_pc, pc
            profile = self.loops.get(loop_id)
            if profile is None:
                profile = LoopProfile(loop_id=loop_id, end_pc=end_pc)
                self.loops[loop_id] = profile
            if loop_id not in self._active:
                profile.invocations += 1
                self._active[loop_id] = 1
                # the first (already retired) iteration is counted now
                profile.iterations += 1
                profile.instructions += profile.body_instructions
            profile.iterations += 1
            self._active[loop_id] += 1
        else:
            # leaving a loop's range closes its invocation
            for loop_id in list(self._active):
                profile = self.loops[loop_id]
                if not (loop_id <= pc <= profile.end_pc):
                    del self._active[loop_id]

    # ------------------------------------------------------------------
    def hottest(self, top: int = 10) -> list[LoopProfile]:
        """Loops sorted by dynamic instruction share, hottest first."""
        return sorted(self.loops.values(), key=lambda p: -p.instructions)[:top]

    def coverage(self) -> float:
        """Fraction of retired instructions spent inside detected loops."""
        if not self.total_instructions:
            return 0.0
        in_loops = sum(p.instructions for p in self.loops.values())
        return min(1.0, in_loops / self.total_instructions)

    def table(self) -> str:
        lines = [f"{'loop':>10s} {'invocs':>7s} {'iters':>8s} {'avg_trip':>9s} {'instrs':>9s} {'share':>7s}"]
        for p in self.hottest():
            share = p.instructions / self.total_instructions if self.total_instructions else 0
            lines.append(
                f"0x{p.loop_id:08x} {p.invocations:7d} {p.iterations:8d} "
                f"{p.avg_trip_count:9.1f} {p.instructions:9d} {share:6.1%}"
            )
        lines.append(f"loop coverage: {self.coverage():.1%} of {self.total_instructions} instructions")
        return "\n".join(lines)
