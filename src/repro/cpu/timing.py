"""Cycle-accounting model: 2-wide in-order issue with a RAW scoreboard,
static branch prediction, memory stalls, and a decoupled NEON pipeline.

This stands in for gem5's O3CPU timing.  It is intentionally analytical —
what the experiments need is a *consistent relative* cost model between the
scalar pipeline and the NEON engine, which is also all the paper's
trace-level methodology provided (Methodology, Fig. 30).

The DSA replaces the timing of vectorized loop iterations: the core keeps
retiring the scalar instructions functionally, but while ``suppressed`` is
set their cycles are not charged; the DSA charges the NEON burst instead
(`charge_vector_burst`) plus its own latencies (`add_stall`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instructions import (
    Alu,
    AluKind,
    Branch,
    BranchReg,
    Cmp,
    FloatKind,
    FloatOp,
    Halt,
    Instruction,
    Mem,
    Mov,
    Mul,
    MulKind,
    Nop,
)
from ..isa.neon import (
    VBinKind,
    VBinOp,
    VBsl,
    VCmp,
    VDup,
    VDupImm,
    VInstr,
    VLoad,
    VLoadLane,
    VMla,
    VMovFromCore,
    VMovQ,
    VMovToCore,
    VShiftImm,
    VStore,
    VStoreLane,
    VUnary,
)
from .config import CPUConfig


@dataclass
class TimingStats:
    """Aggregate counters the experiments report."""

    scalar_instructions: int = 0
    vector_instructions: int = 0
    suppressed_instructions: int = 0
    branch_mispredicts: int = 0
    memory_stall_cycles: int = 0
    dsa_stall_cycles: int = 0


class TimingModel:
    """Accumulates cycles for a single core + vector engine."""

    def __init__(self, config: CPUConfig, num_vector_regs: int = 16):
        self.config = config
        self.stats = TimingStats()
        # The whole scoreboard counts in integer cycles: accumulating floats
        # drifts over 1e8-instruction runs and makes the exact-equality
        # comparisons below hazardous.  Fractional latencies are rounded
        # exactly once, where they enter (see ``add_stall``).
        self._reg_ready = [0] * 16
        self._flags_ready = 0
        # vector register scoreboard, sized to the backend's register file
        self._q_ready = [0] * num_vector_regs
        self._now = 0          # next scalar issue opportunity
        self._slot_cycle = -1  # cycle of the current issue group
        self._slots_used = 0
        self._neon_next_issue = 0
        self._neon_burst_open = False
        self._last_completion = 0

    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Total cycles elapsed so far (scalar and vector drained)."""
        return max(self._now, self._last_completion, self._neon_next_issue)

    # ------------------------------------------------------------------
    # scalar path
    # ------------------------------------------------------------------
    def scalar_latency(self, instr: Instruction) -> int:
        lat = self.config.scalar
        if isinstance(instr, Alu):
            return lat.alu
        if isinstance(instr, Mov):
            return lat.mov
        if isinstance(instr, Cmp):
            return lat.cmp
        if isinstance(instr, Mul):
            if instr.kind is MulKind.MLA:
                return lat.mla
            if instr.kind in (MulKind.SDIV, MulKind.UDIV):
                return lat.div
            return lat.mul
        if isinstance(instr, FloatOp):
            if instr.kind is FloatKind.FDIV:
                return lat.fdiv
            if instr.kind is FloatKind.FMUL:
                return lat.fmul
            return lat.fadd
        if isinstance(instr, Mem):
            return lat.store if instr.is_store else lat.load
        if isinstance(instr, (Branch, BranchReg)):
            return lat.branch
        if isinstance(instr, (Nop, Halt)):
            return 1
        raise ValueError(f"no scalar latency for {instr!r}")

    def _issue_slot(self, earliest: int) -> int:
        """Find the issue cycle respecting the superscalar width."""
        cycle = max(self._now, earliest)
        if cycle == self._slot_cycle and self._slots_used < self.config.issue_width:
            self._slots_used += 1
        else:
            cycle = max(cycle, self._slot_cycle + 1 if self._slots_used else cycle)
            self._slot_cycle = cycle
            self._slots_used = 1
        self._now = cycle
        return cycle

    def charge_scalar(
        self,
        instr: Instruction,
        mem_latency: int = 0,
        mispredicted: bool = False,
        reads_flags: bool = False,
        sets_flags: bool = False,
    ) -> None:
        """Account one retired scalar instruction."""
        self.stats.scalar_instructions += 1
        earliest = max(
            (self._reg_ready[r.index] for r in instr.regs_read()),
            default=0,
        )
        if reads_flags:
            earliest = max(earliest, self._flags_ready)
        issue = self._issue_slot(earliest)
        completion = issue + self.scalar_latency(instr) + mem_latency
        if mem_latency:
            self.stats.memory_stall_cycles += mem_latency
        writeback_base = (
            instr.addr.base if isinstance(instr, Mem) and instr.addr.writes_back else None
        )
        for r in instr.regs_written():
            # address-generation writeback (post/pre-index) resolves early,
            # so pointer-bump loops do not serialize on cache misses
            if r == writeback_base:
                self._reg_ready[r.index] = issue + 1
            else:
                self._reg_ready[r.index] = completion
        if sets_flags:
            self._flags_ready = completion
        self._last_completion = max(self._last_completion, completion)
        if mispredicted:
            self.stats.branch_mispredicts += 1
            bubble = issue + 1 + self.config.mispredict_penalty
            self._now = max(self._now, bubble)
            self._slot_cycle = -1
            self._slots_used = 0

    def charge_scalar_decoded(
        self,
        op,
        mem_latency: int = 0,
        mispredicted: bool = False,
    ) -> None:
        """Account one retired scalar instruction from its predecoded form.

        Cycle-for-cycle identical to :meth:`charge_scalar`; the difference is
        purely that the register sets, latency and flag behaviour arrive
        precomputed on the :class:`~repro.cpu.predecode.DecodedOp` instead of
        being re-derived from the instruction object on every retirement.
        """
        self.stats.scalar_instructions += 1
        ready = self._reg_ready
        earliest = 0
        for i in op.read_idx:
            t = ready[i]
            if t > earliest:
                earliest = t
        if op.reads_flags and self._flags_ready > earliest:
            earliest = self._flags_ready
        issue = self._issue_slot(earliest)
        completion = issue + op.latency + mem_latency
        if mem_latency:
            self.stats.memory_stall_cycles += mem_latency
        wb = op.wb_index
        for i in op.write_idx:
            # address-generation writeback (post/pre-index) resolves early,
            # so pointer-bump loops do not serialize on cache misses
            ready[i] = issue + 1 if i == wb else completion
        if op.sets_flags:
            self._flags_ready = completion
        if completion > self._last_completion:
            self._last_completion = completion
        if mispredicted:
            self.stats.branch_mispredicts += 1
            bubble = issue + 1 + self.config.mispredict_penalty
            self._now = max(self._now, bubble)
            self._slot_cycle = -1
            self._slots_used = 0

    # ------------------------------------------------------------------
    # vector path (decoupled NEON pipeline)
    # ------------------------------------------------------------------
    def vector_latency(self, instr: VInstr) -> int:
        lat = self.config.vector
        if isinstance(instr, (VLoad,)):
            return lat.load
        if isinstance(instr, (VStore,)):
            return lat.store
        if isinstance(instr, (VLoadLane, VStoreLane)):
            return lat.lane_mem
        if isinstance(instr, VBinOp):
            return lat.mul if instr.kind is VBinKind.VMUL else lat.arith
        if isinstance(instr, VMla):
            return lat.mla
        if isinstance(instr, VCmp):
            return lat.cmp
        if isinstance(instr, VBsl):
            return lat.bsl
        if isinstance(instr, VShiftImm):
            return lat.shift
        if isinstance(instr, (VDup, VDupImm)):
            return lat.dup
        if isinstance(instr, (VMovToCore, VMovFromCore)):
            return lat.lane_mov
        if isinstance(instr, (VMovQ, VUnary)):
            return lat.arith
        raise ValueError(f"no vector latency for {instr!r}")

    def charge_vector(self, instr: VInstr, mem_latency: int = 0) -> None:
        """Account one NEON instruction dispatched from the core.

        The core spends an issue slot dispatching it; execution proceeds in
        the NEON pipeline, which sustains one operation per cycle once the
        burst has filled the pipeline (``pipeline_depth`` is paid on the
        first instruction of a burst).
        """
        self.stats.vector_instructions += 1
        dispatch = self._issue_slot(
            max((self._reg_ready[r.index] for r in instr.regs_read()), default=0)
        )
        start = max(dispatch, self._neon_next_issue)
        operands_ready = max(
            (self._q_ready[q.index] for q in instr.qregs_read()), default=0
        )
        start = max(start, operands_ready)
        if not self._neon_burst_open:
            start += self.config.vector.pipeline_depth
            self._neon_burst_open = True
        if mem_latency:
            self.stats.memory_stall_cycles += mem_latency
        # one operation enters the NEON pipeline per cycle; memory latency
        # overlaps with later operations (only RAW dependents wait for it)
        self._neon_next_issue = start + 1
        completion = start + self.vector_latency(instr) + mem_latency
        for q in instr.qregs_written():
            self._q_ready[q.index] = completion
        for r in instr.regs_written():
            # base-register writeback resolves at address generation, not at
            # data return, so pointer-bump chains do not serialize on misses
            self._reg_ready[r.index] = start + 1 if instr.is_load or instr.is_store else completion
        self._last_completion = max(self._last_completion, completion)

    def charge_vector_decoded(self, op, mem_latency: int = 0) -> None:
        """Predecoded twin of :meth:`charge_vector` — identical accounting,
        with the register sets and latency read off the decoded op."""
        self.stats.vector_instructions += 1
        ready = self._reg_ready
        earliest = 0
        for i in op.read_idx:
            t = ready[i]
            if t > earliest:
                earliest = t
        dispatch = self._issue_slot(earliest)
        start = max(dispatch, self._neon_next_issue)
        q_ready = self._q_ready
        for i in op.q_read_idx:
            t = q_ready[i]
            if t > start:
                start = t
        if not self._neon_burst_open:
            start += self.config.vector.pipeline_depth
            self._neon_burst_open = True
        if mem_latency:
            self.stats.memory_stall_cycles += mem_latency
        # one operation enters the NEON pipeline per cycle; memory latency
        # overlaps with later operations (only RAW dependents wait for it)
        self._neon_next_issue = start + 1
        completion = start + op.latency + mem_latency
        for i in op.q_write_idx:
            q_ready[i] = completion
        for i in op.write_idx:
            # base-register writeback resolves at address generation, not at
            # data return, so pointer-bump chains do not serialize on misses
            ready[i] = start + 1 if op.v_is_mem else completion
        if completion > self._last_completion:
            self._last_completion = completion

    # ------------------------------------------------------------------
    # compiled-block scoreboard batching (fast tier only; see
    # repro.cpu.blockcompile — the traced tier charges per-op because the
    # DSA mutates timing mid-run through add_stall)
    # ------------------------------------------------------------------
    def block_entry_state(self) -> tuple:
        """Snapshot the scalar scoreboard state a compiled block keeps in
        locals (``_reg_ready``/``_q_ready`` are shared lists, mutated in
        place by the block, so they are not part of the snapshot)."""
        return (
            self._now,
            self._slot_cycle,
            self._slots_used,
            self._flags_ready,
            self._last_completion,
            self._neon_next_issue,
            self._neon_burst_open,
        )

    def block_commit(
        self,
        now: int,
        slot_cycle: int,
        slots_used: int,
        flags_ready: int,
        last_completion: int,
        neon_next_issue: int,
        neon_burst_open: bool,
        scalar_n: int,
        vector_n: int,
        mem_stall: int,
        mispredicts: int,
    ) -> None:
        """Write back the scoreboard locals and the batched stat deltas of
        one compiled-block dispatch (the single-call counterpart of N
        ``charge_*_decoded`` calls)."""
        self._now = now
        self._slot_cycle = slot_cycle
        self._slots_used = slots_used
        self._flags_ready = flags_ready
        self._last_completion = last_completion
        self._neon_next_issue = neon_next_issue
        self._neon_burst_open = neon_burst_open
        stats = self.stats
        stats.scalar_instructions += scalar_n
        stats.vector_instructions += vector_n
        stats.memory_stall_cycles += mem_stall
        stats.branch_mispredicts += mispredicts

    def end_vector_burst(self) -> None:
        """Mark the end of a NEON burst; the next one pays the fill again."""
        self._neon_burst_open = False

    # ------------------------------------------------------------------
    # DSA hooks
    # ------------------------------------------------------------------
    def note_suppressed(self) -> None:
        """A scalar instruction retired functionally with its timing replaced."""
        self.stats.suppressed_instructions += 1

    def add_stall(self, cycles: float, kind: str = "dsa") -> None:
        """Charge a flat stall (pipeline flush, DSA overheads, ...).

        This is the only place fractional latencies can enter the model, so
        the rounding to whole cycles happens exactly once, here.
        """
        if cycles < 0:
            raise ValueError("stall cycles must be non-negative")
        whole = int(round(cycles))
        self._now = self.cycles + whole
        self._slot_cycle = -1
        self._slots_used = 0
        self._last_completion = max(self._last_completion, self._now)
        if kind == "dsa":
            self.stats.dsa_stall_cycles += whole

    def drain(self) -> int:
        """Wait for everything in flight; returns the final cycle count."""
        self._now = self.cycles
        return self._now
