"""Processor configuration (Systems Setup — paper Methodology, Table 4).

All four evaluated systems share the same core: a 2-wide superscalar ARMv7-A
(gem5 O3CPU in the paper) at 1 GHz with 64 KB L1 / 512 KB L2 LRU caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..memory.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class ScalarLatencies:
    """Execution latencies (cycles) per scalar instruction class."""

    alu: int = 1
    mov: int = 1
    cmp: int = 1
    mul: int = 3
    mla: int = 4
    div: int = 12
    fadd: int = 4
    fmul: int = 5
    fdiv: int = 14
    load: int = 1   # address generation; the memory hierarchy adds the rest
    store: int = 1
    branch: int = 1


@dataclass(frozen=True)
class VectorLatencies:
    """Execution latencies (cycles) per NEON instruction class.

    The NEON engine runs a 10-stage pipeline decoupled from the core through
    a 16-entry instruction queue (paper, Conceptual Analysis Section 2.2.2);
    ``pipeline_depth`` is paid once per burst, per-op costs thereafter.
    """

    pipeline_depth: int = 10
    queue_entries: int = 16
    dispatch_per_cycle: int = 2
    arith: int = 3
    mul: int = 5
    mla: int = 6
    cmp: int = 3
    bsl: int = 3
    shift: int = 3
    load: int = 2   # plus memory hierarchy latency
    store: int = 2
    dup: int = 2
    lane_mem: int = 2
    lane_mov: int = 2


@dataclass(frozen=True)
class CPUConfig:
    """Top-level core configuration."""

    name: str = "gem5-O3CPU (ARMv7-like)"
    clock_hz: float = 1e9
    issue_width: int = 2
    mispredict_penalty: int = 8
    #: decode the program once at core construction and run the
    #: direct-dispatch fast path; False keeps the legacy per-step
    #: interpreter (byte-identical results — kept for one release as the
    #: golden reference the identity suite compares against)
    predecode: bool = True
    #: third execution tier above the predecoded interpreter: straight-line
    #: hot loop bodies are compiled once into a fused closure executing a
    #: whole guest iteration per host dispatch with batched timing.
    #: Byte-identical to the legacy interpreter (same golden harness);
    #: requires ``predecode``
    compile_hot: bool = True
    #: taken backward branches to the same target before its region is
    #: considered hot and handed to the block compiler
    hot_threshold: int = 8
    #: also compile hot regions in the *traced* loop (retire hooks or a
    #: timing suppressor attached — the DSA path): records are still built
    #: and delivered one per instruction, but through specialized
    #: per-instruction code instead of the generic interpreter
    compile_traced: bool = True
    #: lower eligible straight-line lane math (affine load/ALU/store
    #: bodies) to a numpy kernel inside the compiled block
    compile_numpy: bool = True
    #: covered execution: once an attached DSA has fully characterized a
    #: loop (template built, verdict rendered, address streams stable) it
    #: may declare the PC region *covered* and release whole iterations to
    #: the record-free runners in ``repro.cpu.covered``, bulk-folding its
    #: own per-record bookkeeping afterwards.  The DSA re-arms (the traced
    #: loop resumes, exactly as with this knob off) on any phase-change
    #: signal: control leaving the region, a new backward branch inside
    #: it, an address misprediction, guard mode, an active fault plan, an
    #: attached observer, or a wall-clock deadline hook.  Byte-identical
    #: results either way; requires ``predecode``
    covered_execution: bool = True
    #: which vector engine the core instantiates — a name accepted by
    #: repro.vector.get_backend ("neon" = the paper's fixed 128-bit unit,
    #: "scalable" = the VLA engine)
    vector_backend: str = "neon"
    #: vector length in bits; the neon backend is fixed at 128, the
    #: scalable backend accepts 128/256/512/1024
    vector_length: int = 128
    scalar: ScalarLatencies = field(default_factory=ScalarLatencies)
    vector: VectorLatencies = field(default_factory=VectorLatencies)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigError("issue width must be at least 1")
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.hot_threshold < 1:
            raise ConfigError("hot threshold must be at least 1")
        # Validate eagerly so a bad backend/VL pair fails at config time,
        # not at first dispatch deep inside a worker process.  The import
        # is deferred: repro.vector sits above this module.
        from ..vector import BACKEND_NAMES, VALID_VECTOR_LENGTHS

        if self.vector_backend not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown vector backend {self.vector_backend!r} "
                f"(choose from {BACKEND_NAMES})"
            )
        if self.vector_length not in VALID_VECTOR_LENGTHS:
            raise ConfigError(
                f"vector length must be one of {VALID_VECTOR_LENGTHS}, "
                f"got {self.vector_length}"
            )
        if self.vector_backend == "neon" and self.vector_length != 128:
            raise ConfigError(
                "the neon backend is fixed at VL=128; "
                "use vector_backend='scalable' for wider vectors"
            )

    def seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz


#: the configuration used by every system in the paper's Table 4
DEFAULT_CPU_CONFIG = CPUConfig()
