"""Hot-region detection for the trace-compiled execution tier.

The predecoded run loops count taken backward branches per target index;
once a target crosses ``CPUConfig.hot_threshold`` the region starting there
is handed to :mod:`repro.cpu.blockcompile`.  A *region* is an innermost
loop body in the predecoded stream: a straight-line run of scalar/vector
ops ending in a conditional (non-link) branch back to the head.  Anything
else — an inner branch, a halt, an indirect branch, an unknown op — makes
the region uncompilable and the head is marked so it is never probed again.

The table is deliberately dumb: two flat arrays indexed by op index, one
shared execution counter and one compiled-entry slot per tier (the fast
loop and the traced loop compile the same region differently; see
:mod:`repro.cpu.blockcompile`).
"""

from __future__ import annotations

from ..isa.instructions import (
    Alu,
    Branch,
    Cmp,
    FloatOp,
    Mem,
    Mov,
    Mul,
    Nop,
)
from ..isa.neon import VInstr
from ..isa.operands import Cond
from .predecode import DecodedProgram

#: never-retry marker stored in a block slot when compilation was refused
FAILED = object()

#: straight-line body classes the block compiler knows how to lower
_BODY_CLASSES = (Alu, Mov, Mul, FloatOp, Cmp, Mem, Nop, VInstr)

#: largest region (body + branch) worth compiling; beyond this the generated
#: source gets big and the interpreter's per-op overhead amortizes anyway
MAX_REGION_OPS = 96


def find_region(dec: DecodedProgram, head: int) -> tuple[int, int] | None:
    """Return ``(head, branch_idx)`` for a compilable region, else None.

    The body is ``ops[head .. branch_idx-1]`` (at least one op) and
    ``ops[branch_idx]`` is a conditional non-link branch whose assembled
    target is exactly the head.
    """
    ops = dec.ops
    n = dec.n
    if head < 0 or head >= n:
        return None
    j = head
    stop = min(n, head + MAX_REGION_OPS)
    while j < stop:
        instr = ops[j].instr
        if isinstance(instr, Branch):
            break
        if not isinstance(instr, _BODY_CLASSES):
            return None
        j += 1
    else:
        return None
    if j == head:
        return None  # the "body" would be empty
    instr = ops[j].instr
    if instr.link or instr.cond is Cond.AL:
        return None
    if not isinstance(instr.target, int):
        return None
    if instr.target != dec.base + (head << 2):
        return None
    return (head, j)


class HotspotTable:
    """Per-core hotness counters and compiled-block cache."""

    __slots__ = ("counts", "fast", "traced", "dec", "config")

    def __init__(self, dec: DecodedProgram, config):
        size = len(dec.ops)
        self.counts = [0] * size
        self.fast: list = [None] * size
        self.traced: list = [None] * size
        self.dec = dec
        self.config = config

    # ------------------------------------------------------------------
    def lookup_fast(self, head: int):
        """Count one loop-back at ``head``; return a compiled fast-tier
        block, or None while cold / when the region is uncompilable."""
        blk = self.fast[head]
        if blk is None:
            count = self.counts[head] + 1
            self.counts[head] = count
            if count < self.config.hot_threshold:
                return None
            from .blockcompile import compile_region

            blk = compile_region(self.dec, head, self.config, traced=False)
            self.fast[head] = blk if blk is not None else FAILED
        return None if blk is FAILED else blk

    def lookup_traced(self, head: int):
        """Traced-tier twin of :meth:`lookup_fast` (same shared counter)."""
        blk = self.traced[head]
        if blk is None:
            count = self.counts[head] + 1
            self.counts[head] = count
            if count < self.config.hot_threshold:
                return None
            from .blockcompile import compile_region

            blk = compile_region(self.dec, head, self.config, traced=True)
            self.traced[head] = blk if blk is not None else FAILED
        return None if blk is FAILED else blk
