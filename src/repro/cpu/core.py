"""The scalar core: functional execution + timing + retire hooks.

Stands in for the gem5 O3CPU of the paper's methodology.  Every retired
instruction is delivered to the registered retire hooks as a
:class:`TraceRecord` — that is the interface the DSA attaches to (the paper
couples DSA to the fetch stage; retire order equals fetch order here since
the functional model executes in order).

The DSA replaces timing, never function: a registered ``timing_suppressor``
may claim an instruction, in which case the core still executes it
architecturally but charges no cycles and does not touch the cache models
(the DSA charges the equivalent NEON burst instead).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ExecutionError
from ..isa.dtypes import to_u32
from ..isa.instructions import (
    Alu,
    AluKind,
    Branch,
    BranchReg,
    Cmp,
    CmpKind,
    FloatOp,
    Halt,
    Instruction,
    Mem,
    Mov,
    Mul,
    Nop,
)
from ..isa.neon import VInstr
from ..isa.operands import Cond, LR
from ..isa.program import INSTRUCTION_BYTES, Program
from ..memory.backing import MainMemory
from ..memory.hierarchy import MemoryHierarchy
from ..observe.events import EventKind
from .config import CPUConfig, DEFAULT_CPU_CONFIG
from .executor import (
    Flags,
    alu_compute,
    cond_holds,
    effective_address,
    eval_operand2,
    flags_for_add,
    flags_for_logical,
    flags_for_sub,
    float_compute,
    load_to_register,
    mul_compute,
)
from .hotspot import FAILED as _FAILED, HotspotTable
from .predecode import DecodedProgram, predecode
from .timing import TimingModel
from .trace import MemAccess, TraceRecord

RetireHook = Callable[[TraceRecord], None]
TimingSuppressor = Callable[[TraceRecord], bool]


@dataclass
class CoreResult:
    """Summary of one simulation run."""

    cycles: int
    instructions: int
    seconds: float
    halted: bool
    icounts: Counter = field(default_factory=Counter)
    hierarchy_stats: dict = field(default_factory=dict)
    #: instructions retired per execution tier (legacy / fast / traced /
    #: compiled / bulk / covered) — diagnostic only, never serialized into
    #: the canonical RunResult payload
    tier_counts: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class Core:
    """Functional + timing model of the 2-wide superscalar core."""

    def __init__(
        self,
        program: Program,
        memory: MainMemory,
        config: CPUConfig | None = None,
    ):
        from ..vector import get_backend  # local import to avoid a cycle

        self.program = program
        self.memory = memory
        self.config = config or DEFAULT_CPU_CONFIG
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        #: the vector execution engine, chosen by CPUConfig.vector_backend —
        #: NEON by default, the scalable (VLA) engine when configured
        self.vector = get_backend(
            self.config.vector_backend, self.config.vector_length
        )
        self.timing = TimingModel(self.config, num_vector_regs=self.vector.num_regs)
        self.regs: list[int] = [0] * 16
        self.flags = Flags()
        self.pc = program.base
        self.halted = False
        self.seq = 0
        self.icounts: Counter = Counter()
        self.retire_hooks: list[RetireHook] = []
        self.timing_suppressor: TimingSuppressor | None = None
        #: optional repro.observe.Observer — run() wraps the whole simulation
        #: in one "core.run" span and emits RUN_BEGIN/RUN_END; never consulted
        #: inside the retire loops, so the traced-vs-fast choice is unchanged
        self.observer = None
        self._decoded: DecodedProgram | None = None  # built lazily on first run()
        self._hotspots: HotspotTable | None = None   # with the decoded image
        #: (iterations, op-index) a faulting compiled block leaves behind so
        #: the dispatch loop can reconstruct the exact architected state
        self._block_fault: tuple[int, int] | None = None
        #: instructions retired per execution tier; every run loop folds its
        #: residency here (see CoreResult.tier_counts)
        self.tier_counts: Counter = Counter()
        #: covered-execution hand-off, installed by DSA.attach when
        #: config.covered_execution: called at every taken backward branch
        #: in the traced loop as cover_hook(head_pc, max_instructions);
        #: truthy means skip traced-block dispatch for this branch — a
        #: record-free covered stretch retired (control is wherever it left
        #: the region) or the hook is holding the loop in the interpreter
        #: while the region's verdict matures
        self.cover_hook: Callable[[int, int], bool] | None = None
        #: loop-boundary crossings of the last covered.run_scalar_region
        #: call (retirements of the region's end branch, either direction)
        self._region_boundaries: int = 0

    @property
    def neon(self):
        """Deprecated alias for :attr:`vector` (pre-backend-redesign name).

        Kept so external scripts keep working; new code should use
        ``core.vector``, which may be any :class:`repro.vector.VectorBackend`.
        """
        return self.vector

    # ------------------------------------------------------------------
    # register convenience (harness-facing)
    # ------------------------------------------------------------------
    def set_reg(self, index: int, value: int) -> None:
        self.regs[index] = to_u32(value)

    def get_reg(self, index: int) -> int:
        return self.regs[index]

    # ------------------------------------------------------------------
    def step(self) -> TraceRecord:
        """Execute and retire one instruction."""
        if self.halted:
            raise ExecutionError("core is halted")
        pc = self.pc
        instr = self.program.instr_at(pc)
        reg_reads = tuple((r.index, self.regs[r.index]) for r in sorted(instr.regs_read(), key=lambda r: r.index))

        next_pc = pc + INSTRUCTION_BYTES
        accesses: list[MemAccess] = []
        branch_taken: bool | None = None
        mispredicted = False
        reads_flags = False
        sets_flags = False

        if isinstance(instr, VInstr):
            events = self.vector.execute(instr, self.regs, self.memory)
            accesses = [MemAccess(e.addr, e.nbytes, e.is_write) for e in events]
        elif isinstance(instr, Alu):
            a = self.regs[instr.rn.index]
            b = eval_operand2(self.regs, instr.op2)
            result = alu_compute(instr.kind, a, b)
            self.regs[instr.rd.index] = result
            if instr.sets_flags:
                sets_flags = True
                if instr.kind is AluKind.ADD:
                    self.flags = flags_for_add(a, b)
                elif instr.kind is AluKind.SUB:
                    self.flags = flags_for_sub(a, b)
                elif instr.kind is AluKind.RSB:
                    self.flags = flags_for_sub(b, a)
                else:
                    self.flags = flags_for_logical(result, self.flags)
        elif isinstance(instr, Mov):
            value = eval_operand2(self.regs, instr.op2)
            self.regs[instr.rd.index] = to_u32(~value) if instr.negate else value
        elif isinstance(instr, Mul):
            ra = self.regs[instr.ra.index] if instr.ra is not None else 0
            self.regs[instr.rd.index] = mul_compute(
                instr.kind, self.regs[instr.rn.index], self.regs[instr.rm.index], ra
            )
        elif isinstance(instr, FloatOp):
            self.regs[instr.rd.index] = float_compute(
                instr.kind, self.regs[instr.rn.index], self.regs[instr.rm.index]
            )
        elif isinstance(instr, Cmp):
            sets_flags = True
            a = self.regs[instr.rn.index]
            b = eval_operand2(self.regs, instr.op2)
            if instr.kind is CmpKind.CMP:
                self.flags = flags_for_sub(a, b)
            elif instr.kind is CmpKind.CMN:
                self.flags = flags_for_add(a, b)
            else:  # TST
                self.flags = flags_for_logical(a & b, self.flags)
        elif isinstance(instr, Mem):
            ea, new_base = effective_address(self.regs, instr.addr)
            if instr.is_store:
                raw = self.regs[instr.rd.index] & ((1 << (instr.dtype.size * 8)) - 1)
                self.memory.write(ea, raw.to_bytes(instr.dtype.size, "little"))
            else:
                value = self.memory.read_value(ea, instr.dtype)
                self.regs[instr.rd.index] = load_to_register(value, instr.dtype)
            if new_base is not None:
                self.regs[instr.addr.base.index] = new_base
            accesses.append(MemAccess(ea, instr.dtype.size, instr.is_store))
        elif isinstance(instr, Branch):
            reads_flags = instr.cond is not Cond.AL
            branch_taken = cond_holds(instr.cond, self.flags)
            assert isinstance(instr.target, int), "program must be assembled"
            # ARM semantics: a conditional instruction whose condition fails
            # retires as a NOP — an untaken BL<cond> must NOT write LR
            if instr.link and branch_taken:
                self.regs[LR] = to_u32(pc + INSTRUCTION_BYTES)
            if branch_taken:
                next_pc = instr.target
            # static BTFN predictor: backward predicted taken, forward not
            predicted_taken = instr.target < pc
            mispredicted = branch_taken != predicted_taken
        elif isinstance(instr, BranchReg):
            branch_taken = True
            next_pc = self.regs[instr.rm.index]
            mispredicted = False  # return-address stack assumed perfect
        elif isinstance(instr, Halt):
            self.halted = True
            next_pc = pc
        elif isinstance(instr, Nop):
            pass
        else:
            raise ExecutionError(f"cannot execute {instr!r}")

        if branch_taken is False and isinstance(instr, Branch) and instr.link:
            # untaken conditional branch-link retired as a NOP: it wrote
            # nothing, so the record must not report a (stale) LR write
            reg_writes: tuple[tuple[int, int], ...] = ()
        else:
            reg_writes = tuple(
                (r.index, self.regs[r.index])
                for r in sorted(instr.regs_written(), key=lambda r: r.index)
            )
        record = TraceRecord(
            seq=self.seq,
            pc=pc,
            instr=instr,
            next_pc=next_pc,
            accesses=tuple(accesses),
            branch_taken=branch_taken,
            reg_reads=reg_reads,
            reg_writes=reg_writes,
        )

        suppressed = bool(self.timing_suppressor and self.timing_suppressor(record))
        if suppressed:
            self.timing.note_suppressed()
        else:
            mem_latency = sum(
                self.hierarchy.access(a.addr, a.nbytes, a.is_write) for a in accesses
            )
            if isinstance(instr, VInstr):
                self.timing.charge_vector(instr, mem_latency)
            else:
                self.timing.charge_scalar(
                    instr,
                    mem_latency=mem_latency,
                    mispredicted=mispredicted,
                    reads_flags=reads_flags,
                    sets_flags=sets_flags,
                )

        self.icounts[type(instr).__name__] += 1
        self.seq += 1
        self.pc = next_pc
        for hook in self.retire_hooks:
            hook(record)
        return record

    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 100_000_000) -> CoreResult:
        """Run until HALT (or the safety limit) and return the summary."""
        if self.seq == 0:
            # A run starting from scratch must not inherit vector-op counters
            # from earlier use of the engine on this core (e.g. a previous
            # completed run, or bursts executed while attaching) — the energy
            # model reads them per run.  Continuations (seq > 0 after a
            # max_instructions cut) keep accumulating, as they must.
            self.vector.stats.reset()
        observer = self.observer
        if observer is None:
            return self._run(max_instructions)
        # Observability wraps the whole run; nothing is consulted per retired
        # instruction, so the traced-vs-fast loop choice stays unchanged.
        if self.config.predecode:
            path = (
                "traced"
                if self.retire_hooks or self.timing_suppressor is not None
                else "fast"
            )
        else:
            path = "legacy"
        observer.emit(EventKind.RUN_BEGIN, path=path)
        span = observer.begin_span("core.run", "cpu", cycle=self.timing.cycles)
        try:
            result = self._run(max_instructions)
        finally:
            observer.end_span(span, cycle=self.timing.cycles, path=path)
        observer.emit(
            EventKind.RUN_END, cycle=result.cycles,
            cycles=result.cycles, instructions=result.instructions, path=path,
        )
        return result

    def _run(self, max_instructions: int) -> CoreResult:
        if self.config.predecode:
            self._run_decoded(max_instructions)
        else:
            s0 = self.seq
            try:
                while not self.halted and self.seq < max_instructions:
                    self.step()
            finally:
                self.tier_counts["legacy"] += self.seq - s0
        if not self.halted:
            raise ExecutionError(
                f"program did not halt within {max_instructions} instructions"
            )
        cycles = self.timing.drain()
        return CoreResult(
            cycles=cycles,
            instructions=self.seq,
            seconds=self.config.seconds(cycles),
            halted=self.halted,
            icounts=self.icounts.copy(),
            hierarchy_stats=self.hierarchy.stats_dict(),
            tier_counts={k: v for k, v in self.tier_counts.items() if v},
        )

    # ------------------------------------------------------------------
    # predecoded run loops (byte-identical to repeated step(); see
    # tests/cpu/test_predecode_identity.py)
    # ------------------------------------------------------------------
    def _run_decoded(self, max_instructions: int) -> None:
        if self._decoded is None:
            self._decoded = predecode(self.program, self.config)
            if self.config.compile_hot:
                self._hotspots = HotspotTable(self._decoded, self.config)
        # Observers force the traced loop: retire hooks consume TraceRecords
        # and a suppressor is *queried* with one per instruction, so both
        # need the full record stream.  With neither attached there is no
        # reader — the fast loop skips record construction entirely.
        # (Attach observers before run(), as every current caller does.)
        if self.retire_hooks or self.timing_suppressor is not None:
            self._run_decoded_traced(self._decoded, max_instructions)
        else:
            self._run_decoded_fast(self._decoded, max_instructions)

    def _run_decoded_fast(self, dec: DecodedProgram, max_instructions: int) -> None:
        """Record-free inner loop: no TraceRecord, no per-step attribute
        traffic; per-op retire counts are aggregated into ``icounts`` on exit
        (legacy counts first-retirement insertion order, this counts program
        order — Counter equality and sorted serialization are unaffected)."""
        if self.halted:
            return
        ops = dec.ops
        base = dec.base
        n = dec.n
        timing = self.timing
        charge_scalar = timing.charge_scalar_decoded
        charge_vector = timing.charge_vector_decoded
        hierarchy_access = self.hierarchy.access
        counts = [0] * len(ops)
        hot = self._hotspots
        tier = self.tier_counts
        seq = self.seq
        seq0 = seq
        blk_ops = 0            # retired inside compiled blocks (incl. bulk)
        b0 = tier["bulk"]      # bulk batches bump their tier directly
        pc = self.pc
        idx = (pc - base) >> 2
        try:
            while seq < max_instructions:
                # same validity rule as Program.contains(): in range + aligned
                if idx < 0 or idx > n or pc != base + (idx << 2):
                    raise ExecutionError(
                        f"address 0x{pc:x} is not inside the text segment"
                    )
                op = ops[idx]  # ops[n] is the sentinel: raises the same error
                result = op.execute(self)
                counts[idx] += 1
                seq += 1
                if result is None:
                    # simple sequential scalar op (no memory, no branch)
                    charge_scalar(op)
                    idx += 1
                    pc += INSTRUCTION_BYTES
                    continue
                next_pc, accesses, branch_taken, mispredicted = result
                mem_latency = 0
                for a in accesses:
                    mem_latency += hierarchy_access(a.addr, a.nbytes, a.is_write)
                if op.is_vector:
                    charge_vector(op, mem_latency)
                else:
                    charge_scalar(op, mem_latency, mispredicted)
                pc = next_pc
                if self.halted:
                    break
                if branch_taken is None:
                    idx += 1
                    continue
                new_idx = (pc - base) >> 2
                # trace-compiled tier: a taken backward branch is a loop
                # head candidate — count it, and once a compiled block
                # exists run whole iterations through it
                if (
                    hot is not None
                    and branch_taken
                    and pc < op.pc
                    and new_idx >= 0
                    and pc == base + (new_idx << 2)
                ):
                    blk = hot.fast[new_idx]
                    if blk is None:
                        blk = hot.lookup_fast(new_idx)
                    elif blk is _FAILED:
                        blk = None
                    if blk is not None and seq + blk.n_ops <= max_instructions:
                        s_blk = seq
                        try:
                            seq, taken, iters = blk.run(self, seq, max_instructions)
                        except BaseException:
                            # reconstruct the exact architected position of
                            # the faulting op (not retired, like the
                            # interpreted loops)
                            f_iters, f_k = self._block_fault
                            d = f_iters * blk.n_ops + f_k
                            seq += d
                            blk_ops += d
                            pc = blk.head_pc + (f_k << 2)
                            h0 = blk.head_idx
                            for j in range(blk.n_ops):
                                c = f_iters + 1 if j < f_k else f_iters
                                if c:
                                    counts[h0 + j] += c
                            raise
                        blk_ops += seq - s_blk
                        if iters:
                            h0 = blk.head_idx
                            for j in range(blk.n_ops):
                                counts[h0 + j] += iters
                        if taken:
                            idx = blk.head_idx
                        else:
                            idx = blk.exit_idx
                            pc = blk.exit_pc
                        continue
                idx = new_idx
        finally:
            # exceptions (bad fetch, memory fault) leave the same architected
            # state the legacy loop would: the faulting op not yet retired
            self.seq = seq
            self.pc = pc
            icounts = self.icounts
            for i in range(n):
                c = counts[i]
                if c:
                    icounts[ops[i].kind_name] += c
            bulk_d = tier["bulk"] - b0
            tier["compiled"] += blk_ops - bulk_d
            tier["fast"] += (seq - seq0) - blk_ops

    def _run_decoded_traced(self, dec: DecodedProgram, max_instructions: int) -> None:
        """Full-fidelity loop: builds every TraceRecord and drives the
        suppressor and retire hooks exactly like step(), but executes through
        the predecoded closures and precomputed register metadata."""
        hot = self._hotspots if self.config.compile_traced else None
        tier = self.tier_counts
        seq0 = self.seq
        # the other tiers fold their own residency; traced is the residual
        c0 = tier["compiled"] + tier["bulk"] + tier["covered"]
        try:
            self._traced_loop(dec, max_instructions, hot)
        finally:
            other = tier["compiled"] + tier["bulk"] + tier["covered"] - c0
            tier["traced"] += (self.seq - seq0) - other

    def _traced_loop(self, dec: DecodedProgram, max_instructions: int, hot) -> None:
        ops = dec.ops
        base = dec.base
        n = dec.n
        regs = self.regs
        timing = self.timing
        charge_scalar = timing.charge_scalar_decoded
        charge_vector = timing.charge_vector_decoded
        hierarchy_access = self.hierarchy.access
        icounts = self.icounts
        tier = self.tier_counts
        while not self.halted and self.seq < max_instructions:
            pc = self.pc
            idx = (pc - base) >> 2
            if idx < 0 or idx > n or pc != base + (idx << 2):
                raise ExecutionError(f"address 0x{pc:x} is not inside the text segment")
            op = ops[idx]  # ops[n] is the sentinel: raises the same error
            ridx = op.read_idx
            if not ridx:
                reg_reads = ()
            elif len(ridx) == 1:
                i = ridx[0]
                reg_reads = ((i, regs[i]),)
            else:
                reg_reads = tuple((i, regs[i]) for i in ridx)
            result = op.execute(self)
            if result is None:
                next_pc = pc + INSTRUCTION_BYTES
                accesses: tuple[MemAccess, ...] = ()
                branch_taken = None
                mispredicted = False
            else:
                next_pc, accesses, branch_taken, mispredicted = result
            widx = op.write_idx
            if not widx or (branch_taken is False and op.cond_link):
                # an untaken BL<cond> retired as a NOP: no (stale) LR write
                reg_writes = ()
            elif len(widx) == 1:
                i = widx[0]
                reg_writes = ((i, regs[i]),)
            else:
                reg_writes = tuple((i, regs[i]) for i in widx)
            record = TraceRecord(
                seq=self.seq,
                pc=pc,
                instr=op.instr,
                next_pc=next_pc,
                accesses=accesses,
                branch_taken=branch_taken,
                reg_reads=reg_reads,
                reg_writes=reg_writes,
            )
            suppressor = self.timing_suppressor
            if suppressor is not None and suppressor(record):
                timing.note_suppressed()
            else:
                mem_latency = 0
                for a in accesses:
                    mem_latency += hierarchy_access(a.addr, a.nbytes, a.is_write)
                if op.is_vector:
                    charge_vector(op, mem_latency)
                else:
                    charge_scalar(op, mem_latency, mispredicted)
            icounts[op.kind_name] += 1
            self.seq += 1
            self.pc = next_pc
            for hook in self.retire_hooks:
                hook(record)
            # a taken backward branch the hooks left alone is the hand-off
            # point for the record-free tiers: first offer the region to
            # covered execution (the DSA bulk-folds its own bookkeeping),
            # else run whole iterations through the trace-compiled block
            # (records still delivered one per instruction)
            if (
                branch_taken
                and next_pc < pc
                and not self.halted
                and self.pc == next_pc
            ):
                cover = self.cover_hook
                if cover is not None and cover(next_pc, max_instructions):
                    continue
                if hot is None:
                    continue
                new_idx = (next_pc - base) >> 2
                if new_idx >= 0 and next_pc == base + (new_idx << 2):
                    blk = hot.traced[new_idx]
                    if blk is None:
                        blk = hot.lookup_traced(new_idx)
                    elif blk is _FAILED:
                        blk = None
                    if blk is not None:
                        s_blk = self.seq
                        try:
                            blk.run(self, max_instructions)
                        finally:
                            tier["compiled"] += self.seq - s_blk


def run_program(
    program: Program,
    memory: MainMemory,
    regs: dict[int, int] | None = None,
    config: CPUConfig | None = None,
    max_instructions: int = 100_000_000,
) -> CoreResult:
    """Convenience one-shot runner used by tests and examples."""
    core = Core(program, memory, config=config)
    for index, value in (regs or {}).items():
        core.set_reg(index, value)
    return core.run(max_instructions=max_instructions)
