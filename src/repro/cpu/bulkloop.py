"""Numpy bulk lowering for compiled hot loops (fast tier only).

:func:`attach_bulk` inspects a compiled fast-tier region and, when the body
is straight-line lane math over a single counted induction register, swaps
the block's ``run`` for a vectorized executor: register dataflow is
evaluated once per *batch* of iterations as numpy int64 arrays (loads
become gathers, stores become scatters), while the cycle-exact scoreboard
and cache hierarchy are replayed per iteration from the precomputed
address streams — so the committed RunResult stays byte-identical to the
scalar tiers.

Eligibility (checked statically at attach time):

* the region ends ``ADD ri, ri, #imm`` / ``CMP ri, <imm|invariant reg>`` /
  ``B<cond> head`` — a counted loop over one induction register;
* every body op is flag-free scalar lane math: MOV/MVN, the inlinable ALU
  kinds, MUL/MLA, or an offset-mode integer load/store;
* every register read is the induction, a batch invariant (never written
  in the region), or a temp defined earlier in the same iteration — no
  loop-carried values besides the induction itself;
* no loaded value flows into an address or the trip-count compare (the
  address streams must be computable before any memory traffic).

Everything data-dependent is validated at run time per batch — trip count
from the exact CMP flag semantics, memory bounds, and store/load aliasing
(ranges must be disjoint, or be the read-modify-write pattern: a load and
a later store over the *same* address stream).  Any failure falls back to
the scalar compiled block mid-flight, which also preserves the
``core._block_fault`` accounting protocol.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import Alu, AluKind, Cmp, CmpKind, Mem, Mov, Mul, MulKind, Nop
from ..isa.operands import Imm, IndexMode, Reg, ShiftedReg, ShiftKind
from ..isa.dtypes import to_u32
from ..memory.backing import MainMemory
from .executor import Flags
from .blockcompile import (
    _M,
    _S,
    _Unsupported,
    _ALU_INLINE,
    _scalar_timing_lines,
)

#: largest batch of iterations evaluated as one numpy vector
MAX_BATCH = 1 << 16
#: below this trip count the numpy setup costs more than the scalar block
MIN_BATCH = 32
#: consecutive short-trip bails after which the block stops probing
MAX_BAILS = 12

#: shift-style ALU kinds lowerable when the amount is a static immediate
_ALU_SHIFT = frozenset({AluKind.LSL, AluKind.LSR, AluKind.ASR})

_COND_ARR = {
    "EQ": "_zA",
    "NE": "~_zA",
    "LT": "_nA != _vA",
    "GE": "_nA == _vA",
    "GT": "~_zA & (_nA == _vA)",
    "LE": "_zA | (_nA != _vA)",
    "LO": "~_cA",
    "HS": "_cA",
    "MI": "_nA",
    "PL": "~_nA",
}


class _Lane:
    """One SSA value: source expression text plus static facts."""

    __slots__ = ("var", "is_arr", "tainted")

    def __init__(self, var: str, is_arr: bool, tainted: bool):
        self.var = var
        self.is_arr = is_arr
        self.tainted = tainted


class _Builder:
    """Walks the body once, producing the batched evaluation source."""

    def __init__(self, region, ri: int, written: set[int]):
        self.ri = ri
        self.written = written  # every register the whole region writes
        self.env: dict[int, _Lane] = {ri: _Lane("_ivS", True, False)}
        self.liveins: dict[int, str] = {}
        self.livein_lines: list[str] = []  # emitted before everything else
        self.pre: list[str] = []      # untainted math + EAs
        self.post: list[str] = []     # gathers + load-dependent math
        self.checks: list[str] = []   # bounds / monotonic store streams
        self.mems: list[dict] = []    # one entry per memory op, program order

    # -- operands ------------------------------------------------------
    def _reg(self, reg: Reg) -> _Lane:
        idx = reg.index
        lane = self.env.get(idx)
        if lane is not None:
            return lane
        if idx in self.written:
            raise _Unsupported(f"loop-carried register r{idx}")
        var = self.liveins.get(idx)
        if var is None:
            var = f"_li{idx}"
            self.liveins[idx] = var
            self.livein_lines.append(f"{var} = regs[{idx}]")
        lane = _Lane(var, False, False)
        self.env[idx] = lane
        return lane

    def _op2(self, op2) -> tuple[str, bool, bool]:
        """(expr, is_arr, tainted) for a flexible second operand."""
        if isinstance(op2, Imm):
            return str(to_u32(op2.value)), False, False
        if isinstance(op2, Reg):
            lane = self._reg(op2)
            return lane.var, lane.is_arr, lane.tainted
        if isinstance(op2, ShiftedReg):
            lane = self._reg(op2.reg)
            v, amount = lane.var, op2.amount
            if amount == 0:
                return v, lane.is_arr, lane.tainted
            if op2.kind is ShiftKind.LSL:
                expr = f"(({v} << {amount}) & {_M})" if amount < 32 else "0"
            elif op2.kind is ShiftKind.LSR:
                expr = f"({v} >> {amount})" if amount < 32 else "0"
            else:  # ASR — identical source for python ints and int64 arrays
                s = min(amount, 31)
                expr = f"((({v} - (({v} & {_S}) << 1)) >> {s}) & {_M})"
            return expr, lane.is_arr, lane.tainted
        raise _Unsupported(f"operand2 {op2!r}")

    def _bind(self, rd: Reg, j: int, expr: str, is_arr: bool, tainted: bool):
        if rd.index == 15 or rd.index == self.ri:
            raise _Unsupported("write to pc or the induction register")
        var = f"_v{j}"
        (self.post if tainted else self.pre).append(f"{var} = {expr}")
        self.env[rd.index] = _Lane(var, is_arr, tainted)

    # -- one body op ---------------------------------------------------
    def add_op(self, op, j: int) -> None:
        instr = op.instr
        if op.sets_flags or op.reads_flags:
            raise _Unsupported("flag traffic inside the body")
        if isinstance(instr, Nop):
            return
        if isinstance(instr, Mov):
            b, arr, tnt = self._op2(instr.op2)
            self._bind(instr.rd, j, f"{b} ^ {_M}" if instr.negate else b, arr, tnt)
            return
        if isinstance(instr, Alu):
            tmpl = _ALU_INLINE.get(instr.kind)
            if tmpl is not None:
                a = self._reg(instr.rn)
                b, barr, btnt = self._op2(instr.op2)
                self._bind(instr.rd, j, tmpl.format(a=a.var, b=b),
                           a.is_arr or barr, a.tainted or btnt)
                return
            if instr.kind in _ALU_SHIFT and isinstance(instr.op2, Imm):
                # static shift amount — same bottom-byte rule as alu_compute
                a = self._reg(instr.rn)
                amount = to_u32(instr.op2.value) & 0xFF
                v = a.var
                if amount == 0:
                    expr = v
                elif instr.kind is AluKind.LSL:
                    expr = f"(({v} << {amount}) & {_M})" if amount < 32 else "0"
                elif instr.kind is AluKind.LSR:
                    expr = f"({v} >> {amount})" if amount < 32 else "0"
                else:  # ASR — clamp mirrors apply_shift's min(amount, 31)
                    s = min(amount, 31)
                    expr = f"((({v} - (({v} & {_S}) << 1)) >> {s}) & {_M})"
                self._bind(instr.rd, j, expr, a.is_arr, a.tainted)
                return
            raise _Unsupported(f"ALU kind {instr.kind!r}")
        if isinstance(instr, Mul):
            a, b = self._reg(instr.rn), self._reg(instr.rm)
            # int64 products wrap mod 2**64 (low bits exact), so `& M` is
            # still the exact 32-bit result for arrays and python ints alike
            if instr.kind is MulKind.MUL:
                expr = f"({a.var} * {b.var}) & {_M}"
                arr, tnt = a.is_arr or b.is_arr, a.tainted or b.tainted
            elif instr.kind is MulKind.MLA:
                c = self._reg(instr.ra)
                expr = f"({a.var} * {b.var} + {c.var}) & {_M}"
                arr = a.is_arr or b.is_arr or c.is_arr
                tnt = a.tainted or b.tainted or c.tainted
            else:
                raise _Unsupported(f"multiply kind {instr.kind!r}")
            self._bind(instr.rd, j, expr, arr, tnt)
            return
        if isinstance(instr, Mem):
            self._mem(op, instr, j)
            return
        raise _Unsupported(f"cannot bulk-lower {instr!r}")

    def _mem(self, op, instr: Mem, j: int) -> None:
        if instr.addr.mode is not IndexMode.OFFSET or instr.dtype.is_float:
            raise _Unsupported("writeback or float memory op")
        size = instr.dtype.size
        base = self._reg(instr.addr.base)
        off, oarr, otnt = self._op2(instr.addr.offset)
        if base.tainted or otnt:
            raise _Unsupported("load-dependent address")
        ea = f"_ea{j}"
        expr = f"({base.var} + {off}) & {_M}"
        if not (base.is_arr or oarr):
            # loop-invariant address: broadcast so the uniform gather /
            # scatter / alias machinery applies unchanged
            expr = f"np.full(_B, {expr}, dtype=_I64)"
        self.pre.append(f"{ea} = {expr}")
        self.checks.append(f"if int({ea}[-1]) + {size} > _msize or int({ea}[0]) + {size} > _msize:")
        self.checks.append("    bail = True")
        self.checks.append("    break")
        if instr.is_store:
            # strictly monotonic addresses: no within-batch collisions, so
            # scattering whole streams in program order matches scalar order
            d = f"_d{j}"
            self.checks.append(f"{d} = np.diff({ea})")
            self.checks.append(f"if {d}.size and not (({d} > 0).all() or ({d} < 0).all()):")
            self.checks.append("    bail = True")
            self.checks.append("    break")
        else:
            self.checks.append(f"if int({ea}.min()) < 0 or int({ea}.max()) + {size} > _msize:")
            self.checks.append("    bail = True")
            self.checks.append("    break")
        if instr.is_store:
            data = self._reg(instr.rd)
            self.mems.append({"j": j, "store": True, "ea": ea, "size": size,
                              "data": data})
        else:
            var = f"_v{j}"
            self.post.append(f"{var} = {_gather_expr(ea, instr.dtype)}")
            self.env[instr.rd.index] = _Lane(var, True, True)
            self.mems.append({"j": j, "store": False, "ea": ea, "size": size})


def _gather_expr(ea: str, dtype) -> str:
    size = dtype.size
    parts = [f"_mem8[{ea}].astype(_I64)"]
    for k in range(1, size):
        parts.append(f"(_mem8[{ea} + {k}].astype(_I64) << {8 * k})")
    raw = " | ".join(parts)
    if dtype.is_signed and size < 4:
        sign = 1 << (size * 8 - 1)
        return f"((({raw}) - ((({raw}) & {sign}) << 1)) & {_M})"
    return raw


def _scatter_lines(m: dict, out: list[str]) -> None:
    ea, size, data = m["ea"], m["size"], m["data"]
    mask = (1 << (size * 8)) - 1
    out.append(f"_sv = {data.var} & {mask}")
    if not data.is_arr:
        out.append(f"_sv = np.full(_B, _sv, dtype=_I64)")
    for k in range(size):
        byte = "_sv" if k == 0 else f"(_sv >> {8 * k})"
        out.append(f"_mem8[{ea} + {k}] = ({byte} & 255).astype(np.uint8)")


def _alias_lines(mems: list[dict], out: list[str]) -> None:
    """Pairwise store/load and store/store stream compatibility checks."""
    for si, s in enumerate(mems):
        if not s["store"]:
            continue
        for oi, o in enumerate(mems):
            if oi == si:
                continue
            if not o["store"] and oi > si:
                # a load after a store must never touch the store's range:
                # pre-gathering would miss the written value
                rmw_ok = False
            elif not o["store"]:
                # load-then-store over the same stream is the RMW pattern;
                # monotonic streams make cross-iteration hits impossible
                rmw_ok = s["size"] == o["size"]
            else:
                if oi > si:
                    continue  # each store pair is checked once
                rmw_ok = s["size"] == o["size"]
            sea, oea = s["ea"], o["ea"]
            ssz, osz = s["size"], o["size"]
            cond = (
                f"not (int({sea}.min()) >= int({oea}.max()) + {osz}"
                f" or int({oea}.min()) >= int({sea}.max()) + {ssz})"
            )
            if rmw_ok:
                cond += f" and not np.array_equal({sea}, {oea})"
            out.append(f"if {cond}:")
            out.append("    bail = True")
            out.append("    break")


# ----------------------------------------------------------------------
def attach_bulk(blk, dec, head, br, config) -> None:
    """Attach a numpy bulk path to ``blk`` if the region is eligible."""
    try:
        src, ns = _gen_bulk(dec, head, br, config, blk.run)
    except _Unsupported:
        return
    code = compile(src, f"<bulk block 0x{blk.head_pc:x}>", "exec")
    exec(code, ns)
    blk.run = ns["__bulk_run__"]


def _gen_bulk(dec, head, br, config, scalar_run):
    ops = dec.ops
    region = [ops[i] for i in range(head, br + 1)]
    n = len(region)
    if n < 4 or any(op.is_vector for op in region):
        raise _Unsupported("vector op or degenerate region")
    branch_op, cmp_op, ind_op = region[-1], region[-2], region[-3]

    cond_arr = _COND_ARR.get(branch_op.instr.cond.name)
    if cond_arr is None:
        raise _Unsupported(f"condition {branch_op.instr.cond!r}")

    ind = ind_op.instr
    if not (
        isinstance(ind, Alu)
        and ind.kind is AluKind.ADD
        and not ind.sets_flags
        and isinstance(ind.op2, Imm)
        and ind.rd.index == ind.rn.index
        and ind.rd.index != 15
    ):
        raise _Unsupported("no trailing `add ri, ri, #imm` induction")
    ri = ind.rd.index
    step = to_u32(ind.op2.value)
    if step == 0:
        raise _Unsupported("zero induction step")

    cmp_i = cmp_op.instr
    if not (isinstance(cmp_i, Cmp) and cmp_i.kind is CmpKind.CMP
            and cmp_i.rn.index == ri):
        raise _Unsupported("no trailing `cmp ri, bound`")

    written = {ri}
    for op in region[:-3]:
        i = getattr(op.instr, "rd", None)
        if i is not None and not (isinstance(op.instr, Mem) and op.instr.is_store):
            written.add(i.index)

    b = _Builder(region, ri, written)
    if isinstance(cmp_i.op2, Imm):
        bound = str(to_u32(cmp_i.op2.value))
    elif isinstance(cmp_i.op2, Reg):
        lane = b._reg(cmp_i.op2)
        if lane.tainted or lane.is_arr:
            raise _Unsupported("non-invariant compare bound")
        bound = lane.var
    else:
        raise _Unsupported("shifted compare bound")

    for j, op in enumerate(region[:-3]):
        b.add_op(op, j)
    if not b.mems:
        raise _Unsupported("no memory traffic to amortize")

    # ---- per-iteration timing replay (identical scoreboard inlining) ----
    tim: list[str] = []
    for j, op in enumerate(region):
        if isinstance(op.instr, Mem):
            m = next(m for m in b.mems if m["j"] == j)
            tim.append(f"_ml = hierarchy_access(_eal{j}[_it], {m['size']}, {op.instr.is_store})")
            tim.append("mem_stall += _ml")
            _scalar_timing_lines(op, config, tim, is_mem=True)
        elif j == n - 1:
            tim.append("taken = _it != _Bm1 or last_taken")
            _scalar_timing_lines(op, config, tim, is_branch=True)
        else:
            _scalar_timing_lines(op, config, tim)

    body: list[str] = []
    body.append(f"cap = (limit - seq) // {n}")
    body.append("if cap > _h:")
    body.append("    cap = _h")
    body.append(f"v0 = regs[{ri}]")
    body.extend(b.livein_lines)
    body.append("_ts = np.arange(1, cap + 1, dtype=_I64)")
    body.append(f"_iv = (v0 + {step} * _ts) & {_M}")
    body.append(f"_cb = {bound}")
    body.append(f"_cr = (_iv - _cb) & {_M}")
    body.append(f"_nA = _cr >= {_S}")
    body.append("_zA = _cr == 0")
    body.append("_cA = _iv >= _cb")
    body.append(f"_vA = ((_iv ^ _cb) & (_iv ^ _cr) & {_S}) != 0")
    body.append(f"_tk = {cond_arr}")
    body.append("_nt = np.flatnonzero(~_tk)")
    body.append("if _nt.size:")
    body.append("    _B = int(_nt[0]) + 1")
    body.append("    last_taken = False")
    # remember the whole-entry trip count so the next entry probes one
    # right-sized batch instead of a MAX_BATCH arange
    body.append("    _h = iters + _B")
    body.append("    _hint[0] = _h if _h > 16 else 16")
    body.append("else:")
    body.append("    _B = cap")
    body.append("    last_taken = True")
    body.append(f"    if _h < {MAX_BATCH}:")
    body.append(f"        _h = _h * 4")
    body.append(f"        if _h > {MAX_BATCH}:")
    body.append(f"            _h = {MAX_BATCH}")
    body.append("        _hint[0] = _h")
    body.append(f"if _B < {MIN_BATCH}:")
    body.append("    _hint[1] += 1")
    body.append("    bail = True")
    body.append("    break")
    body.append("_hint[1] = 0")
    body.append("if _B < cap:")
    body.append("    _iv = _iv[:_B]")
    body.append("    _nA = _nA[:_B]")
    body.append("    _zA = _zA[:_B]")
    body.append("    _cA = _cA[:_B]")
    body.append("    _vA = _vA[:_B]")
    body.append(f"_ivS = (v0 + {step} * np.arange(_B, dtype=_I64)) & {_M}")
    body.extend(b.pre)
    body.extend(b.checks)
    _alias_lines(b.mems, body)
    body.extend(b.post)
    for m in b.mems:
        body.append(f"_eal{m['j']} = {m['ea']}.tolist()")
    body.append("_Bm1 = _B - 1")
    body.append("for _it in range(_B):")
    body.extend("    " + ln for ln in tim)
    for m in b.mems:
        if m["store"]:
            _scatter_lines(m, body)
    for reg, lane in b.env.items():
        if reg == ri or reg in b.liveins:
            continue
        body.append(f"regs[{reg}] = int({lane.var}[-1])" if lane.is_arr
                    else f"regs[{reg}] = {lane.var}")
    body.append(f"regs[{ri}] = int(_iv[_Bm1])")
    body.append("flags = F(bool(_nA[_Bm1]), bool(_zA[_Bm1]), bool(_cA[_Bm1]), bool(_vA[_Bm1]))")
    body.append(f"iters += _B")
    body.append(f"seq += _B * {n}")
    body.append("if not last_taken:")
    body.append("    taken = False")
    body.append("    break")

    lines = [
        "def __bulk_run__(core, seq, limit, _hint=[64, 0]):",
        "    memory = core.memory",
        f"    if type(memory) is not MM or _hint[1] > {MAX_BAILS}:",
        "        return scalar_run(core, seq, limit)",
        "    _h = _hint[0]",
        "    regs = core.regs",
        "    timing = core.timing",
        "    hierarchy_access = core.hierarchy.access",
        "    ready = timing._reg_ready",
        "    (now, slot_cycle, slots_used, flags_ready, last_completion,",
        "     neon_next_issue, neon_burst_open) = timing.block_entry_state()",
        "    mem_stall = 0",
        "    mispredicts = 0",
        "    iters = 0",
        "    taken = True",
        "    bail = False",
        "    flags = None",
        "    _mem8 = np.frombuffer(memory._data, dtype=np.uint8)",
        "    _msize = memory.size",
        f"    while seq + {n} <= limit:",
    ]
    lines += ["        " + ln for ln in body]
    lines += [
        "    if flags is not None:",
        "        core.flags = flags",
        "    timing.block_commit(",
        "        now, slot_cycle, slots_used, flags_ready, last_completion,",
        "        neon_next_issue, neon_burst_open,",
        f"        iters * {n}, 0, mem_stall, mispredicts)",
        # batched iterations are their own residency tier; the scalar-bail
        # tail below is accounted as compiled by the dispatching loop
        f"    core.tier_counts['bulk'] += iters * {n}",
        "    if bail and taken:",
        "        try:",
        "            seq, taken, _i2 = scalar_run(core, seq, limit)",
        "        except BaseException:",
        "            _fi, _fk = core._block_fault",
        "            core._block_fault = (_fi + iters, _fk)",
        "            raise",
        "        iters += _i2",
        "    return seq, taken, iters",
    ]
    ns = {
        "np": np,
        "_I64": np.int64,
        "MM": MainMemory,
        "F": Flags,
        "scalar_run": scalar_run,
    }
    return "\n".join(lines) + "\n", ns
