"""Retired-instruction records — the stream the DSA observes.

The paper couples the DSA to the O3CPU fetch stage (Methodology, Fig. 31);
in the trace-driven model every retired instruction is delivered to the DSA
as a :class:`TraceRecord` carrying exactly what the hardware would see: the
PC, the decoded instruction, effective memory addresses, branch outcome, and
the values read from the register file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import Instruction


@dataclass(frozen=True, slots=True)
class MemAccess:
    """One data-memory access performed by an instruction."""

    addr: int
    nbytes: int
    is_write: bool


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One retired instruction."""

    seq: int
    pc: int
    instr: Instruction
    next_pc: int
    accesses: tuple[MemAccess, ...] = ()
    branch_taken: bool | None = None
    reg_reads: tuple[tuple[int, int], ...] = ()   # (register index, value)
    reg_writes: tuple[tuple[int, int], ...] = ()  # (register index, new value)

    @property
    def is_backward_branch(self) -> bool:
        return bool(self.branch_taken) and self.next_pc < self.pc

    def read_value(self, reg_index: int) -> int | None:
        for idx, value in self.reg_reads:
            if idx == reg_index:
                return value
        return None

    def written_value(self, reg_index: int) -> int | None:
        for idx, value in self.reg_writes:
            if idx == reg_index:
                return value
        return None


@dataclass
class TraceBuffer:
    """Optional in-memory trace sink (used by tests and the examples)."""

    records: list[TraceRecord] = field(default_factory=list)
    capacity: int | None = None

    def __call__(self, record: TraceRecord) -> None:
        self.records.append(record)
        if self.capacity is not None and len(self.records) > self.capacity:
            self.records.pop(0)

    def __len__(self) -> int:
        return len(self.records)

    def pcs(self) -> list[int]:
        return [r.pc for r in self.records]
