"""Trace-compiled execution tier: hot loop bodies lowered to fused closures.

:mod:`repro.cpu.hotspot` finds innermost loop regions (a straight-line body
ending in a conditional branch back to the head); this module compiles each
region *once* into a single Python function executing one whole guest
iteration — body plus loop branch — per host dispatch, looping while the
branch stays taken.  Two lowerings exist, matching the two predecoded run
loops:

* **fast tier** (no retire hooks, no suppressor): architectural semantics
  and the timing scoreboard are both fully inlined.  Scoreboard state lives
  in locals for the whole block and is written back through one
  ``TimingModel.block_commit`` call; per-op instruction counts are
  reconstructed from the iteration count on exit.  Faults restore the exact
  legacy architected state via the ``core._block_fault`` protocol (see
  ``Core._run_decoded_fast``).

* **traced tier** (DSA or trace sinks attached): every instruction still
  produces its :class:`~repro.cpu.trace.TraceRecord`, consults the
  suppressor, charges timing through the shared ``charge_*_decoded``
  methods (the DSA mutates timing mid-run, so the scoreboard cannot be
  batched), and is delivered to the hooks — but through code specialised
  per instruction instead of the generic dispatch loop.  Any observable
  deviation (a hook halting the core or redirecting the PC) deoptimises by
  returning to the interpreter before the next instruction.

Both lowerings are byte-identical to the legacy interpreter — the same
golden-identity suite that polices the predecoded loops covers them
(``tests/cpu/test_predecode_identity.py``).

The generated source intentionally mirrors ``TimingModel._issue_slot`` /
``charge_scalar_decoded`` / ``charge_vector_decoded`` line for line; any
change there must be reflected here (the identity suite will catch a
mismatch, since cycle counts feed the serialized RunResult).
"""

from __future__ import annotations

from ..isa.instructions import (
    Alu,
    AluKind,
    Branch,
    Cmp,
    CmpKind,
    FloatOp,
    Mem,
    Mov,
    Mul,
    MulKind,
    Nop,
)
from ..isa.neon import VInstr
from ..isa.operands import Cond, Imm, IndexMode, Reg, ShiftedReg, ShiftKind
from ..isa.dtypes import float_to_bits, to_u32
from .executor import Flags, alu_compute, float_compute, mul_compute
from .hotspot import find_region
from .predecode import DecodedProgram
from .trace import MemAccess, TraceRecord

_M = 4294967295   # 32-bit mask
_S = 2147483648   # sign bit


class _Unsupported(Exception):
    """Internal: the region contains something the compiler cannot lower."""


class CompiledBlock:
    """One compiled region plus the static facts the dispatcher needs."""

    __slots__ = ("run", "head_idx", "head_pc", "exit_idx", "exit_pc", "n_ops")

    def __init__(self, run, head_idx, head_pc, exit_idx, exit_pc, n_ops):
        self.run = run
        self.head_idx = head_idx
        self.head_pc = head_pc
        self.exit_idx = exit_idx
        self.exit_pc = exit_pc
        self.n_ops = n_ops


# ----------------------------------------------------------------------
# expression helpers
# ----------------------------------------------------------------------
_COND_EXPR = {
    Cond.EQ: "{f}.z",
    Cond.NE: "not {f}.z",
    Cond.LT: "{f}.n != {f}.v",
    Cond.GE: "{f}.n == {f}.v",
    Cond.GT: "(not {f}.z) and {f}.n == {f}.v",
    Cond.LE: "{f}.z or {f}.n != {f}.v",
    Cond.LO: "not {f}.c",
    Cond.HS: "{f}.c",
    Cond.MI: "{f}.n",
    Cond.PL: "not {f}.n",
}

_ALU_INLINE = {
    AluKind.ADD: "({a} + {b}) & 4294967295",
    AluKind.SUB: "({a} - {b}) & 4294967295",
    AluKind.RSB: "({b} - {a}) & 4294967295",
    AluKind.AND: "{a} & {b}",
    AluKind.ORR: "{a} | {b}",
    AluKind.EOR: "{a} ^ {b}",
    AluKind.BIC: "{a} & ({b} ^ 4294967295)",
}


def _op2_expr(op2, out, tmp):
    """Append lines evaluating a flexible second operand; return its expr."""
    if isinstance(op2, Imm):
        return str(to_u32(op2.value))
    if isinstance(op2, Reg):
        return f"regs[{op2.index}]"
    if isinstance(op2, ShiftedReg):
        i, kind, amount = op2.reg.index, op2.kind, op2.amount
        if amount == 0:
            return f"regs[{i}]"
        if kind is ShiftKind.LSL:
            return f"((regs[{i}] << {amount}) & 4294967295)" if amount < 32 else "0"
        if kind is ShiftKind.LSR:
            return f"(regs[{i}] >> {amount})" if amount < 32 else "0"
        if kind is ShiftKind.ASR:
            s = min(amount, 31)
            out.append(f"{tmp} = regs[{i}]")
            return f"((({tmp} - (({tmp} & {_S}) << 1)) >> {s}) & {_M})"
    raise _Unsupported(f"operand2 {op2!r}")


def _flag_ctor(r, c_expr, v_expr):
    """``Flags(...)`` constructor source for a result in variable ``r``."""
    return f"F({r} >= {_S}, {r} == 0, {c_expr}, {v_expr})"


def _arch_lines(op, j, ns, fget, fset):
    """Architectural semantics of one body op as source lines.

    ``fget`` is source yielding the *current* Flags object (may emit a
    temp via the returned lines), ``fset`` is the assignment target for a
    new Flags object (``flags`` in the fast tier, ``core.flags`` traced).
    """
    instr = op.instr
    out: list[str] = []
    if isinstance(instr, Alu):
        kind, rd, rn = instr.kind, instr.rd.index, instr.rn.index
        b = _op2_expr(instr.op2, out, "_b")
        if not instr.sets_flags:
            tmpl = _ALU_INLINE.get(kind)
            if tmpl is not None:
                out.append(f"regs[{rd}] = " + tmpl.format(a=f"regs[{rn}]", b=b))
            else:
                ns[f"K{j}"] = kind
                out.append(f"regs[{rd}] = alu_compute(K{j}, regs[{rn}], {b})")
            return out
        out.append(f"_a = regs[{rn}]")
        out.append(f"_b = {b}")
        if kind is AluKind.ADD:
            out.append("_w = _a + _b")
            out.append(f"_r = _w & {_M}")
            out.append(f"regs[{rd}] = _r")
            out.append(fset + " = " + _flag_ctor(
                "_r", f"_w > {_M}",
                f"((_a ^ _b ^ {_M}) & (_a ^ _r) & {_S}) != 0"))
        elif kind is AluKind.SUB:
            out.append(f"_r = (_a - _b) & {_M}")
            out.append(f"regs[{rd}] = _r")
            out.append(fset + " = " + _flag_ctor(
                "_r", "_a >= _b", f"((_a ^ _b) & (_a ^ _r) & {_S}) != 0"))
        elif kind is AluKind.RSB:
            out.append(f"_r = (_b - _a) & {_M}")
            out.append(f"regs[{rd}] = _r")
            out.append(fset + " = " + _flag_ctor(
                "_r", "_b >= _a", f"((_b ^ _a) & (_b ^ _r) & {_S}) != 0"))
        else:
            tmpl = _ALU_INLINE.get(kind)
            if tmpl is not None:
                out.append("_r = " + tmpl.format(a="_a", b="_b"))
            else:
                ns[f"K{j}"] = kind
                out.append(f"_r = alu_compute(K{j}, _a, _b)")
            out.append(f"regs[{rd}] = _r")
            f = fget(out)
            out.append(fset + " = " + _flag_ctor("_r", f + ".c", f + ".v"))
        return out
    if isinstance(instr, Mov):
        rd = instr.rd.index
        b = _op2_expr(instr.op2, out, "_b")
        if instr.negate:
            out.append(f"regs[{rd}] = {b} ^ {_M}")
        else:
            out.append(f"regs[{rd}] = {b}")
        return out
    if isinstance(instr, Mul):
        kind, rd, rn, rm = instr.kind, instr.rd.index, instr.rn.index, instr.rm.index
        if kind is MulKind.MUL:
            out.append(f"regs[{rd}] = (regs[{rn}] * regs[{rm}]) & {_M}")
        elif kind is MulKind.MLA:
            ra = instr.ra.index
            out.append(
                f"regs[{rd}] = (regs[{rn}] * regs[{rm}] + regs[{ra}]) & {_M}"
            )
        else:
            ns[f"K{j}"] = kind
            ra = instr.ra.index if instr.ra is not None else None
            acc = f"regs[{ra}]" if ra is not None else "0"
            out.append(f"regs[{rd}] = mul_compute(K{j}, regs[{rn}], regs[{rm}], {acc})")
        return out
    if isinstance(instr, FloatOp):
        ns[f"K{j}"] = instr.kind
        out.append(
            f"regs[{instr.rd.index}] = float_compute("
            f"K{j}, regs[{instr.rn.index}], regs[{instr.rm.index}])"
        )
        return out
    if isinstance(instr, Cmp):
        kind, rn = instr.kind, instr.rn.index
        b = _op2_expr(instr.op2, out, "_b")
        out.append(f"_a = regs[{rn}]")
        out.append(f"_b = {b}")
        if kind is CmpKind.CMP:
            out.append(f"_r = (_a - _b) & {_M}")
            out.append(fset + " = " + _flag_ctor(
                "_r", "_a >= _b", f"((_a ^ _b) & (_a ^ _r) & {_S}) != 0"))
        elif kind is CmpKind.CMN:
            out.append("_w = _a + _b")
            out.append(f"_r = _w & {_M}")
            out.append(fset + " = " + _flag_ctor(
                "_r", f"_w > {_M}",
                f"((_a ^ _b ^ {_M}) & (_a ^ _r) & {_S}) != 0"))
        else:  # TST
            out.append("_r = _a & _b")
            f = fget(out)
            out.append(fset + " = " + _flag_ctor("_r", f + ".c", f + ".v"))
        return out
    if isinstance(instr, Mem):
        return _mem_lines(instr, j, ns, out)
    if isinstance(instr, Nop):
        return out
    raise _Unsupported(f"cannot lower {instr!r}")


def _mem_lines(instr: Mem, j, ns, out):
    # legacy ordering (step / predecode closures): ea and new_base are both
    # computed from the *old* base, the access happens, and the base is
    # written back last — so rd == base keeps the legacy aliasing behaviour
    bidx = instr.addr.base.index
    mode = instr.addr.mode
    size = instr.dtype.size
    off = _op2_expr(instr.addr.offset, out, "_b")
    out.append(f"_base = regs[{bidx}]")
    if mode is IndexMode.OFFSET:
        out.append(f"_ea = (_base + {off}) & {_M}")
        wb = None
    elif mode is IndexMode.PRE:
        out.append(f"_ea = (_base + {off}) & {_M}")
        wb = f"regs[{bidx}] = _ea"
    else:  # POST
        out.append("_ea = _base")
        wb = f"regs[{bidx}] = (_base + {off}) & {_M}"
    if instr.is_store:
        mask = (1 << (size * 8)) - 1
        out.append(
            f"mem_write(_ea, (regs[{instr.rd.index}] & {mask})"
            f'.to_bytes({size}, "little"))'
        )
    else:
        ns[f"D{j}"] = instr.dtype
        if instr.dtype.is_float:
            out.append(
                f"regs[{instr.rd.index}] = float_to_bits(float(mem_read(_ea, D{j})))"
            )
        else:
            out.append(f"regs[{instr.rd.index}] = mem_read(_ea, D{j}) & {_M}")
    if wb is not None:
        out.append(wb)
    return out


# ----------------------------------------------------------------------
# inlined timing (fast tier only; mirrors TimingModel exactly)
# ----------------------------------------------------------------------
def _issue_lines(op, width, out, reads_flags=False):
    """Inline ``_issue_slot(earliest)``: leaves the issue cycle in ``_e``."""
    reads = op.read_idx
    if reads_flags:
        out.append("_e = flags_ready")
    elif not reads:
        out.append("_e = 0")
    else:
        out.append(f"_e = ready[{reads[0]}]")
        for r in reads[1:]:
            out.append(f"_t = ready[{r}]")
            out.append("if _t > _e:")
            out.append("    _e = _t")
    out.append("if now > _e:")
    out.append("    _e = now")
    out.append(f"if _e == slot_cycle and slots_used < {width}:")
    out.append("    slots_used += 1")
    out.append("else:")
    out.append("    if slots_used:")
    out.append("        _t = slot_cycle + 1")
    out.append("        if _t > _e:")
    out.append("            _e = _t")
    out.append("    slot_cycle = _e")
    out.append("    slots_used = 1")
    out.append("now = _e")


def _scalar_timing_lines(op, config, out, is_mem=False, is_branch=False):
    """Inline ``charge_scalar_decoded`` against scoreboard locals."""
    _issue_lines(op, config.issue_width, out, reads_flags=op.reads_flags)
    out.append(f"_comp = _e + {op.latency} + _ml" if is_mem else f"_comp = _e + {op.latency}")
    wbi = op.wb_index
    for w in op.write_idx:
        out.append(f"ready[{w}] = _e + 1" if w == wbi else f"ready[{w}] = _comp")
    if op.sets_flags:
        out.append("flags_ready = _comp")
    out.append("if _comp > last_completion:")
    out.append("    last_completion = _comp")
    if is_branch:
        # backward branch, statically predicted taken: the only mispredict
        # is the final not-taken exit
        out.append("if not taken:")
        out.append("    mispredicts += 1")
        out.append(f"    _t = _e + {1 + config.mispredict_penalty}")
        out.append("    if _t > now:")
        out.append("        now = _t")
        out.append("    slot_cycle = -1")
        out.append("    slots_used = 0")


def _vector_timing_lines(op, config, out):
    """Inline ``charge_vector_decoded`` against scoreboard locals."""
    _issue_lines(op, config.issue_width, out)
    out.append("_s = _e")
    out.append("if neon_next_issue > _s:")
    out.append("    _s = neon_next_issue")
    for q in op.q_read_idx:
        out.append(f"_t = q_ready[{q}]")
        out.append("if _t > _s:")
        out.append("    _s = _t")
    out.append("if not neon_burst_open:")
    out.append(f"    _s += {config.vector.pipeline_depth}")
    out.append("    neon_burst_open = True")
    out.append("neon_next_issue = _s + 1")
    out.append(f"_comp = _s + {op.latency} + _ml")
    for q in op.q_write_idx:
        out.append(f"q_ready[{q}] = _comp")
    for w in op.write_idx:
        out.append(f"ready[{w}] = _s + 1" if op.v_is_mem else f"ready[{w}] = _comp")
    out.append("if _comp > last_completion:")
    out.append("    last_completion = _comp")


# ----------------------------------------------------------------------
# fast-tier lowering
# ----------------------------------------------------------------------
def _gen_fast(dec: DecodedProgram, head: int, br: int, config):
    ops = dec.ops
    region = [ops[i] for i in range(head, br + 1)]
    branch_op = region[-1]
    cond = branch_op.instr.cond
    cond_expr = _COND_EXPR.get(cond)
    if cond_expr is None:
        raise _Unsupported(f"condition {cond!r}")
    n = len(region)
    has_vector = any(op.is_vector for op in region)
    sc_total = sum(1 for op in region if not op.is_vector)
    v_total = n - sc_total
    # retired-op prefix counts by tier, indexed by the fault marker _k
    pref_sc = [0] * (n + 1)
    pref_v = [0] * (n + 1)
    for i, op in enumerate(region):
        pref_sc[i + 1] = pref_sc[i] + (0 if op.is_vector else 1)
        pref_v[i + 1] = pref_v[i] + (1 if op.is_vector else 0)

    ns = {
        "F": Flags,
        "alu_compute": alu_compute,
        "mul_compute": mul_compute,
        "float_compute": float_compute,
        "float_to_bits": float_to_bits,
        "PREF_SC": tuple(pref_sc),
        "PREF_V": tuple(pref_v),
    }

    def fget(out):
        return "flags"

    body: list[str] = []
    for j, op in enumerate(region[:-1]):
        instr = op.instr
        if op.is_vector:
            ns[f"I{j}"] = instr
            body.append(f"_k = {j}")
            body.append(f"_acc = neon_exec(I{j}, regs, memory)")
            body.append("_ml = 0")
            body.append("for _a in _acc:")
            body.append("    _ml += hierarchy_access(_a.addr, _a.nbytes, _a.is_write)")
            body.append("mem_stall += _ml")
            _vector_timing_lines(op, config, body)
            continue
        if isinstance(instr, Mem):
            body.append(f"_k = {j}")
            body.extend(_arch_lines(op, j, ns, fget, "flags"))
            body.append(f"_ml = hierarchy_access(_ea, {instr.dtype.size}, {instr.is_store})")
            body.append("mem_stall += _ml")
            _scalar_timing_lines(op, config, body, is_mem=True)
            continue
        body.extend(_arch_lines(op, j, ns, fget, "flags"))
        _scalar_timing_lines(op, config, body)
    body.append("taken = " + cond_expr.format(f="flags"))
    _scalar_timing_lines(branch_op, config, body, is_branch=True)
    body.append("iters += 1")
    body.append(f"seq += {n}")
    body.append("if not taken:")
    body.append("    break")

    lines = [
        "def __block_run__(core, seq, limit):",
        "    regs = core.regs",
        "    flags = core.flags",
        "    memory = core.memory",
        "    mem_write = memory.write",
        "    mem_read = memory.read_value",
        "    hierarchy_access = core.hierarchy.access",
        "    timing = core.timing",
        "    ready = timing._reg_ready",
    ]
    if has_vector:
        lines.append("    q_ready = timing._q_ready")
        lines.append("    neon_exec = core.vector.execute")
    lines += [
        "    (now, slot_cycle, slots_used, flags_ready, last_completion,",
        "     neon_next_issue, neon_burst_open) = timing.block_entry_state()",
        "    mem_stall = 0",
        "    mispredicts = 0",
        "    iters = 0",
        "    extra_sc = 0",
        "    extra_v = 0",
        "    _k = 0",
        "    taken = True",
        "    try:",
        f"        while seq + {n} <= limit:",
    ]
    lines += ["            " + ln for ln in body]
    lines += [
        "    except BaseException:",
        "        core._block_fault = (iters, _k)",
        "        extra_sc = PREF_SC[_k]",
        "        extra_v = PREF_V[_k]",
        "        raise",
        "    finally:",
        "        core.flags = flags",
        "        timing.block_commit(",
        "            now, slot_cycle, slots_used, flags_ready, last_completion,",
        "            neon_next_issue, neon_burst_open,",
        f"            iters * {sc_total} + extra_sc, iters * {v_total} + extra_v,",
        "            mem_stall, mispredicts)",
        "    return seq, taken, iters",
    ]
    return "\n".join(lines) + "\n", ns


# ----------------------------------------------------------------------
# traced-tier lowering
# ----------------------------------------------------------------------
def _reads_tuple(op):
    parts = [f"({i}, regs[{i}])" for i in op.read_idx]
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


def _writes_tuple(op):
    parts = [f"({i}, regs[{i}])" for i in op.write_idx]
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


def _gen_traced(dec: DecodedProgram, head: int, br: int, config):
    ops = dec.ops
    region = [ops[i] for i in range(head, br + 1)]
    branch_op = region[-1]
    cond = branch_op.instr.cond
    cond_expr = _COND_EXPR.get(cond)
    if cond_expr is None:
        raise _Unsupported(f"condition {cond!r}")
    n = len(region)
    head_pc = dec.base + (head << 2)
    exit_pc = dec.base + ((br + 1) << 2)

    ns = {
        "F": Flags,
        "TR": TraceRecord,
        "MA": MemAccess,
        "alu_compute": alu_compute,
        "mul_compute": mul_compute,
        "float_compute": float_compute,
        "float_to_bits": float_to_bits,
    }

    def fget(out):
        out.append("_f = core.flags")
        return "_f"

    body: list[str] = []
    for j, op in enumerate(region[:-1]):
        instr = op.instr
        pc = op.pc
        next_pc = pc + 4
        ns[f"I{j}"] = instr
        body.append(f"rr = {_reads_tuple(op)}")
        if op.is_vector:
            ns[f"X{j}"] = op.execute
            body.append(f"_res = X{j}(core)")
            body.append("_acc = _res[1]")
            body.append(
                f"rec = TR(seq + {j}, {pc}, I{j}, {next_pc}, _acc, None, rr, "
                f"{_writes_tuple(op)})"
            )
            body.append("if suppressor is not None and suppressor(rec):")
            body.append("    note_suppressed()")
            body.append("else:")
            body.append("    _ml = 0")
            body.append("    for _a in _acc:")
            body.append("        _ml += hierarchy_access(_a.addr, _a.nbytes, _a.is_write)")
            ns[f"OP{j}"] = op
            body.append(f"    charge_v(OP{j}, _ml)")
        elif isinstance(instr, Mem):
            body.extend(_arch_lines(op, j, ns, fget, "core.flags"))
            size = instr.dtype.size
            isw = instr.is_store
            body.append(
                f"rec = TR(seq + {j}, {pc}, I{j}, {next_pc}, (MA(_ea, {size}, "
                f"{isw}),), None, rr, {_writes_tuple(op)})"
            )
            body.append("if suppressor is not None and suppressor(rec):")
            body.append("    note_suppressed()")
            body.append("else:")
            ns[f"OP{j}"] = op
            body.append(f"    charge(OP{j}, hierarchy_access(_ea, {size}, {isw}))")
        else:
            body.extend(_arch_lines(op, j, ns, fget, "core.flags"))
            body.append(
                f"rec = TR(seq + {j}, {pc}, I{j}, {next_pc}, (), None, rr, "
                f"{_writes_tuple(op)})"
            )
            body.append("if suppressor is not None and suppressor(rec):")
            body.append("    note_suppressed()")
            body.append("else:")
            ns[f"OP{j}"] = op
            body.append(f"    charge(OP{j})")
        body.append(f'icounts["{op.kind_name}"] += 1')
        body.append(f"core.seq = seq + {j + 1}")
        body.append(f"core.pc = {next_pc}")
        body.append("for _h in hooks:")
        body.append("    _h(rec)")
        body.append(f"if core.halted or core.pc != {next_pc}:")
        body.append("    return")

    j = n - 1
    ns[f"I{j}"] = branch_op.instr
    ns[f"OP{j}"] = branch_op
    body.append("_f = core.flags")
    body.append("taken = " + cond_expr.format(f="_f"))
    body.append(f"_np = {head_pc} if taken else {exit_pc}")
    body.append(f"rec = TR(seq + {j}, {branch_op.pc}, I{j}, _np, (), taken, (), ())")
    body.append("if suppressor is not None and suppressor(rec):")
    body.append("    note_suppressed()")
    body.append("else:")
    body.append(f"    charge(OP{j}, 0, not taken)")
    body.append('icounts["Branch"] += 1')
    body.append(f"core.seq = seq + {n}")
    body.append("core.pc = _np")
    body.append("for _h in hooks:")
    body.append("    _h(rec)")
    body.append("if core.halted or core.pc != _np or not taken:")
    body.append("    return")

    lines = [
        "def __block_run__(core, limit):",
        "    regs = core.regs",
        "    memory = core.memory",
        "    mem_write = memory.write",
        "    mem_read = memory.read_value",
        "    hierarchy_access = core.hierarchy.access",
        "    timing = core.timing",
        "    charge = timing.charge_scalar_decoded",
        "    charge_v = timing.charge_vector_decoded",
        "    note_suppressed = timing.note_suppressed",
        "    icounts = core.icounts",
        "    hooks = core.retire_hooks",
        "    while True:",
        "        seq = core.seq",
        f"        if seq + {n} > limit:",
        "            return",
        "        suppressor = core.timing_suppressor",
    ]
    lines += ["        " + ln for ln in body]
    return "\n".join(lines) + "\n", ns


# ----------------------------------------------------------------------
def compile_region(dec: DecodedProgram, head: int, config, traced: bool):
    """Compile the region at ``head`` for one tier, or None if refused."""
    region = find_region(dec, head)
    if region is None:
        return None
    head, br = region
    try:
        if traced:
            src, ns = _gen_traced(dec, head, br, config)
        else:
            src, ns = _gen_fast(dec, head, br, config)
    except _Unsupported:
        return None
    head_pc = dec.base + (head << 2)
    tier = "traced" if traced else "fast"
    code = compile(src, f"<compiled {tier} block 0x{head_pc:x}>", "exec")
    exec(code, ns)
    blk = CompiledBlock(
        run=ns["__block_run__"],
        head_idx=head,
        head_pc=head_pc,
        exit_idx=br + 1,
        exit_pc=dec.base + ((br + 1) << 2),
        n_ops=br - head + 1,
    )
    if not traced and config.compile_numpy:
        from .bulkloop import attach_bulk

        attach_bulk(blk, dec, head, br, config)
    return blk
