"""Pure functional semantics of the scalar instruction set.

Free functions over explicit state so the core, the DSA's re-execution
helpers, and the tests all share one implementation.
Registers are held as unsigned 32-bit integers; signedness is applied at the
point of use, exactly as hardware does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from ..isa.dtypes import DType, bits_to_float, float_to_bits, to_s32, to_u32
from ..isa.instructions import AluKind, FloatKind, MulKind
from ..isa.operands import Cond, Imm, IndexMode, Operand2, Reg, ShiftedReg, ShiftKind


@dataclass(slots=True)
class Flags:
    """The NZCV condition flags."""

    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False

    def set_nz(self, result_u32: int) -> None:
        self.n = bool(result_u32 & 0x80000000)
        self.z = result_u32 == 0

    def copy(self) -> "Flags":
        return Flags(self.n, self.z, self.c, self.v)


def eval_operand2(regs: list[int], op2: Operand2) -> int:
    """Value of a flexible second operand, as an unsigned 32-bit int."""
    if isinstance(op2, Imm):
        return to_u32(op2.value)
    if isinstance(op2, Reg):
        return regs[op2.index]
    if isinstance(op2, ShiftedReg):
        return apply_shift(regs[op2.reg.index], op2.kind, op2.amount)
    raise ExecutionError(f"bad operand2: {op2!r}")


def apply_shift(value: int, kind: ShiftKind, amount: int) -> int:
    value = to_u32(value)
    if amount == 0:
        return value
    if kind is ShiftKind.LSL:
        return to_u32(value << amount) if amount < 32 else 0
    if kind is ShiftKind.LSR:
        return value >> amount if amount < 32 else 0
    if kind is ShiftKind.ASR:
        signed = to_s32(value)
        return to_u32(signed >> min(amount, 31))
    raise ExecutionError(f"bad shift kind: {kind!r}")


def alu_compute(kind: AluKind, a: int, b: int) -> int:
    """Compute a data-processing result (unsigned 32-bit in and out)."""
    a, b = to_u32(a), to_u32(b)
    if kind is AluKind.ADD:
        return to_u32(a + b)
    if kind is AluKind.SUB:
        return to_u32(a - b)
    if kind is AluKind.RSB:
        return to_u32(b - a)
    if kind is AluKind.AND:
        return a & b
    if kind is AluKind.ORR:
        return a | b
    if kind is AluKind.EOR:
        return a ^ b
    if kind is AluKind.BIC:
        return a & to_u32(~b)
    # ARM shift-by-register semantics: only the bottom byte of the shift
    # amount participates (DDI 0406, A8.4.1), so 0x100 shifts by 0, not 255
    if kind is AluKind.LSL:
        return apply_shift(a, ShiftKind.LSL, b & 0xFF)
    if kind is AluKind.LSR:
        return apply_shift(a, ShiftKind.LSR, b & 0xFF)
    if kind is AluKind.ASR:
        return apply_shift(a, ShiftKind.ASR, b & 0xFF)
    if kind is AluKind.MIN:
        return to_u32(min(to_s32(a), to_s32(b)))
    if kind is AluKind.MAX:
        return to_u32(max(to_s32(a), to_s32(b)))
    raise ExecutionError(f"bad ALU kind: {kind!r}")


def flags_for_add(a: int, b: int) -> Flags:
    a, b = to_u32(a), to_u32(b)
    wide = a + b
    result = to_u32(wide)
    f = Flags()
    f.set_nz(result)
    f.c = wide > 0xFFFFFFFF
    f.v = bool((~(a ^ b) & (a ^ result)) & 0x80000000)
    return f


def flags_for_sub(a: int, b: int) -> Flags:
    """Flags for ``a - b`` (ARM convention: C set when no borrow)."""
    a, b = to_u32(a), to_u32(b)
    result = to_u32(a - b)
    f = Flags()
    f.set_nz(result)
    f.c = a >= b
    f.v = bool(((a ^ b) & (a ^ result)) & 0x80000000)
    return f


def flags_for_logical(result: int, previous: Flags) -> Flags:
    f = previous.copy()
    f.set_nz(to_u32(result))
    return f


def cond_holds(cond: Cond, f: Flags) -> bool:
    if cond is Cond.AL:
        return True
    if cond is Cond.EQ:
        return f.z
    if cond is Cond.NE:
        return not f.z
    if cond is Cond.LT:
        return f.n != f.v
    if cond is Cond.GE:
        return f.n == f.v
    if cond is Cond.GT:
        return (not f.z) and f.n == f.v
    if cond is Cond.LE:
        return f.z or f.n != f.v
    if cond is Cond.LO:
        return not f.c
    if cond is Cond.HS:
        return f.c
    if cond is Cond.MI:
        return f.n
    if cond is Cond.PL:
        return not f.n
    raise ExecutionError(f"bad condition: {cond!r}")


def mul_compute(kind: MulKind, rn: int, rm: int, ra: int = 0) -> int:
    rn_u, rm_u = to_u32(rn), to_u32(rm)
    if kind is MulKind.MUL:
        return to_u32(rn_u * rm_u)
    if kind is MulKind.MLA:
        return to_u32(rn_u * rm_u + to_u32(ra))
    if kind is MulKind.SDIV:
        a, b = to_s32(rn_u), to_s32(rm_u)
        if b == 0:
            return 0  # ARMv7 SDIV returns 0 on division by zero
        q = abs(a) // abs(b)
        return to_u32(-q if (a < 0) != (b < 0) else q)
    if kind is MulKind.UDIV:
        return 0 if rm_u == 0 else rn_u // rm_u
    raise ExecutionError(f"bad multiply kind: {kind!r}")


def float_compute(kind: FloatKind, rn_bits: int, rm_bits: int) -> int:
    a, b = bits_to_float(rn_bits), bits_to_float(rm_bits)
    if kind is FloatKind.FADD:
        r = a + b
    elif kind is FloatKind.FSUB:
        r = a - b
    elif kind is FloatKind.FMUL:
        r = a * b
    elif kind is FloatKind.FDIV:
        r = a / b if b != 0.0 else float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
    else:
        raise ExecutionError(f"bad float kind: {kind!r}")
    return float_to_bits(r)


def effective_address(regs: list[int], addr) -> tuple[int, int | None]:
    """Return (effective_address, new_base_value_or_None) for a Mem operand."""
    base = regs[addr.base.index]
    offset = eval_operand2(regs, addr.offset)
    if addr.mode is IndexMode.OFFSET:
        return to_u32(base + offset), None
    if addr.mode is IndexMode.PRE:
        ea = to_u32(base + offset)
        return ea, ea
    if addr.mode is IndexMode.POST:
        return to_u32(base), to_u32(base + offset)
    raise ExecutionError(f"bad index mode: {addr.mode!r}")


def load_to_register(raw_value: int | float, dtype: DType) -> int:
    """Sign/zero-extend a loaded value into a 32-bit register image."""
    if dtype.is_float:
        return float_to_bits(float(raw_value))
    return to_u32(int(raw_value))
