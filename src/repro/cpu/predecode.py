"""Predecode layer: decode once, execute many.

Every paper table and fault campaign funnels tens of millions of
instructions through the interpreter; re-deciding *what an instruction is*
on every retirement (the ``isinstance`` ladder), re-deriving its register
sets (frozenset construction + sort), and re-looking-up its latency were
the dominant host-side costs.  This module lowers an assembled
:class:`~repro.isa.program.Program` into a flat array of
:class:`DecodedOp` records at :class:`~repro.cpu.core.Core` construction:

* a direct-dispatch ``execute`` closure, specialised per instruction class
  *and* per operand shape (immediate vs register vs shifted-register second
  operand, load vs store, index mode, flag-setting or not), bound once;
* precomputed, pre-sorted read/write register index tuples and static
  flags (``reads_flags``, ``sets_flags``, branch target, BTFN prediction),
  so the timing model charges cycles without touching the instruction
  object again (see ``TimingModel.charge_scalar_decoded``).

The :class:`DecodedOp` array is also the substrate every higher execution
tier compiles or scans from — trace-compiled blocks
(:mod:`repro.cpu.blockcompile`), numpy bulk loops
(:mod:`repro.cpu.bulkloop`) and covered-execution regions
(:mod:`repro.cpu.covered`) all consume the static metadata here rather
than re-deriving it from instruction objects.

The closures execute *exactly* the legacy ``Core.step()`` semantics — same
pure functions from :mod:`repro.cpu.executor`, same ordering — which the
golden byte-identity suite (``tests/cpu/test_predecode_identity.py``)
enforces against the legacy interpreter kept behind
``CPUConfig.predecode=False``.

Execute-closure protocol: a closure receives the live ``Core`` and returns

* ``None`` — a simple sequential scalar op (no memory access, no branch,
  not a halt); the run loop advances one slot and charges scalar timing;
* ``(next_pc, accesses, branch_taken, mispredicted)`` — everything else.
  ``accesses`` is a (possibly shared, possibly empty) tuple of
  :class:`~repro.cpu.trace.MemAccess`.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ExecutionError
from ..isa.dtypes import WORD_MASK, float_to_bits, to_u32
from ..isa.instructions import (
    Alu,
    AluKind,
    Branch,
    BranchReg,
    Cmp,
    CmpKind,
    FloatOp,
    Halt,
    Instruction,
    Mem,
    Mov,
    Mul,
    Nop,
)
from ..isa.neon import VInstr
from ..isa.operands import Cond, Imm, IndexMode, LR, Reg, ShiftedReg
from ..isa.program import INSTRUCTION_BYTES, Program
from .config import CPUConfig
from .executor import (
    apply_shift,
    alu_compute,
    cond_holds,
    flags_for_add,
    flags_for_logical,
    flags_for_sub,
    float_compute,
    mul_compute,
)
from .timing import TimingModel
from .trace import MemAccess

#: shared empty accesses tuple (identical to what records carry today)
_NO_ACCESS: tuple = ()


class DecodedOp:
    """One predecoded instruction: dispatch closure + static metadata."""

    __slots__ = (
        "instr",         # the original Instruction (records still carry it)
        "pc",            # text address of this op
        "kind_name",     # type(instr).__name__, for icounts/energy
        "execute",       # the bound execute closure (see module docstring)
        "read_idx",      # sorted tuple of scalar register indices read
        "write_idx",     # sorted tuple of scalar register indices written
        "reads_flags",   # static: conditional branch
        "sets_flags",    # static: Cmp, or Alu with the S suffix
        "cond_link",     # static: conditional branch-link (BL<cond>)
        "branch_target", # static target of an assembled Branch, else None
        "latency",       # scalar or vector execution latency (cycles)
        "wb_index",      # Mem writeback base register index, or None
        "is_vector",     # dispatched to the NEON pipeline
        "q_read_idx",    # sorted tuple of Q register indices read (vector)
        "q_write_idx",   # sorted tuple of Q register indices written
        "v_is_mem",      # vector load/store (early base writeback)
    )

    def __init__(self, instr: Instruction, pc: int):
        self.instr = instr
        self.pc = pc
        self.kind_name = type(instr).__name__
        self.read_idx = instr.read_indices()
        self.write_idx = instr.write_indices()
        self.reads_flags = isinstance(instr, Branch) and instr.cond is not Cond.AL
        self.sets_flags = isinstance(instr, Cmp) or (
            isinstance(instr, Alu) and instr.sets_flags
        )
        self.cond_link = (
            isinstance(instr, Branch) and instr.link and instr.cond is not Cond.AL
        )
        self.branch_target = (
            instr.target
            if isinstance(instr, Branch) and isinstance(instr.target, int)
            else None
        )
        self.wb_index = (
            instr.addr.base.index
            if isinstance(instr, Mem) and instr.addr.writes_back
            else None
        )
        self.is_vector = isinstance(instr, VInstr)
        if self.is_vector:
            self.q_read_idx = instr.qread_indices()
            self.q_write_idx = instr.qwrite_indices()
            self.v_is_mem = instr.is_load or instr.is_store
        else:
            self.q_read_idx = ()
            self.q_write_idx = ()
            self.v_is_mem = False
        self.latency = 1       # filled in by predecode()
        self.execute = None    # filled in by predecode()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecodedOp 0x{self.pc:x} {self.instr}>"


class DecodedProgram:
    """The predecoded image: ``ops[i]`` executes the instruction at
    ``base + i*4``.  ``ops[n]`` is a sentinel that raises the same
    out-of-text error the legacy fetch path produced, so the fast run
    loop's sequential advance needs no per-step bounds check."""

    __slots__ = ("ops", "base", "n")

    def __init__(self, ops: list[DecodedOp], base: int):
        self.ops = ops
        self.base = base
        self.n = len(ops) - 1  # real instruction count (last op is sentinel)


# ----------------------------------------------------------------------
# operand specialisation
# ----------------------------------------------------------------------
def _operand2_evaluator(op2) -> Callable[[list[int]], int]:
    """Bind a flexible second operand to a ``regs -> value`` closure."""
    if isinstance(op2, Imm):
        v = to_u32(op2.value)
        return lambda regs: v
    if isinstance(op2, Reg):
        i = op2.index
        return lambda regs: regs[i]
    if isinstance(op2, ShiftedReg):
        i, kind, amount = op2.reg.index, op2.kind, op2.amount
        return lambda regs: apply_shift(regs[i], kind, amount)
    raise ExecutionError(f"bad operand2: {op2!r}")


# ----------------------------------------------------------------------
# per-class closure builders
# ----------------------------------------------------------------------
def _build_alu(instr: Alu, pc: int):
    kind, rd, rn = instr.kind, instr.rd.index, instr.rn.index
    ev = _operand2_evaluator(instr.op2)
    if not instr.sets_flags:
        def execute(core):
            regs = core.regs
            regs[rd] = alu_compute(kind, regs[rn], ev(regs))
            return None
    elif kind is AluKind.ADD:
        def execute(core):
            regs = core.regs
            a, b = regs[rn], ev(regs)
            regs[rd] = alu_compute(kind, a, b)
            core.flags = flags_for_add(a, b)
            return None
    elif kind is AluKind.SUB:
        def execute(core):
            regs = core.regs
            a, b = regs[rn], ev(regs)
            regs[rd] = alu_compute(kind, a, b)
            core.flags = flags_for_sub(a, b)
            return None
    elif kind is AluKind.RSB:
        def execute(core):
            regs = core.regs
            a, b = regs[rn], ev(regs)
            regs[rd] = alu_compute(kind, a, b)
            core.flags = flags_for_sub(b, a)
            return None
    else:
        def execute(core):
            regs = core.regs
            result = alu_compute(kind, regs[rn], ev(regs))
            regs[rd] = result
            core.flags = flags_for_logical(result, core.flags)
            return None
    return execute


def _build_mov(instr: Mov, pc: int):
    rd = instr.rd.index
    ev = _operand2_evaluator(instr.op2)
    if instr.negate:
        def execute(core):
            regs = core.regs
            regs[rd] = ~ev(regs) & WORD_MASK
            return None
    else:
        def execute(core):
            regs = core.regs
            regs[rd] = ev(regs)
            return None
    return execute


def _build_mul(instr: Mul, pc: int):
    kind, rd, rn, rm = instr.kind, instr.rd.index, instr.rn.index, instr.rm.index
    if instr.ra is None:
        def execute(core):
            regs = core.regs
            regs[rd] = mul_compute(kind, regs[rn], regs[rm], 0)
            return None
    else:
        ra = instr.ra.index
        def execute(core):
            regs = core.regs
            regs[rd] = mul_compute(kind, regs[rn], regs[rm], regs[ra])
            return None
    return execute


def _build_float(instr: FloatOp, pc: int):
    kind, rd, rn, rm = instr.kind, instr.rd.index, instr.rn.index, instr.rm.index

    def execute(core):
        regs = core.regs
        regs[rd] = float_compute(kind, regs[rn], regs[rm])
        return None

    return execute


def _build_cmp(instr: Cmp, pc: int):
    kind, rn = instr.kind, instr.rn.index
    ev = _operand2_evaluator(instr.op2)
    if kind is CmpKind.CMP:
        def execute(core):
            regs = core.regs
            core.flags = flags_for_sub(regs[rn], ev(regs))
            return None
    elif kind is CmpKind.CMN:
        def execute(core):
            regs = core.regs
            core.flags = flags_for_add(regs[rn], ev(regs))
            return None
    else:  # TST
        def execute(core):
            regs = core.regs
            core.flags = flags_for_logical(regs[rn] & ev(regs), core.flags)
            return None
    return execute


def _build_mem(instr: Mem, pc: int):
    # legacy ordering (step): compute ea/new_base from the *old* base, do the
    # access, then write the base back — so with rd == base a store reads the
    # pre-writeback value and a load result is overwritten by the writeback
    seq_pc = pc + INSTRUCTION_BYTES
    bidx = instr.addr.base.index
    ev = _operand2_evaluator(instr.addr.offset)
    mode = instr.addr.mode
    dtype = instr.dtype
    size = dtype.size
    if instr.is_store:
        rd = instr.rd.index
        mask = (1 << (size * 8)) - 1

        def execute(core):
            regs = core.regs
            base = regs[bidx]
            if mode is IndexMode.OFFSET:
                ea, new_base = (base + ev(regs)) & WORD_MASK, None
            elif mode is IndexMode.PRE:
                ea = (base + ev(regs)) & WORD_MASK
                new_base = ea
            else:  # POST
                ea, new_base = base, (base + ev(regs)) & WORD_MASK
            core.memory.write(ea, (regs[rd] & mask).to_bytes(size, "little"))
            if new_base is not None:
                regs[bidx] = new_base
            return (seq_pc, (MemAccess(ea, size, True),), None, False)
    else:
        rd = instr.rd.index
        if dtype.is_float:
            def _to_reg(value):
                return float_to_bits(float(value))
        else:
            def _to_reg(value):
                return value & WORD_MASK

        def execute(core):
            regs = core.regs
            base = regs[bidx]
            if mode is IndexMode.OFFSET:
                ea, new_base = (base + ev(regs)) & WORD_MASK, None
            elif mode is IndexMode.PRE:
                ea = (base + ev(regs)) & WORD_MASK
                new_base = ea
            else:  # POST
                ea, new_base = base, (base + ev(regs)) & WORD_MASK
            regs[rd] = _to_reg(core.memory.read_value(ea, dtype))
            if new_base is not None:
                regs[bidx] = new_base
            return (seq_pc, (MemAccess(ea, size, False),), None, False)
    return execute


def _build_branch(instr: Branch, pc: int):
    if not isinstance(instr.target, int):
        def execute(core):
            raise AssertionError("program must be assembled")
        return execute
    target = instr.target
    seq_pc = pc + INSTRUCTION_BYTES
    cond, link = instr.cond, instr.link
    # static BTFN predictor: backward predicted taken, forward not
    predicted_taken = target < pc
    taken_result = (target, _NO_ACCESS, True, not predicted_taken)
    not_taken_result = (seq_pc, _NO_ACCESS, False, predicted_taken)
    link_value = to_u32(seq_pc)
    if cond is Cond.AL:
        if link:
            def execute(core):
                core.regs[LR] = link_value
                return taken_result
        else:
            def execute(core):
                return taken_result
    elif link:
        # ARM semantics: a conditional instruction whose condition fails
        # retires as a NOP — an untaken BL<cond> must NOT write LR
        def execute(core):
            if cond_holds(cond, core.flags):
                core.regs[LR] = link_value
                return taken_result
            return not_taken_result
    else:
        def execute(core):
            return taken_result if cond_holds(cond, core.flags) else not_taken_result
    return execute


def _build_branch_reg(instr: BranchReg, pc: int):
    rm = instr.rm.index

    def execute(core):
        # return-address stack assumed perfect: never mispredicted
        return (core.regs[rm], _NO_ACCESS, True, False)

    return execute


def _build_halt(instr: Halt, pc: int):
    result = (pc, _NO_ACCESS, None, False)

    def execute(core):
        core.halted = True
        return result

    return execute


def _build_nop(instr: Nop, pc: int):
    def execute(core):
        return None

    return execute


def _build_vinstr(instr: VInstr, pc: int):
    no_events = (pc + INSTRUCTION_BYTES, _NO_ACCESS, None, False)
    seq_pc = pc + INSTRUCTION_BYTES

    def execute(core):
        events = core.vector.execute(instr, core.regs, core.memory)
        if not events:
            return no_events
        return (
            seq_pc,
            tuple(MemAccess(e.addr, e.nbytes, e.is_write) for e in events),
            None,
            False,
        )

    return execute


def _build_unknown(instr: Instruction, pc: int):
    """Unknown instruction class: fail at execution, exactly like the
    legacy interpreter (never at decode — dead code must stay decodable)."""

    def execute(core):
        raise ExecutionError(f"cannot execute {instr!r}")

    return execute


_BUILDERS: dict[type, Callable] = {
    Alu: _build_alu,
    Mov: _build_mov,
    Mul: _build_mul,
    FloatOp: _build_float,
    Cmp: _build_cmp,
    Mem: _build_mem,
    Branch: _build_branch,
    BranchReg: _build_branch_reg,
    Halt: _build_halt,
    Nop: _build_nop,
}


def _builder_for(cls: type) -> Callable:
    builder = _BUILDERS.get(cls)
    if builder is None:
        builder = _build_vinstr if issubclass(cls, VInstr) else _build_unknown
        _BUILDERS[cls] = builder  # memoise subclasses
    return builder


def _sentinel(end_pc: int) -> DecodedOp:
    """The op one past the end of text: falling into it reproduces the
    legacy out-of-text fetch error."""
    op = DecodedOp(Nop(), end_pc)
    op.kind_name = "<end-of-text>"

    def execute(core):
        raise ExecutionError(f"address 0x{end_pc:x} is not inside the text segment")

    op.execute = execute
    return op


# ----------------------------------------------------------------------
def predecode(program: Program, config: CPUConfig) -> DecodedProgram:
    """Lower an assembled program into its direct-dispatch form."""
    probe = TimingModel(config)  # latency tables only; no cycle state is kept
    ops: list[DecodedOp] = []
    pc = program.base
    for instr in program.instructions:
        op = DecodedOp(instr, pc)
        builder = _builder_for(type(instr))
        op.execute = builder(instr, pc)
        if builder is not _build_unknown:
            op.latency = (
                probe.vector_latency(instr) if op.is_vector else probe.scalar_latency(instr)
            )
        ops.append(op)
        pc += INSTRUCTION_BYTES
    ops.append(_sentinel(pc))
    return DecodedProgram(ops, program.base)
