"""Covered-execution runners: record-free retirement inside released regions.

Once an attached DSA has fully characterized a loop (see
``repro.dsa.engine``) it *covers* the PC region: instead of interpreting
one instruction per traced-loop pass and handing each a
:class:`~repro.cpu.trace.TraceRecord`, the core runs whole iterations
through one of the runners here and the DSA bulk-folds its own
per-record effects afterwards.  A covered loop is in one of three timing
regimes:

* **suppressed cover** — the loop is in suppressed EXECUTE: in the traced
  world every retirement inside the region is claimed by the DSA's timing
  suppressor (architectural effect only — no cycles, no cache-model
  traffic) while the verification machinery checks each memory access
  against its per-stream stride prediction.  :func:`compile_covered`
  lowers the body once to a closure with the architectural semantics and
  the identical expected-address checks inlined, and *no* timing at all.

* **scalar cover** — the loop holds a scalar verdict (context state
  SCALAR): the traced world delivers records whose only effect is
  ``records_observed``.  :func:`run_scalar_region` is a region-bounded
  clone of ``Core._run_decoded_fast`` — normal timing and hierarchy
  charges, inner compiled/bulk blocks dispatched as usual — that exits as
  soon as control leaves ``[head_pc, end_pc]``.

* **post-limit cover** — the loop is still in EXECUTE but the coverage
  limit has deactivated suppression: normal timing again, so it shares
  :func:`run_scalar_region` with scalar cover.  The DSA additionally
  folds the per-boundary iteration bumps it would have made (the runner
  reports them via ``core._region_boundaries``) and must first prove the
  skipped per-iteration stream samples are redundant — that is what
  :func:`_stride_safe` (``CoverRegion.stride_safe``) certifies
  statically.

Static eligibility lives in :func:`scan_region` (returning a
:class:`CoverRegion`); the *dynamic* re-arm conditions (single retire
hook, no guard/injector/observer, context states, resolved stride
streams) are the DSA's business — see
``DynamicSIMDAssembler._cover_hook``.  This module knows nothing about
the DSA: the suppressed runner receives expected addresses, per-iteration
gaps and a mismatch callback as plain arguments.
"""

from __future__ import annotations

from ..isa.instructions import (
    Alu,
    AluKind,
    Branch,
    BranchReg,
    Cmp,
    FloatOp,
    Halt,
    Mem,
    Mov,
    Mul,
    MulKind,
    Nop,
)
from ..isa.operands import Imm, IndexMode, Reg, ShiftKind
from ..isa.dtypes import float_to_bits
from .blockcompile import _COND_EXPR, _Unsupported, _arch_lines
from .executor import Flags, alu_compute, float_compute, mul_compute
from .hotspot import FAILED as _FAILED

#: instruction classes a *suppressed* (codegen) cover body may contain —
#: the straight-line set the block compiler understands, minus vector ops
_STRAIGHT_BODY = (Alu, Mov, Mul, FloatOp, Cmp, Mem, Nop)

#: instruction classes a *scalar* cover body may contain in addition to
#: the straight set (the bounded interpreter handles them generically)
_SCALAR_EXTRA = (Branch, Halt)

#: same complexity bound as the hotspot region finder
MAX_COVER_OPS = 96


class CoverRegion:
    """Static facts about one coverable loop region."""

    __slots__ = (
        "head_idx", "end_idx", "head_pc", "end_pc", "n_ops",
        "pcs", "mem_pcs", "straight", "stride_safe", "kind_counts", "block",
    )

    def __init__(self, head_idx, end_idx, head_pc, end_pc,
                 pcs, mem_pcs, straight, stride_safe, kind_counts):
        self.head_idx = head_idx
        self.end_idx = end_idx
        self.head_pc = head_pc
        self.end_pc = end_pc
        self.n_ops = end_idx - head_idx + 1
        #: every instruction address in the region (the suppressed mode
        #: requires the DSA's suppress set to equal exactly this)
        self.pcs = pcs
        #: pcs of memory ops in program order (suppressed mode checks one
        #: expected address per entry per iteration)
        self.mem_pcs = mem_pcs
        #: True when the body is straight-line with a conditional end
        #: branch — the shape :func:`compile_covered` can lower
        self.straight = straight
        #: True when every memory op's per-iteration address delta is
        #: provably the same constant on every iteration (see
        #: :func:`_stride_safe`) — the condition for releasing *post-limit*
        #: EXECUTE stretches without replaying stream sample appends
        self.stride_safe = stride_safe
        #: kind_name -> static occurrences per iteration (icounts folding)
        self.kind_counts = kind_counts
        #: compiled suppressed runner, attached by :func:`compile_covered`
        self.block = None


#: abstract value classes over the iteration index k, for a value sequence
#: v_k observed at one program point on successive iterations
_INV = 0      # v_k identical every iteration
_AFFINE = 1   # v_k = v_0 + c*k for some iteration-independent c
_VARY = 2     # anything else


def _stride_safe(body) -> bool:
    """Prove every memory op's address advances by a per-iteration constant.

    ``body`` is the straight-line op list *excluding* the end branch, so
    every op executes unconditionally exactly once per iteration and a
    forward pass sees each register's defining chain in order.  Values at
    each point are classified over the iteration index as invariant,
    affine (constant per-iteration delta), or varying.  Loop-carried
    entry state is seeded soundly: a register never written in the body
    is invariant; one written only by self-increments of invariant
    amounts (``add/sub r, r, <inv>`` or load/store writeback) enters
    affine; anything else enters varying — recomputed-per-iteration
    registers recover inside the body when their defining chain starts
    from a kill (``mov r, #imm``).  Affinity survives add/sub/mvn, a
    multiply with one invariant factor, and LSL by an invariant amount;
    loads, non-affine bit ops, and affine-times-affine do not.

    When every effective address is invariant-or-affine, the traced
    world's per-iteration stream sample appends would all continue the
    exact observed stride, so skipping them cannot change any later
    ``gap()`` or ``samples[0]`` read (the gap computation tolerates
    iteration holes by construction).
    """
    written: dict[int, list] = {}
    for op in body:
        instr = op.instr
        if isinstance(instr, (Cmp, Nop)):
            continue
        if isinstance(instr, Mem):
            if instr.addr.mode is not IndexMode.OFFSET:
                written.setdefault(instr.addr.base.index, []).append(instr)
            if instr.is_load:
                written.setdefault(instr.rd.index, []).append(instr)
            continue
        written.setdefault(instr.rd.index, []).append(instr)

    def entry_affine(idx: int) -> bool:
        # every writer is a self-increment by a body-invariant amount
        for instr in written[idx]:
            if isinstance(instr, Mem):  # writeback
                if instr.addr.base.index != idx or not _inv_op2(instr.addr.offset, written):
                    return False
                if instr.is_load and instr.rd.index == idx:
                    return False  # the loaded value clobbers the stride
            elif not (
                isinstance(instr, Alu)
                and instr.kind in (AluKind.ADD, AluKind.SUB)
                and instr.rd.index == idx
                and instr.rn.index == idx
                and _inv_op2(instr.op2, written)
            ):
                return False
        return True

    cls: dict[int, int] = {}
    for op in body:
        instr = op.instr
        if isinstance(instr, (Cmp, Nop)):
            continue
        for reg in instr.regs_written():
            if reg.index not in cls:
                cls[reg.index] = (
                    _INV if reg.index not in written
                    else _AFFINE if entry_affine(reg.index)
                    else _VARY
                )

    def rc(reg) -> int:
        idx = reg.index
        c = cls.get(idx)
        if c is None:
            c = cls[idx] = _INV if idx not in written else _VARY
        return c

    def oc(op2) -> int:
        if isinstance(op2, Imm):
            return _INV
        if isinstance(op2, Reg):
            return rc(op2)
        c = rc(op2.reg)
        if op2.kind is ShiftKind.LSL:
            return c  # (v0 + c*k) << s keeps a constant delta
        return c if c is _INV else _VARY

    def mulc(a: int, b: int) -> int:
        if a == _INV and b == _INV:
            return _INV
        if max(a, b) == _AFFINE and min(a, b) == _INV:
            return _AFFINE  # one affine factor scaled by a constant
        return _VARY

    for op in body:
        instr = op.instr
        if isinstance(instr, (Cmp, Nop)):
            continue
        if isinstance(instr, Mem):
            base_c = rc(instr.addr.base)
            off_c = oc(instr.addr.offset)
            addr_c = base_c if instr.addr.mode is IndexMode.POST else max(base_c, off_c)
            if addr_c > _AFFINE:
                return False
            if instr.addr.writes_back:
                cls[instr.addr.base.index] = max(base_c, off_c)
            if instr.is_load:
                cls[instr.rd.index] = _VARY
        elif isinstance(instr, Mov):
            cls[instr.rd.index] = oc(instr.op2)  # mvn negates: still affine
        elif isinstance(instr, Alu):
            a, b = rc(instr.rn), oc(instr.op2)
            if instr.kind in (AluKind.ADD, AluKind.SUB, AluKind.RSB):
                c = max(a, b)
            elif instr.kind is AluKind.LSL:
                c = a if b == _INV else _VARY
            else:  # and/orr/eor/bic/lsr/asr/min/max: not affine-preserving
                c = _INV if max(a, b) == _INV else _VARY
            cls[instr.rd.index] = c
        elif isinstance(instr, Mul):
            if instr.kind in (MulKind.SDIV, MulKind.UDIV):
                # integer division is not affine-preserving
                c = _INV if max(rc(instr.rn), rc(instr.rm)) == _INV else _VARY
            else:
                c = mulc(rc(instr.rn), rc(instr.rm))
                if instr.ra is not None:  # mla accumulates
                    c = max(c, rc(instr.ra))
            cls[instr.rd.index] = c
        elif isinstance(instr, FloatOp):
            # float rounding breaks exact affinity; only invariance survives
            c = _INV if max(rc(instr.rn), rc(instr.rm)) == _INV else _VARY
            cls[instr.rd.index] = c
        else:
            return False  # unexpected op class: be conservative
    return True


def _inv_op2(op2, written: dict) -> bool:
    """A body-invariant amount: immediate, unwritten register, or a shift
    of an unwritten register (any fixed shift of a constant is constant)."""
    if isinstance(op2, Imm):
        return True
    if isinstance(op2, Reg):
        return op2.index not in written
    return op2.reg.index not in written


def scan_region(dec, head_pc: int, end_pc: int) -> CoverRegion | None:
    """Validate ``[head_pc, end_pc]`` as a coverable region.

    Returns ``None`` unless the op at ``end_pc`` is a non-link branch
    whose static target is exactly ``head_pc`` and every body op is
    either straight-line lane math (suppressed-eligible) or, for scalar
    cover, additionally a forward branch / a backward branch to the head
    / HALT / a vector op.  Backward branches to any *other* target are
    rejected outright: in the traced world they fire loop detection,
    which a record-free runner could not replicate.
    """
    base = dec.base
    head = (head_pc - base) >> 2
    end = (end_pc - base) >> 2
    if (
        head < 0
        or end >= dec.n
        or end <= head
        or head_pc != base + (head << 2)
        or end_pc != base + (end << 2)
        or end - head + 1 > MAX_COVER_OPS
    ):
        return None
    ops = dec.ops
    endi = ops[end].instr
    if not isinstance(endi, Branch) or endi.link or ops[end].branch_target != head_pc:
        return None
    straight = endi.cond in _COND_EXPR  # conditional, lowerable
    mem_pcs: list[int] = []
    kind_counts: dict[str, int] = {}
    for i in range(head, end + 1):
        op = ops[i]
        kind_counts[op.kind_name] = kind_counts.get(op.kind_name, 0) + 1
        if i == end:
            continue
        instr = op.instr
        if isinstance(instr, Mem):
            mem_pcs.append(op.pc)
            continue
        if isinstance(instr, _STRAIGHT_BODY):
            continue
        straight = False
        if isinstance(instr, Branch):
            target = op.branch_target
            if instr.link or target is None or (target < op.pc and target != head_pc):
                return None
            continue
        if isinstance(instr, Halt) or op.is_vector:
            continue
        if isinstance(instr, BranchReg):
            return None
        return None
    body = [ops[i] for i in range(head, end)]
    return CoverRegion(
        head, end, head_pc, end_pc,
        frozenset(range(head_pc, end_pc + 4, 4)),
        tuple(mem_pcs), straight,
        straight and _stride_safe(body), kind_counts,
    )


# ----------------------------------------------------------------------
# suppressed cover: architectural semantics + address checks, zero timing
# ----------------------------------------------------------------------
def compile_covered(dec, region: CoverRegion):
    """Compile the suppressed runner for a straight region (or ``None``).

    The generated closure executes whole iterations — architectural
    effects only, mirroring ``blockcompile._arch_lines`` — while checking
    every memory op's effective address against the expected stride
    trajectory (``exps[m] + iters * gaps[m]``).  A mismatch sets ``bad``
    and invokes ``on_mismatch()`` once per deviating access, exactly as
    the DSA's per-record verification would, then finishes the iteration
    and stops.  Signature of the result::

        runner(core, seq, limit, budget, exps, gaps, on_mismatch)
            -> (seq, taken, iters, bad)

    Faults restore the architected position via the same
    ``core._block_fault`` protocol the compiled blocks use.
    """
    if not region.straight:
        return None
    ops = dec.ops
    body = [ops[i] for i in range(region.head_idx, region.end_idx + 1)]
    n = region.n_ops
    ns: dict = {
        "alu_compute": alu_compute,
        "mul_compute": mul_compute,
        "float_compute": float_compute,
        "float_to_bits": float_to_bits,
        "F": Flags,
    }

    def fget(out):
        return "flags"

    body_lines: list[str] = []
    mem_no = 0
    try:
        for j, op in enumerate(body[:-1]):
            is_mem = isinstance(op.instr, Mem)
            if is_mem:
                body_lines.append(f"_k = {j}")
            body_lines.extend(_arch_lines(op, j, ns, fget, "flags"))
            if is_mem:
                # check after the access, like the retire-time record the
                # traced world verifies; _ea still holds this op's address
                body_lines.append(f"if _ea != _e{mem_no}:")
                body_lines.append("    bad = True")
                body_lines.append("    on_mismatch()")
                body_lines.append(f"_e{mem_no} += _g{mem_no}")
                mem_no += 1
    except _Unsupported:
        return None
    cond = _COND_EXPR[body[-1].instr.cond].format(f="flags")
    body_lines.append(f"taken = {cond}")
    body_lines.append("iters += 1")
    body_lines.append(f"seq += {n}")
    body_lines.append("if bad or not taken:")
    body_lines.append("    break")

    lines = [
        "def __covered_run__(core, seq, limit, budget, exps, gaps, on_mismatch):",
        "    regs = core.regs",
        "    flags = core.flags",
        "    memory = core.memory",
        "    mem_write = memory.write",
        "    mem_read = memory.read_value",
    ]
    for m in range(len(region.mem_pcs)):
        lines.append(f"    _e{m} = exps[{m}]")
        lines.append(f"    _g{m} = gaps[{m}]")
    lines += [
        "    iters = 0",
        "    bad = False",
        "    taken = True",
        "    _k = 0",
        "    try:",
        f"        while iters < budget and seq + {n} <= limit:",
    ]
    lines += ["            " + ln for ln in body_lines]
    lines += [
        "    except BaseException:",
        "        core._block_fault = (iters, _k)",
        "        raise",
        "    finally:",
        "        core.flags = flags",
        "    return seq, taken, iters, bad",
    ]
    src = "\n".join(lines) + "\n"
    code = compile(src, f"<covered block 0x{region.head_pc:x}>", "exec")
    exec(code, ns)
    region.block = ns["__covered_run__"]
    return region.block


# ----------------------------------------------------------------------
# scalar cover: region-bounded record-free interpreter, normal timing
# ----------------------------------------------------------------------
def run_scalar_region(core, region: CoverRegion, max_instructions: int) -> None:
    """Run record-free inside ``region`` until control leaves it.

    A faithful, bounds-restricted clone of ``Core._run_decoded_fast``:
    identical charging, identical compiled/bulk block dispatch on taken
    backward branches (which inside a valid region can only target the
    head), identical ``_block_fault`` fault reconstruction and identical
    per-op ``seq < max_instructions`` cuts.  ``core.seq`` / ``core.pc`` /
    ``icounts`` / tier counters are folded on every exit path.
    """
    dec = core._decoded
    ops = dec.ops
    base = dec.base
    timing = core.timing
    charge_scalar = timing.charge_scalar_decoded
    charge_vector = timing.charge_vector_decoded
    hierarchy_access = core.hierarchy.access
    tier = core.tier_counts
    head_idx = region.head_idx
    end_idx = region.end_idx
    head_pc = region.head_pc
    end_pc = region.end_pc
    counts = [0] * region.n_ops
    hot = core._hotspots
    seq = core.seq
    seq0 = seq
    pc = core.pc
    idx = (pc - base) >> 2
    blk_ops = 0
    b0 = tier["bulk"]
    try:
        while seq < max_instructions:
            op = ops[idx]
            result = op.execute(core)
            counts[idx - head_idx] += 1
            seq += 1
            if result is None:
                charge_scalar(op)
                idx += 1
                pc += 4
                continue
            next_pc, accesses, branch_taken, mispredicted = result
            mem_latency = 0
            for a in accesses:
                mem_latency += hierarchy_access(a.addr, a.nbytes, a.is_write)
            if op.is_vector:
                charge_vector(op, mem_latency)
            else:
                charge_scalar(op, mem_latency, mispredicted)
            pc = next_pc
            if core.halted:
                break
            if branch_taken is None:
                idx += 1
                continue
            if pc < head_pc or pc > end_pc or pc & 3:
                break  # control left the region: hand back to the core
            new_idx = (pc - base) >> 2
            if hot is not None and branch_taken and pc < op.pc:
                blk = hot.fast[new_idx]
                if blk is None:
                    blk = hot.lookup_fast(new_idx)
                elif blk is _FAILED:
                    blk = None
                if blk is not None and seq + blk.n_ops <= max_instructions:
                    s_blk = seq
                    try:
                        seq, taken, iters = blk.run(core, seq, max_instructions)
                    except BaseException:
                        f_iters, f_k = core._block_fault
                        d = f_iters * blk.n_ops + f_k
                        seq += d
                        blk_ops += d
                        pc = blk.head_pc + (f_k << 2)
                        h0 = blk.head_idx - head_idx
                        for j in range(blk.n_ops):
                            c = f_iters + 1 if j < f_k else f_iters
                            if c:
                                counts[h0 + j] += c
                        raise
                    blk_ops += seq - s_blk
                    if iters:
                        h0 = blk.head_idx - head_idx
                        for j in range(blk.n_ops):
                            counts[h0 + j] += iters
                    if taken:
                        idx = blk.head_idx
                    else:
                        idx = blk.exit_idx
                        pc = blk.exit_pc
                        if pc < head_pc or pc > end_pc:
                            break
                    continue
            idx = new_idx
    finally:
        core.seq = seq
        core.pc = pc
        icounts = core.icounts
        for i in range(region.n_ops):
            c = counts[i]
            if c:
                icounts[ops[head_idx + i].kind_name] += c
        bulk_d = tier["bulk"] - b0
        tier["compiled"] += blk_ops - bulk_d
        tier["covered"] += (seq - seq0) - blk_ops
        # iteration boundaries crossed = retirements of the end branch
        # (taken or fall-through), for the caller's bookkeeping; valid on
        # the fault path too since it runs in this same finally
        core._region_boundaries = counts[end_idx - head_idx]
