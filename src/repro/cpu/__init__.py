"""Scalar core model: functional executor, timing, trace records."""

from .config import CPUConfig, DEFAULT_CPU_CONFIG, ScalarLatencies, VectorLatencies
from .core import Core, CoreResult, run_program
from .executor import Flags, cond_holds
from .profile import LoopProfile, LoopProfiler
from .timing import TimingModel, TimingStats
from .trace import MemAccess, TraceBuffer, TraceRecord

__all__ = [
    "CPUConfig",
    "DEFAULT_CPU_CONFIG",
    "ScalarLatencies",
    "VectorLatencies",
    "Core",
    "CoreResult",
    "run_program",
    "Flags",
    "cond_holds",
    "LoopProfile",
    "LoopProfiler",
    "TimingModel",
    "TimingStats",
    "MemAccess",
    "TraceBuffer",
    "TraceRecord",
]
