"""SIMD instruction generation (paper Section 4.7, Fig. 25).

From one observed iteration window the DSA reconstructs the loop body's
dataflow: memory streams feed operation nodes, operation nodes feed stores.
Everything that never reaches a store value — index increments, address
arithmetic, compares, branches — is loop control and disappears in the
vectorized execution.

The resulting :class:`LoopTemplate` can

* generate the NEON instruction burst that replaces N iterations (for the
  timing model),
* evaluate itself with numpy over an arbitrary iteration set (for the
  functional-equivalence verification the tests run), and
* report the operation counts the energy model charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cpu.trace import TraceRecord
from ..isa.dtypes import DType, bits_to_float, to_s32
from ..isa.instructions import (
    Alu,
    AluKind,
    Branch,
    BranchReg,
    Cmp,
    FloatKind,
    FloatOp,
    Halt,
    Mem,
    Mov,
    Mul,
    MulKind,
    Nop,
)
from ..isa.neon import (
    VBinKind,
    VBinOp,
    VDup,
    VDupImm,
    VInstr,
    VLoad,
    VMla,
    VShiftImm,
    VShiftKind,
    VStore,
    VUnary,
    VUnaryKind,
)
from ..isa.operands import Imm, QReg, Reg, ShiftedReg
from .streams import MemStream

#: scalar ALU kinds with a direct lane-wise NEON equivalent
_VECTORIZABLE_ALU = {
    AluKind.ADD: "add",
    AluKind.SUB: "sub",
    AluKind.RSB: "rsb",
    AluKind.AND: "and",
    AluKind.ORR: "orr",
    AluKind.EOR: "eor",
    AluKind.LSL: "shl",
    AluKind.LSR: "shr",
    AluKind.ASR: "sar",
    AluKind.MIN: "min",
    AluKind.MAX: "max",
}

_FLOAT_OPS = {FloatKind.FADD: "fadd", FloatKind.FSUB: "fsub", FloatKind.FMUL: "fmul"}


class TemplateReject(Exception):
    """The window cannot be turned into a SIMD template; carries the reason."""


@dataclass
class TNode:
    """One dataflow node."""

    kind: str                     # 'load' | 'const' | 'invariant' | 'op'
    op: str | None = None         # operation name for kind == 'op'
    operands: tuple[int, ...] = ()
    value: int | None = None      # for 'const'
    reg: int | None = None        # source register for 'invariant'
    stream_pc: int | None = None  # for 'load'
    shift_amount: int | None = None


@dataclass
class StoreRoot:
    stream_pc: int
    node: int


@dataclass
class LoopTemplate:
    """The vectorizable essence of one loop body path."""

    dtype: DType
    nodes: list[TNode]
    stores: list[StoreRoot]
    load_pcs: list[int]                    # streams consumed as vectors
    invariant_regs: list[int]              # scalar registers broadcast once
    #: *aliases* of the engine's live per-pc streams, not copies.  Readers
    #: must consume only stride facts — the anchor sample ``samples[0]``
    #: and ``gap()``, both tolerant of iteration holes — never the sample
    #: count or per-iteration history: covered execution legitimately
    #: skips sample appends for iterations it proved stride-redundant
    #: (see ``repro.cpu.covered._stride_safe``), so the list is sparse
    #: exactly when the loop ran fastest.
    streams: dict[int, MemStream] = field(default_factory=dict)
    #: geometry of the vector backend the template lowers to — one
    #: register's width and the register-file size; set from
    #: ``backend.width_bytes`` / ``backend.num_regs`` at build time
    #: (defaults are NEON's)
    width_bytes: int = 16
    num_regs: int = 16

    # ------------------------------------------------------------------
    @property
    def op_count(self) -> int:
        return sum(1 for n in self.nodes if n.kind == "op")

    @property
    def lanes(self) -> int:
        """Iterations one vector register covers at the backend's width."""
        return self.width_bytes // self.dtype.size

    @property
    def result_registers(self) -> int:
        """Q registers needed to hold this template's results (array maps)."""
        return max(1, len(self.stores))

    # ------------------------------------------------------------------
    # NEON burst generation (timing model)
    # ------------------------------------------------------------------
    def emit_burst(
        self,
        start_addrs: dict[int, int],
        quads: int,
        invariant_values: dict[int, int] | None = None,
    ) -> list[tuple[VInstr, int | None]]:
        """Build the (instruction, data-address) burst covering ``quads``
        vector iterations starting at the given per-stream addresses."""
        out: list[tuple[VInstr, int | None]] = []
        qmap: dict[object, int] = {}
        next_q = [0]

        def alloc(key: object) -> int:
            if key not in qmap:
                if next_q[0] >= self.num_regs:
                    raise TemplateReject(
                        "too many operations for the vector register file"
                    )
                qmap[key] = next_q[0]
                next_q[0] += 1
            return qmap[key]

        # broadcast invariants / constants once, ahead of the burst
        for node_id, node in enumerate(self.nodes):
            if node.kind == "invariant":
                out.append((VDup(QReg(alloc(("n", node_id))), Reg(node.reg or 0), self.dtype), None))
            elif node.kind == "const":
                out.append((VDupImm(QReg(alloc(("n", node_id))), int(node.value or 0), self.dtype), None))

        base = Reg(0)  # placeholder base register; addresses are explicit
        for k in range(quads):
            for pc in self.load_pcs:
                stream = self.streams[pc]
                q = alloc(("load", pc))
                addr = start_addrs[pc] + k * self.width_bytes
                out.append((VLoad(qd=QReg(q), base=base, dtype=stream.dtype), addr))
            for node_id, node in enumerate(self.nodes):
                if node.kind != "op":
                    continue
                q = alloc(("n", node_id))
                srcs = [QReg(alloc(self._qkey(i))) for i in node.operands]
                out.append((self._vop(node, QReg(q), srcs), None))
            for root in self.stores:
                stream = self.streams[root.stream_pc]
                q = alloc(self._qkey(root.node))
                addr = start_addrs[root.stream_pc] + k * self.width_bytes
                out.append((VStore(qs=QReg(q), base=base, dtype=stream.dtype), addr))
        return out

    def _qkey(self, node_id: int) -> object:
        node = self.nodes[node_id]
        if node.kind == "load":
            return ("load", node.stream_pc)
        return ("n", node_id)

    def _vop(self, node: TNode, qd: QReg, srcs: list[QReg]) -> VInstr:
        op = node.op
        dt = self.dtype
        if op in ("add", "fadd"):
            return VBinOp(VBinKind.VADD, qd, srcs[0], srcs[1], dt)
        if op in ("sub", "fsub"):
            return VBinOp(VBinKind.VSUB, qd, srcs[0], srcs[1], dt)
        if op == "rsb":
            return VBinOp(VBinKind.VSUB, qd, srcs[1], srcs[0], dt)
        if op in ("mul", "fmul"):
            return VBinOp(VBinKind.VMUL, qd, srcs[0], srcs[1], dt)
        if op == "mla":
            return VMla(qd, srcs[0], srcs[1], dt)
        if op == "and":
            return VBinOp(VBinKind.VAND, qd, srcs[0], srcs[1], dt)
        if op == "orr":
            return VBinOp(VBinKind.VORR, qd, srcs[0], srcs[1], dt)
        if op == "eor":
            return VBinOp(VBinKind.VEOR, qd, srcs[0], srcs[1], dt)
        if op == "min":
            return VBinOp(VBinKind.VMIN, qd, srcs[0], srcs[1], dt)
        if op == "max":
            return VBinOp(VBinKind.VMAX, qd, srcs[0], srcs[1], dt)
        if op in ("shl", "shr", "sar"):
            kind = VShiftKind.VSHL if op == "shl" else VShiftKind.VSHR
            return VShiftImm(kind, qd, srcs[0], int(node.shift_amount or 0), dt)
        if op == "mvn":
            return VUnary(VUnaryKind.VMVN, qd, srcs[0], dt)
        if op == "mov":
            from ..isa.neon import VMovQ

            return VMovQ(qd, srcs[0])
        raise TemplateReject(f"no NEON mapping for op {op!r}")

    # ------------------------------------------------------------------
    # numpy evaluation (functional verification)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        memory_snapshot,
        iterations: np.ndarray,
        invariant_values: dict[int, int],
    ) -> dict[int, np.ndarray]:
        """Evaluate the template over the given iteration indices.

        ``iterations`` holds absolute iteration numbers; each stream's
        address at iteration k is ``first_addr + gap*(k - first_iter)``.
        Returns per-store-stream result arrays (in the store's dtype).
        """
        np_dtype = self.dtype.numpy
        cache: dict[int, np.ndarray] = {}

        def gather(stream: MemStream) -> np.ndarray:
            gap = stream.gap()
            assert gap is not None
            i0, a0 = stream.samples[0]
            addrs = a0 + gap * (iterations - i0)
            if (
                len(addrs) > 1
                and gap == stream.dtype.size
                and np.all(np.diff(iterations) == 1)
                and hasattr(memory_snapshot, "read_block")
            ):
                block = memory_snapshot.read_block(int(addrs[0]), len(addrs), stream.dtype)
                return block.astype(np_dtype)
            values = np.empty(len(addrs), dtype=stream.dtype.numpy)
            for j, addr in enumerate(addrs):
                values[j] = memory_snapshot.read_value(int(addr), stream.dtype)
            return values.astype(np_dtype)

        def eval_node(node_id: int) -> np.ndarray:
            if node_id in cache:
                return cache[node_id]
            node = self.nodes[node_id]
            if node.kind == "load":
                out = gather(self.streams[node.stream_pc])
            elif node.kind == "const":
                out = np.full(len(iterations), node.value, dtype=np_dtype)
            elif node.kind == "invariant":
                raw = invariant_values[node.reg or 0]
                value = bits_to_float(raw) if self.dtype.is_float else to_s32(raw)
                out = np.full(len(iterations), value, dtype=np_dtype)
            else:
                out = self._eval_op(node, [eval_node(i) for i in node.operands])
            cache[node_id] = out
            return out

        return {root.stream_pc: eval_node(root.node) for root in self.stores}

    def _eval_op(self, node: TNode, srcs: list[np.ndarray]) -> np.ndarray:
        np_dtype = self.dtype.numpy
        with np.errstate(over="ignore", invalid="ignore"):
            if node.op in ("add", "fadd"):
                out = srcs[0] + srcs[1]
            elif node.op in ("sub", "fsub"):
                out = srcs[0] - srcs[1]
            elif node.op == "rsb":
                out = srcs[1] - srcs[0]
            elif node.op in ("mul", "fmul"):
                out = srcs[0] * srcs[1]
            elif node.op == "mla":
                out = srcs[2] + srcs[0] * srcs[1]
            elif node.op == "and":
                out = srcs[0] & srcs[1]
            elif node.op == "orr":
                out = srcs[0] | srcs[1]
            elif node.op == "eor":
                out = srcs[0] ^ srcs[1]
            elif node.op == "min":
                out = np.minimum(srcs[0], srcs[1])
            elif node.op == "max":
                out = np.maximum(srcs[0], srcs[1])
            elif node.op == "shl":
                out = srcs[0] << node.shift_amount
            elif node.op in ("shr", "sar"):
                out = srcs[0] >> node.shift_amount
            elif node.op == "mvn":
                out = ~srcs[0]
            elif node.op == "mov":
                out = srcs[0]
            else:  # pragma: no cover
                raise TemplateReject(f"cannot evaluate op {node.op!r}")
        return out.astype(np_dtype)


# ---------------------------------------------------------------------------
# template construction from an iteration window
# ---------------------------------------------------------------------------
def build_template(
    window: list[TraceRecord],
    streams: dict[int, MemStream],
    width_bytes: int = 16,
    num_regs: int = 16,
) -> LoopTemplate:
    """Reconstruct the loop body dataflow from one iteration's records.

    ``width_bytes``/``num_regs`` describe the vector backend the template
    will lower to (``backend.width_bytes`` / ``backend.num_regs``); the
    lane count per burst register and the register-file budget derive
    from them, so the same window vectorizes at any vector length.

    Raises :class:`TemplateReject` when the body cannot be vectorized:
    carry-around scalars feeding stores, irregular strides, unsupported
    operations, or mixed element widths (paper, Table 1).
    """
    nodes: list[TNode] = []
    reg_node: dict[int, int] = {}       # register -> producing node this iteration
    regs_written: set[int] = set()
    for rec in window:
        for idx, _ in rec.reg_writes:
            regs_written.add(idx)

    carried_leaves: set[int] = set()

    def operand_node(reg_idx: int, rec: TraceRecord) -> int:
        if reg_idx in reg_node:
            return reg_node[reg_idx]
        node_id = len(nodes)
        nodes.append(TNode(kind="invariant", reg=reg_idx))
        if reg_idx in regs_written:
            carried_leaves.add(node_id)
        reg_node[reg_idx] = node_id  # reuse: same leaf for repeated reads
        return node_id

    def const_node(value: int) -> int:
        nodes.append(TNode(kind="const", value=value))
        return len(nodes) - 1

    store_roots: list[StoreRoot] = []
    load_pcs: list[int] = []
    dtypes: set[DType] = set()
    is_float = False

    for rec in window:
        instr = rec.instr
        if isinstance(instr, Mem):
            stream = streams.get(rec.pc)
            if stream is None:
                raise TemplateReject("memory access without a stream")
            if instr.is_load:
                if stream.invariant():
                    # same address every iteration -> scalar broadcast
                    node_id = len(nodes)
                    nodes.append(TNode(kind="invariant", reg=instr.rd.index))
                    reg_node[instr.rd.index] = node_id
                    continue
                if not stream.contiguous():
                    raise TemplateReject("non-contiguous load stream")
                dtypes.add(stream.dtype)
                node_id = len(nodes)
                nodes.append(TNode(kind="load", stream_pc=rec.pc))
                reg_node[instr.rd.index] = node_id
                if rec.pc not in load_pcs:
                    load_pcs.append(rec.pc)
            else:
                if not stream.contiguous():
                    raise TemplateReject("non-contiguous store stream")
                dtypes.add(stream.dtype)
                root = operand_node(instr.rd.index, rec)
                store_roots.append(StoreRoot(stream_pc=rec.pc, node=root))
            # writeback of the base register is loop control: drop mapping
            if instr.addr.writes_back:
                reg_node.pop(instr.addr.base.index, None)
        elif isinstance(instr, Alu):
            node = _alu_node(instr, rec, operand_node, const_node)
            nodes.append(node)
            reg_node[instr.rd.index] = len(nodes) - 1
        elif isinstance(instr, Mov):
            if isinstance(instr.op2, Imm):
                reg_node[instr.rd.index] = const_node(
                    ~instr.op2.value if instr.negate else instr.op2.value
                )
            elif isinstance(instr.op2, Reg):
                src = operand_node(instr.op2.index, rec)
                if instr.negate:
                    nodes.append(TNode(kind="op", op="mvn", operands=(src,)))
                    reg_node[instr.rd.index] = len(nodes) - 1
                else:
                    reg_node[instr.rd.index] = src
            else:
                raise TemplateReject("shifted mov in data flow")
        elif isinstance(instr, Mul):
            if instr.kind in (MulKind.SDIV, MulKind.UDIV):
                nodes.append(TNode(kind="op", op="div", operands=()))
                reg_node[instr.rd.index] = len(nodes) - 1
                continue
            ops = [operand_node(instr.rn.index, rec), operand_node(instr.rm.index, rec)]
            if instr.kind is MulKind.MLA:
                assert instr.ra is not None
                ops.append(operand_node(instr.ra.index, rec))
                nodes.append(TNode(kind="op", op="mla", operands=tuple(ops)))
            else:
                nodes.append(TNode(kind="op", op="mul", operands=tuple(ops)))
            reg_node[instr.rd.index] = len(nodes) - 1
        elif isinstance(instr, FloatOp):
            is_float = True
            if instr.kind not in _FLOAT_OPS:
                nodes.append(TNode(kind="op", op="fdiv", operands=()))
                reg_node[instr.rd.index] = len(nodes) - 1
                continue
            ops = (operand_node(instr.rn.index, rec), operand_node(instr.rm.index, rec))
            nodes.append(TNode(kind="op", op=_FLOAT_OPS[instr.kind], operands=ops))
            reg_node[instr.rd.index] = len(nodes) - 1
        elif isinstance(instr, (Cmp, Branch, BranchReg, Nop, Halt)):
            continue  # loop control / condition evaluation
        else:
            raise TemplateReject(f"unexpected instruction {instr!r}")

    if not store_roots:
        raise TemplateReject("no store reachable (reduction or empty body)")

    # reachability: keep only nodes feeding stores; reject carried leaves
    # and unsupported ops on the live paths
    live: set[int] = set()

    def mark(node_id: int) -> None:
        if node_id in live:
            return
        live.add(node_id)
        for op in nodes[node_id].operands:
            mark(op)

    for root in store_roots:
        mark(root.node)

    for node_id in live:
        node = nodes[node_id]
        if node_id in carried_leaves:
            raise TemplateReject("carry-around scalar feeds a store")
        if node.kind == "op" and node.op in ("div", "fdiv"):
            raise TemplateReject(f"unvectorizable operation {node.op}")

    # prune dead nodes (index increments, compare feeds): rebuild the node
    # list with only store-reachable nodes so burst emission and op counts
    # reflect exactly the vectorized dataflow
    order = sorted(live)
    remap = {old: new for new, old in enumerate(order)}
    pruned: list[TNode] = []
    for old in order:
        node = nodes[old]
        pruned.append(
            TNode(
                kind=node.kind,
                op=node.op,
                operands=tuple(remap[i] for i in node.operands),
                value=node.value,
                reg=node.reg,
                stream_pc=node.stream_pc,
                shift_amount=node.shift_amount,
            )
        )
    nodes = pruned
    store_roots = [StoreRoot(r.stream_pc, remap[r.node]) for r in store_roots]
    live = set(range(len(nodes)))

    live_loads = [pc for pc in load_pcs if any(
        nodes[n].kind == "load" and nodes[n].stream_pc == pc for n in live
    )]

    store_dtypes = {streams[r.stream_pc].dtype for r in store_roots}
    sizes = {dt.size for dt in dtypes | store_dtypes}
    if len(sizes) > 1:
        raise TemplateReject("mixed element widths")
    element = sorted(dtypes | store_dtypes, key=lambda d: (d.size, d.is_signed))[-1]
    if is_float:
        if element.size != 4:
            raise TemplateReject("float ops on non-32-bit elements")
        element = DType.F32

    relevant = {pc: streams[pc] for pc in live_loads}
    relevant.update({r.stream_pc: streams[r.stream_pc] for r in store_roots})
    invariant_regs = sorted(
        {n.reg for i, n in enumerate(nodes) if i in live and n.kind == "invariant" and n.reg is not None}
    )
    return LoopTemplate(
        dtype=element,
        nodes=nodes,
        stores=store_roots,
        load_pcs=live_loads,
        invariant_regs=invariant_regs,
        streams=relevant,
        width_bytes=width_bytes,
        num_regs=num_regs,
    )


def _alu_node(instr: Alu, rec: TraceRecord, operand_node, const_node) -> TNode:
    if instr.kind not in _VECTORIZABLE_ALU:
        return TNode(kind="op", op="div", operands=())  # rejected later if live
    op = _VECTORIZABLE_ALU[instr.kind]
    left = operand_node(instr.rn.index, rec)
    if op in ("shl", "shr", "sar"):
        if not isinstance(instr.op2, Imm):
            return TNode(kind="op", op="div", operands=())  # variable shift
        return TNode(kind="op", op=op, operands=(left,), shift_amount=instr.op2.value)
    if isinstance(instr.op2, Imm):
        right = const_node(instr.op2.value)
    elif isinstance(instr.op2, Reg):
        right = operand_node(instr.op2.index, rec)
    elif isinstance(instr.op2, ShiftedReg):
        base = operand_node(instr.op2.reg.index, rec)
        shift_op = {"lsl": "shl", "lsr": "shr", "asr": "sar"}[instr.op2.kind.value]
        shifted = TNode(kind="op", op=shift_op, operands=(base,), shift_amount=instr.op2.amount)
        # materialise the shifted operand as its own node
        right = -1  # placeholder replaced below
        return _compose_shifted(instr, op, left, shifted, operand_node, const_node)
    else:
        raise TemplateReject("bad ALU operand")
    return TNode(kind="op", op=op, operands=(left, right))


def _compose_shifted(instr, op, left, shifted_node, operand_node, const_node) -> TNode:
    # The caller appends the returned node; we need the shifted operand to
    # be appended first.  Handled by returning a compound marker the caller
    # cannot express — so instead raise and let such loops stay scalar.
    raise TemplateReject("shifted register operand in data flow")
