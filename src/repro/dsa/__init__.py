"""The Dynamic SIMD Assembler: runtime DLP detection (the paper's core)."""

from .caches import ArrayMaps, DSACache, VerificationCache
from .config import (
    DSAConfig,
    DSAFeatures,
    DSALatencies,
    EXTENDED_DSA_CONFIG,
    FULL_DSA_CONFIG,
    ORIGINAL_DSA_CONFIG,
)
from .engine import (
    CacheEntry,
    DSAStats,
    DSAVerificationError,
    DynamicSIMDAssembler,
    Leftover,
    LoopKind,
)
from .snapshot import RegionSnapshot
from .streams import CIDVerdict, MemStream, predict_cid, safe_chunk
from .template import LoopTemplate, TemplateReject, build_template

__all__ = [
    "ArrayMaps",
    "DSACache",
    "VerificationCache",
    "DSAConfig",
    "DSAFeatures",
    "DSALatencies",
    "EXTENDED_DSA_CONFIG",
    "FULL_DSA_CONFIG",
    "ORIGINAL_DSA_CONFIG",
    "CacheEntry",
    "DSAStats",
    "DSAVerificationError",
    "DynamicSIMDAssembler",
    "Leftover",
    "LoopKind",
    "RegionSnapshot",
    "CIDVerdict",
    "MemStream",
    "predict_cid",
    "safe_chunk",
    "LoopTemplate",
    "TemplateReject",
    "build_template",
]
