"""Memory streams and the Cross-Iteration Dependency Prediction (CIDP).

A *stream* is one static load/store instruction inside a loop body together
with the data addresses it touched on the iterations the DSA observed.  Two
observations give the per-iteration address gap (``MGap``, eq. 4.5); the
CIDP equations (4.1-4.4) then predict whether any future load can alias a
store without watching every iteration:

    MRead[last] = MRead[2] + MGap * (last - 2)                  (4.4)
    CID   <=>  MWrite[2] in [MRead[3], MRead[last]]             (4.1, 4.2)
    NCID  <=>  otherwise                                        (4.3)

For partial vectorization the same arithmetic yields the *dependency
distance*: how many iterations ahead the store lands on a future read,
which bounds the safe chunk size (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.dtypes import DType


@dataclass
class MemStream:
    """One static memory instruction observed across iterations."""

    pc: int
    is_write: bool
    dtype: DType
    samples: list[tuple[int, int]] = field(default_factory=list)  # (iteration, addr)
    #: memoized (sample_count, gap) — gap() is pure in the sample list, and
    #: the execution-phase address check calls it once per covered iteration
    _gap_cache: tuple[int, int | None] | None = field(
        default=None, repr=False, compare=False
    )

    def add_sample(self, iteration: int, addr: int) -> None:
        self.samples.append((iteration, addr))

    @property
    def first_addr(self) -> int:
        return self.samples[0][1]

    @property
    def first_iteration(self) -> int:
        return self.samples[0][0]

    def gap(self) -> int | None:
        """Per-iteration address gap; None when irregular or unknown."""
        samples = self.samples
        n = len(samples)
        if n < 2:
            return None
        cache = self._gap_cache
        if cache is not None and 2 <= cache[0] <= n:
            cached_n, result = cache
            if cached_n == n:
                return result
            # extend incrementally: a None verdict is sticky (the offending
            # pair never leaves the list), and a known gap only survives if
            # every appended pair continues it exactly
            if result is not None:
                i1, a1 = samples[cached_n - 1]
                for idx in range(cached_n, n):
                    i2, a2 = samples[idx]
                    di = i2 - i1
                    if di <= 0 or (a2 - a1) != result * di:
                        result = None
                        break
                    i1, a1 = i2, a2
            self._gap_cache = (n, result)
            return result
        result: int | None
        gaps = set()
        result = None
        for (i1, a1), (i2, a2) in zip(samples, samples[1:]):
            di = i2 - i1
            if di <= 0 or (a2 - a1) % di:
                break
            gaps.add((a2 - a1) // di)
        else:
            if len(gaps) == 1:
                result = gaps.pop()
        self._gap_cache = (n, result)
        return result

    def addr_at(self, iteration: int) -> int | None:
        """Predicted address at ``iteration`` (eq. 4.4 generalised)."""
        g = self.gap()
        if g is None:
            return None
        i0, a0 = self.samples[0]
        return a0 + g * (iteration - i0)

    def contiguous(self) -> bool:
        """Unit-stride in elements — what the NEON unit can consume."""
        return self.gap() == self.dtype.size

    def invariant(self) -> bool:
        return self.gap() == 0


@dataclass(frozen=True)
class CIDVerdict:
    """Outcome of the prediction for one loop and iteration range."""

    dependent: bool
    #: smallest iteration distance at which a store meets a future read;
    #: None when independent.  A distance d means iterations [k, k+d) can
    #:  be executed as one vector chunk safely.
    distance: int | None = None
    #: which (write_pc, read_pc) produced the dependency
    culprit: tuple[int, int] | None = None


def predict_cid(
    streams: list[MemStream],
    last_iteration: int,
) -> CIDVerdict:
    """Run CIDP over every write/read stream pair (eqs. 4.1-4.5).

    ``last_iteration`` is the loop's final iteration index (the runtime
    range for count/dynamic loops, the speculative range for sentinels).
    """
    reads = [s for s in streams if not s.is_write]
    writes = [s for s in streams if s.is_write]
    best: CIDVerdict = CIDVerdict(dependent=False)

    for w in writes:
        w_gap = w.gap()
        for r in reads:
            r_gap = r.gap()
            if r_gap is None or w_gap is None:
                return CIDVerdict(dependent=True, distance=0, culprit=(w.pc, r.pc))
            verdict = _pair_cid(w, w_gap, r, r_gap, last_iteration)
            if verdict.dependent:
                if not best.dependent or (verdict.distance or 0) < (best.distance or 0):
                    best = verdict
    return best


def _pair_cid(
    w: MemStream, w_gap: int, r: MemStream, r_gap: int, last_iteration: int
) -> CIDVerdict:
    """CIDP for one write/read stream pair."""
    w_iter, w_addr = w.samples[0]
    r_iter, r_addr = r.samples[0]
    # normalise both streams to a common reference iteration
    r_at = lambda k: r_addr + r_gap * (k - r_iter)  # noqa: E731

    if r_gap == 0:
        # the read pins one address; any write stream that ever touches it
        # in a *different* iteration is a dependency
        if w_gap == 0:
            dep = w_addr == r_addr
            return CIDVerdict(dep, 1 if dep else None, (w.pc, r.pc) if dep else None)
        if w_gap != 0 and (r_addr - w_addr) % w_gap == 0:
            hit_iter = w_iter + (r_addr - w_addr) // w_gap
            if w_iter <= hit_iter <= last_iteration or hit_iter == w_iter:
                return CIDVerdict(True, max(1, abs(hit_iter - w_iter)), (w.pc, r.pc))
        return CIDVerdict(False)

    # eq. 4.2: is the write's address inside the read's *future* range?
    # solve r_at(k) == w_addr for k.  Only reads of iterations strictly
    # after the write matter: k == w_iter is the same-iteration RMW case
    # (out[i] = out[i] + ...), and k < w_iter is an anti-dependency that
    # vector execution preserves (all of a quad's loads precede its stores,
    # and earlier quads complete first).
    if (w_addr - r_addr) % r_gap:
        return CIDVerdict(False)  # never lands on a read address
    k = r_iter + (w_addr - r_addr) // r_gap
    lo, hi = (r_iter + 1, last_iteration) if r_gap > 0 else (last_iteration, r_iter + 1)
    if min(lo, hi) <= k <= max(lo, hi) and k > w_iter:
        return CIDVerdict(True, k - w_iter, (w.pc, r.pc))
    return CIDVerdict(False)


def safe_chunk(verdict: CIDVerdict, lanes: int) -> int | None:
    """Largest iteration chunk safely vectorizable under ``verdict``.

    Returns None when partial vectorization is not worthwhile (the chunk
    would be smaller than one vector).
    """
    if not verdict.dependent:
        return None  # fully vectorizable, no chunking needed
    if verdict.distance is None or verdict.distance <= lanes:
        return None
    # round down to whole vectors so every chunk fills the NEON unit
    return (verdict.distance // lanes) * lanes
