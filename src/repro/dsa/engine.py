"""The Dynamic SIMD Assembler (DSA).

Couples to a :class:`repro.cpu.core.Core` through the retire hook (the
trace-driven equivalent of the paper's fetch-stage coupling, Fig. 31) and
the timing suppressor.  The state machine follows Section 4.3:

* **Loop Detection** — a taken backward branch names a loop (ID = target
  PC); the DSA cache is consulted first.
* **Data Collection** — iteration 2 is recorded: instruction window, memory
  addresses into the verification cache, loop bound and induction step.
* **Dependency Analysis** — iteration 3 gives per-stream address gaps; the
  CIDP equations decide CID/NCID (Section 4.4).
* **Store ID / Execution** — from iteration 4 the remaining iterations run
  on the NEON engine: the scalar body's timing is replaced by the generated
  SIMD burst (plus pipeline-flush and DSA-cache latencies), exactly like
  the paper's trace-level methodology (Fig. 30).
* **Mapping / Speculative Execution** — conditional loops vectorize each
  condition over the remaining range and select results through the vector
  map at loop end; sentinel loops vectorize a speculative range that is
  remembered in the DSA cache across invocations.

Architectural state is never touched: the core keeps executing scalar
instructions functionally, which makes the DSA's transparency claim
checkable — ``verify_functional`` replays every generated template with
numpy over the covered iterations and asserts bit-equality with what the
scalar execution produced.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field, replace
from enum import Enum

import numpy as np

from ..cpu.core import Core
from ..cpu.covered import compile_covered, run_scalar_region, scan_region
from ..cpu.trace import TraceRecord
from ..errors import ReproError
from ..observe.events import EventKind
from ..isa.instructions import Branch, BranchReg, Cmp, CmpKind, Mem
from ..isa.operands import Cond, Imm, Reg
from ..isa.dtypes import to_s32
from .caches import ArrayMaps, DSACache, VerificationCache
from .config import DSAConfig, FULL_DSA_CONFIG
from .snapshot import RegionSnapshot
from .streams import MemStream, predict_cid, safe_chunk
from .template import LoopTemplate, TemplateReject, build_template


class DSAVerificationError(ReproError):
    """A vectorized region did not reproduce the scalar results."""


class LoopKind(Enum):
    COUNT = "count"
    FUNCTION = "function"
    NESTED_OUTER = "nested_outer"
    CONDITIONAL = "conditional"
    SENTINEL = "sentinel"
    DYNAMIC_RANGE = "dynamic_range"
    PARTIAL = "partial"
    NON_VECTORIZABLE = "non_vectorizable"


class Leftover(Enum):
    SINGLE_ELEMENTS = "single_elements"
    OVERLAPPING = "overlapping"
    LARGER_ARRAYS = "larger_arrays"


@dataclass
class DSAStats:
    records_observed: int = 0
    loops_detected: int = 0
    analyses_started: int = 0
    analyses_aborted: int = 0
    verdicts: Counter = field(default_factory=Counter)
    vectorized_invocations: Counter = field(default_factory=Counter)
    iterations_covered: int = 0
    bursts_charged: int = 0
    vector_instructions: int = 0
    stall_cycles: int = 0
    detection_cycles: int = 0
    stage_activations: Counter = field(default_factory=Counter)
    leftover_used: Counter = field(default_factory=Counter)
    vector_mem_ops: int = 0
    vector_arith_ops: int = 0
    verifications: int = 0
    unknown_path_aborts: int = 0
    #: guarded mode: mis-speculations detected and rolled back to scalar
    fallbacks: int = 0
    fallback_causes: Counter = field(default_factory=Counter)
    #: fault injection: corruptions an attached injector actually applied
    injected_faults: int = 0


@dataclass
class CacheEntry:
    """What the DSA cache remembers about one loop."""

    kind: LoopKind
    vectorizable: bool
    reason: str = ""
    template: LoopTemplate | None = None
    path_templates: dict[tuple, LoopTemplate] = field(default_factory=dict)
    path_suppress: dict[tuple, frozenset] = field(default_factory=dict)
    suppress_pcs: frozenset = frozenset()
    scalar_pcs: frozenset = frozenset()
    cmp_pc: int | None = None
    bound_kind: str | None = None       # 'imm' | 'reg'
    bound_value: int = 0                # immediate, or register index
    induction_reg: int | None = None
    step: int = 1
    branch_cond: Cond = Cond.LT
    spec_range: int = 0                 # sentinel speculative range
    chunk: int | None = None            # partial vectorization chunk
    must_reverify: bool = False         # dynamic-range type A
    leftover: Leftover = Leftover.SINGLE_ELEMENTS
    stream_gaps: dict = field(default_factory=dict)  # pc -> (gap, is_write, dtype)


class _State(Enum):
    COLLECT = "collect"           # recording iteration 2
    ANALYZE = "analyze"           # recording iteration 3
    MAP_ANALYZE = "map_analyze"   # conditional: collecting paths
    EXECUTE = "execute"           # timing replaced by NEON burst
    COND_EXECUTE = "cond_execute"  # conditional mapping + speculation
    SCALAR = "scalar"             # verdict: leave the loop alone


class _LoopContext:
    """Per-loop runtime state inside the DSA."""

    __slots__ = (
        "loop_id", "end_pc", "dsa", "state", "iteration", "window",
        "path_windows", "path_counts", "streams", "call_depth", "has_inner",
        "has_call", "entry", "vcache_overflow", "suppress_pcs", "scalar_pcs",
        "suppress_active", "covered", "first_covered", "suppress_limit",
        "path_map", "invariants", "snapshot", "snapshot_done",
        "current_path", "last_window", "pending_abort_reason",
    )

    def __init__(self, loop_id: int, end_pc: int, dsa: "DynamicSIMDAssembler"):
        self.loop_id = loop_id
        self.end_pc = end_pc
        self.dsa = dsa
        self.state = _State.COLLECT
        self.iteration = 1           # completed iterations
        self.window: list[TraceRecord] = []
        #: per path signature (the tuple of pcs one iteration retired), the
        #: iterations that took it: ``{sig: [(iteration, window), ...]}``
        #: where ``window`` is that iteration's full record list — the
        #: shape ``_loop_shape`` and the conditional-verdict logic consume
        self.path_windows: dict[tuple, list[tuple[int, list[TraceRecord]]]] = {}
        self.path_counts: Counter = Counter()
        self.streams: dict[int, MemStream] = {}
        self.call_depth = 0
        self.has_inner = False
        self.has_call = False
        self.entry: CacheEntry | None = None
        self.vcache_overflow = False
        # execution state
        self.suppress_pcs: frozenset = frozenset()
        self.scalar_pcs: frozenset = frozenset()
        self.suppress_active = False
        self.covered = 0
        self.first_covered = 0
        self.suppress_limit: int | None = None   # iterations to cover
        self.path_map: list[tuple[int, tuple]] = []
        self.invariants: dict[int, int] = {}
        self.snapshot: RegionSnapshot | None = None
        self.snapshot_done: set[int] = set()
        self.current_path: list[int] = []
        self.last_window: list = []
        self.pending_abort_reason: str | None = None

    # ------------------------------------------------------------------
    def contains(self, pc: int) -> bool:
        return (self.loop_id <= pc <= self.end_pc) or self.call_depth > 0


#: "no plan built yet" marker for the cover-plan cache (None is a verdict)
_UNBUILT = object()

#: states where a loop's vectorization verdict is still being formed — a
#: statically coverable region in one of these holds the traced
#: interpreter (see DynamicSIMDAssembler._cover_hook) instead of letting
#: a compiled traced block run the loop to completion
_MATURING = (_State.COLLECT, _State.ANALYZE, _State.MAP_ANALYZE)

#: cover-hook dispatch modes (sentinels compared by identity)
_COVER_SUPPRESSED = object()   # suppressed EXECUTE: codegen replay, zero timing
_COVER_POSTLIMIT = object()    # EXECUTE past the coverage limit: normal timing
_COVER_SCALAR = object()       # SCALAR verdict: record-free fast tier
_COVER_HOLD = object()         # verdict maturing: stay in the interpreter


class DynamicSIMDAssembler:
    """Runtime DLP detector coupled to one core.

    ``guard`` enables guarded execution: every committed vector region is
    cross-checked against the scalar reference, and a mismatch — instead of
    raising :class:`DSAVerificationError` — discards the vector outcome,
    re-charges the covered iterations as scalar work (the software analogue
    of the paper's speculation rollback) and bumps ``stats.fallbacks``.
    ``injector`` attaches a :class:`repro.faults.FaultInjector` that
    corrupts speculative state at the verification boundary, so tests can
    prove the guard catches mis-speculation rather than absorbing it.
    ``observer`` attaches a :class:`repro.observe.Observer` that receives
    a typed event for every decision the state machine takes (loop
    detection, verdicts, speculation start/commit/rollback, guard
    fallbacks, NEON bursts); with the default ``None`` every emission
    site is a single pointer comparison, off the record hot path.
    """

    def __init__(
        self,
        config: DSAConfig | None = None,
        guard: bool = False,
        injector=None,
        observer=None,
    ):
        self.config = config or FULL_DSA_CONFIG
        self.guard = guard
        self.injector = injector
        self.observer = observer
        self.cache = DSACache(self.config)
        self.vcache = VerificationCache(self.config)
        self.array_maps = ArrayMaps(self.config.array_maps, self.config.spare_neon_regs)
        self.stats = DSAStats()
        self.core: Core | None = None
        self.contexts: dict[int, _LoopContext] = {}
        self._suppress_union: dict[int, frozenset] = {}
        self._suppress_set: frozenset = frozenset()
        #: iteration snapshot of ``contexts.values()`` — rebuilt at every
        #: context insert/remove so ``on_record`` does not allocate a list
        #: per retired instruction (same snapshot-at-loop-start semantics)
        self._ctx_snapshot: tuple[_LoopContext, ...] = ()
        #: (lo, hi) pc range in which a non-branch, non-memory record is a
        #: guaranteed no-op for *every* live context; None disables the
        #: fast path.  See ``_refresh_passive_window``.
        self._passive_window: tuple[int, int] | None = None
        #: contexts that sample memory streams (EXECUTE state) — the only
        #: ones a passive-window memory record can reach
        self._sampling_ctxs: tuple[_LoopContext, ...] = ()
        #: covered execution: static region analysis cached per
        #: (loop_id, end_pc); None records a region that can never cover
        self._cover_plans: dict[tuple[int, int], object] = {}
        #: loops an observed run reported as cover-eligible (LOOP_COVERED
        #: emitted) and not yet re-armed — observability bookkeeping only
        self._cover_marked: set[int] = set()

    @property
    def _verify_enabled(self) -> bool:
        """Guarded mode always cross-checks, even with verification off."""
        return self.config.verify_functional or self.guard

    # ------------------------------------------------------------------
    # coupling
    # ------------------------------------------------------------------
    def attach(self, core: Core) -> None:
        if self.core is not None:
            raise ReproError("DSA already attached to a core")
        self.core = core
        core.retire_hooks.append(self.on_record)
        core.timing_suppressor = self._suppressor
        self._vector = core.vector
        if core.config.covered_execution and core.config.predecode:
            core.cover_hook = self._cover_hook

    def _suppressor(self, record: TraceRecord) -> bool:
        return record.pc in self._suppress_set

    def _build_template(self, window, streams) -> LoopTemplate:
        """Lower a window against the attached core's vector backend, so
        lane/chunk math follows its width instead of NEON constants."""
        backend = self.core.vector
        return build_template(
            window,
            streams,
            width_bytes=backend.width_bytes,
            num_regs=backend.num_regs,
        )

    # ------------------------------------------------------------------
    # observability (every site guards on ``observer is None``: zero
    # overhead when detached, and nothing here is on the record hot path)
    # ------------------------------------------------------------------
    def _obs_cycle(self) -> int | None:
        return self.core.timing.cycles if self.core is not None else None

    def _rebuild_suppression(self) -> None:
        pcs: set[int] = set()
        for ctx in self.contexts.values():
            if ctx.suppress_active:
                pcs.update(ctx.suppress_pcs)
        self._suppress_set = frozenset(pcs)

    # ------------------------------------------------------------------
    # covered execution (the record-free release protocol)
    # ------------------------------------------------------------------
    # Once a loop is fully characterized, tracing it buys nothing: the
    # per-record effects are *predictable* (suppressed EXECUTE: one
    # suppressed retirement plus one expected-address check per memory op
    # per iteration; SCALAR: just the observation counter).  The cover
    # hook — installed by attach() when CPUConfig.covered_execution —
    # lets the core hand a whole region to the record-free runners in
    # repro.cpu.covered and bulk-folds the identical bookkeeping after
    # the fact, so every serialized stat, cycle and context transition
    # stays byte-identical to the traced loop.  Any phase-change signal
    # re-arms tracing: control leaving the region, an address
    # misprediction, the coverage limit, a backward branch the static
    # scan did not bless, guard mode, a fault injector, an attached
    # observer, or extra retire hooks (e.g. a wall-clock deadline).
    def _cover_hook(self, head_pc: int, limit: int) -> bool:
        """Called by the traced loop at every taken backward branch.

        Returns truthy when the core should skip traced-block dispatch
        for this branch: either a covered stretch just retired
        record-free (control is wherever it left the region), or the
        region is *maturing* — statically coverable but the state
        machine has not rendered its verdict yet, so the core stays in
        the (byte-identical) interpreter where this hook keeps firing
        each iteration instead of letting a compiled traced block
        swallow the whole loop before suppression can begin.  False
        re-arms the traced loop exactly as if covering did not exist.
        """
        ctx = self.contexts.get(head_pc)
        if ctx is None:
            return False
        state = ctx.state
        if state is _State.EXECUTE:
            if ctx.pending_abort_reason is not None:
                return False
            # suppressed EXECUTE replays the codegen block; once the
            # coverage limit deactivates suppression the remaining
            # iterations run with normal timing ("post-limit")
            mode = _COVER_SUPPRESSED if ctx.suppress_active else _COVER_POSTLIMIT
        elif state is _State.SCALAR:
            mode = _COVER_SCALAR
        elif state in _MATURING:
            mode = _COVER_HOLD  # verdict pending: maybe hold the interpreter
        else:
            return False  # COND_EXECUTE keeps tracing
        if self.guard or self.injector is not None:
            return False
        core = self.core
        if self.observer is not None or core.observer is not None:
            return False  # observation needs the record stream
        hooks = core.retire_hooks
        if (
            len(hooks) != 1
            or hooks[0] != self.on_record  # == : bound methods are re-created per access
            or core.timing_suppressor != self._suppressor
        ):
            return False  # someone else reads records (deadline hook, ...)
        plan = self._cover_plan(head_pc, ctx.end_pc)
        if plan is None:
            return False
        if mode is _COVER_HOLD:
            # statically coverable but still COLLECT/ANALYZE/MAP_ANALYZE:
            # hold the interpreter so the hook sees the verdict land
            return True
        # every other live context must be inert (SCALAR) and must contain
        # this region: an out-of-range context would be finalized by the
        # first record of each iteration, and delaying that could diverge
        # loop re-detection
        for other in self._ctx_snapshot:
            if other is ctx:
                continue
            if other.state is not _State.SCALAR:
                return False
            if other.call_depth <= 0 and not (
                other.loop_id <= head_pc and ctx.end_pc <= other.end_pc
            ):
                return False
        if mode is _COVER_SUPPRESSED:
            return self._run_suppressed_cover(ctx, plan, limit)
        if self._suppress_set:
            return False  # records in-region would be claimed: keep tracing
        if mode is _COVER_POSTLIMIT:
            if not plan.stride_safe:
                return False  # sample appends would be live state
            if any(pc not in ctx.streams for pc in plan.mem_pcs):
                return False  # a fresh pc would raise an unknown-path abort
            return self._run_postlimit_cover(ctx, plan, limit)
        return self._run_scalar_cover(plan, limit)

    def _cover_plan(self, head_pc: int, end_pc: int):
        key = (head_pc, end_pc)
        plan = self._cover_plans.get(key, _UNBUILT)
        if plan is _UNBUILT:
            dec = self.core._decoded if self.core is not None else None
            plan = scan_region(dec, head_pc, end_pc) if dec is not None else None
            if plan is not None and plan.straight:
                compile_covered(dec, plan)
            self._cover_plans[key] = plan
        return plan

    def _run_suppressed_cover(self, ctx: _LoopContext, plan, limit: int) -> bool:
        """Release a suppressed-EXECUTE region and replay the DSA effects.

        The traced world's per-record effects during suppressed execution
        are exactly: note_suppressed() per retirement, records_observed,
        one expected-address comparison per memory op (mismatch ⇒ pending
        abort + a non-vectorizable cache insert), covered/iteration bumps
        at each boundary, deactivation at the coverage limit, and abort at
        a *taken* boundary with a pending reason.  (Stream samples are
        also appended, but during suppression they equal the prediction by
        construction — a deviating access aborts instead — so skipping
        them is unobservable: ``gap()`` and ``addr_at`` are fixed by the
        first samples.)  All of it is folded here in bulk.
        """
        if plan.block is None or ctx.suppress_pcs != plan.pcs:
            return False
        if ctx.suppress_limit is not None:
            budget = ctx.suppress_limit - ctx.covered
            if budget <= 0:
                return False
        else:
            budget = 1 << 60
        current = ctx.iteration + 1
        exps: list[int] = []
        gaps: list[int] = []
        for pc in plan.mem_pcs:
            stream = ctx.streams.get(pc)
            if stream is None:
                return False  # unsampled access pattern: keep tracing
            a = stream.addr_at(current)
            if a is None:
                return False  # irregular stride: every access must abort-check
            exps.append(a)
            gaps.append(stream.gap())
        core = self.core
        cache = self.cache
        loop_id = ctx.loop_id
        n = plan.n_ops

        def on_mismatch() -> None:
            # replay of _sample_stream's misprediction branch, once per
            # deviating access (repeat inserts only refresh LRU order)
            ctx.pending_abort_reason = "address misprediction"
            cache.insert(loop_id, CacheEntry(
                kind=LoopKind.NON_VECTORIZABLE,
                vectorizable=False,
                reason="address misprediction at runtime",
            ))

        seq0 = core.seq
        try:
            seq, taken, iters, bad = plan.block(
                core, seq0, limit, budget, exps, gaps, on_mismatch
            )
        except BaseException:
            f_iters, f_k = core._block_fault
            core.seq = seq0 + f_iters * n + f_k
            core.pc = plan.head_pc + (f_k << 2)
            self._fold_covered(plan, f_iters, f_k)
            ctx.iteration += f_iters
            ctx.covered += f_iters  # completed iterations all hit boundaries
            raise
        core.seq = seq
        core.pc = plan.head_pc if taken else plan.end_pc + 4
        self._fold_covered(plan, iters, 0)
        ctx.iteration += iters
        if bad:
            if taken:
                # the bad iteration reached a taken boundary: abort before
                # its covered increment, exactly like _iteration_boundary
                ctx.covered += iters - 1
                self._abort_execution(ctx)
            else:
                # fall-through exit never checks pending aborts — the final
                # iteration still counts and commits later (same quirk as
                # _observe's fall-through arm)
                ctx.covered += iters
        else:
            ctx.covered += iters
            if (
                taken
                and ctx.suppress_limit is not None
                and ctx.covered >= ctx.suppress_limit
            ):
                ctx.suppress_active = False
                self._rebuild_suppression()
        return iters > 0

    def _fold_covered(self, plan, iters: int, k: int) -> None:
        """Bulk-fold what the traced world would have done per record."""
        retired = iters * plan.n_ops + k
        if not retired:
            return
        core = self.core
        self.stats.records_observed += retired
        core.timing.stats.suppressed_instructions += retired
        core.tier_counts["covered"] += retired
        icounts = core.icounts
        if iters:
            for kind, cnt in plan.kind_counts.items():
                icounts[kind] += cnt * iters
        if k:
            ops = core._decoded.ops
            h = plan.head_idx
            for j in range(k):
                icounts[ops[h + j].kind_name] += 1

    def _run_postlimit_cover(self, ctx: _LoopContext, plan, limit: int) -> bool:
        """Release an EXECUTE region whose coverage limit has passed.

        After ``_iteration_boundary`` deactivates suppression, the traced
        world runs the remaining iterations with *normal* timing; the only
        per-record DSA effects are ``records_observed``, the per-boundary
        ``ctx.iteration`` bump, and one stream sample append per memory op
        per iteration.  The eligibility gate (``plan.stride_safe`` plus a
        live stream for every memory pc) proves those appends would
        continue each stream's exact stride — and ``MemStream.gap()``
        tolerates iteration holes — so every later read (``gap()`` and
        ``samples[0]`` at commit/verify time) is unchanged when they are
        skipped.  The counters are folded here; timing, hierarchy traffic
        and icounts are charged natively by :func:`run_scalar_region`.
        """
        core = self.core
        seq0 = core.seq
        try:
            run_scalar_region(core, plan, limit)
        finally:
            self.stats.records_observed += core.seq - seq0
            ctx.iteration += core._region_boundaries
        return core.seq > seq0

    def _run_scalar_cover(self, plan, limit: int) -> bool:
        """Release a SCALAR-verdict region to the record-free fast tier.

        A SCALAR context's only per-record effect inside its range is the
        observation counter: sampling is state-gated off, windows are not
        appended, and the boundary bumps an iteration count nothing reads
        for SCALAR.  Timing/hierarchy run normally — the bounded runner
        charges them identically to the traced loop.
        """
        core = self.core
        seq0 = core.seq
        try:
            run_scalar_region(core, plan, limit)
        finally:
            self.stats.records_observed += core.seq - seq0
        return core.seq > seq0

    # ------------------------------------------------------------------
    # record stream
    # ------------------------------------------------------------------
    def on_record(self, record: TraceRecord) -> None:
        self.stats.records_observed += 1

        # Passive-window fast path.  A record with no branch outcome whose
        # pc lies inside the window cannot change any context's shape (no
        # call tracking, no window append, no boundary, no finalize) and
        # cannot start a loop.  Without accesses it is a complete no-op;
        # with accesses only EXECUTE-state contexts react, and only by
        # sampling the stream (which never moves states, bounds, or the
        # context set, so the window stays valid without a refresh).
        if record.branch_taken is None:
            w = self._passive_window
            if w is not None and w[0] <= record.pc < w[1]:
                if not record.accesses:
                    return
                if isinstance(record.instr, Mem):
                    for ctx in self._sampling_ctxs:
                        self._sample_stream(ctx, record)
                return

        observe = self._observe
        for ctx in self._ctx_snapshot:
            observe(ctx, record)

        if (
            record.branch_taken
            and record.next_pc < record.pc
            and record.next_pc not in self.contexts
        ):
            self._loop_detected(record)

        self._refresh_passive_window()

    def _refresh_passive_window(self) -> None:
        """Recompute the no-op pc window after any slow-path record.

        The window is valid only while every live context is in a state
        with no per-record bookkeeping for plain in-range records (EXECUTE
        samples memory only; SCALAR tracks nothing).  COLLECT/ANALYZE/
        MAP_ANALYZE append every in-range record to the iteration window
        and COND_EXECUTE appends to the path signature, so any such
        context disables the fast path entirely.  The bounds intersect all
        context ranges and stay strictly below every ``end_pc`` so
        iteration boundaries always take the slow path.
        """
        lo = 0
        hi: int | None = None
        sampling: list[_LoopContext] = []
        for ctx in self._ctx_snapshot:
            state = ctx.state
            if state is _State.EXECUTE:
                sampling.append(ctx)
            elif state is not _State.SCALAR:
                self._passive_window = None
                return
            if ctx.loop_id > lo:
                lo = ctx.loop_id
            if hi is None or ctx.end_pc < hi:
                hi = ctx.end_pc
        if hi is not None and lo < hi:
            self._passive_window = (lo, hi)
            self._sampling_ctxs = tuple(sampling)
        else:
            self._passive_window = None

    # ------------------------------------------------------------------
    def _loop_detected(self, record: TraceRecord) -> None:
        """A taken backward branch to a loop the DSA is not tracking."""
        loop_id, end_pc = record.next_pc, record.pc
        self.stats.loops_detected += 1
        self.stats.stage_activations["loop_detection"] += 1

        # an inner loop inside a loop under analysis: the outer loop cannot
        # be vectorized as a unit (the inner one is handled on its own)
        for ctx in self.contexts.values():
            if ctx.state in (_State.COLLECT, _State.ANALYZE, _State.MAP_ANALYZE):
                if ctx.loop_id <= loop_id and end_pc <= ctx.end_pc:
                    ctx.has_inner = True

        entry = self.cache.lookup(loop_id)
        self._charge_detection(self.config.latencies.dsa_cache_access)
        obs = self.observer
        if obs is not None:
            cycle = self._obs_cycle()
            obs.emit(EventKind.LOOP_DETECTED, cycle=cycle,
                     loop_id=hex(loop_id), end_pc=hex(end_pc))
            obs.emit(
                EventKind.CACHE_HIT if entry is not None else EventKind.CACHE_MISS,
                cycle=cycle, cache="dsa_cache", key=hex(loop_id),
            )
        if entry is not None:
            self._start_from_cache(loop_id, end_pc, entry, record)
            return
        ctx = _LoopContext(loop_id, end_pc, self)
        self.contexts[loop_id] = ctx
        self._ctx_snapshot = tuple(self.contexts.values())
        self.stats.analyses_started += 1
        self.stats.stage_activations["data_collection"] += 1

    # ------------------------------------------------------------------
    def _observe(self, ctx: _LoopContext, record: TraceRecord) -> None:
        pc = record.pc

        # function-call tracking keeps callee instructions "inside"
        in_range = ctx.loop_id <= pc <= ctx.end_pc
        if in_range or ctx.call_depth > 0:
            # only branch-class records can open/close a call; everything
            # else skips the isinstance ladder entirely
            if record.branch_taken is not None:
                instr = record.instr
                if isinstance(instr, Branch):
                    if instr.link:
                        ctx.call_depth += 1
                        ctx.has_call = True
                elif ctx.call_depth > 0 and isinstance(instr, BranchReg):
                    ctx.call_depth -= 1
            if not in_range and ctx.call_depth <= 0:
                return
        elif (
            not record.branch_taken
            or record.next_pc >= pc
            or record.next_pc != ctx.loop_id
        ):
            # completely outside this loop: it has ended
            self._finalize(ctx, record)
            return
        else:
            # outside the body, but a backward branch into the loop head
            # (re-entry): nothing to observe on this record
            return

        # continuous stream sampling (loops left alone need no bookkeeping)
        if ctx.state is not _State.SCALAR and record.accesses and isinstance(record.instr, Mem):
            self._sample_stream(ctx, record)

        if ctx.state in (_State.COLLECT, _State.ANALYZE, _State.MAP_ANALYZE):
            ctx.window.append(record)
        elif ctx.state is _State.COND_EXECUTE:
            ctx.current_path.append(pc)

        # iteration boundary: the backward branch at the loop's end
        if pc == ctx.end_pc and record.branch_taken and record.next_pc == ctx.loop_id:
            self._iteration_boundary(ctx, record)
        elif pc == ctx.end_pc and record.branch_taken is False:
            # fall-through exit: close the final iteration (the next record
            # lies outside the loop and triggers finalization)
            ctx.iteration += 1
            if ctx.state is _State.EXECUTE and ctx.suppress_active:
                ctx.covered += 1
            elif ctx.state is _State.COND_EXECUTE and ctx.suppress_active and ctx.entry:
                sig = tuple(ctx.current_path)
                ctx.current_path = []
                if sig in ctx.entry.path_templates:
                    ctx.covered += 1
                    ctx.path_map.append((ctx.iteration, sig))

    # ------------------------------------------------------------------
    def _sample_stream(self, ctx: _LoopContext, record: TraceRecord) -> None:
        instr = record.instr
        assert isinstance(instr, Mem)
        access = record.accesses[0]
        stream = ctx.streams.get(record.pc)
        if stream is None:
            if ctx.state not in (_State.COLLECT, _State.ANALYZE, _State.MAP_ANALYZE):
                # a new access pattern mid-execution: unknown path
                ctx.pending_abort_reason = "unknown path during execution"
                return
            if not self.vcache.record(record.pc, access.addr):
                ctx.vcache_overflow = True
                return
            stream = MemStream(pc=record.pc, is_write=access.is_write, dtype=instr.dtype)
            ctx.streams[record.pc] = stream
        current_iter = ctx.iteration + 1
        if ctx.state in (_State.EXECUTE, _State.COND_EXECUTE):
            if ctx.suppress_active:
                # the verification cache keeps checking every iteration: an
                # address deviating from the prediction means the analysis
                # mis-speculated and the NEON hand-off must be cancelled
                predicted = stream.addr_at(current_iter)
                if predicted is not None and predicted != access.addr:
                    ctx.pending_abort_reason = "address misprediction"
                    self.cache.insert(
                        ctx.loop_id,
                        CacheEntry(
                            kind=LoopKind.NON_VECTORIZABLE,
                            vectorizable=False,
                            reason="address misprediction at runtime",
                        ),
                    )
                    return
            # the fast-resume path pre-seeds a synthetic sample for the
            # current iteration; keep one sample per iteration here
            if stream.samples and stream.samples[-1][0] >= current_iter:
                return
            stream.add_sample(current_iter, access.addr)
            return
        # during analysis, a second access by the same pc within one
        # iteration makes gap() irregular, rejecting the stream — intended
        stream.add_sample(current_iter, access.addr)

    # ------------------------------------------------------------------
    def _iteration_boundary(self, ctx: _LoopContext, record: TraceRecord) -> None:
        ctx.iteration += 1
        window, ctx.window = ctx.window, []

        if ctx.state is _State.COLLECT:
            self.stats.detection_cycles += len(window)
            ctx.last_window = window
            ctx.path_windows.setdefault(tuple(r.pc for r in window), []).append((ctx.iteration, window))
            if self._try_fast_resume(ctx, window):
                return
            ctx.state = _State.ANALYZE
            self.stats.stage_activations["dependency_analysis"] += 1
        elif ctx.state is _State.ANALYZE:
            self.stats.detection_cycles += len(window)
            ctx.last_window = window
            ctx.path_windows.setdefault(tuple(r.pc for r in window), []).append((ctx.iteration, window))
            self._analyze(ctx, window, record)
        elif ctx.state is _State.MAP_ANALYZE:
            self.stats.detection_cycles += len(window)
            ctx.last_window = window
            sig = tuple(r.pc for r in window)
            ctx.path_windows.setdefault(sig, []).append((ctx.iteration, window))
            self.stats.stage_activations["mapping"] += 1
            self._try_conditional_verdict(ctx, record)
        elif ctx.state is _State.EXECUTE:
            if ctx.pending_abort_reason:
                self._abort_execution(ctx)
                return
            if ctx.suppress_active:
                ctx.covered += 1
                if ctx.suppress_limit is not None and ctx.covered >= ctx.suppress_limit:
                    ctx.suppress_active = False
                    self._rebuild_suppression()
                    self._note_rearm(ctx, "coverage limit reached")
        elif ctx.state is _State.COND_EXECUTE:
            if ctx.pending_abort_reason:
                self._abort_execution(ctx)
                return
            sig = tuple(ctx.current_path)
            ctx.current_path = []
            assert ctx.entry is not None
            if sig not in ctx.entry.path_templates:
                if not set(sig) & set(ctx.entry.suppress_pcs):
                    # a path that executes no vectorized arm (e.g. the
                    # not-taken side first appearing mid-execution): the
                    # vector map records it; nothing was speculated for it
                    ctx.entry.path_templates[sig] = None
                else:
                    self.stats.unknown_path_aborts += 1
                    self._abort_execution(ctx)
                    return
            ctx.covered += 1
            ctx.path_map.append((ctx.iteration, sig))
            if ctx.suppress_limit is not None and ctx.covered >= ctx.suppress_limit:
                ctx.suppress_active = False
                self._rebuild_suppression()

    # ------------------------------------------------------------------
    # cache-hit fast resume (end of iteration 2)
    # ------------------------------------------------------------------
    _FAST_KINDS = (LoopKind.COUNT, LoopKind.FUNCTION, LoopKind.DYNAMIC_RANGE, LoopKind.PARTIAL)

    def _try_fast_resume(self, ctx: _LoopContext, window: list[TraceRecord]) -> bool:
        """DSA-cache hit on a straight loop: skip collection/analysis.

        The cached template already knows the body dataflow and every
        stream's per-iteration gap; this invocation's window supplies the
        new base addresses and the current loop bound (the hardware reads
        them from the register file).  CIDP is re-run because relative
        stream distances shift with the bases — which is also what makes
        dynamic-range type A loops safe to re-vectorize (Fig. 24).
        """
        entry = ctx.entry
        if entry is None or not entry.vectorizable or entry.kind not in self._FAST_KINDS:
            return False
        template = entry.template
        if template is None or not entry.stream_gaps:
            return False
        # rebase every remembered stream onto this invocation's addresses
        rebased: dict[int, MemStream] = {}
        for pc, (gap, is_write, dtype) in entry.stream_gaps.items():
            observed = ctx.streams.get(pc)
            if observed is None or gap is None:
                return False  # different path than last time: re-analyze
            addr2 = observed.samples[0][1]
            stream = MemStream(pc=pc, is_write=is_write, dtype=dtype)
            stream.add_sample(2, addr2)
            stream.add_sample(3, addr2 + gap)
            rebased[pc] = stream
        if any(pc not in rebased for pc in ctx.streams):
            return False  # new accesses appeared: re-analyze from scratch

        # current bound/induction from this window's loop-control compare
        cmp_rec = next((r for r in window if r.pc == entry.cmp_pc), None)
        if cmp_rec is None or entry.induction_reg is None:
            return False
        value_now = cmp_rec.read_value(entry.induction_reg)
        if value_now is None:
            return False
        if entry.bound_kind == "imm":
            bound_now = entry.bound_value
        else:
            bound_now = cmp_rec.read_value(entry.bound_value)
            if bound_now is None:
                return False
        info = {
            "value_now": to_s32(value_now),
            "bound_now": to_s32(bound_now),
            "step": entry.step,
            "cond": entry.branch_cond,
        }
        remaining = self._remaining_iterations(info)
        last_iteration = ctx.iteration + remaining

        self._charge_detection(self.config.latencies.dsa_cache_access)
        verdict = predict_cid(list(rebased.values()), last_iteration)
        chunk = entry.chunk
        kind = entry.kind
        if verdict.dependent:
            chunk = safe_chunk(verdict, template.lanes) if self.config.features.partial else None
            if chunk is None:
                ctx.state = _State.SCALAR
                return True
            kind = LoopKind.PARTIAL
        elif kind is LoopKind.PARTIAL:
            kind = LoopKind.DYNAMIC_RANGE if entry.bound_kind == "reg" else LoopKind.COUNT
            chunk = None

        live = replace(
            entry,
            kind=kind,
            chunk=chunk,
            template=replace(template, streams={pc: rebased[pc] for pc in template.streams}),
        )
        ctx.streams = rebased
        self.stats.vectorized_invocations["cache_fast_path"] += 1
        self._begin_execution(ctx, live, remaining)
        return True

    # ------------------------------------------------------------------
    # analysis (end of iteration 3)
    # ------------------------------------------------------------------
    def _analyze(self, ctx: _LoopContext, window: list[TraceRecord], record: TraceRecord) -> None:
        feats = self._loop_shape(ctx)
        if ctx.has_inner:
            self._cache_verdict(ctx, LoopKind.NESTED_OUTER, False, "contains inner loop")
            ctx.state = _State.SCALAR
            return
        if ctx.vcache_overflow:
            self._cache_verdict(ctx, LoopKind.NON_VECTORIZABLE, False, "verification cache overflow")
            ctx.state = _State.SCALAR
            return

        if feats["conditional"]:
            if not (self.config.features.conditional and (not ctx.has_call or self.config.features.function)):
                self._cache_verdict(ctx, LoopKind.CONDITIONAL, False, "conditional loops disabled")
                ctx.state = _State.SCALAR
                return
            ctx.state = _State.MAP_ANALYZE
            self.stats.stage_activations["mapping"] += 1
            self._try_conditional_verdict(ctx, record)
            return

        if feats["sentinel"]:
            self._analyze_sentinel(ctx, record)
            return

        self._analyze_straight(ctx, record, feats)

    def _loop_shape(self, ctx: _LoopContext) -> dict:
        """Classify the loop's control structure from the observed windows."""
        conditional = False
        sentinel = False
        for windows in ctx.path_windows.values():
            for _, window in windows:
                for rec in window:
                    instr = rec.instr
                    if isinstance(instr, Branch) and rec.pc != ctx.end_pc:
                        assert isinstance(instr.target, int)
                        if instr.cond is not Cond.AL and ctx.loop_id <= instr.target <= ctx.end_pc:
                            conditional = True
                        elif instr.cond is Cond.AL and not instr.link:
                            # internal unconditional jump (if/else join)
                            conditional = True
                        elif instr.cond is not Cond.AL and not (
                            ctx.loop_id <= instr.target <= ctx.end_pc
                        ):
                            sentinel = True
        if len(ctx.path_windows) > 1:
            conditional = True
        back = None
        for windows in ctx.path_windows.values():
            for _, window in windows:
                if window and window[-1].pc == ctx.end_pc:
                    back = window[-1].instr
        if back is not None and isinstance(back, Branch) and back.cond is Cond.AL:
            sentinel = True
        if sentinel:
            conditional = False  # sentinel handling wins for While loops
        return {"conditional": conditional, "sentinel": sentinel}

    # ------------------------------------------------------------------
    def _find_bound(self, ctx: _LoopContext, window: list[TraceRecord]) -> dict | None:
        """Locate the loop-control compare and extract bound + induction."""
        back = window[-1]
        if not isinstance(back.instr, Branch) or back.instr.cond is Cond.AL:
            return None
        cmp_rec = None
        for rec in reversed(window[:-1]):
            if isinstance(rec.instr, Cmp) and rec.instr.kind is CmpKind.CMP:
                cmp_rec = rec
                break
        if cmp_rec is None:
            return None
        instr = cmp_rec.instr
        induction_reg = instr.rn.index
        value_now = cmp_rec.read_value(induction_reg)
        if isinstance(instr.op2, Imm):
            bound_kind, bound_value, bound_now = "imm", instr.op2.value, instr.op2.value
        elif isinstance(instr.op2, Reg):
            bound_kind, bound_value = "reg", instr.op2.index
            bound_now = cmp_rec.read_value(instr.op2.index)
        else:
            return None
        # induction step: compare against the nearest earlier sighting of
        # the same compare, normalised by the iteration distance (windows
        # of different conditional paths may be several iterations apart)
        prev: tuple[int, int] | None = None  # (iteration, value)
        for windows in ctx.path_windows.values():
            for it, w in windows:
                for rec in w:
                    if rec.pc == cmp_rec.pc and rec.seq < cmp_rec.seq:
                        value = rec.read_value(induction_reg)
                        if value is not None and (prev is None or it > prev[0]):
                            prev = (it, value)
        if prev is None or value_now is None or bound_now is None:
            return None
        delta_iter = ctx.iteration - prev[0]
        if delta_iter <= 0:
            return None
        raw_step = to_s32(value_now) - to_s32(prev[1])
        if raw_step == 0 or raw_step % delta_iter:
            return None
        step = raw_step // delta_iter
        return {
            "cmp_pc": cmp_rec.pc,
            "bound_kind": bound_kind,
            "bound_value": bound_value,
            "bound_now": to_s32(bound_now),
            "induction_reg": induction_reg,
            "value_now": to_s32(value_now),
            "step": step,
            "cond": back.instr.cond,
        }

    @staticmethod
    def _remaining_iterations(info: dict) -> int:
        """Iterations still to run after the current one, from the compare."""
        v, bound, step, cond = info["value_now"], info["bound_now"], info["step"], info["cond"]
        if step > 0 and cond in (Cond.LT, Cond.NE, Cond.LO):
            return max(0, math.ceil((bound - v) / step))
        if step > 0 and cond is Cond.LE:
            return max(0, math.floor((bound - v) / step) + 1)
        if step < 0 and cond in (Cond.GT, Cond.NE):
            return max(0, math.ceil((v - bound) / -step))
        if step < 0 and cond is Cond.GE:
            return max(0, math.floor((v - bound) / -step) + 1)
        return 0

    # ------------------------------------------------------------------
    def _analyze_straight(self, ctx: _LoopContext, record: TraceRecord, feats: dict) -> None:
        window = ctx.path_windows[next(iter(ctx.path_windows))][-1][1]
        info = self._find_bound(ctx, window)
        if info is None:
            self._cache_verdict(ctx, LoopKind.NON_VECTORIZABLE, False, "no recognizable loop bound")
            ctx.state = _State.SCALAR
            return

        kind = LoopKind.COUNT
        if ctx.has_call:
            kind = LoopKind.FUNCTION
        if info["bound_kind"] == "reg":
            kind = LoopKind.DYNAMIC_RANGE

        gate = {
            LoopKind.COUNT: self.config.features.count,
            LoopKind.FUNCTION: self.config.features.function,
            LoopKind.DYNAMIC_RANGE: self.config.features.dynamic_range,
        }[kind]
        if not gate:
            self._cache_verdict(ctx, kind, False, f"{kind.value} loops disabled", info=info)
            ctx.state = _State.SCALAR
            return

        try:
            template = self._build_template(window, ctx.streams)
        except TemplateReject as exc:
            self._cache_verdict(ctx, LoopKind.NON_VECTORIZABLE, False, str(exc), info=info)
            ctx.state = _State.SCALAR
            return

        remaining = self._remaining_iterations(info)
        last_iteration = ctx.iteration + remaining
        self.stats.detection_cycles += len(ctx.streams)
        self._charge_detection(self.config.latencies.verification_cache_access)
        # the verification cache holds EVERY observed access, including
        # pinned (loop-invariant) loads that never enter the template —
        # a walking store hitting one of those is still a dependency
        verdict = predict_cid(list(ctx.streams.values()), last_iteration)
        chunk = None
        if verdict.dependent:
            chunk = safe_chunk(verdict, template.lanes) if self.config.features.partial else None
            if chunk is None:
                self._cache_verdict(
                    ctx, LoopKind.NON_VECTORIZABLE, False, "cross-iteration dependency", info=info
                )
                ctx.state = _State.SCALAR
                return
            kind = LoopKind.PARTIAL

        entry = CacheEntry(
            kind=kind,
            vectorizable=True,
            template=template,
            suppress_pcs=frozenset(r.pc for r in window),
            cmp_pc=info["cmp_pc"],
            bound_kind=info["bound_kind"],
            bound_value=info["bound_value"],
            induction_reg=info["induction_reg"],
            step=info["step"],
            branch_cond=info["cond"],
            chunk=chunk,
            must_reverify=(info["bound_kind"] == "reg"),
            leftover=self._choose_leftover(template),
            stream_gaps={
                pc: (st.gap(), st.is_write, st.dtype) for pc, st in ctx.streams.items()
            },
        )
        self.cache.insert(ctx.loop_id, entry)
        self.stats.verdicts[kind.value] += 1
        if self.observer is not None:
            cycle = self._obs_cycle()
            self.observer.emit(
                EventKind.TEMPLATE_BUILT, cycle=cycle, loop_id=hex(ctx.loop_id),
                lanes=template.lanes, streams=len(template.streams),
            )
            self.observer.emit(
                EventKind.LOOP_VERDICT, cycle=cycle, loop_id=hex(ctx.loop_id),
                loop_kind=kind.value, vectorizable=True,
            )
        self._begin_execution(ctx, entry, remaining)

    # ------------------------------------------------------------------
    def _analyze_sentinel(self, ctx: _LoopContext, record: TraceRecord) -> None:
        if not self.config.features.sentinel:
            self._cache_verdict(ctx, LoopKind.SENTINEL, False, "sentinel loops disabled")
            ctx.state = _State.SCALAR
            return
        window = ctx.path_windows[next(iter(ctx.path_windows))][-1][1]
        # the exit branch: first conditional branch leaving the loop range
        exit_pc = None
        for rec in window:
            instr = rec.instr
            if (
                isinstance(instr, Branch)
                and instr.cond is not Cond.AL
                and isinstance(instr.target, int)
                and not (ctx.loop_id <= instr.target <= ctx.end_pc)
            ):
                exit_pc = rec.pc
                break
        if exit_pc is None:
            self._cache_verdict(ctx, LoopKind.NON_VECTORIZABLE, False, "sentinel without exit branch")
            ctx.state = _State.SCALAR
            return
        try:
            template = self._build_template(window, ctx.streams)
        except TemplateReject as exc:
            self._cache_verdict(ctx, LoopKind.SENTINEL, False, str(exc))
            ctx.state = _State.SCALAR
            return

        # the speculative range fills the vector unit on the first run and
        # follows the last observed range on later invocations (Fig. 23)
        if ctx.entry is not None and ctx.entry.kind is LoopKind.SENTINEL and ctx.entry.spec_range:
            spec_range = ctx.entry.spec_range
        else:
            spec_range = template.lanes
        verdict = predict_cid(list(ctx.streams.values()), ctx.iteration + spec_range)
        if verdict.dependent:
            self._cache_verdict(ctx, LoopKind.SENTINEL, False, "cross-iteration dependency")
            ctx.state = _State.SCALAR
            return

        # the stop-condition computation keeps running on the scalar core
        scalar_pcs = {r.pc for r in window if r.pc <= exit_pc} | {ctx.end_pc}
        suppress = frozenset(r.pc for r in window) - frozenset(scalar_pcs)
        entry = CacheEntry(
            kind=LoopKind.SENTINEL,
            vectorizable=True,
            template=template,
            suppress_pcs=suppress,
            scalar_pcs=frozenset(scalar_pcs),
            spec_range=spec_range,
            leftover=Leftover.SINGLE_ELEMENTS,
        )
        self.cache.insert(ctx.loop_id, entry)
        self.stats.verdicts[LoopKind.SENTINEL.value] += 1
        if self.observer is not None:
            cycle = self._obs_cycle()
            self.observer.emit(
                EventKind.TEMPLATE_BUILT, cycle=cycle, loop_id=hex(ctx.loop_id),
                lanes=template.lanes, streams=len(template.streams),
            )
            self.observer.emit(
                EventKind.LOOP_VERDICT, cycle=cycle, loop_id=hex(ctx.loop_id),
                loop_kind=LoopKind.SENTINEL.value, vectorizable=True,
            )
        self._begin_execution(ctx, entry, entry.spec_range, sentinel=True)

    # ------------------------------------------------------------------
    # conditional loops
    # ------------------------------------------------------------------
    def _try_conditional_verdict(self, ctx: _LoopContext, record: TraceRecord) -> None:
        """Check the paper's two completion criteria: every loop-body PC was
        covered by some path, and every path has two sightings for CIDP."""
        body_pcs = set(range(ctx.loop_id, ctx.end_pc + 4, 4))
        seen_pcs: set[int] = set()
        for sig in ctx.path_windows:
            seen_pcs.update(sig)
        seen_pcs &= body_pcs
        if seen_pcs != body_pcs:
            if ctx.iteration > 64:
                # paths never complete (e.g. data-dependent rare branch);
                # give up for this invocation
                self.stats.analyses_aborted += 1
                ctx.state = _State.SCALAR
            return
        # a path needs a second sighting only when its own (non-shared)
        # instructions touch memory — stride verification needs two
        # addresses; an empty arm (e.g. the not-taken side of a
        # relaxation) is verified by a single pass
        sigs_now = list(ctx.path_windows)
        prefix_now = frozenset(_common_prefix(sigs_now))
        suffix_now = frozenset(_common_suffix(sigs_now))
        for sig, pairs in ctx.path_windows.items():
            unique = set(sig) - prefix_now - suffix_now
            needs_two = any(
                rec.accesses and rec.pc in unique for _, w in pairs for rec in w
            )
            if needs_two and len(pairs) < 2:
                return

        # build one template per path
        path_templates: dict[tuple, LoopTemplate] = {}
        sigs = list(ctx.path_windows)
        prefix = _common_prefix(sigs)
        suffix = _common_suffix(sigs)
        info = self._find_bound(ctx, ctx.last_window)
        if info is None:
            self._cache_verdict(ctx, LoopKind.CONDITIONAL, False, "no recognizable loop bound")
            ctx.state = _State.SCALAR
            return
        remaining = self._remaining_iterations(info)
        last_iteration = ctx.iteration + remaining
        result_regs = 0
        path_suppress: dict[tuple, frozenset] = {}
        for sig in sigs:
            window = ctx.path_windows[sig][-1][1]
            try:
                template = self._build_template(window, ctx.streams)
            except TemplateReject as exc:
                if str(exc).startswith("no store"):
                    # a condition arm that stores nothing (e.g. the
                    # not-taken side of a relaxation): nothing to
                    # vectorize, only the vector map records it
                    template = None
                else:
                    self._cache_verdict(ctx, LoopKind.CONDITIONAL, False, str(exc), info=info)
                    ctx.state = _State.SCALAR
                    return
            # conservative: check the condition's streams against every
            # stream the verification cache observed (cross-path aliasing)
            verdict = predict_cid(list(ctx.streams.values()), last_iteration)
            if verdict.dependent:
                self._cache_verdict(
                    ctx, LoopKind.CONDITIONAL, False, "cross-iteration dependency", info=info
                )
                ctx.state = _State.SCALAR
                return
            path_templates[sig] = template
            if template is not None:
                result_regs += template.result_registers
            path_suppress[sig] = frozenset(sig) - frozenset(prefix) - frozenset(suffix)

        if all(t is None for t in path_templates.values()):
            self._cache_verdict(ctx, LoopKind.CONDITIONAL, False, "no vectorizable condition", info=info)
            ctx.state = _State.SCALAR
            return

        if not self.array_maps.can_allocate(result_regs):
            self._cache_verdict(
                ctx, LoopKind.CONDITIONAL, False, "insufficient array maps", info=info
            )
            ctx.state = _State.SCALAR
            return

        entry = CacheEntry(
            kind=LoopKind.CONDITIONAL,
            vectorizable=True,
            path_templates=path_templates,
            path_suppress=path_suppress,
            suppress_pcs=frozenset().union(*path_suppress.values()),
            scalar_pcs=frozenset(prefix) | frozenset(suffix),
            cmp_pc=info["cmp_pc"],
            bound_kind=info["bound_kind"],
            bound_value=info["bound_value"],
            induction_reg=info["induction_reg"],
            step=info["step"],
            branch_cond=info["cond"],
            must_reverify=(info["bound_kind"] == "reg"),
        )
        self.cache.insert(ctx.loop_id, entry)
        self.stats.verdicts[LoopKind.CONDITIONAL.value] += 1
        if self.observer is not None:
            cycle = self._obs_cycle()
            templates = [t for t in path_templates.values() if t is not None]
            self.observer.emit(
                EventKind.TEMPLATE_BUILT, cycle=cycle, loop_id=hex(ctx.loop_id),
                lanes=templates[0].lanes if templates else 0,
                streams=len(ctx.streams), paths=len(path_templates),
            )
            self.observer.emit(
                EventKind.LOOP_VERDICT, cycle=cycle, loop_id=hex(ctx.loop_id),
                loop_kind=LoopKind.CONDITIONAL.value, vectorizable=True,
            )
        self._begin_conditional_execution(ctx, entry, remaining)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _begin_execution(
        self, ctx: _LoopContext, entry: CacheEntry, remaining: int, sentinel: bool = False
    ) -> None:
        template = entry.template
        assert template is not None
        if remaining < max(self.config.min_vector_iterations, template.lanes):
            ctx.state = _State.SCALAR
            return
        ctx.entry = entry
        ctx.state = _State.EXECUTE
        if self.observer is not None:
            self.observer.emit(
                EventKind.SPEC_START, cycle=self._obs_cycle(),
                loop_id=hex(ctx.loop_id), loop_kind=entry.kind.value,
                limit=remaining, sentinel=sentinel,
            )
        ctx.first_covered = ctx.iteration + 1
        ctx.covered = 0
        ctx.invariants = dict(enumerate(self.core.regs)) if self.core else {}
        ctx.suppress_pcs = entry.suppress_pcs
        ctx.suppress_active = True
        self.stats.stage_activations["store_id_execution"] += 1
        self.stats.vectorized_invocations[entry.kind.value] += 1

        if sentinel:
            ctx.suppress_limit = entry.spec_range
        elif entry.leftover is Leftover.SINGLE_ELEMENTS:
            leftover = remaining % template.lanes
            ctx.suppress_limit = remaining - leftover
        else:
            ctx.suppress_limit = remaining
        if self._verify_enabled:
            ctx.snapshot = self._capture_snapshot(template, ctx.first_covered, ctx.suppress_limit or remaining)
        self._rebuild_suppression()
        if self.observer is not None:
            self._note_would_cover(ctx)

    def _note_would_cover(self, ctx: _LoopContext) -> None:
        """Observed runs only: covering needs the record stream gone, so it
        is disabled under observation — instead, document (LOOP_COVERED)
        that this configuration would release the region record-free, and
        COVER_REARM later marks the phase change that would force tracing
        back.  Anchored to the state machine, not the run loop, so the
        emission points do not depend on block-compilation timing; configs
        that cannot cover (predecode or the knob off) emit nothing."""
        if self.guard or self.injector is not None:
            return
        core = self.core
        if (
            core is None
            or not core.config.covered_execution
            or not core.config.predecode
        ):
            return
        plan = self._cover_plan(ctx.loop_id, ctx.end_pc)
        if plan is None or plan.block is None or ctx.suppress_pcs != plan.pcs:
            return
        self._cover_marked.add(ctx.loop_id)
        self.observer.emit(
            EventKind.LOOP_COVERED, cycle=self._obs_cycle(),
            loop_id=hex(ctx.loop_id), mode="suppressed",
        )

    def _note_rearm(self, ctx: _LoopContext, reason: str) -> None:
        if ctx.loop_id in self._cover_marked:
            self._cover_marked.discard(ctx.loop_id)
            if self.observer is not None:
                self.observer.emit(
                    EventKind.COVER_REARM, cycle=self._obs_cycle(),
                    loop_id=hex(ctx.loop_id), reason=reason,
                )

    def _begin_conditional_execution(self, ctx: _LoopContext, entry: CacheEntry, remaining: int) -> None:
        lanes = next(t.lanes for t in entry.path_templates.values() if t is not None)
        if remaining < max(self.config.min_vector_iterations, lanes):
            ctx.state = _State.SCALAR
            return
        ctx.entry = entry
        ctx.state = _State.COND_EXECUTE
        if self.observer is not None:
            self.observer.emit(
                EventKind.SPEC_START, cycle=self._obs_cycle(),
                loop_id=hex(ctx.loop_id), loop_kind=entry.kind.value,
                limit=remaining,
            )
        ctx.first_covered = ctx.iteration + 1
        ctx.covered = 0
        ctx.suppress_limit = remaining
        ctx.path_map = []
        ctx.current_path = []
        ctx.invariants = dict(enumerate(self.core.regs)) if self.core else {}
        ctx.suppress_pcs = entry.suppress_pcs
        ctx.suppress_active = True
        self.array_maps.allocate(
            sum(t.result_registers for t in entry.path_templates.values() if t is not None)
        )
        self.stats.stage_activations["store_id_execution"] += 1
        self.stats.vectorized_invocations[entry.kind.value] += 1
        if self._verify_enabled:
            ctx.snapshot = RegionSnapshot()
            for template in entry.path_templates.values():
                if template is not None:
                    self._capture_into(ctx.snapshot, template, ctx.first_covered, remaining, ctx.snapshot_done)
        self._rebuild_suppression()

    # ------------------------------------------------------------------
    def _capture_snapshot(self, template: LoopTemplate, first_iter: int, count: int) -> RegionSnapshot:
        snap = RegionSnapshot()
        self._capture_into(snap, template, first_iter, count, set())
        return snap

    def _capture_into(
        self,
        snap: RegionSnapshot,
        template: LoopTemplate,
        first_iter: int,
        count: int,
        done: set[int],
    ) -> None:
        assert self.core is not None
        for pc, stream in template.streams.items():
            if pc in done:
                continue
            done.add(pc)
            gap = stream.gap()
            if gap is None:
                continue
            start = stream.addr_at(first_iter)
            if start is None:
                continue
            end = start + gap * (count + 1) + stream.dtype.size
            lo, hi = (start, end) if gap >= 0 else (end, start)
            snap.capture(self.core.memory, lo - 16, (hi - lo) + 32)

    # ------------------------------------------------------------------
    # cache-hit fast path
    # ------------------------------------------------------------------
    def _start_from_cache(
        self, loop_id: int, end_pc: int, entry: CacheEntry, record: TraceRecord
    ) -> None:
        """DSA-cache hit.

        Known non-vectorizable loops go straight to the SCALAR state (the
        hit saves the whole analysis).  Vectorizable loops re-run the
        observation window: the paper's DRL-A and sentinel loops re-verify
        on every invocation anyway (Figs. 23/24), and cached hints (the
        sentinel's remembered speculative range) are picked up from
        ``ctx.entry`` during the re-analysis.
        """
        ctx = _LoopContext(loop_id, end_pc, self)
        self.contexts[loop_id] = ctx
        self._ctx_snapshot = tuple(self.contexts.values())
        ctx.entry = entry
        if not entry.vectorizable and not entry.must_reverify:
            # a definitively non-vectorizable loop stays scalar; verdicts
            # that depend on runtime values (dynamic ranges, conditional
            # loops with register bounds) are re-checked per invocation
            ctx.state = _State.SCALAR
            return
        ctx.state = _State.COLLECT

    # ------------------------------------------------------------------
    def _abort_execution(self, ctx: _LoopContext) -> None:
        """Unknown behaviour mid-execution: cancel the NEON hand-off.

        Results stay correct (the scalar core did the work all along); the
        iterations whose timing was already suppressed are re-charged as an
        equivalent scalar stall so the cancelled speculation is not free.
        """
        self.stats.analyses_aborted += 1
        self._charge_stall(ctx.covered * max(1, len(ctx.suppress_pcs)))
        if self.observer is not None:
            self.observer.emit(
                EventKind.SPEC_ROLLBACK, cycle=self._obs_cycle(),
                loop_id=hex(ctx.loop_id),
                reason=ctx.pending_abort_reason or "unknown path",
                covered=ctx.covered,
            )
        ctx.suppress_active = False
        ctx.state = _State.SCALAR
        ctx.covered = 0
        ctx.path_map = []
        self._rebuild_suppression()
        self._note_rearm(ctx, ctx.pending_abort_reason or "execution aborted")

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def _finalize(self, ctx: _LoopContext, record: TraceRecord) -> None:
        try:
            if ctx.state is _State.EXECUTE and ctx.covered:
                self._commit_straight(ctx)
            elif ctx.state is _State.COND_EXECUTE and ctx.covered:
                self._commit_conditional(ctx)
            elif ctx.state in (_State.COLLECT, _State.ANALYZE, _State.MAP_ANALYZE):
                self.stats.analyses_aborted += 1
        finally:
            self.array_maps.release_all()
            self.vcache.reset()
            self.contexts.pop(ctx.loop_id, None)
            self._ctx_snapshot = tuple(self.contexts.values())
            self._rebuild_suppression()
            self._note_rearm(ctx, "control left the region")

    def _commit_straight(self, ctx: _LoopContext) -> None:
        entry = ctx.entry
        assert entry is not None and entry.template is not None
        template = entry.template
        covered = ctx.covered
        lanes = template.lanes
        lat = self.config.latencies

        self._charge_stall(lat.pipeline_flush + lat.dsa_cache_access)
        if entry.must_reverify:
            self._charge_stall(lat.verification_cache_access)

        if entry.kind is LoopKind.PARTIAL and entry.chunk:
            chunks = math.ceil(covered / entry.chunk)
            for c in range(chunks):
                chunk_iters = min(entry.chunk, covered - c * entry.chunk)
                self._charge_stall(lat.partial_reanalysis)
                self._charge_template_burst(
                    template, ctx.first_covered + c * entry.chunk, math.ceil(chunk_iters / lanes)
                )
        elif entry.kind is LoopKind.SENTINEL:
            quads = math.ceil(max(covered, entry.spec_range) / lanes)
            self._charge_template_burst(template, ctx.first_covered, quads)
            self._charge_stall(lat.speculative_select)
            # remember the real range for the next invocation (Fig. 23)
            new_entry = replace(entry, spec_range=max(lanes, _round_up(ctx.iteration, lanes)))
            self.cache.insert(ctx.loop_id, new_entry)
        else:
            quads, leftover = divmod(covered, lanes)
            extra: list[tuple[int, int]] = []
            if entry.leftover is Leftover.OVERLAPPING and leftover:
                # one overlapped vector re-covers the last `lanes` elements
                # (Fig. 28) — within the arrays, so the lines are warm
                extra.append((ctx.first_covered + covered - lanes, 1))
            elif leftover:
                # residual iterations of sentinel/aborted coverage: round up
                extra.append((ctx.first_covered + quads * lanes, 1))
            self._charge_template_burst(template, ctx.first_covered, quads, extra)
            self.stats.leftover_used[entry.leftover.value] += 1

        self.stats.iterations_covered += covered
        if self.observer is not None:
            self.observer.emit(
                EventKind.SPEC_COMMIT, cycle=self._obs_cycle(),
                loop_id=hex(ctx.loop_id), covered=covered, loop_kind=entry.kind.value,
            )
        if self._verify_enabled and ctx.snapshot is not None:
            try:
                self._verify_straight(
                    ctx, template, covered, partial=entry.kind is LoopKind.PARTIAL, chunk=entry.chunk
                )
            except DSAVerificationError as exc:
                self._guard_fallback(ctx, exc)

    def _commit_conditional(self, ctx: _LoopContext) -> None:
        entry = ctx.entry
        assert entry is not None
        lat = self.config.latencies
        self._charge_stall(lat.pipeline_flush + lat.dsa_cache_access)
        # the vector map is consulted every mapped iteration, but that is
        # DSA hardware running in parallel with the core (paper, Section
        # 4.1); only the end-of-loop result selection stalls the pipeline
        self._charge_detection(lat.array_map_access * ctx.covered)
        self._charge_stall(lat.speculative_select)

        total_range = ctx.suppress_limit or ctx.covered
        first_seen: dict[tuple, int] = {}
        for iteration, sig in ctx.path_map:
            first_seen.setdefault(sig, iteration)
        for sig, template in entry.path_templates.items():
            if template is None or sig not in first_seen:
                continue  # nothing to vectorize, or never ran
            start = first_seen[sig]
            span = ctx.first_covered + total_range - start
            quads = math.ceil(max(span, 0) / template.lanes)
            self._charge_template_burst(template, start, quads)
        self.stats.iterations_covered += ctx.covered
        if self.observer is not None:
            self.observer.emit(
                EventKind.SPEC_COMMIT, cycle=self._obs_cycle(),
                loop_id=hex(ctx.loop_id), covered=ctx.covered,
                loop_kind=entry.kind.value,
            )

        if self._verify_enabled and ctx.snapshot is not None:
            try:
                self._verify_conditional(ctx, entry)
            except DSAVerificationError as exc:
                self._guard_fallback(ctx, exc)

    # ------------------------------------------------------------------
    def _guard_fallback(self, ctx: _LoopContext, exc: DSAVerificationError) -> None:
        """Guarded rollback: the vector outcome disagreed with the scalar
        reference (mis-speculation, possibly injected).

        The vector results are discarded — architecturally free, since the
        scalar core computed every iteration all along — and the covered
        region is re-charged as scalar work on top of the already-charged
        (and now wasted) NEON burst, plus a pipeline flush: rolling back
        speculation is never free.  Unguarded runs keep the old contract
        and raise.
        """
        if not self.guard:
            raise exc
        self.stats.fallbacks += 1
        self.stats.fallback_causes[f"loop_0x{ctx.loop_id:x}"] += 1
        lat = self.config.latencies
        self._charge_stall(lat.pipeline_flush + ctx.covered * max(1, len(ctx.suppress_pcs)))
        if self.observer is not None:
            self.observer.emit(
                EventKind.GUARD_FALLBACK, cycle=self._obs_cycle(),
                loop_id=hex(ctx.loop_id), cause=str(exc), covered=ctx.covered,
            )

    # ------------------------------------------------------------------
    def _charge_template_burst(
        self,
        template: LoopTemplate,
        first_iter: int,
        quads: int,
        extra_segments: list[tuple[int, int]] | None = None,
    ) -> None:
        """Charge one NEON burst covering ``quads`` vector iterations from
        ``first_iter``; ``extra_segments`` (e.g. an overlapped tail quad)
        join the same burst, so the pipeline fill is paid once."""
        if quads <= 0 or self.core is None:
            return
        segments = [(first_iter, quads)] + list(extra_segments or [])
        timing = self.core.timing
        hierarchy = self.core.hierarchy
        total = 0
        for seg_first, seg_quads in segments:
            if seg_quads <= 0:
                continue
            start_addrs: dict[int, int] = {}
            for pc, stream in template.streams.items():
                addr = stream.addr_at(seg_first)
                if addr is None:
                    addr = stream.first_addr
                start_addrs[pc] = addr
            try:
                burst = template.emit_burst(start_addrs, seg_quads)
            except TemplateReject:
                continue
            for instr, addr in burst:
                mem_latency = 0
                if addr is not None:
                    mem_latency = hierarchy.access(addr, template.width_bytes, instr.is_store)
                    self.stats.vector_mem_ops += 1
                else:
                    self.stats.vector_arith_ops += 1
                timing.charge_vector(instr, mem_latency)
            total += len(burst)
        timing.end_vector_burst()
        self.stats.bursts_charged += 1
        self.stats.vector_instructions += total
        if self.observer is not None:
            self.observer.emit(
                EventKind.NEON_DISPATCH, cycle=self._obs_cycle(),
                instructions=total, source="dsa_burst", quads=quads,
            )

    def _charge_stall(self, cycles: int) -> None:
        if self.core is not None and cycles:
            self.core.timing.add_stall(cycles, kind="dsa")
            self.stats.stall_cycles += cycles

    def _charge_detection(self, cycles: int) -> None:
        """Analysis work that runs in parallel with the core (not charged)."""
        self.stats.detection_cycles += cycles

    # ------------------------------------------------------------------
    # functional verification
    # ------------------------------------------------------------------
    def _verify_straight(
        self,
        ctx: _LoopContext,
        template: LoopTemplate,
        covered: int,
        partial: bool = False,
        chunk: int | None = None,
    ) -> None:
        assert self.core is not None and ctx.snapshot is not None
        self.stats.verifications += 1
        first = ctx.first_covered
        if partial and chunk:
            done = 0
            while done < covered:
                size = min(chunk, covered - done)
                iters = np.arange(first + done, first + done + size)
                results = template.evaluate(ctx.snapshot, iters, ctx.invariants)
                for pc, values in results.items():
                    stream = template.streams[pc]
                    gap = stream.gap() or 0
                    i0, a0 = stream.samples[0]
                    for k, it in enumerate(iters):
                        ctx.snapshot.write_value(int(a0 + gap * (it - i0)), values[k].item(), stream.dtype)
                done += size
            self._compare_snapshot_stores(ctx, template, np.arange(first, first + covered))
            return
        iters = np.arange(first, first + covered)
        results = template.evaluate(ctx.snapshot, iters, ctx.invariants)
        self._compare_results(ctx, template, iters, results)

    def _verify_conditional(self, ctx: _LoopContext, entry: CacheEntry) -> None:
        assert self.core is not None and ctx.snapshot is not None
        self.stats.verifications += 1
        by_path: dict[tuple, list[int]] = {}
        for iteration, sig in ctx.path_map:
            by_path.setdefault(sig, []).append(iteration)
        if self.injector is not None:
            by_path = self.injector.corrupt_paths(by_path, entry.path_templates)
        for sig, iters_list in by_path.items():
            template = entry.path_templates[sig]
            if template is None:
                continue
            iters = np.array(iters_list)
            results = template.evaluate(ctx.snapshot, iters, ctx.invariants)
            self._compare_results(ctx, template, iters, results)

    def _compare_results(self, ctx, template: LoopTemplate, iters: np.ndarray, results: dict) -> None:
        assert self.core is not None
        for pc, values in results.items():
            stream = template.streams[pc]
            gap = stream.gap() or 0
            i0, a0 = stream.samples[0]
            for k, it in enumerate(iters):
                addr = int(a0 + gap * (int(it) - i0))
                expected = values[k].item()
                if self.injector is not None:
                    addr, expected = self.injector.corrupt_check(pc, int(it), addr, expected, stream)
                actual = self.core.memory.read_value(addr, stream.dtype)
                if not _values_equal(actual, expected):
                    raise DSAVerificationError(
                        f"loop 0x{ctx.loop_id:x}: store pc=0x{pc:x} iteration {int(it)} "
                        f"addr=0x{addr:x}: scalar={actual!r} vector={expected!r}"
                    )

    def _compare_snapshot_stores(self, ctx, template: LoopTemplate, iters: np.ndarray) -> None:
        assert self.core is not None and ctx.snapshot is not None
        for root in template.stores:
            stream = template.streams[root.stream_pc]
            gap = stream.gap() or 0
            i0, a0 = stream.samples[0]
            for it in iters:
                addr = int(a0 + gap * (int(it) - i0))
                expected = ctx.snapshot.read_value(addr, stream.dtype)
                if self.injector is not None:
                    addr, expected = self.injector.corrupt_check(
                        root.stream_pc, int(it), addr, expected, stream
                    )
                actual = self.core.memory.read_value(addr, stream.dtype)
                if not _values_equal(actual, expected):
                    raise DSAVerificationError(
                        f"loop 0x{ctx.loop_id:x} (partial): addr=0x{addr:x}: "
                        f"scalar={actual!r} vector={expected!r}"
                    )

    # ------------------------------------------------------------------
    def _choose_leftover(self, template: LoopTemplate) -> Leftover:
        """Pick the leftover technique (Section 4.8).

        Overlapping recomputes a few elements; that is only safe when the
        loop is pure elementwise (no store stream is also read — a
        read-modify-write would apply the operation twice).  Larger arrays
        need cooperation from the allocator, which a transparent DSA cannot
        assume, so the fallback is single elements.  The configured policy
        can force either technique for ablation studies.
        """
        if self.config.leftover_policy == "single_elements":
            return Leftover.SINGLE_ELEMENTS
        rmw = False
        store_keys = set()
        for root in template.stores:
            s = template.streams[root.stream_pc]
            store_keys.add((s.first_addr, s.gap()))
        for pc in template.load_pcs:
            s = template.streams[pc]
            if (s.first_addr, s.gap()) in store_keys:
                rmw = True
        if rmw:
            return Leftover.SINGLE_ELEMENTS  # recomputation would double-apply
        return Leftover.OVERLAPPING

    # ------------------------------------------------------------------
    def _cache_verdict(
        self,
        ctx: _LoopContext,
        kind: LoopKind,
        vectorizable: bool,
        reason: str,
        info: dict | None = None,
    ) -> None:
        entry = CacheEntry(kind=kind, vectorizable=vectorizable, reason=reason)
        if info is not None:
            entry.bound_kind = info["bound_kind"]
            entry.must_reverify = info["bound_kind"] == "reg"
        self.cache.insert(ctx.loop_id, entry)
        self.stats.verdicts[kind.value if not vectorizable else kind.value] += 1
        if self.observer is not None:
            self.observer.emit(
                EventKind.LOOP_VERDICT, cycle=self._obs_cycle(),
                loop_id=hex(ctx.loop_id), loop_kind=kind.value,
                vectorizable=vectorizable, reason=reason,
            )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _common_prefix(sigs: list[tuple]) -> tuple:
    if not sigs:
        return ()
    first = sigs[0]
    n = min(len(s) for s in sigs)
    out = []
    for i in range(n):
        if all(s[i] == first[i] for s in sigs):
            out.append(first[i])
        else:
            break
    return tuple(out)


def _common_suffix(sigs: list[tuple]) -> tuple:
    reversed_sigs = [tuple(reversed(s)) for s in sigs]
    return tuple(reversed(_common_prefix(reversed_sigs)))


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def _values_equal(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b)) or abs(a - b) <= 1e-6 * max(abs(a), abs(b))
    return int(a) == int(b)
