"""Region snapshots: cheap memory captures for functional verification.

Cloning the whole simulated memory per vectorized loop would dominate
simulation time; the DSA only needs the regions its streams will read,
captured before the covered iterations start mutating them.
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryError_
from ..isa.dtypes import DType
from ..memory.backing import MainMemory


class RegionSnapshot:
    """A sparse, writable snapshot of selected memory regions."""

    def __init__(self) -> None:
        self._regions: list[tuple[int, bytearray]] = []

    def capture(self, memory: MainMemory, start: int, length: int) -> None:
        """Copy ``length`` bytes at ``start`` (clamped to the memory)."""
        start = max(0, start)
        end = min(memory.size, start + max(0, length))
        if end <= start:
            return
        self._regions.append((start, bytearray(memory.read(start, end - start))))

    def covers(self, addr: int, nbytes: int) -> bool:
        return any(s <= addr and addr + nbytes <= s + len(b) for s, b in self._regions)

    def _locate(self, addr: int, nbytes: int) -> tuple[int, bytearray]:
        for start, buf in self._regions:
            if start <= addr and addr + nbytes <= start + len(buf):
                return start, buf
        raise MemoryError_(f"snapshot does not cover 0x{addr:x}+{nbytes}")

    def read_value(self, addr: int, dtype: DType) -> int | float:
        start, buf = self._locate(addr, dtype.size)
        off = addr - start
        return dtype.unpack(bytes(buf[off : off + dtype.size]))

    def write_value(self, addr: int, value: int | float, dtype: DType) -> None:
        start, buf = self._locate(addr, dtype.size)
        off = addr - start
        buf[off : off + dtype.size] = dtype.pack(value)

    def read_block(self, addr: int, count: int, dtype: DType) -> np.ndarray:
        """Fast contiguous read of ``count`` elements."""
        start, buf = self._locate(addr, dtype.size * count)
        off = addr - start
        raw = bytes(buf[off : off + dtype.size * count])
        return np.frombuffer(raw, dtype=dtype.numpy).copy()
