"""The DSA's private storage structures.

* **DSA cache** (8 KB): verdicts + SIMD templates for loops already
  analyzed, indexed by loop ID (the PC of the loop's first instruction);
* **Verification cache** (1 KB): the data-memory addresses observed during
  the Data Collection iteration — its capacity bounds how many accesses per
  iteration the DSA can track;
* **Array maps** (4 x 128 bit): result registers reserved for conditional
  loop speculation; unused NEON registers may extend them (Section 4.6.4.3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from .config import DSAConfig


@dataclass
class CacheEntryStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class DSACache:
    """LRU map from loop ID to the loop's cached verdict/template."""

    def __init__(self, config: DSAConfig):
        self.capacity = max(1, config.dsa_cache_entries)
        self.stats = CacheEntryStats()
        self._entries: OrderedDict[int, Any] = OrderedDict()

    def lookup(self, loop_id: int) -> Any | None:
        if loop_id in self._entries:
            self._entries.move_to_end(loop_id)
            self.stats.hits += 1
            return self._entries[loop_id]
        self.stats.misses += 1
        return None

    def insert(self, loop_id: int, entry: Any) -> None:
        if loop_id in self._entries:
            self._entries.move_to_end(loop_id)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[loop_id] = entry

    def invalidate(self, loop_id: int) -> None:
        self._entries.pop(loop_id, None)

    def __contains__(self, loop_id: int) -> bool:
        return loop_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class VerificationCache:
    """Bounded store of (instruction PC -> data address) observations.

    One entry per *static* memory instruction in the loop body; a loop whose
    body performs more distinct accesses than fit is beyond the DSA's reach
    and is classified non-vectorizable (capacity pressure is real hardware
    behaviour, and tests exercise it).
    """

    def __init__(self, config: DSAConfig):
        self.capacity = max(1, config.verification_cache_entries)
        self.stats = CacheEntryStats()
        self._addrs: dict[int, list[int]] = {}
        self.overflowed = False

    def reset(self) -> None:
        self._addrs.clear()
        self.overflowed = False

    def record(self, pc: int, addr: int) -> bool:
        """Record one access; returns False on capacity overflow."""
        if pc not in self._addrs:
            if len(self._addrs) >= self.capacity:
                self.overflowed = True
                return False
            self._addrs[pc] = []
        self._addrs[pc].append(addr)
        self.stats.hits += 1
        return True

    def addresses(self, pc: int) -> list[int]:
        return self._addrs.get(pc, [])

    def pcs(self) -> list[int]:
        return list(self._addrs)

    def __len__(self) -> int:
        return len(self._addrs)


@dataclass
class ArrayMaps:
    """Result-register budget for conditional-loop speculation."""

    slots: int
    spare_neon_regs: int
    in_use: int = 0
    peak: int = 0

    def can_allocate(self, count: int) -> bool:
        return self.in_use + count <= self.slots + self.spare_neon_regs

    def allocate(self, count: int) -> bool:
        if not self.can_allocate(count):
            return False
        self.in_use += count
        self.peak = max(self.peak, self.in_use)
        return True

    def release_all(self) -> None:
        self.in_use = 0
