"""DSA configuration: storage sizes, inferred latencies, feature gates.

Storage matches the paper's Table 4 (8 KB DSA cache, 1 KB verification
cache, four 128-bit array maps).  The latency knobs are the ones the
methodology chapter says were "inferred" and charged on top of the parallel
detection: pipeline flush on NEON hand-off, cache/array-map accesses, and
the extra cross-iteration analyses of partial vectorization.

Feature gates reproduce the three evolution stages of the DSA across the
dissertation's articles:

* ``original`` (Article 1 / SBCCI): count, function and inner/outer loops;
* ``extended`` (Article 2 / SBESC): + conditional and dynamic-range loops;
* ``full``     (Article 3 / DATE):  + sentinel loops and partial
  vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError


@dataclass(frozen=True)
class DSAFeatures:
    """Which loop kinds this DSA build vectorizes."""

    count: bool = True
    function: bool = True
    nested: bool = True
    conditional: bool = True
    dynamic_range: bool = True
    sentinel: bool = True
    partial: bool = True

    @classmethod
    def original(cls) -> "DSAFeatures":
        return cls(conditional=False, dynamic_range=False, sentinel=False, partial=False)

    @classmethod
    def extended(cls) -> "DSAFeatures":
        return cls(sentinel=False, partial=False)

    @classmethod
    def full(cls) -> "DSAFeatures":
        return cls()


@dataclass(frozen=True)
class DSALatencies:
    """Cycle costs charged by the DSA on top of its parallel analysis."""

    pipeline_flush: int = 14       # drain the O3 pipeline before NEON hand-off
    dsa_cache_access: int = 1
    verification_cache_access: int = 1
    array_map_access: int = 1      # per mapped iteration of a conditional loop
    partial_reanalysis: int = 4    # extra CIDP pass per partial chunk
    speculative_select: int = 2    # end-of-loop result selection


@dataclass(frozen=True)
class DSAConfig:
    """Full configuration of one DSA instance."""

    dsa_cache_bytes: int = 8 * 1024
    dsa_cache_entry_bytes: int = 64
    verification_cache_bytes: int = 1024
    verification_entry_bytes: int = 8
    array_maps: int = 4
    spare_neon_regs: int = 8       # unused Q registers usable for speculation
    features: DSAFeatures = field(default_factory=DSAFeatures.full)
    latencies: DSALatencies = field(default_factory=DSALatencies)
    #: run the numpy functional-equivalence check on every vectorized loop
    verify_functional: bool = True
    #: smallest number of remaining iterations worth a NEON hand-off
    min_vector_iterations: int = 4
    #: leftover technique (Section 4.8): 'auto' picks overlapping for pure
    #: elementwise loops and single elements for read-modify-write streams;
    #: 'single_elements' / 'overlapping' force one (overlapping silently
    #: falls back to single elements when recomputation would be unsafe)
    leftover_policy: str = "auto"

    def __post_init__(self) -> None:
        if self.dsa_cache_bytes <= 0 or self.verification_cache_bytes <= 0:
            raise ConfigError("cache sizes must be positive")
        if self.array_maps < 0:
            raise ConfigError("array map count cannot be negative")
        if self.leftover_policy not in ("auto", "single_elements", "overlapping"):
            raise ConfigError(f"unknown leftover policy {self.leftover_policy!r}")

    @property
    def dsa_cache_entries(self) -> int:
        return self.dsa_cache_bytes // self.dsa_cache_entry_bytes

    @property
    def verification_cache_entries(self) -> int:
        return self.verification_cache_bytes // self.verification_entry_bytes

    def with_features(self, features: DSAFeatures) -> "DSAConfig":
        return replace(self, features=features)


ORIGINAL_DSA_CONFIG = DSAConfig(features=DSAFeatures.original())
EXTENDED_DSA_CONFIG = DSAConfig(features=DSAFeatures.extended())
FULL_DSA_CONFIG = DSAConfig(features=DSAFeatures.full())
