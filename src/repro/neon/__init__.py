"""NEON engine model: lane math + functional execution of vector bursts."""

from .engine import NeonEngine, NeonStats, VMemEvent
from . import lanes

__all__ = ["NeonEngine", "NeonStats", "VMemEvent", "lanes"]
