"""Functional lane math for 128-bit NEON registers.

A register image is 16 bytes (numpy ``uint8`` array); operations reinterpret
it as lanes of the requested :class:`DType`, with silent wraparound on
integer overflow — exactly what the hardware does.
"""

from __future__ import annotations

import numpy as np

from ..isa.dtypes import DType, NEON_WIDTH_BYTES
from ..isa.neon import VBinKind, VCmpKind, VUnaryKind


def zero_register() -> np.ndarray:
    return np.zeros(NEON_WIDTH_BYTES, dtype=np.uint8)


def view(image: np.ndarray, dtype: DType) -> np.ndarray:
    """Reinterpret a 16-byte image as lanes of ``dtype`` (shares storage)."""
    if image.nbytes != NEON_WIDTH_BYTES:
        raise ValueError(f"register image must be {NEON_WIDTH_BYTES} bytes")
    return image.view(dtype.numpy)


def from_lanes(values, dtype: DType) -> np.ndarray:
    """Build a register image from per-lane values (wrapped to the type)."""
    arr = np.asarray(values)
    if arr.size != dtype.lanes:
        raise ValueError(f"{dtype} needs {dtype.lanes} lanes, got {arr.size}")
    return arr.astype(dtype.numpy).view(np.uint8).copy()


def broadcast(value: int | float, dtype: DType) -> np.ndarray:
    """Register image with ``value`` in every lane (vdup semantics)."""
    return from_lanes([dtype.wrap(value)] * dtype.lanes, dtype)


def binop(kind: VBinKind, a: np.ndarray, b: np.ndarray, dtype: DType) -> np.ndarray:
    """Lane-wise binary operation; returns a fresh 16-byte image."""
    va, vb = view(a, dtype), view(b, dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        if kind is VBinKind.VADD:
            out = va + vb
        elif kind is VBinKind.VSUB:
            out = va - vb
        elif kind is VBinKind.VMUL:
            out = va * vb
        elif kind is VBinKind.VMIN:
            out = np.minimum(va, vb)
        elif kind is VBinKind.VMAX:
            out = np.maximum(va, vb)
        elif kind in (VBinKind.VAND, VBinKind.VORR, VBinKind.VEOR):
            ia = a.view(np.uint8)
            ib = b.view(np.uint8)
            if kind is VBinKind.VAND:
                return (ia & ib).copy()
            if kind is VBinKind.VORR:
                return (ia | ib).copy()
            return (ia ^ ib).copy()
        else:
            raise ValueError(f"bad vector binop kind: {kind!r}")
    return out.astype(dtype.numpy).view(np.uint8).copy()


def mla(acc: np.ndarray, a: np.ndarray, b: np.ndarray, dtype: DType) -> np.ndarray:
    """acc + a*b, lane-wise."""
    vacc, va, vb = view(acc, dtype), view(a, dtype), view(b, dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        out = vacc + va * vb
    return out.astype(dtype.numpy).view(np.uint8).copy()


def unary(kind: VUnaryKind, a: np.ndarray, dtype: DType) -> np.ndarray:
    va = view(a, dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        if kind is VUnaryKind.VABS:
            out = np.abs(va)
        elif kind is VUnaryKind.VNEG:
            out = -va
        elif kind is VUnaryKind.VMVN:
            return (~a.view(np.uint8)).copy()
        else:
            raise ValueError(f"bad vector unary kind: {kind!r}")
    return out.astype(dtype.numpy).view(np.uint8).copy()


def shift(left: bool, a: np.ndarray, amount: int, dtype: DType) -> np.ndarray:
    """Lane-wise shift by immediate (arithmetic right for signed types)."""
    if dtype.is_float:
        raise ValueError("cannot shift float lanes")
    va = view(a, dtype)
    with np.errstate(over="ignore"):
        out = (va << amount) if left else (va >> amount)
    return out.astype(dtype.numpy).view(np.uint8).copy()


def compare(kind: VCmpKind, a: np.ndarray, b: np.ndarray, dtype: DType) -> np.ndarray:
    """Lane-wise compare producing an all-ones / all-zeros mask per lane."""
    va, vb = view(a, dtype), view(b, dtype)
    if kind is VCmpKind.VCEQ:
        cond = va == vb
    elif kind is VCmpKind.VCGT:
        cond = va > vb
    elif kind is VCmpKind.VCGE:
        cond = va >= vb
    elif kind is VCmpKind.VCLT:
        cond = va < vb
    elif kind is VCmpKind.VCLE:
        cond = va <= vb
    else:
        raise ValueError(f"bad vector compare kind: {kind!r}")
    mask_dtype = np.dtype(f"u{dtype.size}")
    ones = np.iinfo(mask_dtype).max
    mask = np.where(cond, ones, 0).astype(mask_dtype)
    return mask.view(np.uint8).copy()


def bitwise_select(mask: np.ndarray, n: np.ndarray, m: np.ndarray) -> np.ndarray:
    """VBSL: per-bit, take ``n`` where mask is 1 and ``m`` where it is 0."""
    md = mask.view(np.uint8)
    return ((md & n.view(np.uint8)) | (~md & m.view(np.uint8))).copy()


def lane_get(a: np.ndarray, lane: int, dtype: DType) -> int | float:
    value = view(a, dtype)[lane]
    return float(value) if dtype.is_float else int(value)


def lane_set(a: np.ndarray, lane: int, value: int | float, dtype: DType) -> np.ndarray:
    out = a.copy()
    view(out, dtype)[lane] = dtype.wrap(value)
    return out
