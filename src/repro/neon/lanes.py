"""Functional lane math for vector register images of any width.

A register image is a numpy ``uint8`` array — 16 bytes for NEON Q
registers, wider for scalable-vector registers; operations reinterpret
it as lanes of the requested :class:`DType`, with silent wraparound on
integer overflow — exactly what the hardware does.  Every operation here
is width-agnostic: the lane count falls out of ``image.nbytes``, so the
same kernels serve both the NEON and the scalable backend.
"""

from __future__ import annotations

import numpy as np

from ..isa.dtypes import DType, NEON_WIDTH_BYTES
from ..isa.neon import VBinKind, VCmpKind, VUnaryKind


def zero_register(width_bytes: int = NEON_WIDTH_BYTES) -> np.ndarray:
    return np.zeros(width_bytes, dtype=np.uint8)


def view(image: np.ndarray, dtype: DType) -> np.ndarray:
    """Reinterpret a register image as lanes of ``dtype`` (shares storage)."""
    if image.nbytes == 0 or image.nbytes % dtype.size != 0:
        raise ValueError(
            f"register image of {image.nbytes} bytes cannot hold {dtype} lanes"
        )
    return image.view(dtype.numpy)


def from_lanes(values, dtype: DType, lanes: int | None = None) -> np.ndarray:
    """Build a register image from per-lane values (wrapped to the type).

    ``lanes`` defaults to the 128-bit NEON lane count; scalable-vector
    callers pass ``backend.lanes_for(dtype)``.
    """
    expected = dtype.lanes if lanes is None else lanes
    arr = np.asarray(values)
    if arr.size != expected:
        raise ValueError(f"{dtype} needs {expected} lanes, got {arr.size}")
    return arr.astype(dtype.numpy).view(np.uint8).copy()


def broadcast(value: int | float, dtype: DType, lanes: int | None = None) -> np.ndarray:
    """Register image with ``value`` in every lane (vdup semantics)."""
    n = dtype.lanes if lanes is None else lanes
    return from_lanes([dtype.wrap(value)] * n, dtype, lanes=n)


def binop(kind: VBinKind, a: np.ndarray, b: np.ndarray, dtype: DType) -> np.ndarray:
    """Lane-wise binary operation; returns a fresh image of the same width."""
    va, vb = view(a, dtype), view(b, dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        if kind is VBinKind.VADD:
            out = va + vb
        elif kind is VBinKind.VSUB:
            out = va - vb
        elif kind is VBinKind.VMUL:
            out = va * vb
        elif kind is VBinKind.VMIN:
            out = np.minimum(va, vb)
        elif kind is VBinKind.VMAX:
            out = np.maximum(va, vb)
        elif kind in (VBinKind.VAND, VBinKind.VORR, VBinKind.VEOR):
            ia = a.view(np.uint8)
            ib = b.view(np.uint8)
            if kind is VBinKind.VAND:
                return (ia & ib).copy()
            if kind is VBinKind.VORR:
                return (ia | ib).copy()
            return (ia ^ ib).copy()
        else:
            raise ValueError(f"bad vector binop kind: {kind!r}")
    return out.astype(dtype.numpy).view(np.uint8).copy()


def mla(acc: np.ndarray, a: np.ndarray, b: np.ndarray, dtype: DType) -> np.ndarray:
    """acc + a*b, lane-wise."""
    vacc, va, vb = view(acc, dtype), view(a, dtype), view(b, dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        out = vacc + va * vb
    return out.astype(dtype.numpy).view(np.uint8).copy()


def unary(kind: VUnaryKind, a: np.ndarray, dtype: DType) -> np.ndarray:
    va = view(a, dtype)
    with np.errstate(over="ignore", invalid="ignore"):
        if kind is VUnaryKind.VABS:
            out = np.abs(va)
        elif kind is VUnaryKind.VNEG:
            out = -va
        elif kind is VUnaryKind.VMVN:
            return (~a.view(np.uint8)).copy()
        else:
            raise ValueError(f"bad vector unary kind: {kind!r}")
    return out.astype(dtype.numpy).view(np.uint8).copy()


def shift(left: bool, a: np.ndarray, amount: int, dtype: DType) -> np.ndarray:
    """Lane-wise shift by immediate (arithmetic right for signed types)."""
    if dtype.is_float:
        raise ValueError("cannot shift float lanes")
    va = view(a, dtype)
    with np.errstate(over="ignore"):
        out = (va << amount) if left else (va >> amount)
    return out.astype(dtype.numpy).view(np.uint8).copy()


def compare(kind: VCmpKind, a: np.ndarray, b: np.ndarray, dtype: DType) -> np.ndarray:
    """Lane-wise compare producing an all-ones / all-zeros mask per lane."""
    va, vb = view(a, dtype), view(b, dtype)
    if kind is VCmpKind.VCEQ:
        cond = va == vb
    elif kind is VCmpKind.VCGT:
        cond = va > vb
    elif kind is VCmpKind.VCGE:
        cond = va >= vb
    elif kind is VCmpKind.VCLT:
        cond = va < vb
    elif kind is VCmpKind.VCLE:
        cond = va <= vb
    else:
        raise ValueError(f"bad vector compare kind: {kind!r}")
    mask_dtype = np.dtype(f"u{dtype.size}")
    ones = np.iinfo(mask_dtype).max
    mask = np.where(cond, ones, 0).astype(mask_dtype)
    return mask.view(np.uint8).copy()


def bitwise_select(mask: np.ndarray, n: np.ndarray, m: np.ndarray) -> np.ndarray:
    """VBSL: per-bit, take ``n`` where mask is 1 and ``m`` where it is 0."""
    md = mask.view(np.uint8)
    return ((md & n.view(np.uint8)) | (~md & m.view(np.uint8))).copy()


def lane_get(a: np.ndarray, lane: int, dtype: DType) -> int | float:
    value = view(a, dtype)[lane]
    return float(value) if dtype.is_float else int(value)


def lane_set(a: np.ndarray, lane: int, value: int | float, dtype: DType) -> np.ndarray:
    out = a.copy()
    view(out, dtype)[lane] = dtype.wrap(value)
    return out
