"""The NEON engine: architectural Q registers + functional execution.

The engine owns the sixteen 128-bit Q registers (paper, Table 4) and knows
how to execute every vector instruction against a :class:`MainMemory`.
Timing lives in :class:`repro.cpu.timing.TimingModel`; this class is purely
functional so the DSA can also run generated bursts against memory
*snapshots* for equivalence checking without touching timing state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ExecutionError
from ..isa.dtypes import NEON_WIDTH_BYTES, bits_to_float, float_to_bits, to_u32
from ..isa.neon import (
    VBinOp,
    VBsl,
    VCmp,
    VDup,
    VDupImm,
    VInstr,
    VLoad,
    VLoadLane,
    VMla,
    VMovFromCore,
    VMovQ,
    VMovToCore,
    VShiftImm,
    VShiftKind,
    VStore,
    VStoreLane,
    VUnary,
)
from ..memory.backing import MainMemory
from . import lanes


@dataclass
class NeonStats:
    """Operation counters for the energy model."""

    arith_ops: int = 0
    mem_ops: int = 0
    lane_ops: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0

    def reset(self) -> None:
        self.arith_ops = self.mem_ops = self.lane_ops = 0
        self.bytes_loaded = self.bytes_stored = 0


@dataclass(frozen=True)
class VMemEvent:
    """A data-memory access performed by a vector instruction."""

    addr: int
    nbytes: int
    is_write: bool


class NeonEngine:
    """Functional model of the 128-bit NEON data engine."""

    def __init__(self) -> None:
        self.q = [lanes.zero_register() for _ in range(16)]
        self.stats = NeonStats()
        #: fault-injection hook: called as hook(instr, q) after each
        #: executed instruction, free to corrupt the register file — the
        #: golden check downstream is what must catch the damage
        self.fault_hook = None

    # ------------------------------------------------------------------
    def read_q(self, index: int) -> np.ndarray:
        return self.q[index].copy()

    def write_q(self, index: int, image: np.ndarray) -> None:
        if image.nbytes != NEON_WIDTH_BYTES:
            raise ExecutionError("Q register image must be 16 bytes")
        self.q[index] = image.astype(np.uint8, copy=True)

    def reset(self) -> None:
        self.q = [lanes.zero_register() for _ in range(16)]
        self.stats.reset()

    # ------------------------------------------------------------------
    def execute(
        self, instr: VInstr, regs: list[int], memory: MainMemory
    ) -> list[VMemEvent]:
        """Execute one vector instruction.

        ``regs`` is the core's scalar register file (mutated on writeback and
        on vector->core moves).  Returns the memory events performed, for the
        timing model and the cache hierarchy.
        """
        events: list[VMemEvent] = []
        if isinstance(instr, VLoad):
            addr = regs[instr.base.index]
            raw = memory.read(addr, NEON_WIDTH_BYTES)
            self.q[instr.qd.index] = np.frombuffer(raw, dtype=np.uint8).copy()
            if instr.writeback:
                regs[instr.base.index] = to_u32(addr + NEON_WIDTH_BYTES)
            events.append(VMemEvent(addr, NEON_WIDTH_BYTES, False))
            self.stats.mem_ops += 1
            self.stats.bytes_loaded += NEON_WIDTH_BYTES
        elif isinstance(instr, VStore):
            addr = regs[instr.base.index]
            memory.write(addr, self.q[instr.qs.index].tobytes())
            if instr.writeback:
                regs[instr.base.index] = to_u32(addr + NEON_WIDTH_BYTES)
            events.append(VMemEvent(addr, NEON_WIDTH_BYTES, True))
            self.stats.mem_ops += 1
            self.stats.bytes_stored += NEON_WIDTH_BYTES
        elif isinstance(instr, VLoadLane):
            addr = regs[instr.base.index]
            value = memory.read_value(addr, instr.dtype)
            self.q[instr.qd.index] = lanes.lane_set(
                self.q[instr.qd.index], instr.lane, value, instr.dtype
            )
            if instr.writeback:
                regs[instr.base.index] = to_u32(addr + instr.dtype.size)
            events.append(VMemEvent(addr, instr.dtype.size, False))
            self.stats.mem_ops += 1
            self.stats.bytes_loaded += instr.dtype.size
        elif isinstance(instr, VStoreLane):
            addr = regs[instr.base.index]
            value = lanes.lane_get(self.q[instr.qs.index], instr.lane, instr.dtype)
            memory.write_value(addr, value, instr.dtype)
            if instr.writeback:
                regs[instr.base.index] = to_u32(addr + instr.dtype.size)
            events.append(VMemEvent(addr, instr.dtype.size, True))
            self.stats.mem_ops += 1
            self.stats.bytes_stored += instr.dtype.size
        elif isinstance(instr, VBinOp):
            self.q[instr.qd.index] = lanes.binop(
                instr.kind, self.q[instr.qn.index], self.q[instr.qm.index], instr.dtype
            )
            self.stats.arith_ops += 1
        elif isinstance(instr, VMla):
            self.q[instr.qd.index] = lanes.mla(
                self.q[instr.qd.index],
                self.q[instr.qn.index],
                self.q[instr.qm.index],
                instr.dtype,
            )
            self.stats.arith_ops += 1
        elif isinstance(instr, VShiftImm):
            self.q[instr.qd.index] = lanes.shift(
                instr.kind is VShiftKind.VSHL,
                self.q[instr.qn.index],
                instr.amount,
                instr.dtype,
            )
            self.stats.arith_ops += 1
        elif isinstance(instr, VUnary):
            self.q[instr.qd.index] = lanes.unary(instr.kind, self.q[instr.qn.index], instr.dtype)
            self.stats.arith_ops += 1
        elif isinstance(instr, VDup):
            raw = regs[instr.rn.index]
            value = bits_to_float(raw) if instr.dtype.is_float else raw
            self.q[instr.qd.index] = lanes.broadcast(value, instr.dtype)
            self.stats.lane_ops += 1
        elif isinstance(instr, VDupImm):
            self.q[instr.qd.index] = lanes.broadcast(instr.value, instr.dtype)
            self.stats.lane_ops += 1
        elif isinstance(instr, VCmp):
            self.q[instr.qd.index] = lanes.compare(
                instr.kind, self.q[instr.qn.index], self.q[instr.qm.index], instr.dtype
            )
            self.stats.arith_ops += 1
        elif isinstance(instr, VBsl):
            self.q[instr.qd.index] = lanes.bitwise_select(
                self.q[instr.qd.index], self.q[instr.qn.index], self.q[instr.qm.index]
            )
            self.stats.arith_ops += 1
        elif isinstance(instr, VMovQ):
            self.q[instr.qd.index] = self.q[instr.qm.index].copy()
            self.stats.lane_ops += 1
        elif isinstance(instr, VMovToCore):
            value = lanes.lane_get(self.q[instr.qn.index], instr.lane, instr.dtype)
            regs[instr.rd.index] = (
                float_to_bits(value) if instr.dtype.is_float else to_u32(int(value))
            )
            self.stats.lane_ops += 1
        elif isinstance(instr, VMovFromCore):
            raw = regs[instr.rn.index]
            value = bits_to_float(raw) if instr.dtype.is_float else raw
            self.q[instr.qd.index] = lanes.lane_set(
                self.q[instr.qd.index], instr.lane, value, instr.dtype
            )
            self.stats.lane_ops += 1
        else:
            raise ExecutionError(f"unknown vector instruction {instr!r}")
        if self.fault_hook is not None:
            self.fault_hook(instr, self.q)
        return events

    # ------------------------------------------------------------------
    def run(
        self,
        instrs: list[VInstr],
        regs: list[int],
        memory: MainMemory,
    ) -> list[VMemEvent]:
        """Execute a burst of vector instructions; returns all memory events.

        Used by the DSA's functional-equivalence verification: the burst runs
        against a memory snapshot with a private register file.
        """
        events: list[VMemEvent] = []
        for instr in instrs:
            events.extend(self.execute(instr, regs, memory))
        return events
