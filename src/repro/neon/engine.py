"""The NEON engine: architectural Q registers + functional execution.

The engine owns the sixteen 128-bit Q registers (paper, Table 4) and knows
how to execute every vector instruction against a :class:`MainMemory`.
Timing lives in :class:`repro.cpu.timing.TimingModel`; this class is purely
functional so the DSA can also run generated bursts against memory
*snapshots* for equivalence checking without touching timing state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ExecutionError
from ..isa.dtypes import NEON_WIDTH_BYTES, bits_to_float, float_to_bits, to_u32
from ..isa.neon import (
    VBinOp,
    VBsl,
    VCmp,
    VDup,
    VDupImm,
    VInstr,
    VLoad,
    VLoadLane,
    VMla,
    VMovFromCore,
    VMovQ,
    VMovToCore,
    VShiftImm,
    VShiftKind,
    VStore,
    VStoreLane,
    VUnary,
)
from ..memory.backing import MainMemory
from ..observe.events import EventKind
from . import lanes


@dataclass
class NeonStats:
    """Operation counters for the energy model."""

    arith_ops: int = 0
    mem_ops: int = 0
    lane_ops: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0

    def reset(self) -> None:
        self.arith_ops = self.mem_ops = self.lane_ops = 0
        self.bytes_loaded = self.bytes_stored = 0


@dataclass(frozen=True, slots=True)
class VMemEvent:
    """A data-memory access performed by a vector instruction."""

    addr: int
    nbytes: int
    is_write: bool


class NeonEngine:
    """Functional model of the 128-bit NEON data engine."""

    def __init__(self) -> None:
        self.q = [lanes.zero_register() for _ in range(16)]
        self.stats = NeonStats()
        #: fault-injection hook: called as hook(instr, q) after each
        #: executed instruction, free to corrupt the register file — the
        #: golden check downstream is what must catch the damage
        self.fault_hook = None
        #: optional repro.observe.Observer; when set, every architecturally
        #: executed vector instruction emits a NEON_DISPATCH event
        self.observer = None

    # ------------------------------------------------------------------
    def read_q(self, index: int) -> np.ndarray:
        return self.q[index].copy()

    def write_q(self, index: int, image: np.ndarray) -> None:
        if image.nbytes != NEON_WIDTH_BYTES:
            raise ExecutionError("Q register image must be 16 bytes")
        self.q[index] = image.astype(np.uint8, copy=True)

    def reset(self) -> None:
        self.q = [lanes.zero_register() for _ in range(16)]
        self.stats.reset()

    # ------------------------------------------------------------------
    # per-class handlers (dispatched through _DISPATCH below; each returns
    # the memory event it performed, or None for register-only operations)
    # ------------------------------------------------------------------
    def _exec_vload(self, instr: VLoad, regs, memory) -> VMemEvent:
        addr = regs[instr.base.index]
        # zero-copy view + one materializing copy (the old read() path paid
        # a bytes round-trip *and* a frombuffer copy per 16-byte load)
        self.q[instr.qd.index] = memory.view(addr, NEON_WIDTH_BYTES).copy()
        if instr.writeback:
            regs[instr.base.index] = to_u32(addr + NEON_WIDTH_BYTES)
        self.stats.mem_ops += 1
        self.stats.bytes_loaded += NEON_WIDTH_BYTES
        return VMemEvent(addr, NEON_WIDTH_BYTES, False)

    def _exec_vstore(self, instr: VStore, regs, memory) -> VMemEvent:
        addr = regs[instr.base.index]
        memory.write(addr, self.q[instr.qs.index].tobytes())
        if instr.writeback:
            regs[instr.base.index] = to_u32(addr + NEON_WIDTH_BYTES)
        self.stats.mem_ops += 1
        self.stats.bytes_stored += NEON_WIDTH_BYTES
        return VMemEvent(addr, NEON_WIDTH_BYTES, True)

    def _exec_vload_lane(self, instr: VLoadLane, regs, memory) -> VMemEvent:
        addr = regs[instr.base.index]
        value = memory.read_value(addr, instr.dtype)
        self.q[instr.qd.index] = lanes.lane_set(
            self.q[instr.qd.index], instr.lane, value, instr.dtype
        )
        if instr.writeback:
            regs[instr.base.index] = to_u32(addr + instr.dtype.size)
        self.stats.mem_ops += 1
        self.stats.bytes_loaded += instr.dtype.size
        return VMemEvent(addr, instr.dtype.size, False)

    def _exec_vstore_lane(self, instr: VStoreLane, regs, memory) -> VMemEvent:
        addr = regs[instr.base.index]
        value = lanes.lane_get(self.q[instr.qs.index], instr.lane, instr.dtype)
        memory.write_value(addr, value, instr.dtype)
        if instr.writeback:
            regs[instr.base.index] = to_u32(addr + instr.dtype.size)
        self.stats.mem_ops += 1
        self.stats.bytes_stored += instr.dtype.size
        return VMemEvent(addr, instr.dtype.size, True)

    def _exec_vbinop(self, instr: VBinOp, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.binop(
            instr.kind, self.q[instr.qn.index], self.q[instr.qm.index], instr.dtype
        )
        self.stats.arith_ops += 1

    def _exec_vmla(self, instr: VMla, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.mla(
            self.q[instr.qd.index],
            self.q[instr.qn.index],
            self.q[instr.qm.index],
            instr.dtype,
        )
        self.stats.arith_ops += 1

    def _exec_vshift(self, instr: VShiftImm, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.shift(
            instr.kind is VShiftKind.VSHL,
            self.q[instr.qn.index],
            instr.amount,
            instr.dtype,
        )
        self.stats.arith_ops += 1

    def _exec_vunary(self, instr: VUnary, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.unary(instr.kind, self.q[instr.qn.index], instr.dtype)
        self.stats.arith_ops += 1

    def _exec_vdup(self, instr: VDup, regs, memory) -> None:
        raw = regs[instr.rn.index]
        value = bits_to_float(raw) if instr.dtype.is_float else raw
        self.q[instr.qd.index] = lanes.broadcast(value, instr.dtype)
        self.stats.lane_ops += 1

    def _exec_vdup_imm(self, instr: VDupImm, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.broadcast(instr.value, instr.dtype)
        self.stats.lane_ops += 1

    def _exec_vcmp(self, instr: VCmp, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.compare(
            instr.kind, self.q[instr.qn.index], self.q[instr.qm.index], instr.dtype
        )
        self.stats.arith_ops += 1

    def _exec_vbsl(self, instr: VBsl, regs, memory) -> None:
        self.q[instr.qd.index] = lanes.bitwise_select(
            self.q[instr.qd.index], self.q[instr.qn.index], self.q[instr.qm.index]
        )
        self.stats.arith_ops += 1

    def _exec_vmovq(self, instr: VMovQ, regs, memory) -> None:
        self.q[instr.qd.index] = self.q[instr.qm.index].copy()
        self.stats.lane_ops += 1

    def _exec_vmov_to_core(self, instr: VMovToCore, regs, memory) -> None:
        value = lanes.lane_get(self.q[instr.qn.index], instr.lane, instr.dtype)
        regs[instr.rd.index] = (
            float_to_bits(value) if instr.dtype.is_float else to_u32(int(value))
        )
        self.stats.lane_ops += 1

    def _exec_vmov_from_core(self, instr: VMovFromCore, regs, memory) -> None:
        raw = regs[instr.rn.index]
        value = bits_to_float(raw) if instr.dtype.is_float else raw
        self.q[instr.qd.index] = lanes.lane_set(
            self.q[instr.qd.index], instr.lane, value, instr.dtype
        )
        self.stats.lane_ops += 1

    #: type-keyed dispatch — one dict probe replaces the isinstance ladder
    _DISPATCH = {
        VLoad: _exec_vload,
        VStore: _exec_vstore,
        VLoadLane: _exec_vload_lane,
        VStoreLane: _exec_vstore_lane,
        VBinOp: _exec_vbinop,
        VMla: _exec_vmla,
        VShiftImm: _exec_vshift,
        VUnary: _exec_vunary,
        VDup: _exec_vdup,
        VDupImm: _exec_vdup_imm,
        VCmp: _exec_vcmp,
        VBsl: _exec_vbsl,
        VMovQ: _exec_vmovq,
        VMovToCore: _exec_vmov_to_core,
        VMovFromCore: _exec_vmov_from_core,
    }

    def execute(
        self, instr: VInstr, regs: list[int], memory: MainMemory
    ) -> list[VMemEvent]:
        """Execute one vector instruction.

        ``regs`` is the core's scalar register file (mutated on writeback and
        on vector->core moves).  Returns the memory events performed, for the
        timing model and the cache hierarchy.
        """
        handler = self._DISPATCH.get(type(instr))
        if handler is None:
            raise ExecutionError(f"unknown vector instruction {instr!r}")
        event = handler(self, instr, regs, memory)
        if self.fault_hook is not None:
            self.fault_hook(instr, self.q)
        if self.observer is not None:
            self.observer.emit(
                EventKind.NEON_DISPATCH,
                instructions=1, source="architectural", op=type(instr).__name__,
            )
        return [event] if event is not None else []

    # ------------------------------------------------------------------
    def run(
        self,
        instrs: list[VInstr],
        regs: list[int],
        memory: MainMemory,
    ) -> list[VMemEvent]:
        """Execute a burst of vector instructions; returns all memory events.

        Used by the DSA's functional-equivalence verification: the burst runs
        against a memory snapshot with a private register file.
        """
        events: list[VMemEvent] = []
        for instr in instrs:
            events.extend(self.execute(instr, regs, memory))
        return events
