"""Article 1, Table 3 — DSA area overhead."""

from __future__ import annotations

from ..energy.area import AreaModel
from .common import Experiment

PAPER_REFERENCE = {
    "logic_overhead_pct": 2.18,
    "total_overhead_pct": 10.37,
}


def run(scale: str = "test", cache=None) -> Experiment:
    model = AreaModel()
    rows = []
    for row in model.logic_rows() + model.full_rows():
        rows.append([row.component, round(row.cell_um2), round(row.net_um2), round(row.total_um2)])
    rows.append(["Area overhead (logic)", "", "", f"{model.logic_overhead_pct:.2f}%"])
    rows.append(["Total area overhead", "", "", f"{model.total_overhead_pct:.2f}%"])
    return Experiment(
        exp_id="art1_table3",
        title="Area overhead of DSA (um^2)",
        columns=["component", "cell", "net", "total"],
        rows=rows,
        paper_reference=PAPER_REFERENCE,
    )
